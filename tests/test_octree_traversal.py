"""Tests for escape-index computation and the stackless DFS property."""

import numpy as np
import pytest

from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.traversal import DONE, canonical_structure, compute_escape_indices


def full_dfs_with_escapes(pool):
    """Walk the whole tree opening every internal node; the visit
    sequence must be exactly preorder DFS."""
    order = []
    node = 0
    while node != DONE:
        order.append(node)
        c = int(pool.child[node])
        node = c if c >= 0 else int(pool.escape[node])
    return order


def preorder(pool):
    out = []

    def rec(node):
        out.append(node)
        c = int(pool.child[node])
        if c >= 0:
            for i in range(pool.nchild):
                rec(c + i)

    rec(0)
    return out


class TestEscapeIndices:
    def test_stackless_walk_is_preorder(self, small_cloud):
        pool = build_octree_vectorized(small_cloud.x, bits=8)
        compute_escape_indices(pool)
        assert full_dfs_with_escapes(pool) == preorder(pool)

    def test_walk_visits_every_node_once(self, small_cloud):
        pool = build_octree_vectorized(small_cloud.x, bits=8)
        compute_escape_indices(pool)
        order = full_dfs_with_escapes(pool)
        assert sorted(order) == list(range(pool.n_nodes))

    def test_root_escape_is_done(self, small_cloud):
        pool = build_octree_vectorized(small_cloud.x, bits=8)
        esc = compute_escape_indices(pool)
        assert esc[0] == DONE

    def test_escape_offsets_follow_fig3(self, small_cloud):
        """Backward steps go to the next sibling, or to the parent's
        escape from the last sibling (Fig. 3's sibling-or-parent rule)."""
        pool = build_octree_vectorized(small_cloud.x, bits=8)
        esc = compute_escape_indices(pool)
        for node in pool.internal_nodes():
            first = int(pool.child[node])
            for i in range(pool.nchild - 1):
                assert esc[first + i] == first + i + 1
            assert esc[first + pool.nchild - 1] == esc[node]

    def test_forward_steps_increase_offsets(self, small_cloud):
        """Children always sit at larger offsets than their parent —
        the bump-allocation property Fig. 3's stackless walk relies on."""
        pool = build_octree_vectorized(small_cloud.x, bits=8)
        internal = pool.internal_nodes()
        assert np.all(pool.child[internal] > internal)

    def test_single_node_tree(self):
        pool = build_octree_vectorized(np.array([[0.5, 0.5, 0.5]]))
        esc = compute_escape_indices(pool)
        assert esc.tolist() == [DONE]


class TestCanonicalStructure:
    def test_equal_for_same_points(self, small_cloud):
        a = build_octree_vectorized(small_cloud.x, bits=6)
        b = build_octree_vectorized(small_cloud.x, bits=6)
        assert canonical_structure(a) == canonical_structure(b)

    def test_differs_for_different_points(self, rng):
        a = build_octree_vectorized(rng.random((30, 3)), bits=6)
        b = build_octree_vectorized(rng.random((30, 3)), bits=6)
        assert canonical_structure(a) != canonical_structure(b)

    def test_leaf_form(self):
        pool = build_octree_vectorized(np.array([[0.1, 0.1, 0.1]]))
        assert canonical_structure(pool) == ("leaf", frozenset({0}))
