"""Tests for Morton encoding/decoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.morton import (
    MAX_BITS_2D,
    MAX_BITS_3D,
    morton_child_digits,
    morton_decode,
    morton_encode,
)


def _grid(rng, n, dim, bits):
    return rng.integers(0, 1 << bits, size=(n, dim)).astype(np.uint64)


class TestRoundTrip:
    @pytest.mark.parametrize("dim,bits", [(2, 1), (2, 8), (2, 31), (3, 1), (3, 10), (3, 21)])
    def test_roundtrip(self, rng, dim, bits):
        g = _grid(rng, 500, dim, bits)
        assert np.array_equal(morton_decode(morton_encode(g, bits), bits, dim), g)

    @given(st.integers(0, 2**21 - 1), st.integers(0, 2**21 - 1), st.integers(0, 2**21 - 1))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_3d_property(self, x, y, z):
        g = np.array([[x, y, z]], dtype=np.uint64)
        assert np.array_equal(morton_decode(morton_encode(g, 21), 21, 3), g)


class TestOrdering:
    def test_x_is_least_significant(self):
        """Axis 0 occupies the LSB of each digit group (Fig. 1 order)."""
        assert morton_encode(np.array([[1, 0, 0]], dtype=np.uint64), 1)[0] == 1
        assert morton_encode(np.array([[0, 1, 0]], dtype=np.uint64), 1)[0] == 2
        assert morton_encode(np.array([[0, 0, 1]], dtype=np.uint64), 1)[0] == 4

    def test_bijective_small_grid(self):
        """Every cell of a full 3-bit 3D grid has a unique code."""
        axes = np.arange(8, dtype=np.uint64)
        g = np.array(np.meshgrid(axes, axes, axes)).reshape(3, -1).T.astype(np.uint64)
        codes = morton_encode(np.ascontiguousarray(g), 3)
        assert len(np.unique(codes)) == 512
        assert codes.max() == 511

    def test_prefix_property(self, rng):
        """Truncating a code by one level = code of the half-res cell."""
        bits = 10
        g = _grid(rng, 200, 3, bits)
        full = morton_encode(g, bits)
        coarse = morton_encode(g >> np.uint64(1), bits - 1)
        assert np.array_equal(full >> np.uint64(3), coarse)


class TestValidation:
    def test_out_of_range_coordinate(self):
        g = np.array([[1 << 5, 0]], dtype=np.uint64)
        with pytest.raises(ValueError):
            morton_encode(g, 5)

    @pytest.mark.parametrize("bits", [0, 22])
    def test_bad_bits_3d(self, bits, rng):
        with pytest.raises(ValueError):
            morton_encode(_grid(rng, 4, 3, 1), bits)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            morton_encode(np.zeros((4, 5), dtype=np.uint64), 4)

    def test_decode_requires_1d(self):
        with pytest.raises(ValueError):
            morton_decode(np.zeros((2, 2), dtype=np.uint64), 4, 2)


class TestChildDigits:
    def test_digits_reconstruct_code(self, rng):
        bits, dim = 7, 3
        g = _grid(rng, 100, dim, bits)
        codes = morton_encode(g, bits)
        digits = morton_child_digits(codes, bits, dim)
        rebuilt = np.zeros_like(codes)
        for level in range(bits):
            rebuilt |= digits[:, level].astype(np.uint64) << np.uint64(
                dim * (bits - 1 - level)
            )
        assert np.array_equal(rebuilt, codes)

    def test_digit_range(self, rng):
        digits = morton_child_digits(morton_encode(_grid(rng, 50, 2, 6), 6), 6, 2)
        assert digits.min() >= 0 and digits.max() < 4

    def test_first_digit_is_root_quadrant(self):
        """The level-0 digit picks the child of the root."""
        bits = 4
        g = np.array([[0, 0, 0], [15, 15, 15]], dtype=np.uint64)
        d = morton_child_digits(morton_encode(g, bits), bits, 3)
        assert d[0, 0] == 0
        assert d[1, 0] == 7
