"""Tests for CALCULATEFORCE over the octree (Fig. 3 traversal)."""

import numpy as np
import pytest

from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations, octree_accelerations_scalar
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.stdpar.context import ExecutionContext


def bh_tree(system, bits=10):
    pool = build_octree_vectorized(system.x, bits=bits)
    compute_multipoles_vectorized(pool, system.x, system.m)
    return pool


class TestCorrectness:
    def test_theta_zero_recovers_exact_forces(self, small_cloud, soft_gravity):
        """theta = 0 never accepts an internal node, so the DFS reaches
        every leaf: exact pairwise summation."""
        pool = bh_tree(small_cloud)
        acc = octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                   soft_gravity, theta=0.0)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        assert np.allclose(acc, ref, rtol=1e-9, atol=1e-12)

    def test_batch_matches_scalar_walker(self, small_cloud, soft_gravity):
        """Lockstep and per-body walkers are the same traversal."""
        pool = bh_tree(small_cloud)
        a = octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                 soft_gravity, theta=0.5)
        b = octree_accelerations_scalar(pool, small_cloud.x, small_cloud.m,
                                        soft_gravity, theta=0.5)
        assert np.allclose(a, b, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("theta", [0.2, 0.5, 0.8])
    def test_approximation_error_bounded(self, small_cloud, soft_gravity, theta):
        pool = bh_tree(small_cloud)
        acc = octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                   soft_gravity, theta=theta)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        rel = np.abs(acc - ref).max() / np.abs(ref).max()
        assert rel < 0.12 * theta + 1e-9

    def test_error_monotone_in_theta(self, small_cloud, soft_gravity):
        """Larger opening angle -> coarser approximation (on average)."""
        pool = bh_tree(small_cloud)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        errs = []
        for theta in (0.1, 0.4, 0.9):
            acc = octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                       soft_gravity, theta=theta)
            errs.append(np.sqrt(((acc - ref) ** 2).sum()))
        assert errs[0] <= errs[1] <= errs[2]

    def test_work_decreases_with_theta(self, small_cloud, soft_gravity):
        steps = []
        for theta in (0.0, 0.5, 1.0):
            pool = bh_tree(small_cloud)
            ctx = ExecutionContext()
            octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                 soft_gravity, theta=theta, ctx=ctx)
            steps.append(ctx.counters.traversal_steps)
        assert steps[0] > steps[1] > steps[2]

    def test_zero_softening_finite(self, small_cloud):
        pool = bh_tree(small_cloud)
        acc = octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                   GravityParams(), theta=0.5)
        assert np.all(np.isfinite(acc))

    def test_bucket_leaves_exact(self):
        """Coincident bodies (bucket leaf) interact exactly, excluding
        self-interaction."""
        x = np.vstack([np.full((3, 3), 0.25), [[0.9, 0.9, 0.9]]])
        m = np.array([1.0, 2.0, 3.0, 4.0])
        params = GravityParams(softening=1e-2)
        pool = build_octree_vectorized(x, bits=3)
        compute_multipoles_vectorized(pool, x, m)
        acc = octree_accelerations(pool, x, m, params, theta=0.0)
        ref = pairwise_accelerations(x, m, params)
        assert np.allclose(acc, ref, rtol=1e-10)

    def test_two_bodies_newton_third_law(self):
        x = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        m = np.array([2.0, 3.0])
        pool = build_octree_vectorized(x)
        compute_multipoles_vectorized(pool, x, m)
        acc = octree_accelerations(pool, x, m, GravityParams(), theta=0.5)
        # F01 = -F10  =>  m0*a0 = -m1*a1
        assert np.allclose(m[0] * acc[0], -m[1] * acc[1], rtol=1e-12)
        assert acc[0, 0] == pytest.approx(3.0)   # G m1 / r^2
        assert acc[1, 0] == pytest.approx(-2.0)

    def test_empty_system(self):
        pool = build_octree_vectorized(np.zeros((0, 3)))
        compute_multipoles_vectorized(pool, np.zeros((0, 3)), np.zeros(0))
        acc = octree_accelerations(pool, np.zeros((0, 3)), np.zeros(0))
        assert acc.shape == (0, 3)

    def test_requires_multipoles(self, small_cloud):
        pool = build_octree_vectorized(small_cloud.x)
        with pytest.raises(ValueError):
            octree_accelerations(pool, small_cloud.x, small_cloud.m)

    def test_2d(self, cloud_2d, soft_gravity):
        pool = build_octree_vectorized(cloud_2d.x, bits=10)
        compute_multipoles_vectorized(pool, cloud_2d.x, cloud_2d.m)
        acc = octree_accelerations(pool, cloud_2d.x, cloud_2d.m,
                                   soft_gravity, theta=0.0)
        ref = pairwise_accelerations(cloud_2d.x, cloud_2d.m, soft_gravity)
        assert np.allclose(acc, ref, rtol=1e-9)


class TestAccounting:
    def test_traversal_stats(self, small_cloud, soft_gravity):
        pool = bh_tree(small_cloud)
        ctx = ExecutionContext()
        octree_accelerations(pool, small_cloud.x, small_cloud.m,
                             soft_gravity, theta=0.5, ctx=ctx, simt_width=8)
        c = ctx.counters
        assert c.traversal_steps > 0
        assert c.traversal_steps_max >= c.traversal_steps / small_cloud.n
        assert c.warp_traversal_steps >= c.traversal_steps  # divergence >= 1
        assert c.flops > 0 and c.special_flops > 0
        assert c.bytes_irregular > 0

    def test_no_divergence_when_width_one(self, small_cloud, soft_gravity):
        pool = bh_tree(small_cloud)
        ctx = ExecutionContext()
        octree_accelerations(pool, small_cloud.x, small_cloud.m,
                             soft_gravity, theta=0.5, ctx=ctx, simt_width=1)
        c = ctx.counters
        assert c.warp_traversal_steps == c.traversal_steps
