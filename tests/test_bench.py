"""Tests for the benchmark harness: extrapolation, measurement,
projection, reporting."""

import numpy as np
import pytest

from repro.bench.extrapolate import extrapolate_counters, fit_power_law
from repro.bench.report import format_table
from repro.bench.runner import MeasuredRun, measure_pipeline, project_throughput
from repro.core.config import SimulationConfig
from repro.machine.catalog import get_device
from repro.machine.counters import Counters, StepCounters
from repro.physics.gravity import GravityParams
from repro.workloads import uniform_cube


class TestPowerLaw:
    def test_exact_linear(self):
        ns = np.array([100, 200, 400])
        a, b = fit_power_law(ns, 3.0 * ns)
        assert a == pytest.approx(3.0, rel=1e-9)
        assert b == pytest.approx(1.0, rel=1e-9)

    def test_exact_quadratic(self):
        ns = np.array([10, 100, 1000])
        a, b = fit_power_law(ns, 0.5 * ns.astype(float) ** 2)
        assert b == pytest.approx(2.0, rel=1e-9)

    def test_nlogn_locally_power_law(self):
        """N log N fits a local power law with exponent slightly > 1 and
        extrapolates a 10x size step within a few percent."""
        ns = np.array([4000, 8000, 16000], dtype=float)
        ys = ns * np.log2(ns)
        a, b = fit_power_law(ns, ys)
        assert 1.0 < b < 1.15
        pred = a * 160000.0**b
        true = 160000 * np.log2(160000)
        assert pred == pytest.approx(true, rel=0.05)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0]), np.array([0.0, 1.0]))


class TestExtrapolateCounters:
    def make(self, n, exponent=1.0):
        s = StepCounters()
        s.step("force").add(flops=2.0 * n**exponent, traversal_steps=float(n))
        s.step("sort").add(sort_comparisons=n * np.log2(n))
        return s

    def test_extrapolates_per_field(self):
        sizes = [1000, 2000, 4000]
        runs = [self.make(n, 2.0) for n in sizes]
        out = extrapolate_counters(sizes, runs, 16000)
        assert out.step("force").flops == pytest.approx(2.0 * 16000**2, rel=1e-6)
        assert out.step("force").traversal_steps == pytest.approx(16000, rel=1e-6)

    def test_zero_fields_stay_zero(self):
        sizes = [100, 200]
        runs = [self.make(n) for n in sizes]
        out = extrapolate_counters(sizes, runs, 1000)
        assert out.step("force").atomic_ops == 0.0

    def test_step_set_union(self):
        a = StepCounters()
        a.step("x").add(flops=1)
        b = StepCounters()
        b.step("x").add(flops=2)
        b.step("y").add(flops=4)
        out = extrapolate_counters([10, 20], [a, b], 40)
        assert "y" in out.steps

    def test_requires_two_sizes(self):
        with pytest.raises(ValueError):
            extrapolate_counters([10], [self.make(10)], 100)


class TestMeasurePipeline:
    CFG = SimulationConfig(theta=0.5, gravity=GravityParams(softening=0.05))

    def test_direct_execution(self):
        run = measure_pipeline(
            lambda n: uniform_cube(n, seed=0), "bvh", 500, config=self.CFG
        )
        assert run.measured_at == 500
        assert run.counters.step("force").traversal_steps > 0
        assert run.wall_seconds > 0

    def test_ladder_extrapolation(self):
        run = measure_pipeline(
            lambda n: uniform_cube(n, seed=0), "bvh", 50_000,
            config=self.CFG, max_direct=2_000,
        )
        assert run.measured_at < 50_000
        assert run.n == 50_000
        assert run.meta["ladder"][-1] <= 2000
        # superlinear totals: more work than the largest measured size
        assert (run.counters.step("force").traversal_steps
                > 25 * 2000)  # ~linear-plus in N

    def test_extrapolation_consistent_with_direct(self):
        """Extrapolated counters at a directly-measurable size are close
        to the directly measured ones (validates the whole scheme)."""
        mk = lambda n: uniform_cube(n, seed=0)
        direct = measure_pipeline(mk, "bvh", 8000, config=self.CFG)
        extrap = measure_pipeline(mk, "bvh", 8000, config=self.CFG, max_direct=2000)
        d = direct.counters.step("force").traversal_steps
        e = extrap.counters.step("force").traversal_steps
        assert e == pytest.approx(d, rel=0.25)


class TestProjection:
    def run_for(self, alg="bvh", n=1000):
        return measure_pipeline(
            lambda k: uniform_cube(k, seed=0), alg, n,
            config=TestMeasurePipeline.CFG,
        )

    def test_throughput_positive(self):
        run = self.run_for()
        thr = project_throughput(run, get_device("h100"))
        assert thr is not None and thr > 0

    def test_octree_unsupported_on_amd(self):
        run = self.run_for("octree")
        assert project_throughput(run, get_device("mi300x")) is None
        assert project_throughput(run, get_device("h100")) is not None

    def test_sequential_slower(self):
        run = self.run_for()
        d = get_device("genoa")
        assert project_throughput(run, d, sequential=True) < project_throughput(run, d)

    def test_faster_device_higher_throughput(self):
        run = self.run_for()
        assert (project_throughput(run, get_device("gh200"))
                > project_throughput(run, get_device("v100")))


class TestReport:
    def test_format_basic(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": None}], title="T")
        assert "T" in out and "n/a" in out and "10" in out

    def test_column_order_stable(self):
        out = format_table([{"z": 1, "a": 2}])
        header = out.splitlines()[0]
        assert header.index("z") < header.index("a")

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_scientific_formatting(self):
        out = format_table([{"x": 1.23456e9}])
        assert "1.235e+09" in out
