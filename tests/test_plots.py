"""Tests for the ASCII figure rendering."""

import pytest

from repro.bench.plots import grouped_bars, render_figure


ROWS = [
    {"device": "NV H100-80", "algorithm": "octree", "bodies_per_s": 1.5e7},
    {"device": "NV H100-80", "algorithm": "bvh", "bodies_per_s": 1.0e7},
    {"device": "AMD MI300X", "algorithm": "octree", "bodies_per_s": None},
    {"device": "AMD MI300X", "algorithm": "bvh", "bodies_per_s": 1.2e7},
]


class TestGroupedBars:
    def test_groups_and_bars(self):
        out = grouped_bars(ROWS, title="t")
        assert "NV H100-80" in out and "AMD MI300X" in out
        assert "(not supported)" in out     # the paper's missing bars
        assert "15.00M" in out

    def test_log_scale_ordering(self):
        out = grouped_bars(ROWS)
        lines = [l for l in out.splitlines() if "|" in l and "=" in l]
        # larger values get longer bars
        bar_len = {l.split("|")[0].strip(): l.count("=") for l in lines}
        assert bar_len["octree"] >= bar_len["bvh"]

    def test_empty(self):
        assert "(no data)" in grouped_bars([{"device": "x", "algorithm": "y",
                                             "bodies_per_s": None}])

    def test_value_formatting(self):
        out = grouped_bars([{"device": "d", "algorithm": "a", "bodies_per_s": 950.0}])
        assert "950" in out


class TestRenderFigure:
    def test_fig6_renders(self):
        assert "throughput" in render_figure("fig6", ROWS)

    def test_fig8_tabular_only(self):
        assert render_figure("fig8", []) is None

    def test_fig5_pairs_seq_par(self):
        rows = [{"device": "cpu", "algorithm": "octree",
                 "par_bodies_per_s": 2e6, "seq_bodies_per_s": 1e5}]
        out = render_figure("fig5", rows)
        assert "(seq)" in out and "(par)" in out

    def test_fig9_flattens_toolchains(self):
        rows = [{"device": "gh200", "algorithm": "bvh", "n": 10000,
                 "nvcpp_bodies_per_s": 2e7, "acpp_bodies_per_s": 1.8e7}]
        out = render_figure("fig9", rows)
        assert "nvcpp" in out and "acpp" in out and "N = 10000" in out
