"""Tests for the viz helpers and the execution context."""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.catalog import get_device
from repro.stdpar.context import ExecutionContext, default_context
from repro.stdpar.scheduler import SchedulerMode
from repro.viz import density_map, scatter, time_bars


class TestDensityMap:
    def test_shape(self, rng):
        out = density_map(rng.random((500, 3)), width=40, height=10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(l) == 40 for l in lines)

    def test_dense_region_darker(self):
        x = np.vstack([
            np.full((500, 2), 0.1) + 1e-3 * np.random.default_rng(0).standard_normal((500, 2)),
            np.array([[1.0, 1.0]]),
        ])
        out = density_map(x, width=20, height=10)
        assert "@" in out  # the dense clump saturates the ramp

    def test_empty(self):
        assert density_map(np.zeros((0, 3))) == "(no points)"

    def test_axes_selection(self, rng):
        x = rng.random((100, 3))
        assert density_map(x, axes=(0, 2)) != density_map(x, axes=(0, 1))


class TestScatter:
    def test_labels_use_glyphs(self, rng):
        y = rng.standard_normal((60, 2))
        labels = np.repeat([0, 1, 2], 20)
        out = scatter(y, labels)
        assert "a" in out and "b" in out and "c" in out

    def test_unlabeled(self, rng):
        out = scatter(rng.standard_normal((10, 2)))
        assert "a" in out

    def test_empty(self):
        assert scatter(np.zeros((0, 2))) == "(no points)"


class TestTimeBars:
    def test_renders_shares(self):
        out = time_bars({"force": 3.0, "sort": 1.0})
        assert "force" in out and "sort" in out
        assert "75.0%" in out and "25.0%" in out

    def test_longest_first(self):
        out = time_bars({"a": 1.0, "b": 9.0})
        assert out.index("b") < out.index("a")

    def test_empty(self):
        assert time_bars({}) == "(no steps)"


class TestExecutionContext:
    def test_default_targets_host(self):
        ctx = default_context()
        assert ctx.device.key == "host"
        assert ctx.backend == "vectorized"

    def test_invalid_backend(self):
        with pytest.raises(ConfigurationError):
            ExecutionContext(backend="cuda")

    def test_invalid_violation_mode(self):
        with pytest.raises(ConfigurationError):
            ExecutionContext(on_progress_violation="ignore")

    def test_toolchain_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionContext(device=get_device("h100"), toolchain="gcc")
        ctx = ExecutionContext(device=get_device("h100"), toolchain="acpp")
        assert ctx.toolchain == "acpp"

    def test_default_toolchain_from_device(self):
        ctx = ExecutionContext(device=get_device("genoa"))
        assert ctx.toolchain == "gcc"

    def test_step_counters_switch(self):
        ctx = ExecutionContext()
        with ctx.step("build_tree"):
            ctx.counters.add(flops=5)
        with ctx.step("force"):
            ctx.counters.add(flops=7)
        assert ctx.step_counters.steps["build_tree"].flops == 5
        assert ctx.step_counters.steps["force"].flops == 7

    def test_step_nesting_restores(self):
        ctx = ExecutionContext()
        with ctx.step("outer"):
            with ctx.step("inner"):
                ctx.counters.add(flops=1)
            ctx.counters.add(flops=2)
        assert ctx.step_counters.steps["inner"].flops == 1
        assert ctx.step_counters.steps["outer"].flops == 2

    def test_step_seconds_accumulate(self):
        ctx = ExecutionContext()
        for _ in range(2):
            with ctx.step("force"):
                time.sleep(0.01)
        assert ctx.step_seconds["force"] >= 0.02

    def test_reset_accounting(self):
        ctx = ExecutionContext()
        with ctx.step("force"):
            ctx.counters.add(flops=1)
        ctx.reset_accounting()
        assert ctx.step_counters.steps == {}
        assert ctx.step_seconds == {}

    def test_scheduler_mode_by_device(self):
        assert ExecutionContext(device=get_device("genoa")).scheduler_mode() \
            == SchedulerMode.FAIR
        assert ExecutionContext(device=get_device("h100")).scheduler_mode() \
            == SchedulerMode.FAIR
        assert ExecutionContext(device=get_device("mi300x")).scheduler_mode() \
            == SchedulerMode.LOCKSTEP

    def test_warp_width_defaults_to_device(self):
        assert ExecutionContext(device=get_device("mi300x")).warp_width == 64
        assert ExecutionContext(device=get_device("h100")).warp_width == 32

    def test_machine_lazy_attr_error(self):
        import repro.machine as machine

        with pytest.raises(AttributeError):
            machine.no_such_symbol
