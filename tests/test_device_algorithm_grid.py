"""The full (device x algorithm) availability-and-projection grid.

One measured pipeline per algorithm, projected onto every catalog
device: supported combinations must yield finite positive throughput,
unsupported ones must be refused — the complete matrix behind the
paper's Figures 5-7.
"""

import numpy as np
import pytest

from repro.bench import measure_pipeline, project_throughput
from repro.core.algorithms import ALGORITHMS, get_algorithm
from repro.core.config import SimulationConfig
from repro.machine import list_devices
from repro.physics.gravity import GravityParams
from repro.workloads import uniform_cube

CFG = SimulationConfig(theta=0.5, gravity=GravityParams(softening=0.05))


@pytest.fixture(scope="module")
def runs():
    mk = lambda n: uniform_cube(n, seed=0)
    return {
        alg: measure_pipeline(mk, alg, 1500, config=CFG)
        for alg in ALGORITHMS
    }


DEVICES = list_devices(include_host=False)


@pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.key)
@pytest.mark.parametrize("alg", sorted(ALGORITHMS))
def test_projection_matrix(runs, device, alg):
    thr = project_throughput(runs[alg], device)
    supported = device.progress.satisfies(get_algorithm(alg).required_progress)
    if supported:
        assert thr is not None and np.isfinite(thr) and thr > 0
        seq = project_throughput(runs[alg], device, sequential=True)
        assert seq is not None and seq > 0
        # At this tiny size (N=1500, below the paper's smallest 1e4),
        # parallel wins only for the synchronization-free algorithms;
        # contended atomics / the two-stage serial section make one
        # core competitive for the others — itself a meaningful check.
        if alg in ("all-pairs", "bvh"):
            assert seq < thr
    else:
        assert thr is None


@pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.key)
def test_every_device_runs_something(runs, device):
    """No device in the catalog is useless: at least BVH and All-Pairs
    run everywhere (they only need weakly parallel progress)."""
    assert project_throughput(runs["bvh"], device) is not None
    assert project_throughput(runs["all-pairs"], device) is not None


def test_toolchain_projection_defined_everywhere(runs):
    """Every device projects under each of its toolchains."""
    for device in DEVICES:
        for tc in device.toolchains:
            thr = project_throughput(runs["bvh"], device, toolchain=tc)
            assert thr is not None and thr > 0
