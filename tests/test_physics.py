"""Tests for the physics substrate: bodies, gravity, integrator,
diagnostics, accuracy metrics."""

import numpy as np
import pytest

from repro.physics.accuracy import l2_error, max_relative_error, relative_l2_error
from repro.physics.bodies import BodySystem
from repro.physics.diagnostics import (
    angular_momentum,
    center_of_mass,
    energy_report,
    kinetic_energy,
    momentum,
    total_energy,
)
from repro.physics.gravity import GravityParams, pairwise_accelerations, point_mass_accel, potential_energy
from repro.physics.integrator import VerletIntegrator, drift, kick


class TestBodySystem:
    def test_construction_and_props(self, small_cloud):
        assert small_cloud.n == 200
        assert small_cloud.dim == 3
        assert small_cloud.total_mass == pytest.approx(small_cloud.m.sum())
        assert len(small_cloud) == 200

    def test_copy_is_deep(self, small_cloud):
        c = small_cloud.copy()
        c.x += 1.0
        assert not np.allclose(c.x, small_cloud.x)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BodySystem(np.zeros((3, 3)), np.zeros((4, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            BodySystem(np.zeros((3, 3)), np.zeros((3, 3)), np.zeros(4))
        with pytest.raises(ValueError):
            BodySystem(np.zeros((3, 4)), np.zeros((3, 4)), np.zeros(3))

    def test_negative_mass_rejected(self):
        with pytest.raises(ValueError):
            BodySystem(np.zeros((2, 3)), np.zeros((2, 3)), np.array([1.0, -1.0]))

    def test_nonfinite_rejected(self):
        x = np.zeros((2, 3))
        x[0, 0] = np.nan
        with pytest.raises(ValueError):
            BodySystem(x, np.zeros((2, 3)), np.ones(2))

    def test_permutation(self, small_cloud):
        perm = np.arange(small_cloud.n)[::-1].copy()
        p = small_cloud.permuted(perm)
        assert np.array_equal(p.x, small_cloud.x[::-1])
        q = small_cloud.copy()
        q.apply_permutation(perm)
        assert np.array_equal(q.x, p.x)

    def test_from_arrays_defaults(self):
        s = BodySystem.from_arrays(np.random.default_rng(0).random((5, 3)))
        assert np.array_equal(s.m, np.ones(5))
        assert np.array_equal(s.v, np.zeros((5, 3)))

    def test_zeros(self):
        s = BodySystem.zeros(4, dim=2)
        assert s.n == 4 and s.dim == 2


class TestGravity:
    def test_two_body_analytic(self):
        x = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        m = np.array([4.0, 1.0])
        acc = pairwise_accelerations(x, m, GravityParams(G=2.0))
        assert acc[0, 0] == pytest.approx(2.0 * 1.0 / 4.0)
        assert acc[1, 0] == pytest.approx(-2.0 * 4.0 / 4.0)

    def test_softening_caps_close_forces(self):
        x = np.array([[0.0, 0, 0], [1e-9, 0, 0]])
        m = np.ones(2)
        soft = pairwise_accelerations(x, m, GravityParams(softening=0.1))
        assert np.abs(soft).max() < 1e3

    def test_coincident_bodies_no_nan(self):
        x = np.zeros((2, 3))
        acc = pairwise_accelerations(x, np.ones(2), GravityParams())
        assert np.all(np.isfinite(acc)) and np.all(acc == 0)

    def test_targets_subset(self, small_cloud, soft_gravity):
        full = pairwise_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        sub = pairwise_accelerations(
            small_cloud.x, small_cloud.m, soft_gravity, targets=np.array([3, 7])
        )
        assert np.allclose(sub, full[[3, 7]])

    def test_point_mass_accel_rows(self):
        xt = np.array([[0.0, 0, 0], [0.0, 0, 0]])
        xs = np.array([[1.0, 0, 0], [0.0, 0, 0]])  # second: zero distance
        ms = np.array([1.0, 1.0])
        acc = point_mass_accel(xt, xs, ms, GravityParams())
        assert acc[0, 0] == pytest.approx(1.0)
        assert np.all(acc[1] == 0.0)

    def test_potential_energy_pair(self):
        x = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        m = np.array([3.0, 5.0])
        assert potential_energy(x, m, GravityParams()) == pytest.approx(-7.5)

    def test_potential_tiling_invariant(self, small_cloud, soft_gravity):
        a = potential_energy(small_cloud.x, small_cloud.m, soft_gravity, tile=13)
        b = potential_energy(small_cloud.x, small_cloud.m, soft_gravity, tile=500)
        assert a == pytest.approx(b, rel=1e-12)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GravityParams(G=0.0)
        with pytest.raises(ValueError):
            GravityParams(softening=-1.0)


class TestIntegrator:
    def circular_orbit(self):
        """Two equal masses on a circular orbit about their barycentre."""
        m = np.array([1.0, 1.0])
        x = np.array([[-0.5, 0, 0], [0.5, 0, 0]])
        # v^2 = G m_total / (4 r_sep) for circular two-body
        v = np.sqrt(1.0 * 2.0 / 4.0 / 1.0) / np.sqrt(2)  # |v| = sqrt(GM/(2d))/..., solve numerically below
        # circular speed for each: a = G m / d^2 = v^2 / r  with r = d/2
        vc = np.sqrt(1.0 * 1.0 / 1.0 / 2.0)
        vel = np.array([[0, -vc, 0], [0, vc, 0]])
        return BodySystem(x, vel, m)

    def accel_fn(self, params=GravityParams()):
        return lambda s: pairwise_accelerations(s.x, s.m, params)

    def test_energy_conservation_long_run(self):
        s = self.circular_orbit()
        e0 = total_energy(s)
        integ = VerletIntegrator(s, self.accel_fn(), dt=1e-2)
        integ.step(2000)
        assert abs(total_energy(s) - e0) / abs(e0) < 1e-4

    def test_time_reversibility(self):
        s = self.circular_orbit()
        x0 = s.x.copy()
        integ = VerletIntegrator(s, self.accel_fn(), dt=1e-2)
        integ.step(500)
        integ.reverse()
        integ.step(500)
        assert np.allclose(s.x, x0, atol=1e-8)

    def test_symplectic_vs_euler_drift(self):
        """Verlet's energy error stays bounded where explicit Euler's
        grows — the reason the paper uses Störmer-Verlet."""
        s1 = self.circular_orbit()
        e0 = total_energy(s1)
        VerletIntegrator(s1, self.accel_fn(), dt=5e-2).step(400)
        verlet_err = abs(total_energy(s1) - e0)

        s2 = self.circular_orbit()
        dt = 5e-2
        for _ in range(400):
            a = self.accel_fn()(s2)
            s2.x += s2.v * dt
            s2.v += a * dt
        euler_err = abs(total_energy(s2) - e0)
        assert verlet_err < 0.1 * euler_err

    def test_momentum_exactly_conserved(self, small_cloud, soft_gravity):
        p0 = momentum(small_cloud)
        integ = VerletIntegrator(
            small_cloud, self.accel_fn(soft_gravity), dt=1e-3
        )
        integ.step(20)
        assert np.allclose(momentum(small_cloud), p0, atol=1e-10)

    def test_kick_drift_primitives(self):
        s = BodySystem(np.zeros((1, 3)), np.ones((1, 3)), np.ones(1))
        drift(s, 2.0)
        assert np.allclose(s.x, 2.0)
        kick(s, np.full((1, 3), 3.0), 0.5)
        assert np.allclose(s.v, 2.5)

    def test_invalid_dt(self, small_cloud):
        with pytest.raises(ValueError):
            VerletIntegrator(small_cloud, self.accel_fn(), dt=0.0)

    def test_steps_counted(self):
        s = self.circular_orbit()
        integ = VerletIntegrator(s, self.accel_fn(), dt=1e-2)
        integ.step(7)
        assert integ.steps_taken == 7


class TestDiagnostics:
    def test_kinetic_energy(self):
        s = BodySystem(np.zeros((2, 3)),
                       np.array([[1.0, 0, 0], [0, 2.0, 0]]),
                       np.array([2.0, 1.0]))
        assert kinetic_energy(s) == pytest.approx(0.5 * 2 * 1 + 0.5 * 1 * 4)

    def test_center_of_mass(self):
        s = BodySystem(np.array([[0.0, 0, 0], [1.0, 0, 0]]),
                       np.zeros((2, 3)), np.array([1.0, 3.0]))
        assert np.allclose(center_of_mass(s), [0.75, 0, 0])

    def test_angular_momentum_3d(self):
        s = BodySystem(np.array([[1.0, 0, 0]]),
                       np.array([[0.0, 2.0, 0]]), np.array([3.0]))
        assert np.allclose(angular_momentum(s), [0, 0, 6.0])

    def test_angular_momentum_2d(self):
        s = BodySystem(np.array([[1.0, 0.0]]),
                       np.array([[0.0, 2.0]]), np.array([3.0]))
        assert np.allclose(angular_momentum(s), [6.0])

    def test_energy_report_drift(self, small_cloud, soft_gravity):
        r = energy_report(small_cloud, soft_gravity)
        assert r.total == pytest.approx(r.kinetic + r.potential)
        assert r.drift_from(r) == 0.0


class TestAccuracy:
    def test_l2_zero_for_identical(self, small_cloud):
        assert l2_error(small_cloud.x, small_cloud.x) == 0.0

    def test_l2_known_value(self):
        a = np.zeros((4, 3))
        b = np.zeros((4, 3))
        b[:, 0] = 2.0
        assert l2_error(a, b) == pytest.approx(2.0)

    def test_relative_l2(self):
        ref = np.ones((10, 3))
        off = ref * 1.001
        assert relative_l2_error(off, ref) == pytest.approx(0.001, rel=1e-6)

    def test_max_relative(self):
        ref = np.ones((3, 3))
        a = ref.copy()
        a[1] *= 1.1
        assert max_relative_error(a, ref) == pytest.approx(0.1, rel=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            l2_error(np.zeros((2, 3)), np.zeros((3, 3)))
