"""Tests for AABB and the CALCULATEBOUNDINGBOX reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry.aabb import AABB, compute_bounding_box, cubify, quantize_to_grid


class TestAABB:
    def test_from_points_contains_all(self, rng):
        x = rng.standard_normal((100, 3))
        box = AABB.from_points(x)
        assert box.contains(x).all()

    def test_from_points_is_tight(self, rng):
        x = rng.random((50, 3))
        box = AABB.from_points(x)
        assert np.allclose(box.lo, x.min(axis=0))
        assert np.allclose(box.hi, x.max(axis=0))

    def test_empty_box(self):
        box = AABB.empty(3)
        assert box.is_empty
        assert box.longest_side == 0.0

    def test_empty_is_merge_identity(self, rng):
        x = rng.random((10, 2))
        box = AABB.from_points(x)
        assert box.merge(AABB.empty(2)) == box
        assert AABB.empty(2).merge(box) == box

    def test_merge_commutative(self, rng):
        a = AABB.from_points(rng.random((5, 3)))
        b = AABB.from_points(rng.random((5, 3)) + 2.0)
        assert a.merge(b) == b.merge(a)

    def test_merge_covers_both(self, rng):
        xa = rng.random((5, 3))
        xb = rng.random((5, 3)) + 3.0
        merged = AABB.from_points(xa).merge(AABB.from_points(xb))
        assert merged.contains(np.vstack((xa, xb))).all()

    def test_extent_and_center(self):
        box = AABB([0.0, 0.0], [2.0, 4.0])
        assert np.allclose(box.extent, [2.0, 4.0])
        assert np.allclose(box.center, [1.0, 2.0])
        assert box.longest_side == 4.0

    def test_single_point_box(self):
        box = AABB.from_points(np.array([[1.0, 2.0, 3.0]]))
        assert not box.is_empty
        assert box.longest_side == 0.0

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            AABB([0.0, 0.0], [1.0, 1.0, 1.0])

    def test_expanded_strictly_contains(self, rng):
        x = rng.random((20, 3))
        box = AABB.from_points(x).expanded()
        assert (x > box.lo).all() and (x < box.hi).all()

    def test_hash_and_eq(self):
        a = AABB([0.0], [1.0])
        b = AABB([0.0], [1.0])
        assert a == b and hash(a) == hash(b)
        assert a != AABB([0.0], [2.0])


class TestComputeBoundingBox:
    def test_matches_brute_force(self, rng):
        x = rng.standard_normal((333, 3)) * 5
        box = compute_bounding_box(x)
        assert np.array_equal(box.lo, x.min(axis=0))
        assert np.array_equal(box.hi, x.max(axis=0))

    def test_empty_input(self):
        box = compute_bounding_box(np.zeros((0, 3)))
        assert box.is_empty

    @given(
        st.integers(1, 60).flatmap(
            lambda n: st.sampled_from([2, 3]).flatmap(
                lambda d: hnp.arrays(
                    np.float64, (n, d), elements=st.floats(-1e6, 1e6)
                )
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_reduction_equals_sequential_fold(self, x):
        """The parallel reduction (min/max) equals any-order folding."""
        box = compute_bounding_box(x)
        acc = AABB.empty(x.shape[1])
        for row in x:
            acc = acc.merge(AABB(row, row))
        assert box == acc


class TestCubify:
    def test_cube_has_equal_sides(self, rng):
        box = AABB.from_points(rng.random((10, 3)) * [1.0, 5.0, 2.0])
        cube = cubify(box)
        assert np.allclose(cube.extent, cube.extent[0])

    def test_cube_contains_original(self, rng):
        x = rng.random((10, 3)) * [1.0, 5.0, 2.0]
        cube = cubify(AABB.from_points(x))
        assert cube.contains(x).all()

    def test_cube_of_empty_is_empty(self):
        assert cubify(AABB.empty(3)).is_empty

    def test_cube_preserves_center(self, rng):
        box = AABB.from_points(rng.random((10, 2)))
        assert np.allclose(cubify(box).center, box.center)


class TestQuantizeToGrid:
    def test_in_range(self, rng):
        x = rng.standard_normal((500, 3))
        box = compute_bounding_box(x)
        g = quantize_to_grid(x, box, bits=10)
        assert g.dtype == np.uint64
        assert (g < (1 << 10)).all()

    def test_boundary_points_clamped(self):
        x = np.array([[0.0, 0.0], [1.0, 1.0]])
        g = quantize_to_grid(x, compute_bounding_box(x), bits=4)
        assert (g < 16).all()

    def test_monotone_along_axis(self):
        x = np.stack((np.linspace(0, 1, 64), np.zeros(64)), axis=1)
        g = quantize_to_grid(x, compute_bounding_box(x), bits=6)
        assert (np.diff(g[:, 0].astype(np.int64)) >= 0).all()

    def test_identical_points_same_cell(self):
        x = np.ones((5, 3)) * 0.37
        x = np.vstack((x, [[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))
        g = quantize_to_grid(x, compute_bounding_box(x), bits=8)
        assert (g[:5] == g[0]).all()

    def test_invalid_bits(self, rng):
        x = rng.random((4, 3))
        with pytest.raises(ValueError):
            quantize_to_grid(x, compute_bounding_box(x), bits=0)

    def test_degenerate_box(self):
        """All points coincide: everything maps to a single valid cell."""
        x = np.full((7, 3), 0.5)
        g = quantize_to_grid(x, compute_bounding_box(x), bits=5)
        assert (g == g[0]).all()
        assert (g < 32).all()
