"""Tests for execution policies and forward-progress semantics."""

import pytest

from repro.stdpar.policy import ALL_POLICIES, get_policy, par, par_unseq, seq
from repro.stdpar.progress import ForwardProgress


class TestPolicies:
    def test_seq_properties(self):
        assert not seq.parallel and not seq.vectorized
        assert seq.allows_atomics

    def test_par_properties(self):
        assert par.parallel and not par.vectorized
        assert par.allows_atomics
        assert par.required_progress == ForwardProgress.PARALLEL

    def test_par_unseq_properties(self):
        assert par_unseq.parallel and par_unseq.vectorized
        assert not par_unseq.allows_atomics
        assert par_unseq.required_progress == ForwardProgress.WEAKLY_PARALLEL

    def test_get_policy(self):
        for p in ALL_POLICIES:
            assert get_policy(p.name) is p

    def test_get_policy_unknown(self):
        with pytest.raises(ValueError):
            get_policy("unsequenced")

    def test_policies_are_frozen(self):
        with pytest.raises(Exception):
            par.parallel = False


class TestForwardProgress:
    def test_ordering(self):
        assert (
            ForwardProgress.WEAKLY_PARALLEL
            < ForwardProgress.PARALLEL
            < ForwardProgress.CONCURRENT
        )

    def test_satisfies_reflexive(self):
        for fp in ForwardProgress:
            assert fp.satisfies(fp)

    def test_stronger_satisfies_weaker(self):
        assert ForwardProgress.CONCURRENT.satisfies(ForwardProgress.PARALLEL)
        assert ForwardProgress.PARALLEL.satisfies(ForwardProgress.WEAKLY_PARALLEL)

    def test_weaker_does_not_satisfy_stronger(self):
        assert not ForwardProgress.WEAKLY_PARALLEL.satisfies(ForwardProgress.PARALLEL)
        assert not ForwardProgress.PARALLEL.satisfies(ForwardProgress.CONCURRENT)

    def test_paper_device_classes(self):
        """CPUs and ITS GPUs can run par; non-ITS GPUs cannot."""
        cpu = ForwardProgress.CONCURRENT
        its_gpu = ForwardProgress.PARALLEL
        legacy_gpu = ForwardProgress.WEAKLY_PARALLEL
        assert cpu.satisfies(par.required_progress)
        assert its_gpu.satisfies(par.required_progress)
        assert not legacy_gpu.satisfies(par.required_progress)
        assert legacy_gpu.satisfies(par_unseq.required_progress)
