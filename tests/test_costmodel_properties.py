"""Property-based tests on the cost model: it must behave like a cost.

Monotonicity and scaling sanity: more counted work never predicts less
time; a uniformly better device never predicts more time; doubling all
additive work roughly doubles predicted time.  These hold for *every*
device/counter combination — exactly the kind of global invariant a
hand-built model can silently break during calibration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.catalog import DEVICES, get_device
from repro.machine.costmodel import CostModel, predict_time
from repro.machine.counters import Counters, StepCounters

DEVICE_KEYS = sorted(k for k in DEVICES if k != "host")

ADDITIVE_FIELDS = (
    "flops", "special_flops", "bytes_read", "bytes_written",
    "bytes_irregular", "atomic_ops", "sync_atomic_ops",
    "contended_atomic_ops", "sort_comparisons", "kernel_launches",
    "serial_node_ops",
)

counter_strategy = st.fixed_dictionaries({
    "flops": st.floats(0, 1e12),
    "bytes_read": st.floats(0, 1e11),
    "bytes_written": st.floats(0, 1e10),
    "atomic_ops": st.floats(0, 1e9),
    "sort_comparisons": st.floats(0, 1e9),
    "kernel_launches": st.floats(0, 100),
})


def _steps(kw) -> StepCounters:
    s = StepCounters()
    c = s.step("main")
    c.add(**kw)
    # keep derived invariants consistent
    c.special_flops = min(c.special_flops, c.flops)
    c.bytes_irregular = min(c.bytes_irregular, c.bytes_read)
    c.sync_atomic_ops = min(c.sync_atomic_ops, c.atomic_ops)
    return s


class TestMonotonicity:
    @given(
        st.sampled_from(DEVICE_KEYS),
        counter_strategy,
        st.sampled_from(ADDITIVE_FIELDS),
        st.floats(1.0, 1e8),
    )
    @settings(max_examples=150, deadline=None)
    def test_more_work_never_cheaper(self, key, base, field, extra):
        device = get_device(key)
        s0 = _steps(base)
        t0 = predict_time(device, s0)
        s1 = _steps(base)
        s1.step("main").add(**{field: extra})
        c = s1.step("main")
        # Restore the invariants real counters always satisfy.
        # bytes_irregular is a *classification* of bytes_read (tree
        # kernels add both together): growing it alone would merely
        # reclassify streaming traffic as cache-resident, which is
        # legitimately cheaper on devices with irr_frac > 1.
        if field == "bytes_irregular":
            c.add(bytes_read=extra)
        c.special_flops = min(c.special_flops, c.flops)
        c.sync_atomic_ops = min(c.sync_atomic_ops, c.atomic_ops)
        c.bytes_irregular = min(c.bytes_irregular, c.bytes_read)
        t1 = predict_time(device, s1)
        assert t1 >= t0 - 1e-15

    @given(st.sampled_from(DEVICE_KEYS), counter_strategy)
    @settings(max_examples=100, deadline=None)
    def test_time_nonnegative_and_finite(self, key, base):
        t = predict_time(get_device(key), _steps(base))
        assert np.isfinite(t) and t >= 0

    @given(st.sampled_from(DEVICE_KEYS), counter_strategy, st.floats(1.5, 8.0))
    @settings(max_examples=80, deadline=None)
    def test_scaling_roughly_linear(self, key, base, k):
        """Scaling every additive counter by k scales time by ~k (the
        NUMA threshold term makes it at-least-k in rare crossings)."""
        device = get_device(key)
        s0 = _steps(base)
        t0 = predict_time(device, s0)
        if t0 < 1e-12:
            return
        scaled = {f: v * k for f, v in base.items()}
        t1 = predict_time(device, _steps(scaled))
        assert t1 >= 0.99 * t0           # never cheaper
        assert t1 <= (k + 0.01) * t0 * 2.3  # bounded by k x NUMA penalty

    @given(counter_strategy)
    @settings(max_examples=60, deadline=None)
    def test_sequential_never_faster_than_parallel(self, base):
        for key in ("genoa", "h100"):
            device = get_device(key)
            s = _steps(base)
            par = predict_time(device, s)
            seq = predict_time(device, s, sequential=True)
            # Launch overhead exists only in parallel mode; skip cases
            # where it dominates the parallel estimate.
            launch = (s.step("main").kernel_launches
                      * device.toolchain_profile(device.default_toolchain)
                      .launch_overhead_us * 1e-6)
            if par <= 2.0 * launch + 1e-12:
                continue
            assert seq >= 0.5 * par

    def test_breakdown_sums_to_total(self):
        device = get_device("gh200")
        c = Counters(flops=1e10, bytes_read=1e9, bytes_irregular=5e8,
                     atomic_ops=1e6, sync_atomic_ops=1e5,
                     contended_atomic_ops=100, sort_comparisons=1e7,
                     kernel_launches=5, serial_node_ops=1e4)
        bd = CostModel(device).step_time(c)
        assert bd.total == pytest.approx(
            max(bd.compute, bd.memory) + bd.atomics + bd.sort
            + bd.launch + bd.serial
        )
