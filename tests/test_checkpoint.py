"""Checkpointing: full-config snapshots and bit-exact resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.io import (
    config_from_metadata,
    config_to_metadata,
    load_checkpoint,
    load_snapshot,
    save_checkpoint,
    save_snapshot,
)
from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision


def _sim(n=200, **cfg_kw) -> Simulation:
    s = galaxy_collision(n, seed=11)
    return Simulation(s, SimulationConfig(**cfg_kw))


class TestConfigMetadata:
    def test_round_trip_defaults(self):
        cfg = SimulationConfig()
        assert config_from_metadata(config_to_metadata(cfg)) == cfg

    def test_round_trip_nondefault(self):
        cfg = SimulationConfig(
            algorithm="bvh", theta=0.7, dt=5e-4,
            gravity=GravityParams(G=2.0, softening=0.01),
            multipole_order=2, tree_reuse_steps=4,
            traversal="grouped", group_size=64,
            ranks=4, decomposition="weighted", rebalance_steps=3,
            interconnect="ib-hdr", ranks_per_node=2,
            inter_interconnect="roce100",
        )
        assert config_from_metadata(config_to_metadata(cfg)) == cfg

    def test_metadata_is_json_safe(self):
        import json

        meta = config_to_metadata(SimulationConfig(algorithm="octree"))
        assert config_from_metadata(json.loads(json.dumps(meta))) == \
            SimulationConfig(algorithm="octree")

    def test_unknown_field_rejected(self):
        meta = config_to_metadata(SimulationConfig())
        meta["warp_drive"] = True
        with pytest.raises(ValueError, match="warp_drive"):
            config_from_metadata(meta)


class TestSnapshotConfig:
    def test_header_carries_config(self, tmp_path):
        sim = _sim(50, algorithm="bvh", theta=0.3)
        p = tmp_path / "snap.npz"
        save_snapshot(p, sim.system, time=1.5, config=sim.config)
        _, header = load_snapshot(p)
        assert header["time"] == 1.5
        assert config_from_metadata(header["config"]) == sim.config

    def test_plain_snapshot_has_no_config(self, tmp_path):
        sim = _sim(50)
        p = tmp_path / "snap.npz"
        save_snapshot(p, sim.system)
        _, header = load_snapshot(p)
        assert "config" not in header
        with pytest.raises(ValueError, match="no config"):
            load_checkpoint(p)


class TestResume:
    @pytest.mark.parametrize("cfg_kw", [
        dict(algorithm="octree"),
        dict(algorithm="bvh", traversal="grouped", group_size=16),
    ])
    def test_save_load_resume_bit_identical(self, tmp_path, cfg_kw):
        """run 3 -> checkpoint -> both paths run 3 more -> identical."""
        sim = _sim(150, **cfg_kw)
        sim.run(3)
        p = tmp_path / "ckpt.npz"
        save_checkpoint(p, sim)

        resumed = load_checkpoint(p)
        assert resumed.config == sim.config
        assert resumed.time == pytest.approx(sim.time)

        sim.run(3)
        resumed.run(3)
        assert np.array_equal(resumed.system.x, sim.system.x)
        assert np.array_equal(resumed.system.v, sim.system.v)
        assert np.array_equal(resumed.system.m, sim.system.m)
        assert resumed.time == pytest.approx(sim.time)

    def test_distributed_resume_deterministic(self, tmp_path):
        """Two loads of one distributed checkpoint agree bitwise.

        (Since the runtime state rides in the header, rebuild-mode
        resume is in fact bit-exact against the uninterrupted run too —
        tests/test_checkpoint_midepoch.py asserts that directly.)"""
        sim = _sim(150, algorithm="bvh", ranks=2)
        sim.run(3)
        p = tmp_path / "ckpt.npz"
        save_checkpoint(p, sim)

        res_a = load_checkpoint(p)
        res_b = load_checkpoint(p)
        res_a.run(3)
        res_b.run(3)
        assert np.array_equal(res_a.system.x, res_b.system.x)
        assert np.array_equal(res_a.system.v, res_b.system.v)

        sim.run(3)
        from repro.physics.accuracy import relative_l2_error

        assert relative_l2_error(res_a.system.x, sim.system.x) < 1e-3

    def test_resume_continues_clock(self, tmp_path):
        sim = _sim(80, dt=2e-3)
        sim.run(5)
        p = tmp_path / "ckpt.npz"
        save_checkpoint(p, sim)
        resumed = load_checkpoint(p)
        assert resumed.time == pytest.approx(5 * 2e-3)
        resumed.run(2)
        assert resumed.time == pytest.approx(7 * 2e-3)
