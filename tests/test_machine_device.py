"""Tests for the device model and the Table I catalog."""

import pytest

from repro.machine.catalog import DEVICES, HOST, get_device, list_devices
from repro.machine.device import Device, DeviceKind
from repro.stdpar.progress import ForwardProgress

#: Table I rows: (key, theoretical, measured) bandwidths.
TABLE_I = [
    ("mi100", 1200, 1013),
    ("mi250", 1600, 1375),
    ("mi300x", 5300, 4006),
    ("genoa", 460, 287),
    ("graviton4", 530, 413),
    ("pvc1550", 3276, 2054),
    ("spr", 307, 197),
    ("grace", 500, 448),
    ("v100", 900, 845),
    ("a100", 2000, 1768),
    ("h100", 3300, 3073),
    ("gh200", 4000, 3683),
]


class TestCatalog:
    def test_all_table1_rows_present(self):
        for key, th, exp in TABLE_I:
            d = get_device(key)
            assert d.theoretical_bw_gbs == th
            assert d.measured_bw_gbs == exp

    def test_lookup_by_name(self):
        assert get_device("NV H100-80").key == "h100"

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("tpu-v9")

    def test_list_devices_excludes_host(self):
        assert all(d.key != "host" for d in list_devices())

    def test_list_devices_by_kind(self):
        cpus = list_devices(DeviceKind.CPU)
        gpus = list_devices(DeviceKind.GPU)
        assert {d.key for d in cpus} == {"genoa", "graviton4", "spr", "grace"}
        # Table I's 8 GPU rows plus the PVC 1-tile configuration (the
        # paper reports "the best result of either one or two tiles").
        assert len(gpus) == 9
        assert len(cpus) + len(gpus) == len(TABLE_I) + 1

    def test_host_present(self):
        assert DEVICES["host"] is HOST


class TestProgressSemantics:
    def test_cpus_concurrent(self):
        for d in list_devices(DeviceKind.CPU):
            assert d.progress == ForwardProgress.CONCURRENT
            assert not d.has_its  # ITS is a GPU notion

    def test_nvidia_gpus_have_its(self):
        """All NVIDIA architectures since Volta provide ITS [10], [11]."""
        for key in ("v100", "a100", "h100", "gh200"):
            d = get_device(key)
            assert d.has_its
            assert d.progress == ForwardProgress.PARALLEL

    def test_amd_intel_gpus_lack_its(self):
        """Refs [24], [25]: only weakly parallel forward progress."""
        for key in ("mi100", "mi250", "mi300x", "pvc1550"):
            d = get_device(key)
            assert not d.has_its
            assert d.progress == ForwardProgress.WEAKLY_PARALLEL

    def test_ampere_partitioned_l2(self):
        assert get_device("a100").l2_partitioned
        assert not get_device("h100").l2_partitioned

    def test_pvc_numa_configurations(self):
        """Section V-B GPU NUMA effects: two PVC configurations, the
        2-tile one carrying the cross-tile traversal penalty."""
        two = get_device("pvc1550")
        one = get_device("pvc1550-1t")
        assert two.numa_threshold_bytes is not None and two.numa_penalty > 1
        assert one.numa_threshold_bytes is None
        assert two.measured_bw_gbs > one.measured_bw_gbs

    def test_a100_sync_atomics_slower_than_hopper(self):
        """The paper's explanation of the Fig. 6/7 inversion."""
        assert get_device("a100").atomic_cas_ns > 2 * get_device("h100").atomic_cas_ns


class TestToolchains:
    def test_each_device_has_two_toolchains(self):
        """Section V-A: 'Each experiment is conducted using two
        toolchains per system' (Grace lists extras)."""
        for key, *_ in TABLE_I:
            assert len(get_device(key).toolchains) >= 2

    def test_profile_lookup(self):
        d = get_device("gh200")
        p = d.toolchain_profile("acpp")
        assert p.name == "acpp"
        assert 0 < p.sort_efficiency <= 1

    def test_unknown_toolchain(self):
        with pytest.raises(KeyError):
            get_device("h100").toolchain_profile("msvc")

    def test_default_toolchain_is_first(self):
        d = get_device("genoa")
        assert d.default_toolchain == d.toolchains[0]

    def test_measured_below_theoretical(self):
        for key, *_ in TABLE_I:
            d = get_device(key)
            assert d.measured_bw_gbs < d.theoretical_bw_gbs

    def test_peak_seq_gflops(self):
        d = get_device("genoa")
        assert d.peak_seq_gflops == pytest.approx(d.peak_fp64_gflops / d.cores)
