"""Tests for the parallel algorithms layer (for_each / transform_reduce /
sort) and its policy/device validation."""

import numpy as np
import pytest

from repro.errors import ForwardProgressError, VectorizationUnsafeError
from repro.machine.catalog import get_device
from repro.stdpar.algorithms import for_each, sort_by_key, transform_reduce
from repro.stdpar.atomics import AtomicArray, relaxed
from repro.stdpar.context import ExecutionContext
from repro.stdpar.kernel import Kernel, kernel_from_functions
from repro.stdpar.policy import par, par_unseq, seq
from repro.stdpar.scheduler import FetchAdd


def make_square_kernel(out):
    def batch(idx):
        out[idx] = idx * idx

    def scalar(i):
        out[i] = i * i
        return
        yield  # pragma: no cover

    return kernel_from_functions("square", scalar=scalar, batch=batch)


class TestForEach:
    @pytest.mark.parametrize("policy", [seq, par, par_unseq])
    def test_square_all_policies(self, policy, ctx):
        out = np.zeros(50, dtype=np.int64)
        for_each(policy, 50, make_square_kernel(out), ctx)
        assert np.array_equal(out, np.arange(50) ** 2)

    def test_scalar_only_kernel_under_par(self, ref_ctx):
        out = np.zeros(20, dtype=np.int64)

        def scalar(i):
            out[i] = i + 1
            return
            yield  # pragma: no cover

        for_each(par, 20, kernel_from_functions("inc", scalar=scalar), ref_ctx)
        assert np.array_equal(out, np.arange(1, 21))

    def test_atomics_under_par_unseq_rejected(self, ctx):
        kernel = kernel_from_functions(
            "atomic", batch=lambda idx: None, uses_atomics=True
        )
        with pytest.raises(VectorizationUnsafeError):
            for_each(par_unseq, 10, kernel, ctx)

    def test_atomics_under_par_allowed(self, ref_ctx):
        acc = AtomicArray(np.zeros(1, dtype=np.int64), ref_ctx.counters)

        def scalar(i):
            yield FetchAdd(acc, 0, 1, relaxed)

        kernel = kernel_from_functions("count", scalar=scalar, uses_atomics=True)
        for_each(par, 25, kernel, ref_ctx)
        assert acc.data[0] == 25

    def test_par_on_non_its_gpu_raises(self):
        ctx = ExecutionContext(device=get_device("mi300x"))
        kernel = kernel_from_functions("k", batch=lambda idx: None, uses_atomics=True)
        with pytest.raises(ForwardProgressError):
            for_each(par, 10, kernel, ctx)

    def test_par_unseq_on_non_its_gpu_ok(self):
        ctx = ExecutionContext(device=get_device("mi300x"))
        out = np.zeros(10)
        kernel = kernel_from_functions("k", batch=lambda idx: out.__setitem__(idx, 1.0))
        for_each(par_unseq, 10, kernel, ctx)
        assert out.sum() == 10

    def test_unproven_atomic_batch_uses_scalar(self, ctx):
        """A kernel with atomics and a batch path that is NOT declared
        equivalent must take the scalar path under par."""
        hits = {"batch": 0, "scalar": 0}

        def batch(idx):
            hits["batch"] += 1

        def scalar(i):
            hits["scalar"] += 1
            return
            yield  # pragma: no cover

        kernel = kernel_from_functions(
            "k", scalar=scalar, batch=batch,
            uses_atomics=True, batch_equivalent_to_atomics=False,
        )
        for_each(par, 5, kernel, ctx)
        assert hits == {"batch": 0, "scalar": 5}

    def test_equivalent_atomic_batch_used(self, ctx):
        hits = {"batch": 0}
        kernel = kernel_from_functions(
            "k", batch=lambda idx: hits.__setitem__("batch", hits["batch"] + 1),
            uses_atomics=True, batch_equivalent_to_atomics=True,
        )
        for_each(par, 5, kernel, ctx)
        assert hits["batch"] == 1

    def test_empty_range(self, ctx):
        for_each(par, 0, kernel_from_functions("k", batch=lambda idx: 1 / 0), ctx)

    def test_iterations_counted(self, ctx):
        for_each(par_unseq, 123, kernel_from_functions("k", batch=lambda i: None), ctx)
        assert ctx.counters.loop_iterations == 123
        assert ctx.counters.kernel_launches == 1

    def test_explicit_items(self, ctx):
        got = []
        kernel = kernel_from_functions("k", batch=lambda items: got.extend(items))
        for_each(par_unseq, np.array([5, 7, 9]), kernel, ctx)
        assert got == [5, 7, 9]


class TestKernelValidation:
    def test_kernel_needs_an_implementation(self):
        with pytest.raises(ValueError):
            Kernel(name="empty")

    def test_kernel_flags(self):
        k = kernel_from_functions("k", batch=lambda i: None)
        assert k.has_batch and not k.has_scalar


class TestTransformReduce:
    def test_sequential_fold(self, ctx):
        total = transform_reduce(
            seq, 10, 0, lambda a, b: a + b, lambda i: i * 2, ctx
        )
        assert total == 90

    def test_batch_path(self, ctx):
        total = transform_reduce(
            par_unseq, 10, 0, lambda a, b: a + b, lambda i: i * 2, ctx,
            batch=lambda idx: int((idx * 2).sum()),
        )
        assert total == 90

    def test_reference_backend_uses_fold(self):
        ctx = ExecutionContext(backend="reference")
        calls = {"batch": 0}
        total = transform_reduce(
            par, 5, 0, lambda a, b: a + b, lambda i: i, ctx,
            batch=lambda idx: calls.__setitem__("batch", 1),
        )
        assert total == 10 and calls["batch"] == 0

    def test_flops_accounted(self, ctx):
        transform_reduce(
            par_unseq, 100, 0, lambda a, b: a + b, lambda i: i, ctx,
            batch=lambda idx: 0, flops_per_item=3.0, bytes_per_item=8.0,
        )
        assert ctx.counters.flops == 300
        assert ctx.counters.bytes_read == 800


class TestSort:
    def test_sorts(self, ctx, rng):
        keys = rng.integers(0, 1000, 64)
        perm = sort_by_key(par, keys, ctx)
        assert (np.diff(keys[perm]) >= 0).all()

    def test_stable_on_duplicates(self, ctx):
        keys = np.array([2, 1, 2, 1, 2])
        perm = sort_by_key(par, keys, ctx)
        # ties keep original relative order
        assert perm.tolist() == [1, 3, 0, 2, 4]

    def test_comparisons_counted(self, ctx):
        n = 256
        sort_by_key(par, np.arange(n)[::-1].copy(), ctx)
        assert ctx.counters.sort_comparisons == pytest.approx(n * np.log2(n))

    def test_empty(self, ctx):
        assert len(sort_by_key(par, np.array([]), ctx)) == 0
