"""Tests for HILBERTSORT and the fused BVH build (paper Alg. 6/7)."""

import numpy as np
import pytest

from repro.bvh.build import assemble_bvh, build_bvh, hilbert_sort_permutation
from repro.geometry.aabb import compute_bounding_box
from repro.geometry.hilbert import hilbert_encode
from repro.geometry.aabb import quantize_to_grid
from repro.stdpar.context import ExecutionContext


class TestHilbertSort:
    def test_is_permutation(self, small_cloud):
        box = compute_bounding_box(small_cloud.x)
        perm = hilbert_sort_permutation(small_cloud.x, box)
        assert sorted(perm.tolist()) == list(range(small_cloud.n))

    def test_orders_by_hilbert_key(self, small_cloud):
        box = compute_bounding_box(small_cloud.x)
        perm = hilbert_sort_permutation(small_cloud.x, box, bits=10)
        keys = hilbert_encode(quantize_to_grid(small_cloud.x, box, 10), 10)
        assert (np.diff(keys[perm].astype(np.int64)) >= 0).all()

    def test_spatial_locality_of_sorted_order(self, rng):
        """Hilbert-adjacent bodies are spatially close: mean hop length
        along the sorted order is much smaller than random order."""
        x = rng.random((2000, 3))
        box = compute_bounding_box(x)
        perm = hilbert_sort_permutation(x, box)
        hop_sorted = np.linalg.norm(np.diff(x[perm], axis=0), axis=1).mean()
        hop_random = np.linalg.norm(np.diff(x, axis=0), axis=1).mean()
        assert hop_sorted < 0.25 * hop_random

    def test_morton_curve_option(self, small_cloud):
        box = compute_bounding_box(small_cloud.x)
        pm = hilbert_sort_permutation(small_cloud.x, box, curve="morton")
        ph = hilbert_sort_permutation(small_cloud.x, box, curve="hilbert")
        assert sorted(pm.tolist()) == list(range(small_cloud.n))
        assert not np.array_equal(pm, ph)  # genuinely different orders

    def test_unknown_curve(self, small_cloud):
        box = compute_bounding_box(small_cloud.x)
        with pytest.raises(ValueError):
            hilbert_sort_permutation(small_cloud.x, box, curve="peano")

    def test_empty(self):
        box = compute_bounding_box(np.zeros((0, 3)))
        assert len(hilbert_sort_permutation(np.zeros((0, 3)), box)) == 0

    def test_sort_counted_via_ctx(self, small_cloud, ctx):
        box = compute_bounding_box(small_cloud.x)
        hilbert_sort_permutation(small_cloud.x, box, ctx=ctx)
        assert ctx.counters.sort_comparisons > 0


class TestBuild:
    def test_root_mass_and_count(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        assert bvh.mass[0] == pytest.approx(small_cloud.m.sum(), rel=1e-12)
        assert bvh.count[0] == small_cloud.n

    def test_root_box_covers_all(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        assert (bvh.bb_lo[0] <= small_cloud.x.min(0)).all()
        assert (bvh.bb_hi[0] >= small_cloud.x.max(0)).all()

    def test_parent_boxes_contain_children(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        lay = bvh.layout
        for level in range(lay.n_levels - 1):
            sl = lay.level_slice(level)
            k = np.arange(sl.start, sl.stop)
            for c in (2 * k + 1, 2 * k + 2):
                assert (bvh.bb_lo[k] <= bvh.bb_lo[c]).all()
                assert (bvh.bb_hi[k] >= bvh.bb_hi[c]).all()

    def test_parent_moments_sum_children(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        lay = bvh.layout
        for level in range(lay.n_levels - 1):
            sl = lay.level_slice(level)
            k = np.arange(sl.start, sl.stop)
            assert np.allclose(
                bvh.mass[k], bvh.mass[2 * k + 1] + bvh.mass[2 * k + 2], rtol=1e-12
            )
            assert np.array_equal(
                bvh.count[k], bvh.count[2 * k + 1] + bvh.count[2 * k + 2]
            )

    def test_padding_leaves_empty(self):
        rng = np.random.default_rng(0)
        n = 5  # pads to 8 leaves
        bvh = build_bvh(rng.random((n, 3)), np.ones(n))
        fl = bvh.layout.first_leaf
        assert (bvh.mass[fl + n :] == 0).all()
        assert (bvh.count[fl + n :] == 0).all()
        # empty boxes are inverted (+inf/-inf)
        assert np.all(np.isinf(bvh.bb_lo[fl + n :]))

    def test_leaf_com_bitwise_equals_body(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        fl = bvh.layout.first_leaf
        n = small_cloud.n
        assert np.array_equal(bvh.com[fl : fl + n], bvh.x_sorted)

    def test_leaves_follow_hilbert_order(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        assert np.array_equal(bvh.x_sorted, small_cloud.x[bvh.perm])

    def test_single_body(self):
        bvh = build_bvh(np.array([[0.1, 0.2, 0.3]]), np.array([5.0]))
        assert bvh.layout.n_nodes == 1
        assert bvh.mass[0] == 5.0

    def test_node_size2_zero_for_points_and_empties(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        fl = bvh.layout.first_leaf
        s2 = bvh.node_size2()
        assert (s2[fl:] == 0).all()          # single points and empties
        assert s2[0] > 0                     # root box is extended

    def test_assemble_with_external_perm(self, small_cloud):
        box = compute_bounding_box(small_cloud.x)
        perm = hilbert_sort_permutation(small_cloud.x, box)
        a = assemble_bvh(small_cloud.x, small_cloud.m, perm, box)
        b = build_bvh(small_cloud.x, small_cloud.m)
        assert np.array_equal(a.com, b.com)
        assert np.array_equal(a.mass, b.mass)

    def test_build_counters(self, small_cloud, ctx):
        build_bvh(small_cloud.x, small_cloud.m, ctx=ctx)
        c = ctx.counters
        assert c.sort_comparisons > 0
        assert c.atomic_ops == 0  # the whole strategy is atomics-free
        assert c.bytes_written > 0
