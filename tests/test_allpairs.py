"""Tests for the All-Pairs and All-Pairs-Col baselines."""

import numpy as np
import pytest

from repro.allpairs.classic import allpairs_accelerations
from repro.allpairs.collision import allpairs_col_accelerations, pair_index
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.stdpar.context import ExecutionContext


class TestPairIndex:
    @pytest.mark.parametrize("n", [2, 3, 5, 17])
    def test_covers_all_pairs_once(self, n):
        seen = [pair_index(k, n) for k in range(n * (n - 1) // 2)]
        assert len(set(seen)) == len(seen)
        assert all(0 <= i < j < n for i, j in seen)

    def test_first_and_last(self):
        assert pair_index(0, 10) == (0, 1)
        assert pair_index(44, 10) == (8, 9)


class TestClassic:
    def test_matches_reference(self, small_cloud, soft_gravity, ctx):
        acc = allpairs_accelerations(small_cloud.x, small_cloud.m, soft_gravity, ctx=ctx)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        assert np.allclose(acc, ref, rtol=1e-12)

    def test_without_ctx(self, small_cloud, soft_gravity):
        acc = allpairs_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        assert np.allclose(acc, ref, rtol=1e-12)

    def test_tiling_invariant(self, small_cloud, soft_gravity):
        a = allpairs_accelerations(small_cloud.x, small_cloud.m, soft_gravity, tile=7)
        b = allpairs_accelerations(small_cloud.x, small_cloud.m, soft_gravity, tile=1000)
        assert np.allclose(a, b, rtol=1e-13)

    def test_momentum_conserved(self, small_cloud, soft_gravity):
        """Sum of m*a vanishes (Newton's third law)."""
        acc = allpairs_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        f = (small_cloud.m[:, None] * acc).sum(axis=0)
        assert np.allclose(f, 0.0, atol=1e-10)

    def test_quadratic_flop_count(self, small_cloud, ctx):
        allpairs_accelerations(small_cloud.x, small_cloud.m, ctx=ctx)
        n = small_cloud.n
        assert ctx.counters.flops == pytest.approx(n * (n - 1) * 23.0)
        assert ctx.counters.atomic_ops == 0

    def test_empty(self, ctx):
        acc = allpairs_accelerations(np.zeros((0, 3)), np.zeros(0), ctx=ctx)
        assert acc.shape == (0, 3)


class TestCollision:
    def test_batch_matches_reference(self, small_cloud, soft_gravity, ctx):
        acc = allpairs_col_accelerations(small_cloud.x, small_cloud.m, soft_gravity, ctx=ctx)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        assert np.allclose(acc, ref, rtol=1e-12)

    def test_scalar_atomic_path_matches(self, soft_gravity, rng):
        """The literal pair-thread atomic scatter (the oracle) agrees
        with the batch path up to summation rounding."""
        x = rng.random((30, 3))
        m = rng.random(30) + 0.1
        ref = pairwise_accelerations(x, m, soft_gravity)
        ctx = ExecutionContext(backend="reference")
        acc = allpairs_col_accelerations(x, m, soft_gravity, ctx=ctx)
        assert np.allclose(acc, ref, rtol=1e-9, atol=1e-12)

    def test_scalar_path_counts_relaxed_atomics(self, rng):
        x = rng.random((10, 3))
        m = np.ones(10)
        ctx = ExecutionContext(backend="reference")
        allpairs_col_accelerations(x, m, GravityParams(softening=0.1), ctx=ctx)
        n_pairs = 45
        # 2*dim scheduled fetch_adds per pair + the analytic accounting
        assert ctx.counters.atomic_ops >= 6 * n_pairs
        assert ctx.counters.sync_atomic_ops == 0  # relaxed only

    def test_half_the_flops_of_classic(self, small_cloud):
        ctx_a, ctx_b = ExecutionContext(), ExecutionContext()
        allpairs_accelerations(small_cloud.x, small_cloud.m, ctx=ctx_a)
        allpairs_col_accelerations(small_cloud.x, small_cloud.m, ctx=ctx_b)
        # col computes each pair once (plus scatter adds)
        assert ctx_b.counters.flops < 0.8 * ctx_a.counters.flops

    def test_small_systems(self, soft_gravity):
        assert allpairs_col_accelerations(np.zeros((1, 3)), np.ones(1)).shape == (1, 3)
        acc = allpairs_col_accelerations(
            np.array([[0.0, 0, 0], [1.0, 0, 0]]), np.array([1.0, 1.0])
        )
        assert acc[0, 0] > 0 > acc[1, 0]
