"""Tests for the virtual-thread scheduler — the forward-progress model.

These tests pin down the paper's central semantic claims:

* the starvation-free locking protocol terminates under FAIR scheduling
  (parallel forward progress / ITS) for *any* fair interleaving;
* under LOCKSTEP scheduling (no ITS) a lock whose holder is a masked
  warp-mate livelocks — "reliably caused them to hang" (Section V-B);
* wait-free algorithms (atomic accumulation without spinning) complete
  under both modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LivelockDetected
from repro.machine.counters import Counters
from repro.stdpar.atomics import AtomicArray, acquire, relaxed, release
from repro.stdpar.scheduler import (
    CompareExchange,
    FetchAdd,
    Load,
    Pause,
    SchedulerMode,
    Store,
    VirtualThreadScheduler,
)

UNLOCKED, LOCKED_TOKEN = 0, 1


def counter_thread(atom, idx, times):
    """Increment a shared counter with relaxed fetch_add (wait-free)."""
    def gen():
        for _ in range(times):
            yield FetchAdd(atom, idx, 1, relaxed)
    return gen


def lock_thread(lock, shared, i):
    """Spin on a CAS lock, increment shared data, release (starvation-
    free critical section; the shape of paper Algorithm 5)."""
    def gen():
        while True:
            ok, _ = yield CompareExchange(lock, 0, UNLOCKED, LOCKED_TOKEN, acquire, relaxed)
            if ok:
                break
        v = yield Load(shared, 0, relaxed)
        yield Store(shared, 0, v + 1, relaxed)
        yield Store(lock, 0, UNLOCKED, release)
        return i
    return gen


class TestFair:
    def test_counter_sums(self):
        data = np.zeros(1, dtype=np.int64)
        atom = AtomicArray(data)
        sched = VirtualThreadScheduler(SchedulerMode.FAIR)
        sched.run([counter_thread(atom, 0, 10) for _ in range(20)])
        assert data[0] == 200

    def test_lock_mutual_exclusion(self):
        lock = AtomicArray(np.zeros(1, dtype=np.int64))
        shared = AtomicArray(np.zeros(1, dtype=np.int64))
        sched = VirtualThreadScheduler(SchedulerMode.FAIR)
        results = sched.run([lock_thread(lock, shared, i) for i in range(30)])
        assert shared.data[0] == 30          # no lost updates
        assert lock.data[0] == UNLOCKED      # lock released
        assert sorted(results) == list(range(30))

    @given(st.integers(0, 2**32 - 1), st.integers(2, 25))
    @settings(max_examples=40, deadline=None)
    def test_lock_protocol_correct_under_any_fair_schedule(self, seed, n):
        """Property: shuffled fair interleavings never lose updates."""
        lock = AtomicArray(np.zeros(1, dtype=np.int64))
        shared = AtomicArray(np.zeros(1, dtype=np.int64))
        sched = VirtualThreadScheduler(SchedulerMode.FAIR, shuffle_seed=seed)
        sched.run([lock_thread(lock, shared, i) for i in range(n)])
        assert shared.data[0] == n

    def test_thread_return_values(self):
        def gen(i):
            def g():
                yield Pause()
                return i * i
            return g
        sched = VirtualThreadScheduler(SchedulerMode.FAIR)
        assert sched.run([gen(i) for i in range(5)]) == [0, 1, 4, 9, 16]

    def test_empty_thread_set(self):
        sched = VirtualThreadScheduler(SchedulerMode.FAIR)
        assert sched.run([]) == []

    def test_immediately_finishing_threads(self):
        def gen():
            return
            yield  # pragma: no cover
        sched = VirtualThreadScheduler(SchedulerMode.FAIR)
        assert sched.run([gen, gen]) == [None, None]

    def test_nonterminating_thread_detected(self):
        def spin():
            while True:
                yield Pause()
        sched = VirtualThreadScheduler(SchedulerMode.FAIR, op_budget_per_thread=100)
        with pytest.raises(LivelockDetected):
            sched.run([spin])


class TestLockstep:
    def test_waitfree_counter_completes(self):
        """Wait-free algorithms need only weakly parallel progress —
        they complete even without ITS."""
        data = np.zeros(1, dtype=np.int64)
        atom = AtomicArray(data)
        sched = VirtualThreadScheduler(SchedulerMode.LOCKSTEP, warp_width=8)
        sched.run([counter_thread(atom, 0, 5) for _ in range(32)])
        assert data[0] == 160

    def test_intra_warp_lock_livelocks(self):
        """Lock holder masked off inside a diverged warp: the spinners
        never succeed.  This is the paper's no-ITS GPU hang."""
        lock = AtomicArray(np.zeros(1, dtype=np.int64))
        shared = AtomicArray(np.zeros(1, dtype=np.int64))
        sched = VirtualThreadScheduler(
            SchedulerMode.LOCKSTEP, warp_width=4, spin_budget=200
        )
        with pytest.raises(LivelockDetected):
            sched.run([lock_thread(lock, shared, i) for i in range(4)])

    def test_cross_warp_lock_completes(self):
        """One thread per warp: the holder is never masked by the
        spinners' divergence, so cross-warp contention resolves."""
        lock = AtomicArray(np.zeros(1, dtype=np.int64))
        shared = AtomicArray(np.zeros(1, dtype=np.int64))
        sched = VirtualThreadScheduler(SchedulerMode.LOCKSTEP, warp_width=1)
        sched.run([lock_thread(lock, shared, i) for i in range(8)])
        assert shared.data[0] == 8

    def test_lockstep_no_sync_completes(self):
        def gen(i):
            def g():
                yield Pause()
                yield Pause()
                return i
            return g
        sched = VirtualThreadScheduler(SchedulerMode.LOCKSTEP, warp_width=4)
        assert sched.run([gen(i) for i in range(10)]) == list(range(10))


class TestConfig:
    def test_bad_warp_width(self):
        with pytest.raises(ValueError):
            VirtualThreadScheduler(warp_width=0)

    def test_ops_counted(self):
        c = Counters()
        atom = AtomicArray(np.zeros(1, dtype=np.int64), c)
        sched = VirtualThreadScheduler(SchedulerMode.FAIR, counters=c)
        sched.run([counter_thread(atom, 0, 3) for _ in range(2)])
        assert sched.ops_executed == 6
        assert c.atomic_ops == 6

    def test_unknown_op_rejected(self):
        class Bogus:
            pass

        def gen():
            yield Bogus()

        sched = VirtualThreadScheduler(SchedulerMode.FAIR)
        with pytest.raises(TypeError):
            sched.run([gen])
