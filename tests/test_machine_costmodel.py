"""Tests for the roofline cost model."""

import pytest

from repro.machine.catalog import get_device
from repro.machine.costmodel import CostModel, predict_time
from repro.machine.counters import Counters, StepCounters


def steps_with(**kw) -> StepCounters:
    s = StepCounters()
    s.step("main").add(**kw)
    return s


class TestRoofline:
    def test_memory_bound_matches_bandwidth(self):
        d = get_device("h100")
        gb = 10.0
        s = steps_with(bytes_read=gb * 1e9)
        t = predict_time(d, s)
        assert t == pytest.approx(gb / d.measured_bw_gbs, rel=0.01)

    def test_compute_bound_scales_with_peak(self):
        a, b = get_device("h100"), get_device("v100")
        s = steps_with(flops=1e12)
        ratio = predict_time(b, s) / predict_time(a, s)
        assert ratio == pytest.approx(a.peak_fp64_gflops / b.peak_fp64_gflops, rel=0.05)

    def test_compute_and_memory_overlap(self):
        """max(), not sum: the roofline."""
        d = get_device("genoa")
        t_c = predict_time(d, steps_with(flops=1e12))
        t_m = predict_time(d, steps_with(bytes_read=1e10))
        t_both = predict_time(d, steps_with(flops=1e12, bytes_read=1e10))
        assert t_both == pytest.approx(max(t_c, t_m), rel=1e-6)

    def test_special_flops_slower(self):
        d = get_device("h100")
        t_reg = predict_time(d, steps_with(flops=1e10))
        t_sp = predict_time(d, steps_with(flops=1e10, special_flops=1e10))
        assert t_sp > 2 * t_reg

    def test_irregular_bytes_use_cache_bandwidth(self):
        """Tree traffic is charged at irregular_bw_fraction x streaming."""
        d = get_device("genoa")  # fraction 4.0: cache-resident is faster
        t_stream = predict_time(d, steps_with(bytes_read=1e9))
        t_irr = predict_time(
            d, steps_with(bytes_read=1e9, bytes_irregular=1e9)
        )
        assert t_irr == pytest.approx(t_stream / d.irregular_bw_fraction, rel=0.01)


class TestAtomics:
    def test_sync_atomics_cost_more_than_relaxed(self):
        d = get_device("h100")
        relaxed = steps_with(atomic_ops=1e6)
        sync = steps_with(atomic_ops=1e6, sync_atomic_ops=1e6)
        assert predict_time(d, sync) > predict_time(d, relaxed)

    def test_contended_serializes(self):
        d = get_device("a100")
        s = steps_with(atomic_ops=1e4, sync_atomic_ops=1e4, contended_atomic_ops=1e4)
        t = predict_time(d, s)
        assert t >= 1e4 * d.atomic_cas_ns * 1e-9  # at least the serial chain

    def test_nvidia_relaxed_atomics_cheap(self):
        """Fire-and-forget FP64 reductions (why All-Pairs-Col wins on
        NVIDIA) vs CAS-loop emulation on AMD GPUs."""
        s = steps_with(atomic_ops=1e9)
        assert predict_time(get_device("h100"), s) < predict_time(
            get_device("mi300x"), s
        )

    def test_a100_sync_penalty(self):
        """Partitioned-L2 Ampere pays more for the same sync atomics."""
        s = steps_with(atomic_ops=1e7, sync_atomic_ops=1e7)
        assert predict_time(get_device("a100"), s) > 2 * predict_time(
            get_device("h100"), s
        )


class TestSequential:
    def test_sequential_slower_than_parallel(self):
        d = get_device("genoa")
        s = steps_with(flops=1e11, bytes_read=1e9)
        assert predict_time(d, s, sequential=True) > 5 * predict_time(d, s)

    def test_sequential_has_no_launch_overhead(self):
        d = get_device("h100")
        s = steps_with(kernel_launches=1000.0)
        assert predict_time(d, s, sequential=True) == 0.0
        assert predict_time(d, s) > 0.0

    def test_sequential_atomics_are_plain_rmw(self):
        d = get_device("genoa")
        s = steps_with(atomic_ops=1e6, sync_atomic_ops=1e6, contended_atomic_ops=1e6)
        t = predict_time(d, s, sequential=True)
        assert t == pytest.approx(1e6 * d.atomic_add_ns * 1e-9, rel=0.01)


class TestDivergence:
    def test_divergence_inflates_gpu_time(self):
        d = get_device("h100")
        base = dict(bytes_irregular=1e9, bytes_read=1e9, traversal_steps=1e6)
        no_div = steps_with(**base, warp_traversal_steps=1e6)
        div = steps_with(**base, warp_traversal_steps=3e6)
        assert predict_time(d, div) == pytest.approx(3 * predict_time(d, no_div), rel=0.01)

    def test_divergence_ignored_on_cpu(self):
        d = get_device("genoa")
        base = dict(bytes_irregular=1e9, bytes_read=1e9, traversal_steps=1e6)
        no_div = steps_with(**base, warp_traversal_steps=1e6)
        div = steps_with(**base, warp_traversal_steps=3e6)
        assert predict_time(d, div) == predict_time(d, no_div)


class TestToolchainProfiles:
    def test_sort_efficiency_changes_sort_time(self):
        d = get_device("gh200")
        s = steps_with(sort_comparisons=1e8)
        t_nv = predict_time(d, s, toolchain="nvcpp")
        t_acpp = predict_time(d, s, toolchain="acpp")
        assert t_acpp > t_nv  # acpp sort_efficiency < 1

    def test_toolchain_spread_is_small_on_full_pipeline(self):
        """Fig. 9: largest difference ~1.25x; a mixed pipeline should
        not diverge wildly across toolchains."""
        d = get_device("gh200")
        s = steps_with(flops=1e10, bytes_read=1e9, bytes_irregular=5e8,
                       sort_comparisons=1e7, kernel_launches=10)
        t_nv = predict_time(d, s, toolchain="nvcpp")
        t_acpp = predict_time(d, s, toolchain="acpp")
        assert max(t_nv, t_acpp) / min(t_nv, t_acpp) < 1.3

    def test_step_times_by_name(self):
        d = get_device("h100")
        s = StepCounters()
        s.step("force").add(flops=1e10)
        s.step("sort").add(sort_comparisons=1e7)
        times = CostModel(d).step_times(s)
        assert set(times) == {"force", "sort"}
        assert all(t > 0 for t in times.values())
