"""Tests for the octree node-pool layout and bump allocator."""

import numpy as np
import pytest

from repro.errors import AllocatorExhausted
from repro.geometry.aabb import AABB
from repro.octree.layout import (
    EMPTY,
    LOCKED,
    OctreePool,
    decode_body,
    encode_body,
    is_body_token,
)


def make_pool(dim=3, capacity=1000, n_bodies=10, bits=8):
    return OctreePool(
        dim=dim, bits=bits,
        box=AABB(np.zeros(dim), np.ones(dim)),
        capacity=capacity, n_bodies=n_bodies,
    )


class TestTokens:
    def test_encode_decode_roundtrip(self):
        for b in (0, 1, 17, 10**6):
            assert decode_body(encode_body(b)) == b

    def test_tokens_distinct(self):
        assert encode_body(0) not in (EMPTY, LOCKED)
        assert EMPTY != LOCKED

    def test_is_body_token(self):
        assert is_body_token(encode_body(0))
        assert not is_body_token(EMPTY)
        assert not is_body_token(LOCKED)
        assert not is_body_token(5)  # child offsets are not body tokens

    def test_is_body_token_vectorized(self):
        arr = np.array([EMPTY, LOCKED, encode_body(3), 7])
        assert is_body_token(arr).tolist() == [False, False, True, False]


class TestPool:
    def test_initial_state(self):
        pool = make_pool()
        assert pool.n_nodes == 1          # root pre-allocated
        assert pool.child[0] == EMPTY
        assert pool.depth[0] == 0

    def test_root_box_is_cube(self):
        pool = OctreePool(
            dim=3, bits=4,
            box=AABB(np.zeros(3), np.array([1.0, 2.0, 4.0])),
            capacity=100, n_bodies=1,
        )
        assert np.allclose(pool.box.extent, 4.0)

    def test_nchild(self):
        assert make_pool(dim=3).nchild == 8
        assert make_pool(dim=2).nchild == 4

    def test_node_side_halves_per_level(self):
        pool = make_pool()
        s0 = pool.node_side(0)
        assert pool.node_side(1) == pytest.approx(s0 / 2)
        assert pool.node_side(3) == pytest.approx(s0 / 8)

    def test_allocate_groups_contiguous(self):
        pool = make_pool()
        a = pool.allocate_groups(1, parents=np.array([0]))
        b = pool.allocate_groups(2, parents=np.array([a, a + 1]))
        assert a == 1
        assert b == 1 + pool.nchild
        assert pool.n_nodes == 1 + 3 * pool.nchild

    def test_parent_of(self):
        pool = make_pool()
        first = pool.allocate_groups(1, parents=np.array([0]))
        for i in range(pool.nchild):
            assert pool.parent_of(first + i) == 0
        assert pool.parent_of(0) == -1

    def test_allocator_exhaustion(self):
        pool = make_pool(capacity=20)
        with pytest.raises(AllocatorExhausted):
            pool.allocate_groups(5, parents=np.arange(5))

    def test_node_classification(self):
        pool = make_pool()
        first = pool.allocate_groups(1, parents=np.array([0]))
        pool.child[0] = first
        pool.child[first] = encode_body(3)
        assert 0 in pool.internal_nodes()
        assert first in pool.body_leaves()
        assert first + 1 in pool.leaf_nodes()

    def test_leaf_bodies_chain(self):
        pool = make_pool(n_bodies=5)
        pool.child[0] = encode_body(2)
        pool.next_body[2] = 4
        pool.next_body[4] = 1
        assert pool.leaf_bodies(0) == [2, 4, 1]

    def test_leaf_bodies_empty(self):
        pool = make_pool()
        assert pool.leaf_bodies(0) == []

    def test_finalize_com_zero_mass(self):
        pool = make_pool()
        pool.finalize_com()
        assert np.all(pool.com == 0.0)

    def test_capacity_estimate_scales(self):
        small = OctreePool.estimate_capacity(10, 3, 21)
        big = OctreePool.estimate_capacity(10_000, 3, 21)
        assert big > small >= 64

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            make_pool(dim=4)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            make_pool(capacity=0)
