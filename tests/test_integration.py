"""End-to-end integration tests crossing all subsystem boundaries."""

import numpy as np
import pytest

from repro import (
    ExecutionContext,
    GravityParams,
    Simulation,
    SimulationConfig,
    galaxy_collision,
    get_device,
    solar_system,
)
from repro.physics.accuracy import relative_l2_error
from repro.physics.diagnostics import angular_momentum, energy_report, momentum
from repro.workloads.solar import SOLAR_GRAVITY


class TestGalaxyCollision:
    """The paper's benchmark workload, end to end."""

    @pytest.fixture(scope="class")
    def params(self):
        return GravityParams(softening=0.05)

    def test_collision_progresses(self, params):
        s = galaxy_collision(400, seed=0, separation=4.0, approach_speed=1.0)
        sep0 = self._separation(s)
        Simulation(s, SimulationConfig(algorithm="octree", dt=5e-2,
                                       gravity=params)).run(30)
        assert self._separation(s) < sep0  # galaxies approached

    @staticmethod
    def _separation(s):
        left = s.x[:, 0] < np.median(s.x[:, 0])
        return abs(s.x[left, 0].mean() - s.x[~left, 0].mean())

    def test_conservation_all_algorithms(self, params):
        base = galaxy_collision(250, seed=1)
        e0 = energy_report(base, params)
        p0 = momentum(base)
        l0 = angular_momentum(base)
        for alg in ("all-pairs", "octree", "bvh"):
            s = base.copy()
            Simulation(s, SimulationConfig(algorithm=alg, theta=0.3, dt=2e-3,
                                           gravity=params)).run(25)
            assert energy_report(s, params).drift_from(e0) < 1e-3, alg
            # Tree forces violate Newton's third law at O(theta)
            # approximation level, so momentum drifts slowly rather
            # than being exact (exact only for all-pairs).
            assert np.allclose(momentum(s), p0, atol=1e-4), alg
            assert np.allclose(angular_momentum(s), l0, atol=1e-3), alg

    def test_tree_reuse_across_steps(self, params):
        """Trees are rebuilt every step (positions move); two short runs
        equal one long run exactly."""
        a = galaxy_collision(150, seed=2)
        b = a.copy()
        cfg = SimulationConfig(algorithm="bvh", dt=1e-3, gravity=params)
        Simulation(a, cfg).run(6)
        sim_b = Simulation(b, cfg)
        sim_b.run(3)
        sim_b.run(3)
        assert np.allclose(a.x, b.x, atol=1e-14)


class TestSolarSystem:
    def test_one_day_octree_vs_exact(self):
        s_tree = solar_system(600, seed=3)
        s_ref = solar_system(600, seed=3)
        cfg = SimulationConfig(dt=1.0 / 24.0, gravity=SOLAR_GRAVITY, theta=0.5)
        Simulation(s_tree, cfg.with_(algorithm="octree")).run(24)
        Simulation(s_ref, cfg.with_(algorithm="all-pairs")).run(24)
        assert relative_l2_error(s_tree.x, s_ref.x) < 1e-6

    def test_orbits_remain_bound_over_a_month(self):
        s = solar_system(200, seed=4)
        Simulation(s, SimulationConfig(algorithm="bvh", dt=0.5,
                                       gravity=SOLAR_GRAVITY)).run(60)
        r = np.linalg.norm(s.x[1:], axis=1)
        assert (r < 10.0).all() and (r > 0.3).all()


class TestDeviceMatrix:
    """Which algorithm runs where — the availability matrix of Fig. 6."""

    @pytest.mark.parametrize("device_key", ["genoa", "h100"])
    @pytest.mark.parametrize("alg", ["all-pairs", "all-pairs-col", "octree", "bvh"])
    def test_supported_combinations_run(self, device_key, alg):
        ctx = ExecutionContext(device=get_device(device_key))
        s = galaxy_collision(120, seed=5)
        Simulation(s, SimulationConfig(algorithm=alg,
                                       gravity=GravityParams(softening=0.05)),
                   ctx=ctx).run(1)

    @pytest.mark.parametrize("device_key", ["mi300x", "pvc1550"])
    @pytest.mark.parametrize("alg", ["all-pairs", "bvh"])
    def test_weakly_parallel_devices_run_unseq_algorithms(self, device_key, alg):
        ctx = ExecutionContext(device=get_device(device_key))
        s = galaxy_collision(120, seed=5)
        Simulation(s, SimulationConfig(algorithm=alg,
                                       gravity=GravityParams(softening=0.05)),
                   ctx=ctx).run(1)

    def test_col_unsafe_relax_on_amd(self):
        """The paper's par->par_unseq measurement workaround."""
        ctx = ExecutionContext(device=get_device("mi300x"))
        s = galaxy_collision(120, seed=5)
        cfg = SimulationConfig(algorithm="all-pairs-col",
                               unsafe_relax_policy=True,
                               gravity=GravityParams(softening=0.05))
        Simulation(s, cfg, ctx=ctx).run(1)


class TestReproducibility:
    def test_identical_runs_bitwise(self):
        cfg = SimulationConfig(algorithm="octree",
                               gravity=GravityParams(softening=0.05))
        a = galaxy_collision(200, seed=6)
        b = galaxy_collision(200, seed=6)
        Simulation(a, cfg).run(5)
        Simulation(b, cfg).run(5)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.v, b.v)

    def test_counters_deterministic(self):
        cfg = SimulationConfig(algorithm="bvh",
                               gravity=GravityParams(softening=0.05))
        totals = []
        for _ in range(2):
            s = galaxy_collision(200, seed=6)
            ctx = ExecutionContext()
            Simulation(s, cfg, ctx=ctx).run(2)
            totals.append(ctx.step_counters.total().as_dict())
        assert totals[0] == totals[1]
