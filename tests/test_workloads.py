"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.physics.diagnostics import energy_report, momentum
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.workloads import (
    SOLAR_GM,
    galaxy_collision,
    plummer_sphere,
    solar_system,
    uniform_cube,
)
from repro.workloads.solar import SOLAR_GRAVITY, _solve_kepler


class TestPlummer:
    def test_deterministic(self):
        a = plummer_sphere(100, seed=5)
        b = plummer_sphere(100, seed=5)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.v, b.v)

    def test_different_seeds_differ(self):
        assert not np.array_equal(plummer_sphere(50, seed=1).x,
                                  plummer_sphere(50, seed=2).x)

    def test_total_mass(self):
        s = plummer_sphere(123, total_mass=7.5)
        assert s.total_mass == pytest.approx(7.5)

    def test_com_frame(self):
        s = plummer_sphere(500, seed=3)
        assert np.allclose((s.m[:, None] * s.x).sum(0), 0, atol=1e-10)
        assert np.allclose(momentum(s), 0, atol=1e-10)

    def test_virial_equilibrium(self):
        """2T/|U| ~ 1 for a relaxed Plummer sphere."""
        s = plummer_sphere(3000, seed=0)
        r = energy_report(s)
        assert 0.85 < 2 * r.kinetic / abs(r.potential) < 1.15

    def test_half_mass_radius(self):
        """Plummer half-mass radius is ~1.30 scale radii."""
        s = plummer_sphere(5000, seed=1, scale_radius=2.0)
        r = np.sort(np.linalg.norm(s.x, axis=1))
        assert r[len(r) // 2] == pytest.approx(1.305 * 2.0, rel=0.1)

    def test_speeds_below_escape(self):
        s = plummer_sphere(2000, seed=4)
        r2 = (s.x**2).sum(1)
        v_esc = np.sqrt(2.0) * (r2 + 1.0) ** -0.25
        assert (np.linalg.norm(s.v, axis=1) <= v_esc + 1e-12).all()

    def test_zero_bodies(self):
        assert plummer_sphere(0).n == 0

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            plummer_sphere(10, dim=2)


class TestGalaxy:
    def test_deterministic(self):
        assert np.array_equal(galaxy_collision(200, seed=9).x,
                              galaxy_collision(200, seed=9).x)

    def test_body_count(self):
        assert galaxy_collision(1001).n == 1001

    def test_two_clusters_separated(self):
        s = galaxy_collision(400, separation=10.0)
        # bimodal in x: roughly half on each side
        left = (s.x[:, 0] < 0).sum()
        assert 100 < left < 300

    def test_approaching(self):
        s = galaxy_collision(400, separation=8.0, approach_speed=1.0)
        left = s.x[:, 0] < 0
        assert s.v[left, 0].mean() > 0 > s.v[~left, 0].mean()

    def test_com_frame(self):
        s = galaxy_collision(300, seed=1)
        assert np.allclose(momentum(s), 0, atol=1e-10)

    def test_mass_ratio(self):
        s = galaxy_collision(300, mass_ratio=2.0)
        assert s.total_mass == pytest.approx(3.0, rel=0.05)

    def test_too_few_bodies(self):
        with pytest.raises(ValueError):
            galaxy_collision(1)


class TestUniform:
    def test_in_cube(self):
        s = uniform_cube(500, side=2.5, seed=0)
        assert (s.x >= 0).all() and (s.x <= 2.5).all()

    def test_deterministic(self):
        assert np.array_equal(uniform_cube(64, seed=3).x, uniform_cube(64, seed=3).x)

    def test_unequal_masses(self):
        s = uniform_cube(100, equal_mass=False)
        assert len(np.unique(s.m)) > 1

    def test_2d(self):
        assert uniform_cube(10, dim=2).dim == 2


class TestSolar:
    def test_kepler_solver(self):
        e = np.full(100, 0.3)
        M = np.linspace(0, 2 * np.pi, 100)
        E = _solve_kepler(M, e)
        assert np.allclose(E - e * np.sin(E), M, atol=1e-12)

    def test_sun_is_body_zero(self):
        s = solar_system(100)
        assert s.m[0] == 1.0
        assert np.all(s.x[0] == 0.0)
        assert (s.m[1:] < 1e-9).all()

    def test_deterministic(self):
        assert np.array_equal(solar_system(50, seed=7).x, solar_system(50, seed=7).x)

    def test_orbits_bound_and_belt_like(self):
        s = solar_system(2000)
        r = np.linalg.norm(s.x[1:], axis=1)
        assert (r > 0.5).all() and (r < 8.0).all()
        assert 1.5 < np.median(r) < 4.0

    def test_orbital_speeds_keplerian(self):
        """Specific orbital energy -mu/(2a) => v^2 = mu (2/r - 1/a)."""
        s = solar_system(500)
        r = np.linalg.norm(s.x[1:], axis=1)
        v2 = (s.v[1:] ** 2).sum(1)
        # vis-viva with a in [1.8, 4.5]
        a_implied = 1.0 / (2.0 / r - v2 / SOLAR_GM)
        assert (a_implied > 1.7).all() and (a_implied < 4.6).all()

    def test_one_year_circular_orbit(self):
        """Check units: a 1 AU circular orbit closes in ~365.25 days."""
        from repro.physics.bodies import BodySystem
        from repro.physics.integrator import VerletIntegrator

        x = np.array([[0.0, 0, 0], [1.0, 0, 0]])
        v = np.array([[0.0, 0, 0], [0.0, np.sqrt(SOLAR_GM), 0]])
        m = np.array([1.0, 1e-12])
        s = BodySystem(x, v, m)
        integ = VerletIntegrator(
            s, lambda sy: pairwise_accelerations(sy.x, sy.m, SOLAR_GRAVITY),
            dt=0.25,
        )
        integ.step(1461)  # 365.25 days
        assert np.allclose(s.x[1], [1.0, 0, 0], atol=2e-2)

    def test_without_sun(self):
        s = solar_system(100, include_sun=False)
        assert s.n == 100 and (s.m < 1e-9).all()

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            solar_system(0)
