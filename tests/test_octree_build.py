"""Tests for octree construction: vectorized, concurrent, and their
equivalence (the central structural claim: the tree is insertion-order
independent, so both builders produce the same structure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ForwardProgressError, LivelockDetected
from repro.machine.catalog import get_device
from repro.octree.build_concurrent import build_octree_concurrent
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.layout import EMPTY, decode_body
from repro.octree.traversal import canonical_structure, validate_tree
from repro.stdpar.context import ExecutionContext


class TestVectorizedBuild:
    def test_invariants_random_cloud(self, small_cloud):
        pool = build_octree_vectorized(small_cloud.x, bits=10)
        validate_tree(pool, small_cloud.n)

    def test_each_leaf_at_most_one_body(self, small_cloud):
        pool = build_octree_vectorized(small_cloud.x, bits=10)
        for leaf in pool.leaf_nodes():
            assert len(pool.leaf_bodies(int(leaf))) <= 1

    def test_empty_input(self):
        pool = build_octree_vectorized(np.zeros((0, 3)))
        assert pool.n_nodes == 1
        assert pool.child[0] == EMPTY

    def test_single_body_root_leaf(self):
        pool = build_octree_vectorized(np.array([[0.5, 0.5, 0.5]]))
        assert pool.n_nodes == 1
        assert decode_body(int(pool.child[0])) == 0

    def test_two_bodies_subdivide(self):
        x = np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9]])
        pool = build_octree_vectorized(x, bits=4)
        assert pool.n_nodes == 9  # root + one sibling group
        assert pool.child[0] == 1
        validate_tree(pool, 2)

    def test_close_pair_creates_chain(self):
        """Two bodies close relative to the root cube force subdivision
        down through a chain of single-occupancy levels."""
        x = np.array(
            [[0.25, 0.25, 0.25], [0.25 + 2**-7, 0.25, 0.25], [0.9, 0.9, 0.9]]
        )
        pool = build_octree_vectorized(x, bits=12)
        validate_tree(pool, 3)
        assert pool.n_nodes > 17  # deeper than two splits
        assert pool.depth[: pool.n_nodes].max() >= 5

    def test_identical_points_bucket(self):
        """Bodies sharing the deepest cell chain into a bucket leaf."""
        x = np.vstack([np.full((3, 3), 0.25), [[0.9, 0.9, 0.9]]])
        pool = build_octree_vectorized(x, bits=4)
        validate_tree(pool, 4)
        buckets = [
            leaf for leaf in pool.leaf_nodes()
            if len(pool.leaf_bodies(int(leaf))) > 1
        ]
        assert len(buckets) == 1
        assert sorted(pool.leaf_bodies(buckets[0])) == [0, 1, 2]

    def test_2d_quadtree(self, cloud_2d):
        pool = build_octree_vectorized(cloud_2d.x, bits=10)
        assert pool.nchild == 4
        validate_tree(pool, cloud_2d.n)

    def test_counts_match_subtree_sizes(self, small_cloud):
        pool = build_octree_vectorized(small_cloud.x, bits=10)
        # count[node] as set by the builder equals bodies under node
        internal = pool.internal_nodes()
        for node in internal[:20]:
            first = pool.child[node]
            assert pool.count[node] == pool.count[first : first + 8].sum()

    def test_build_deterministic(self, small_cloud):
        a = build_octree_vectorized(small_cloud.x, bits=10)
        b = build_octree_vectorized(small_cloud.x, bits=10)
        assert np.array_equal(a.child[: a.n_nodes], b.child[: b.n_nodes])

    def test_counter_accounting(self, small_cloud, ctx):
        build_octree_vectorized(small_cloud.x, bits=10, ctx=ctx)
        c = ctx.counters
        assert c.atomic_ops > small_cloud.n      # descent loads + CAS
        assert c.sync_atomic_ops >= 2 * small_cloud.n
        assert c.loop_iterations == small_cloud.n


class TestConcurrentBuild:
    def test_matches_vectorized(self, small_cloud):
        pv = build_octree_vectorized(small_cloud.x, bits=8)
        pc = build_octree_concurrent(small_cloud.x, bits=8)
        assert canonical_structure(pv) == canonical_structure(pc)

    def test_validates(self, small_cloud):
        pc = build_octree_concurrent(small_cloud.x, bits=8)
        validate_tree(pc, small_cloud.n)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_schedule_independence(self, seed):
        """Property: ANY fair interleaving produces the same tree."""
        rng = np.random.default_rng(7)
        x = rng.random((40, 3))
        ref = canonical_structure(build_octree_vectorized(x, bits=6))
        ctx = ExecutionContext(backend="reference", scheduler_shuffle_seed=seed)
        pool = build_octree_concurrent(x, bits=6, ctx=ctx)
        assert canonical_structure(pool) == ref

    def test_bucket_chain_concurrent(self):
        x = np.vstack([np.full((3, 3), 0.25), [[0.9, 0.9, 0.9]]])
        pool = build_octree_concurrent(x, bits=3)
        validate_tree(pool, 4)

    def test_pool_exhaustion_retries(self):
        """An undersized pool is doubled transparently."""
        rng = np.random.default_rng(0)
        x = rng.random((64, 3))
        pool = build_octree_concurrent(x, bits=8, capacity=80)
        validate_tree(pool, 64)

    def test_strict_raise_on_non_its_gpu(self):
        ctx = ExecutionContext(device=get_device("mi300x"), backend="reference")
        with pytest.raises(ForwardProgressError):
            build_octree_concurrent(np.random.default_rng(0).random((16, 3)), ctx=ctx)

    def test_livelock_on_non_its_gpu_simulation(self):
        """Paper Section V-B: running the octree build without ITS
        'reliably caused them to hang'."""
        ctx = ExecutionContext(
            device=get_device("mi300x"), backend="reference",
            on_progress_violation="simulate", warp_width=16,
        )
        with pytest.raises(LivelockDetected):
            build_octree_concurrent(
                np.random.default_rng(1).random((64, 3)), bits=8, ctx=ctx
            )

    def test_completes_on_its_gpu(self):
        """Volta+ ITS provides parallel forward progress: build works."""
        ctx = ExecutionContext(device=get_device("h100"), backend="reference")
        x = np.random.default_rng(1).random((64, 3))
        pool = build_octree_concurrent(x, bits=8, ctx=ctx)
        validate_tree(pool, 64)

    def test_empty(self):
        pool = build_octree_concurrent(np.zeros((0, 3)))
        assert pool.n_nodes == 1


class TestEquivalenceProperty:
    @given(
        st.integers(1, 120),
        st.integers(0, 2**32 - 1),
        st.sampled_from([2, 3]),
        st.integers(3, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_builders_agree(self, n, seed, dim, bits):
        """The headline structural property over random inputs, sizes,
        dimensions and depth limits."""
        rng = np.random.default_rng(seed)
        x = rng.random((n, dim))
        pv = build_octree_vectorized(x, bits=bits)
        pc = build_octree_concurrent(x, bits=bits)
        validate_tree(pv, n)
        validate_tree(pc, n)
        assert canonical_structure(pv) == canonical_structure(pc)
