"""Tests for the simulation engine, config and algorithm registry."""

import numpy as np
import pytest

from repro.core.algorithms import ALGORITHMS, get_algorithm
from repro.core.config import SimulationConfig
from repro.core.simulation import STEP_ORDER, Simulation
from repro.errors import ConfigurationError, ForwardProgressError
from repro.machine.catalog import get_device
from repro.physics.diagnostics import energy_report, momentum
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.stdpar.context import ExecutionContext
from repro.stdpar.progress import ForwardProgress
from repro.workloads import galaxy_collision


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = SimulationConfig()
        assert cfg.theta == 0.5

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(algorithm="fmm")

    @pytest.mark.parametrize("kw", [
        {"theta": -0.1}, {"dt": 0.0}, {"curve": "peano"}, {"simt_width": 0},
    ])
    def test_invalid_values(self, kw):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kw)

    def test_with_(self):
        cfg = SimulationConfig(theta=0.5)
        cfg2 = cfg.with_(theta=0.3)
        assert cfg.theta == 0.5 and cfg2.theta == 0.3


class TestRegistry:
    def test_registered_algorithms(self):
        assert set(ALGORITHMS) == {
            "all-pairs", "all-pairs-col", "octree", "bvh", "octree-2stage"
        }

    def test_complexity_classes(self):
        assert get_algorithm("all-pairs").complexity == "O(N^2)"
        assert get_algorithm("octree").complexity == "O(N log N)"
        assert get_algorithm("bvh").complexity == "O(N log N)"

    def test_progress_requirements(self):
        """Fig. 6: Octree and All-Pairs-Col need par (parallel forward
        progress); BVH and All-Pairs run anywhere."""
        assert get_algorithm("octree").required_progress == ForwardProgress.PARALLEL
        assert get_algorithm("all-pairs-col").required_progress == ForwardProgress.PARALLEL
        assert get_algorithm("bvh").required_progress == ForwardProgress.WEAKLY_PARALLEL
        assert get_algorithm("all-pairs").required_progress == ForwardProgress.WEAKLY_PARALLEL

    def test_supports_device_matrix(self):
        cfg = SimulationConfig()
        amd = get_device("mi300x")
        nv = get_device("h100")
        cpu = get_device("genoa")
        assert not get_algorithm("octree").supports(amd, cfg)
        assert get_algorithm("octree").supports(nv, cfg)
        assert get_algorithm("octree").supports(cpu, cfg)
        assert get_algorithm("bvh").supports(amd, cfg)

    def test_unsafe_relax_enables_col_on_amd(self):
        amd = get_device("mi300x")
        assert not get_algorithm("all-pairs-col").supports(amd, SimulationConfig())
        assert get_algorithm("all-pairs-col").supports(
            amd, SimulationConfig(unsafe_relax_policy=True)
        )
        # the octree has no such workaround (it hangs; paper V-B)
        assert not get_algorithm("octree").supports(
            amd, SimulationConfig(unsafe_relax_policy=True)
        )

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_algorithm("pm-tree")


class TestSimulation:
    @pytest.fixture
    def system(self):
        return galaxy_collision(300, seed=2)

    @pytest.fixture
    def gravity(self):
        return GravityParams(softening=0.05)

    @pytest.mark.parametrize("alg", list(ALGORITHMS))
    def test_energy_conserved(self, system, gravity, alg):
        s = system.copy()
        e0 = energy_report(s, gravity)
        sim = Simulation(s, SimulationConfig(algorithm=alg, theta=0.3,
                                             dt=1e-3, gravity=gravity))
        sim.run(10)
        assert energy_report(s, gravity).drift_from(e0) < 1e-4

    @pytest.mark.parametrize("alg", list(ALGORITHMS))
    def test_mass_conserved(self, system, gravity, alg):
        s = system.copy()
        m0 = s.total_mass
        Simulation(s, SimulationConfig(algorithm=alg, gravity=gravity)).run(5)
        assert s.total_mass == m0

    def test_algorithms_agree_on_trajectories(self, system, gravity):
        """All four algorithms integrate to nearly the same state at a
        tight opening angle ('consistent final results across all
        systems', Section V-A)."""
        finals = {}
        for alg in ALGORITHMS:
            s = system.copy()
            Simulation(s, SimulationConfig(algorithm=alg, theta=0.1,
                                           dt=1e-3, gravity=gravity)).run(10)
            finals[alg] = s.x
        ref = finals["all-pairs"]
        scale = np.abs(ref).max()
        for alg, x in finals.items():
            assert np.abs(x - ref).max() / scale < 1e-5, alg

    def test_step_accounting_octree(self, system, gravity):
        sim = Simulation(system.copy(),
                         SimulationConfig(algorithm="octree", gravity=gravity))
        rep = sim.run(3)
        assert set(rep.counters.steps) == {
            "bounding_box", "build_tree", "multipoles", "force", "update_position"
        }
        assert all(k in STEP_ORDER for k in rep.counters.steps)
        assert rep.n_steps == 3
        per = rep.per_step()
        assert per.steps["force"].loop_iterations == pytest.approx(system.n)

    def test_step_accounting_bvh(self, system, gravity):
        sim = Simulation(system.copy(),
                         SimulationConfig(algorithm="bvh", gravity=gravity))
        rep = sim.run(2)
        assert "sort" in rep.counters.steps
        assert "multipoles" not in rep.counters.steps  # fused into build

    def test_wall_times_recorded(self, system, gravity):
        sim = Simulation(system.copy(), SimulationConfig(gravity=gravity))
        rep = sim.run(1)
        assert rep.wall_seconds > 0
        assert set(rep.seconds) == set(rep.counters.steps)

    def test_octree_on_amd_gpu_raises(self, system):
        """The first force evaluation (at construction) already refuses."""
        ctx = ExecutionContext(device=get_device("mi300x"))
        with pytest.raises(ForwardProgressError):
            Simulation(system.copy(),
                       SimulationConfig(algorithm="octree"), ctx=ctx).run(1)

    def test_bvh_on_amd_gpu_ok(self, system, gravity):
        ctx = ExecutionContext(device=get_device("mi300x"))
        sim = Simulation(system.copy(),
                         SimulationConfig(algorithm="bvh", gravity=gravity), ctx=ctx)
        sim.run(1)

    def test_evaluate_forces_matches_reference(self, system, gravity):
        sim = Simulation(system.copy(),
                         SimulationConfig(algorithm="octree", theta=0.0,
                                          gravity=gravity))
        acc = sim.evaluate_forces()
        ref = pairwise_accelerations(system.x, system.m, gravity)
        assert np.allclose(acc, ref, rtol=1e-9)

    def test_reference_backend_full_pipeline(self, gravity):
        """Octree pipeline entirely on the virtual-thread scheduler."""
        s = galaxy_collision(60, seed=3)
        ref = s.copy()
        ctx = ExecutionContext(backend="reference")
        Simulation(s, SimulationConfig(algorithm="octree", theta=0.3,
                                       dt=1e-3, gravity=gravity), ctx=ctx).run(2)
        Simulation(ref, SimulationConfig(algorithm="octree", theta=0.3,
                                         dt=1e-3, gravity=gravity)).run(2)
        assert np.allclose(s.x, ref.x, rtol=1e-10, atol=1e-13)

    def test_morton_curve_config(self, system, gravity):
        s = system.copy()
        Simulation(s, SimulationConfig(algorithm="bvh", curve="morton",
                                       gravity=gravity)).run(1)

    def test_negative_steps(self, system):
        sim = Simulation(system.copy(), SimulationConfig())
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_time_property(self, system, gravity):
        sim = Simulation(system.copy(),
                         SimulationConfig(dt=0.5, gravity=gravity))
        sim.run(4)
        assert sim.time == pytest.approx(2.0)
