"""Tests for the BabelStream TRIAD validation (Table I)."""

import numpy as np
import pytest

from repro.machine.babelstream import babelstream_triad, triad_table
from repro.machine.catalog import DEVICES, HOST, get_device


class TestTriad:
    def test_model_close_to_table1_measurement(self):
        """The model's predicted bandwidth should recover the Table I
        'Exp.' column within 30% on every device (TRIAD is
        bandwidth-bound, so the model is dominated by measured_bw)."""
        for r in triad_table(n=2**22):
            if r.device.key == "host":
                continue
            assert r.predicted_gbs <= r.theoretical_gbs
            assert r.predicted_gbs > 0.55 * r.device.measured_bw_gbs

    def test_prediction_below_theoretical_peak(self):
        r = babelstream_triad(get_device("h100"), n=2**22)
        assert 0 < r.predicted_gbs < r.theoretical_gbs
        assert 0 < r.efficiency < 1

    def test_host_measured(self):
        r = babelstream_triad(HOST, n=2**20)
        assert r.measured_gbs is not None and r.measured_gbs > 0

    def test_catalog_devices_not_measured(self):
        r = babelstream_triad(get_device("genoa"), n=2**20)
        assert r.measured_gbs is None

    def test_triad_values_correct(self):
        """The kernel really computes a = b + s*c."""
        r = babelstream_triad(HOST, n=2**16)
        assert r.n == 2**16

    def test_table_covers_catalog(self):
        rows = triad_table(n=2**20)
        assert {r.device.key for r in rows} == set(DEVICES)

    def test_bandwidth_ordering_preserved(self):
        """Faster memory -> higher predicted TRIAD bandwidth."""
        rows = {r.device.key: r.predicted_gbs for r in triad_table(n=2**22)}
        assert rows["mi300x"] > rows["h100"] > rows["a100"] > rows["v100"]
        assert rows["gh200"] > rows["genoa"]
