"""Tests for the repro-nbody CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "NV H100-80" in out and "AMD MI300X" in out

    def test_run_octree(self, capsys):
        rc = main(["run", "--algorithm", "octree", "--n", "300",
                   "--steps", "2", "--workload", "plummer"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "energy drift" in out
        assert "build_tree" in out

    def test_run_bvh_galaxy(self, capsys):
        rc = main(["run", "--algorithm", "bvh", "--n", "200", "--steps", "1"])
        assert rc == 0
        assert "sort" in capsys.readouterr().out

    def test_triad(self, capsys):
        assert main(["triad", "--elements", str(2**18)]) == 0
        out = capsys.readouterr().out
        assert "Th. [GB/s]" in out

    def test_project(self, capsys):
        rc = main(["project", "--algorithm", "bvh", "--n", "500",
                   "--device", "h100", "gh200", "--workload", "uniform"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NV H100-80" in out and "host (wall clock)" in out

    def test_validate(self, capsys):
        rc = main(["validate", "--n", "300", "--steps", "4"])
        assert rc == 0
        assert "PASSED=True" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "fmm"])
