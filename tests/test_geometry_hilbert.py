"""Tests for the Skilling Hilbert-curve transform.

The two load-bearing properties: the mapping is a bijection (sorting by
it is a total order on grid cells) and consecutive indices are
grid-adjacent (the locality that makes the BVH's pairwise aggregation
spatially meaningful).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.hilbert import (
    axes_to_transpose,
    hilbert_decode,
    hilbert_encode,
    transpose_to_axes,
)


class TestRoundTrip:
    @pytest.mark.parametrize("dim,bits", [(2, 1), (2, 4), (2, 16), (2, 31),
                                          (3, 1), (3, 5), (3, 12), (3, 21)])
    def test_encode_decode_roundtrip(self, rng, dim, bits):
        g = rng.integers(0, 1 << bits, size=(300, dim)).astype(np.uint64)
        keys = hilbert_encode(g, bits)
        assert np.array_equal(hilbert_decode(keys, bits, dim), g)

    @pytest.mark.parametrize("dim,bits", [(2, 6), (3, 4)])
    def test_transpose_roundtrip(self, rng, dim, bits):
        g = rng.integers(0, 1 << bits, size=(100, dim)).astype(np.uint64)
        t = axes_to_transpose(g, bits)
        assert np.array_equal(transpose_to_axes(t, bits), g)

    @given(st.integers(0, 2**21 - 1), st.integers(0, 2**21 - 1), st.integers(0, 2**21 - 1))
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property_3d(self, x, y, z):
        g = np.array([[x, y, z]], dtype=np.uint64)
        assert np.array_equal(hilbert_decode(hilbert_encode(g, 21), 21, 3), g)


class TestCurveProperties:
    @pytest.mark.parametrize("dim,bits", [(2, 2), (2, 4), (2, 5), (3, 2), (3, 3)])
    def test_adjacency(self, dim, bits):
        """Consecutive Hilbert indices map to cells one grid step apart
        (the defining locality property of the curve)."""
        n = 1 << (bits * dim)
        keys = np.arange(n, dtype=np.uint64)
        pts = hilbert_decode(keys, bits, dim).astype(np.int64)
        manhattan = np.abs(np.diff(pts, axis=0)).sum(axis=1)
        assert (manhattan == 1).all()

    @pytest.mark.parametrize("dim,bits", [(2, 4), (3, 3)])
    def test_bijection_full_grid(self, dim, bits):
        n = 1 << (bits * dim)
        keys = np.arange(n, dtype=np.uint64)
        pts = hilbert_decode(keys, bits, dim)
        # every grid cell exactly once
        flat = pts[:, 0]
        for d in range(1, dim):
            flat = flat * np.uint64(1 << bits) + pts[:, d]
        assert len(np.unique(flat)) == n

    def test_curve_starts_at_origin(self):
        pts = hilbert_decode(np.array([0], dtype=np.uint64), 4, 2)
        assert (pts == 0).all()

    def test_keys_fit_bits(self, rng):
        bits, dim = 5, 3
        g = rng.integers(0, 1 << bits, size=(200, dim)).astype(np.uint64)
        keys = hilbert_encode(g, bits)
        assert (keys < (1 << (bits * dim))).all()

    def test_locality_better_than_row_major(self, rng):
        """Average index distance of spatially-close cells is smaller
        along the Hilbert curve than in row-major order — the reason
        HILBERTSORT exists."""
        bits, dim = 5, 2
        side = 1 << bits
        g = rng.integers(0, side - 1, size=(400, dim)).astype(np.uint64)
        neighbor = g.copy()
        neighbor[:, 0] += 1  # one step in x
        h = hilbert_encode(g, bits).astype(np.int64)
        hn = hilbert_encode(neighbor, bits).astype(np.int64)
        rm = (g[:, 1] * side + g[:, 0]).astype(np.int64)
        rmn = (neighbor[:, 1] * side + neighbor[:, 0]).astype(np.int64)
        assert np.median(np.abs(h - hn)) <= np.median(np.abs(rm - rmn))


class TestValidation:
    def test_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_encode(np.array([[16, 0]], dtype=np.uint64), 4)

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            hilbert_encode(np.zeros((3, 4), dtype=np.uint64), 4)

    def test_bits_too_large(self):
        with pytest.raises(ValueError):
            hilbert_encode(np.zeros((3, 3), dtype=np.uint64), 22)

    def test_decode_requires_1d(self):
        with pytest.raises(ValueError):
            hilbert_decode(np.zeros((2, 3), dtype=np.uint64), 4, 3)
