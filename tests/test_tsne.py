"""Tests for the generic tree interaction and the Barnes-Hut t-SNE app
(the paper's motivating machine-learning application [27], [28])."""

import numpy as np
import pytest

from repro.apps.tsne import BarnesHutTSNE, pairwise_affinities, _pairwise_sq_dists
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.interaction import GravityKernel, StudentTKernel, tree_interaction
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.gravity import GravityParams, pairwise_accelerations


def clusters(n_per=50, k=3, d=8, seed=0, spread=8.0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, d)) * spread
    x = np.vstack([c + rng.standard_normal((n_per, d)) for c in centers])
    return x, np.repeat(np.arange(k), n_per)


class TestTreeInteraction:
    def test_gravity_kernel_matches_force_module(self, small_cloud):
        params = GravityParams(softening=1e-3)
        pool = build_octree_vectorized(small_cloud.x)
        compute_multipoles_vectorized(pool, small_cloud.x, small_cloud.m)
        vec, scalar = tree_interaction(
            pool, small_cloud.x, small_cloud.m,
            GravityKernel(G=1.0, softening=1e-3), theta=0.0,
        )
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m, params)
        assert np.allclose(vec, ref, rtol=1e-9)
        assert np.allclose(scalar, 0.0)

    def test_student_t_exact_at_theta_zero(self, rng):
        y = rng.standard_normal((150, 2))
        ones = np.ones(150)
        pool = build_octree_vectorized(y)
        compute_multipoles_vectorized(pool, y, ones)
        vec, z = tree_interaction(pool, y, ones, StudentTKernel(), theta=0.0)

        d2 = _pairwise_sq_dists(y)
        q = 1.0 / (1.0 + d2)
        np.fill_diagonal(q, 0.0)
        ref_vec = np.einsum("ij,ijk->ik", q * q, y[None, :, :] - y[:, None, :])
        assert np.allclose(vec, ref_vec, atol=1e-10)
        assert np.allclose(z, q.sum(axis=1), atol=1e-10)

    def test_student_t_approximation_bounded(self, rng):
        y = rng.standard_normal((300, 2)) * 3
        ones = np.ones(300)
        pool = build_octree_vectorized(y)
        compute_multipoles_vectorized(pool, y, ones)
        v0, z0 = tree_interaction(pool, y, ones, StudentTKernel(), theta=0.0)
        v5, z5 = tree_interaction(pool, y, ones, StudentTKernel(), theta=0.5)
        assert np.abs(z5 - z0).max() / z0.max() < 0.05
        scale = np.abs(v0).max()
        assert np.abs(v5 - v0).max() / scale < 0.1

    def test_requires_multipoles(self, rng):
        y = rng.standard_normal((20, 2))
        pool = build_octree_vectorized(y)
        with pytest.raises(ValueError):
            tree_interaction(pool, y, np.ones(20), StudentTKernel())

    def test_self_interaction_excluded(self):
        """Coincident points: q(0)=1 must not count the point itself."""
        y = np.array([[0.0, 0.0], [0.0, 0.0], [3.0, 0.0]])
        pool = build_octree_vectorized(y, bits=4)
        compute_multipoles_vectorized(pool, y, np.ones(3))
        _, z = tree_interaction(pool, y, np.ones(3), StudentTKernel(), theta=0.0)
        # point 0 sees point 1 at distance 0 (excluded -> contributes 0)
        # and point 2 at distance 3.
        assert z[0] == pytest.approx(1.0 / (1.0 + 9.0), rel=1e-9)


class TestAffinities:
    def test_symmetric_and_normalized(self):
        x, _ = clusters(n_per=20)
        p = pairwise_affinities(x, perplexity=10)
        assert np.allclose(p, p.T)
        assert p.sum() == pytest.approx(1.0, rel=1e-6)
        assert (np.diag(p) < 1e-10).all()

    def test_perplexity_achieved(self):
        """Row conditional entropies hit log(perplexity)."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((80, 5))
        perp = 15.0
        d2 = _pairwise_sq_dists(x)
        # recompute the conditional rows the function calibrates
        from repro.apps.tsne import pairwise_affinities as pa
        p = pa(x, perplexity=perp)
        # symmetrization halves things; check entropy near log(perp)
        # via the joint: effective neighbors per row ~ perplexity
        row = p[0] / p[0].sum()
        h = -(row[row > 0] * np.log(row[row > 0])).sum()
        assert np.exp(h) == pytest.approx(perp, rel=0.5)

    def test_nearer_points_higher_affinity(self):
        x = np.array([[0.0], [0.1], [5.0]])
        p = pairwise_affinities(x, perplexity=1.5)
        assert p[0, 1] > p[0, 2]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            pairwise_affinities(np.zeros((5, 2)), perplexity=10)  # >= n
        with pytest.raises(ValueError):
            pairwise_affinities(np.zeros((1, 2)))


class TestBarnesHutTSNE:
    def test_separates_clusters(self):
        x, labels = clusters(n_per=40, k=3)
        tsne = BarnesHutTSNE(perplexity=15, n_iter=250, seed=1)
        y = tsne.fit_transform(x)
        assert y.shape == (120, 2)
        within, between = [], []
        for a in range(3):
            ya = y[labels == a]
            within.append(np.linalg.norm(ya - ya.mean(0), axis=1).mean())
            for b in range(a + 1, 3):
                between.append(np.linalg.norm(ya.mean(0) - y[labels == b].mean(0)))
        assert np.mean(between) > 3 * np.mean(within)

    def test_kl_decreases(self):
        """KL rises during early exaggeration (the recorded KL uses the
        un-exaggerated P), then declines monotonically once the true
        objective is optimized."""
        x, _ = clusters(n_per=30, k=2)
        tsne = BarnesHutTSNE(perplexity=10, n_iter=300, seed=0)
        tsne.fit_transform(x)
        h = tsne.history
        assert h[-1] < 0.7 * max(h)
        post = h[5:]  # after exaggeration
        assert all(a >= b - 1e-9 for a, b in zip(post, post[1:]))

    def test_tree_matches_exact_repulsion(self, rng):
        y = rng.standard_normal((120, 2))
        tree = BarnesHutTSNE(use_tree=True, theta=0.0)
        exact = BarnesHutTSNE(use_tree=False)
        rt, zt = tree._repulsion(y)
        re_, ze = exact._repulsion(y)
        assert np.allclose(rt, re_, atol=1e-10)
        assert zt == pytest.approx(ze, rel=1e-12)

    def test_deterministic(self):
        x, _ = clusters(n_per=20, k=2)
        a = BarnesHutTSNE(n_iter=60, seed=3, perplexity=10).fit_transform(x)
        b = BarnesHutTSNE(n_iter=60, seed=3, perplexity=10).fit_transform(x)
        assert np.array_equal(a, b)

    def test_embedding_centered(self):
        x, _ = clusters(n_per=20, k=2)
        y = BarnesHutTSNE(n_iter=50, seed=0, perplexity=10).fit_transform(x)
        assert np.allclose(y.mean(axis=0), 0.0, atol=1e-9)
