"""Executable-documentation tests: every example must run clean.

Examples are a deliverable; these tests keep them from rotting.  Each
runs as a subprocess (isolating sys.argv and import state) at reduced
problem sizes where the script accepts one.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "energy drift" in out
        assert "tree-node visits" in out

    def test_galaxy_collision(self):
        out = run_example("galaxy_collision.py", "400")
        assert "energy drift" in out
        assert "octree-vs-bvh position gap" in out

    def test_solar_system(self):
        out = run_example("solar_system.py", "400")
        assert out.count("[OK]") == 3
        assert "belt intact" in out

    def test_progress_semantics(self):
        out = run_example("progress_semantics.py")
        assert "LIVELOCK" in out
        assert "completed" in out
        assert "VectorizationUnsafeError" in out

    def test_accuracy_study(self):
        out = run_example("accuracy_study.py", "300")
        assert "theta sweep" in out
        assert "octree" in out and "bvh" in out

    def test_device_projection(self):
        out = run_example("device_projection.py", "2000")
        assert "NV GH200-480" in out
        assert "n/a" in out  # octree on AMD GPUs

    def test_quadtree_figure1(self):
        out = run_example("quadtree_figure1.py")
        assert "memory layout" in out
        assert "B0 (body)" in out or "(body)" in out
        assert "E (empty)" in out

    def test_checkpoint_restart(self):
        out = run_example("checkpoint_restart.py")
        assert "restart is exact." in out

    def test_tsne_visualization(self):
        out = run_example("tsne_visualization.py", "25", timeout=300)
        assert "cluster separation" in out
        assert "quadtree repulsion" in out
