"""repro.distributed: partition, fabric, LET, and the multi-rank runtime.

The contracts under test:

* the decomposition is a contiguous Hilbert-range partition whose
  weighted mode equalizes work, not counts;
* the fabric's alpha-beta arithmetic and both-endpoint charging;
* the LET selection is *conservative*: every node the domain walk
  accepts satisfies the per-body MAC for every member body, so the
  exchanged halo is a superset of what any body needs;
* ``ranks=1`` never enters the distributed path (bit-identity with the
  single-rank kernels), ``theta=0`` makes the exchange exact, and
  ranks ∈ {2,4,8} stay inside the theta-controlled error bound;
* comm counters/traffic reach the machine layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.distributed import (
    DomainDecomposition,
    Fabric,
    WorkBalancer,
    build_let_plan,
    decompose,
    hilbert_keys,
)
from repro.distributed.let import _domain_groups
from repro.errors import ConfigurationError
from repro.machine import CostModel, get_device, get_interconnect
from repro.physics.accuracy import relative_l2_error
from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.traversal.engine import build_interaction_lists
from repro.workloads import galaxy_collision


def _system(n=600, seed=3) -> BodySystem:
    return galaxy_collision(n, seed=seed)


def _forces(system, **cfg_kw):
    sys2 = BodySystem(system.x.copy(), system.v.copy(), system.m.copy())
    sim = Simulation(sys2, SimulationConfig(**cfg_kw))
    return sim.evaluate_forces(), sim


# ----------------------------------------------------------------------
class TestPartition:
    def test_contiguous_key_ranges(self):
        from repro.geometry.aabb import compute_bounding_box

        s = _system()
        dec = decompose(s.x, 4)
        assert int(dec.counts.sum()) == s.n
        keys = hilbert_keys(s.x, compute_bounding_box(s.x))
        sk = keys[dec.order]
        assert np.all(sk[:-1] <= sk[1:])
        # ranks own disjoint contiguous half-open key ranges
        for r in range(4):
            mem_keys = keys[dec.members(r)]
            if mem_keys.size:
                assert mem_keys.min() >= dec.key_splits[r]
                if r < 3:
                    assert mem_keys.max() < dec.key_splits[r + 1]

    def test_assign_matches_rank_of(self):
        s = _system()
        from repro.geometry.aabb import compute_bounding_box

        keys = hilbert_keys(s.x, compute_bounding_box(s.x))
        dec = decompose(s.x, 5, keys=keys)
        assert np.array_equal(dec.assign(keys), dec.rank_of())

    def test_static_splits_equal_counts(self):
        s = _system(800)
        dec = decompose(s.x, 8)
        assert dec.counts.max() - dec.counts.min() <= 1

    def test_weighted_splits_equalize_work(self):
        s = _system(1000)
        # Skewed weights: first half of the curve is 10x as expensive.
        dec0 = decompose(s.x, 4)
        w = np.ones(s.n)
        w[dec0.members(0)] = 10.0
        w[dec0.members(1)] = 10.0
        dec = decompose(s.x, 4, mode="weighted", weights=w)
        per_rank = np.array([w[dec.members(r)].sum() for r in range(4)])
        assert per_rank.max() / per_rank.mean() < 1.3
        # static splits would put ~10x more work on the cheap-half ranks
        per_rank0 = np.array([w[dec0.members(r)].sum() for r in range(4)])
        assert per_rank.max() < per_rank0.max()

    def test_degenerate_weights_fall_back(self):
        s = _system(100)
        dec = decompose(s.x, 4, mode="weighted", weights=np.zeros(s.n))
        assert int(dec.counts.sum()) == s.n
        assert dec.counts.max() - dec.counts.min() <= 1

    def test_more_ranks_than_bodies(self):
        s = _system(30)
        dec = decompose(s.x, 64)
        assert int(dec.counts.sum()) == 30
        lo, hi = dec.domain_boxes(s.x)
        assert lo.shape == (64, 3)
        # empty ranks have inverted boxes
        empty = dec.counts == 0
        assert np.all(lo[empty] > hi[empty])

    def test_domain_boxes_cover_members(self):
        s = _system()
        dec = decompose(s.x, 4)
        lo, hi = dec.domain_boxes(s.x)
        for r in range(4):
            xm = s.x[dec.members(r)]
            assert np.all(xm >= lo[r]) and np.all(xm <= hi[r])

    def test_invalid_args(self):
        s = _system(10)
        with pytest.raises(ValueError):
            decompose(s.x, 0)
        with pytest.raises(ValueError):
            decompose(s.x, 2, mode="dynamic")


# ----------------------------------------------------------------------
class TestFabric:
    def test_alpha_beta(self):
        ic = get_interconnect("ib-ndr")
        f = Fabric.uniform(2, ic)
        t = f.message_seconds(0, 1, 1e9)
        assert t == pytest.approx(ic.latency_us * 1e-6 + 1e9 / (ic.bandwidth_gbs * 1e9))

    def test_send_charges_both_endpoints(self):
        f = Fabric.uniform(3, "nvlink4")
        t = f.send(0, 2, 4096.0)
        assert t > 0
        assert f.traffic.rank_seconds[0] == pytest.approx(t)
        assert f.traffic.rank_seconds[2] == pytest.approx(t)
        assert f.traffic.rank_seconds[1] == 0.0
        assert f.traffic.bytes_matrix[0, 2] == 4096.0
        assert f.traffic.total_messages == 1.0

    def test_self_send_is_free(self):
        f = Fabric.uniform(2, "nvlink4")
        assert f.send(1, 1, 1e12) == 0.0
        assert f.traffic.total_bytes == 0.0

    def test_hierarchical_link_classes(self):
        f = Fabric.hierarchical(4, 2, "nvlink4", "ib-ndr")
        assert f.link(0, 1).key == "nvlink4"
        assert f.link(2, 3).key == "nvlink4"
        assert f.link(1, 2).key == "ib-ndr"
        assert f.link(0, 3).key == "ib-ndr"
        # inter-node messages are slower
        assert f.message_seconds(0, 3, 1e6) > f.message_seconds(0, 1, 1e6)

    def test_allgather_ring(self):
        f = Fabric.uniform(4, "ib-ndr")
        t = f.allgather(1000.0)
        assert t > 0
        # K-1 hops from each of K ranks
        assert f.traffic.total_messages == 12.0
        assert f.traffic.total_bytes == pytest.approx(12_000.0)

    def test_reset_returns_and_zeroes(self):
        f = Fabric.uniform(2, "nvlink4")
        f.send(0, 1, 100.0)
        tr = f.reset()
        assert tr.total_bytes == 100.0
        assert f.traffic.total_bytes == 0.0

    def test_unknown_interconnect_raises(self):
        with pytest.raises(KeyError):
            Fabric.uniform(2, "token-ring")


# ----------------------------------------------------------------------
class TestLETConservative:
    """The halo-selection MAC must be a superset of every body's MAC."""

    @pytest.mark.parametrize("alg", ["octree", "bvh"])
    @pytest.mark.parametrize("theta", [0.25, 0.5, 1.0])
    def test_domain_accept_implies_body_accept(self, alg, theta):
        s = _system(400)
        dec = decompose(s.x, 3)
        src, dst = 0, 2
        xs, ms = s.x[dec.members(src)], s.m[dec.members(src)]
        xd = s.x[dec.members(dst)]
        if alg == "octree":
            from repro.octree.build_vectorized import build_octree_vectorized
            from repro.octree.force import octree_tree_view
            from repro.octree.multipoles import compute_multipoles_vectorized

            pool = build_octree_vectorized(xs)
            compute_multipoles_vectorized(pool, xs, ms, None)
            view = octree_tree_view(pool)
        else:
            from repro.bvh.build import build_bvh
            from repro.bvh.force import bvh_tree_view

            view = bvh_tree_view(build_bvh(xs, ms))
        lo = xd.min(axis=0)[None, :]
        hi = xd.max(axis=0)[None, :]
        lists = build_interaction_lists(view, _domain_groups(lo, hi), theta)
        accepted = lists.nodes[lists.approx]
        # every accepted node passes the per-body MAC for EVERY dest body
        for node in accepted:
            d = view.com[node][None, :] - xd
            r2 = np.einsum("ij,ij->i", d, d)
            assert np.all(view.size2[node] < theta * theta * r2)

    def test_theta_zero_exports_everything(self):
        s = _system(200)
        dec = decompose(s.x, 2)
        from repro.bvh.build import build_bvh
        from repro.bvh.force import bvh_tree_view

        xs, ms = s.x[dec.members(0)], s.m[dec.members(0)]
        view = bvh_tree_view(build_bvh(xs, ms))
        lo, hi = dec.domain_boxes(s.x)
        plan = build_let_plan(view, 0, np.array([1]), lo, hi, 0.0, dim=3)
        # nothing accepted -> every occupied leaf crosses the wire
        n_points = int(np.count_nonzero(view.klass == 1))
        assert plan.emitted_nodes[0] >= n_points
        assert plan.total_bytes > 0


# ----------------------------------------------------------------------
class TestRuntimeForces:
    def test_ranks_one_bypasses_runtime(self):
        s = _system(300)
        a1, sim1 = _forces(s, algorithm="bvh")
        aR, simR = _forces(s, algorithm="bvh", ranks=1)
        assert sim1.distributed is None and simR.distributed is None
        assert np.array_equal(a1, aR)

    @pytest.mark.parametrize("alg", ["octree", "bvh"])
    def test_ranks_one_trajectory_bit_identical(self, alg):
        s = _system(256)
        sysA = BodySystem(s.x.copy(), s.v.copy(), s.m.copy())
        sysB = BodySystem(s.x.copy(), s.v.copy(), s.m.copy())
        Simulation(sysA, SimulationConfig(algorithm=alg)).run(3)
        Simulation(sysB, SimulationConfig(algorithm=alg, ranks=1)).run(3)
        assert np.array_equal(sysA.x, sysB.x)
        assert np.array_equal(sysA.v, sysB.v)

    @pytest.mark.parametrize("alg", ["octree", "bvh"])
    @pytest.mark.parametrize("ranks", [2, 4, 8])
    def test_let_forces_within_theta_bound(self, alg, ranks):
        s = _system(600)
        exact = pairwise_accelerations(s.x, s.m)
        a1, _ = _forces(s, algorithm=alg, theta=0.5)
        aK, _ = _forces(s, algorithm=alg, theta=0.5, ranks=ranks)
        # same theta-controlled accuracy class as the single-rank walk
        e1 = relative_l2_error(a1, exact)
        eK = relative_l2_error(aK, exact)
        assert eK < max(3.0 * e1, 0.05)
        # and close to the single-rank answer itself
        assert relative_l2_error(aK, a1) < 0.05

    @pytest.mark.parametrize("alg", ["octree", "bvh"])
    def test_theta_zero_is_exact(self, alg):
        s = _system(250)
        exact = pairwise_accelerations(s.x, s.m)
        aK, _ = _forces(s, algorithm=alg, theta=0.0, ranks=3)
        assert relative_l2_error(aK, exact) < 1e-12

    def test_grouped_traversal_distributed(self):
        s = _system(500)
        a1, _ = _forces(s, algorithm="bvh", traversal="grouped")
        aK, _ = _forces(s, algorithm="bvh", traversal="grouped", ranks=4)
        assert relative_l2_error(aK, a1) < 0.05

    def test_trajectory_tracks_single_rank(self):
        s = _system(300)
        sysA = BodySystem(s.x.copy(), s.v.copy(), s.m.copy())
        sysB = BodySystem(s.x.copy(), s.v.copy(), s.m.copy())
        Simulation(sysA, SimulationConfig(algorithm="bvh")).run(5)
        Simulation(sysB, SimulationConfig(algorithm="bvh", ranks=4,
                                          rebalance_steps=2)).run(5)
        assert relative_l2_error(sysB.x, sysA.x) < 1e-2


# ----------------------------------------------------------------------
class TestRuntimeAccounting:
    def test_report_and_comm_counters(self):
        s = _system(400)
        _, sim = _forces(s, algorithm="bvh", ranks=4)
        rep = sim.distributed.last_report
        assert rep.n_ranks == 4
        assert int(rep.counts.sum()) == s.n
        assert rep.traffic.total_bytes > 0
        assert rep.let_bytes.sum() == pytest.approx(
            rep.traffic.bytes_matrix.sum() - 0.0, rel=1.0)  # halo dominates
        # per-rank counters carry comm work in the exchange step
        for sc in rep.rank_counters:
            assert sc.step("exchange").comm_bytes > 0
            assert sc.step("force").flops > 0
        # ...and they were rolled into the session's machine counters
        total = sim.ctx.step_counters.total()
        assert total.comm_bytes > 0
        assert total.comm_messages > 0

    def test_model_step_seconds_is_max_rank(self):
        s = _system(400)
        _, sim = _forces(s, algorithm="octree", ranks=2)
        rep = sim.distributed.last_report
        model = CostModel(sim.ctx.device)
        per_rank = rep.model_rank_seconds(model)
        assert per_rank.shape == (2,)
        assert rep.model_step_seconds(model) == pytest.approx(per_rank.max())
        compute, comm = rep.comm_compute_split(model)
        assert np.all(compute > 0) and np.all(comm > 0)

    def test_costmodel_interconnect_term(self):
        from repro.machine.counters import Counters

        dev = get_device("gh200")
        c = Counters(comm_bytes=1e9, comm_messages=10.0)
        no_ic = CostModel(dev).step_time(c)
        with_ic = CostModel(dev, interconnect=get_interconnect("ib-ndr")).step_time(c)
        assert no_ic.comm == 0.0
        ic = get_interconnect("ib-ndr")
        assert with_ic.comm == pytest.approx(
            10.0 * ic.latency_us * 1e-6 + 1e9 / (ic.bandwidth_gbs * 1e9))
        assert with_ic.total > no_ic.total

    def test_hierarchical_fabric_from_config(self):
        s = _system(300)
        _, sim = _forces(s, algorithm="bvh", ranks=4, ranks_per_node=2,
                         interconnect="nvlink4", inter_interconnect="ib-ndr")
        f = sim.distributed.fabric
        assert f.link(0, 1).key == "nvlink4"
        assert f.link(0, 2).key == "ib-ndr"

    def test_weighted_rebalance_uses_feedback(self):
        s = _system(500)
        sys2 = BodySystem(s.x.copy(), s.v.copy(), s.m.copy())
        sim = Simulation(sys2, SimulationConfig(
            algorithm="bvh", ranks=4, decomposition="weighted",
            rebalance_steps=2))
        sim.run(4)
        bal = sim.distributed.balancer
        assert bal.weights is not None
        assert bal.weights.shape == (s.n,)
        assert np.all(bal.weights > 0)

    def test_migration_counted_across_steps(self):
        s = _system(400, seed=9)
        sys2 = BodySystem(s.x.copy(), s.v.copy() * 50.0, s.m.copy())
        sim = Simulation(sys2, SimulationConfig(
            algorithm="bvh", ranks=4, dt=1e-2, rebalance_steps=1000))
        sim.run(6)
        # fast-moving bodies cross the cached key splits eventually
        assert sim.distributed.last_report.migrated >= 0


# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_ranks_require_tree_algorithm(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(algorithm="all-pairs", ranks=2)

    def test_bad_values(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(ranks=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(decomposition="round-robin")
        with pytest.raises(ConfigurationError):
            SimulationConfig(rebalance_steps=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(ranks_per_node=-1)

    def test_defaults_valid(self):
        cfg = SimulationConfig()
        assert cfg.ranks == 1 and cfg.decomposition == "static"


class TestWorkBalancer:
    def test_cadence(self):
        b = WorkBalancer(3, "weighted")
        assert [b.tick() for _ in range(7)] == [
            True, False, False, True, False, False, True]

    def test_observe_and_weights(self):
        s = _system(100)
        dec = decompose(s.x, 2)
        b = WorkBalancer(1, "weighted")
        b.observe(dec, np.array([2.0, 1.0]))
        w = b.weights_for(100)
        assert w is not None
        assert w[dec.members(0)].sum() == pytest.approx(2.0)
        assert w[dec.members(1)].sum() == pytest.approx(1.0)
        # stale size -> ignored
        assert b.weights_for(101) is None
        # static mode never feeds weights
        b2 = WorkBalancer(1, "static")
        b2.observe(dec, np.array([2.0, 1.0]))
        assert b2.weights_for(100) is None

    def test_imbalance(self):
        assert WorkBalancer.imbalance(np.array([1.0, 1.0])) == pytest.approx(1.0)
        assert WorkBalancer.imbalance(np.array([3.0, 1.0])) == pytest.approx(1.5)
