"""The shared BENCH_*.json schema (repro.bench.record)."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA,
    BenchRecord,
    bench_path,
    read_bench_json,
    write_bench_json,
)


def _rec(**kw) -> BenchRecord:
    base = dict(workload="galaxy", n=1000, config={"theta": 0.5},
                host_seconds=0.1, model_seconds=1e-4)
    base.update(kw)
    return BenchRecord(**base)


class TestBenchRecord:
    def test_round_trip(self, tmp_path):
        path = write_bench_json(
            "unit", [_rec(), _rec(n=2000, model_seconds=None)],
            out_dir=tmp_path, meta={"device": "gh200"},
        )
        assert path == bench_path("unit", tmp_path)
        assert path.name == "BENCH_unit.json"
        payload = read_bench_json(path)
        assert payload["schema"] == SCHEMA
        assert payload["meta"] == {"device": "gh200"}
        recs = payload["records"]
        assert [r["n"] for r in recs] == [1000, 2000]
        assert recs[0]["workload"] == "galaxy"
        assert recs[0]["config"] == {"theta": 0.5}
        assert recs[0]["host_seconds"] == pytest.approx(0.1)
        assert recs[0]["model_seconds"] == pytest.approx(1e-4)
        assert recs[1]["model_seconds"] is None

    def test_plain_dict_records(self, tmp_path):
        row = _rec().to_dict()
        path = write_bench_json("dicts", [row], out_dir=tmp_path)
        assert read_bench_json(path)["records"] == [row]

    def test_missing_field_rejected(self, tmp_path):
        row = _rec().to_dict()
        del row["model_seconds"]
        with pytest.raises(ValueError, match="model_seconds"):
            write_bench_json("bad", [row], out_dir=tmp_path)

    def test_wrong_schema_rejected(self, tmp_path):
        p = tmp_path / "BENCH_x.json"
        p.write_text(json.dumps({"schema": "other", "records": []}))
        with pytest.raises(ValueError, match="schema"):
            read_bench_json(p)

    def test_extra_metrics_preserved(self, tmp_path):
        path = write_bench_json(
            "extra", [_rec(extra={"efficiency": 0.72, "ranks": 8})],
            out_dir=tmp_path,
        )
        rec = read_bench_json(path)["records"][0]
        assert rec["extra"] == {"efficiency": 0.72, "ranks": 8}
