"""Tests for repro.obs tracing: determinism, attribution, lanes, export."""

import importlib.util
import json
import pathlib

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA,
    Tracer,
    chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.physics import GravityParams
from repro.workloads import plummer_sphere

#: Counter fields summed exactly by the span attribution contract
#: (everything except the max-like running maximum).
MAXLIKE = {"traversal_steps_max"}


def _run(n=300, steps=3, *, tracer=None, **cfg_kw):
    system = plummer_sphere(n, seed=7)
    cfg = SimulationConfig(dt=1e-3, gravity=GravityParams(softening=0.05),
                           **cfg_kw)
    sim = Simulation(system, cfg, tracer=tracer)
    rep = sim.run(steps)
    return sim, rep


def _load_checker():
    path = (pathlib.Path(__file__).parent.parent
            / "benchmarks" / "check_trace_schema.py")
    spec = importlib.util.spec_from_file_location("check_trace_schema", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestAttribution:
    @pytest.mark.parametrize("cfg_kw", [
        dict(algorithm="bvh"),
        dict(algorithm="octree", traversal="grouped"),
        dict(algorithm="bvh", traversal="dual", tree_update="auto"),
        dict(algorithm="bvh", traversal="dual", ranks=4),
        dict(algorithm="octree", ranks=3, tree_update="auto"),
    ])
    def test_span_deltas_sum_to_report_counters(self, cfg_kw):
        tr = Tracer()
        sim, rep = _run(tracer=tr, **cfg_kw)
        spans = tr.phase_counters().total().as_dict()
        want = rep.counters.total().as_dict()
        for field, value in want.items():
            if field in MAXLIKE:
                continue
            assert spans.get(field, 0.0) == value, field

    def test_per_phase_buckets_match(self):
        tr = Tracer()
        sim, rep = _run(tracer=tr, algorithm="bvh", traversal="grouped")
        pc = tr.phase_counters()
        assert set(pc.steps) == set(rep.counters.steps)
        for name, bucket in rep.counters.steps.items():
            got = pc.steps[name].as_dict()
            for field, value in bucket.as_dict().items():
                if field in MAXLIKE:
                    continue
                assert got.get(field, 0.0) == value, (name, field)

    def test_phase_spans_have_model_time_and_clock_monotonic(self):
        tr = Tracer()
        _run(tracer=tr, algorithm="bvh")
        phases = [s for s in tr.spans if s.cat == "phase" and s.delta]
        assert phases
        for s in phases:
            assert s.t1 == pytest.approx(s.t0 + s.model_seconds)
            assert s.model_seconds > 0.0


class TestPhysicsInvariance:
    def test_tracing_does_not_change_positions(self):
        sim_a, _ = _run(algorithm="bvh", traversal="dual")
        sim_b, _ = _run(algorithm="bvh", traversal="dual", tracer=Tracer())
        np.testing.assert_array_equal(sim_a.system.x, sim_b.system.x)
        np.testing.assert_array_equal(sim_a.system.v, sim_b.system.v)

    def test_default_context_has_null_tracer(self):
        sim, _ = _run()
        assert sim.ctx.tracer is NULL_TRACER
        assert not sim.ctx.tracer.enabled


class TestInstants:
    def test_stdpar_launch_events(self):
        tr = Tracer()
        _run(tracer=tr, algorithm="bvh")
        names = {i.name for i in tr.instants}
        assert "sort" in names
        launch = next(i for i in tr.instants if i.name == "sort")
        assert launch.args["policy"]
        assert launch.args["n"] > 0

    def test_maintenance_decision_events(self):
        tr = Tracer()
        _run(tracer=tr, steps=4, algorithm="bvh", traversal="grouped",
             tree_update="refit")
        decisions = [i for i in tr.instants if i.name == "maintenance_decision"]
        assert len(decisions) == 4
        # The epoch rebuild happened in the construction-time force
        # evaluation, before run() re-anchored the trace — the traced
        # window therefore holds the refits that reuse it.
        actions = [d.args["action"] for d in decisions]
        assert set(actions) <= {"rebuild", "refit"} and "refit" in actions
        assert {"disorder", "drift", "threshold"} <= set(decisions[0].args)

    def test_distributed_maintenance_events(self):
        tr = Tracer()
        _run(tracer=tr, steps=3, algorithm="bvh", ranks=3,
             tree_update="auto")
        maint = [i for i in tr.instants if i.name == "tree_maintenance"]
        assert len(maint) == 3
        assert all(m.args["action"] in ("refit", "rebuild") for m in maint)


class TestDistributedLanes:
    def test_ranks4_lanes_populated(self):
        tr = Tracer()
        sim, rep = _run(tracer=tr, n=400, algorithm="bvh", ranks=4,
                        traversal="dual")
        lanes = {s.lane for s in tr.spans}
        assert lanes == {0, 1, 2, 3, 4}
        assert tr.lane_names == {0: "driver", 1: "rank 0", 2: "rank 1",
                                 3: "rank 2", 4: "rank 3"}
        for lane in (1, 2, 3, 4):
            names = {s.name for s in tr.spans if s.lane == lane}
            assert "force" in names and "exchange" in names
            exch = next(s for s in tr.spans
                        if s.lane == lane and s.name == "exchange")
            assert exch.delta.get("comm_bytes", 0.0) > 0.0

    def test_rank_lanes_anchor_at_eval_start(self):
        tr = Tracer()
        _run(tracer=tr, n=400, algorithm="bvh", ranks=2, steps=1)
        rank_spans = [s for s in tr.spans if s.lane > 0]
        assert min(s.t0 for s in rank_spans) >= 0.0
        # Back-to-back layout within each lane.
        for lane in (1, 2):
            seq = sorted((s for s in rank_spans if s.lane == lane),
                         key=lambda s: s.t0)
            for a, b in zip(seq, seq[1:]):
                assert b.t0 == pytest.approx(a.t1)


class TestExportDeterminism:
    def _trace_bytes(self, tmp_path, name, jsonl=False):
        tr = Tracer()
        _run(tracer=tr, n=350, algorithm="bvh", ranks=4, traversal="dual",
             tree_update="auto")
        path = tmp_path / name
        (write_jsonl if jsonl else write_chrome_trace)(tr, path)
        return path.read_bytes()

    def test_chrome_trace_byte_identical(self, tmp_path):
        a = self._trace_bytes(tmp_path, "a.json")
        b = self._trace_bytes(tmp_path, "b.json")
        assert a == b

    def test_jsonl_byte_identical(self, tmp_path):
        a = self._trace_bytes(tmp_path, "a.jsonl", jsonl=True)
        b = self._trace_bytes(tmp_path, "b.jsonl", jsonl=True)
        assert a == b
        first = json.loads(a.decode().splitlines()[0])
        assert first["type"] == "meta" and first["schema"] == TRACE_SCHEMA

    def test_reset_on_rerun_keeps_trace_to_last_run(self):
        tr = Tracer()
        system = plummer_sphere(200, seed=3)
        sim = Simulation(system, SimulationConfig(algorithm="bvh"), tracer=tr)
        sim.run(2)
        n_first = len(tr.spans)
        sim.run(1)
        assert len(tr.spans) < n_first  # reset dropped the first run


class TestTraceSchema:
    def test_chrome_trace_validates(self, tmp_path):
        checker = _load_checker()
        tr = Tracer()
        _run(tracer=tr, n=400, algorithm="bvh", ranks=4, traversal="dual")
        path = write_chrome_trace(tr, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert checker.check_trace(payload) == []
        assert checker.check_ranks(payload, 4) == []
        assert payload["otherData"]["schema"] == TRACE_SCHEMA

    def test_checker_rejects_bad_payloads(self, tmp_path):
        checker = _load_checker()
        assert checker.check_trace({"traceEvents": []})
        assert checker.check_trace(
            {"otherData": {"schema": "nope"}, "traceEvents": [{}]})
        tr = Tracer()
        _run(tracer=tr, n=200, algorithm="bvh")  # single rank: no rank lanes
        payload = chrome_trace(tr)
        assert checker.check_trace(payload) == []
        assert checker.check_ranks(payload, 4)

    def test_checker_cli_roundtrip(self, tmp_path, capsys):
        checker = _load_checker()
        tr = Tracer()
        _run(tracer=tr, n=300, algorithm="octree", ranks=2)
        path = write_chrome_trace(tr, tmp_path / "t.json")
        assert checker.main([str(path), "--require-ranks", "2"]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert checker.main([str(bad)]) == 1
