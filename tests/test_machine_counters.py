"""Tests for the operation-counter infrastructure."""

import pytest

from repro.machine.counters import Counters, StepCounters


class TestCounters:
    def test_add_accumulates(self):
        c = Counters()
        c.add(flops=10, bytes_read=5)
        c.add(flops=2)
        assert c.flops == 12 and c.bytes_read == 5

    def test_addition_operator(self):
        a = Counters(flops=1, atomic_ops=2)
        b = Counters(flops=3, bytes_written=4)
        s = a + b
        assert s.flops == 4 and s.atomic_ops == 2 and s.bytes_written == 4

    def test_addition_keeps_max_fields(self):
        a = Counters(traversal_steps_max=10)
        b = Counters(traversal_steps_max=3)
        assert (a + b).traversal_steps_max == 10

    def test_add_max_field_via_add(self):
        c = Counters()
        c.add(traversal_steps_max=5)
        c.add(traversal_steps_max=2)
        assert c.traversal_steps_max == 5

    def test_scaled(self):
        c = Counters(flops=10, traversal_steps_max=7)
        s = c.scaled(0.5)
        assert s.flops == 5
        assert s.traversal_steps_max == 7  # max-like fields not scaled

    def test_bytes_total(self):
        assert Counters(bytes_read=3, bytes_written=4).bytes_total == 7

    def test_as_dict_roundtrip(self):
        c = Counters(flops=1, sync_atomic_ops=2)
        d = c.as_dict()
        assert d["flops"] == 1 and d["sync_atomic_ops"] == 2

    def test_add_wrong_type(self):
        with pytest.raises(TypeError):
            Counters() + 5


class TestStepCounters:
    def test_step_creates_on_demand(self):
        s = StepCounters()
        s.step("force").add(flops=5)
        assert s.steps["force"].flops == 5

    def test_total(self):
        s = StepCounters()
        s.step("a").add(flops=1)
        s.step("b").add(flops=2, atomic_ops=3)
        t = s.total()
        assert t.flops == 3 and t.atomic_ops == 3

    def test_merge(self):
        a = StepCounters()
        a.step("x").add(flops=1)
        b = StepCounters()
        b.step("x").add(flops=2)
        b.step("y").add(flops=5)
        m = a.merge(b)
        assert m.steps["x"].flops == 3 and m.steps["y"].flops == 5
        # originals untouched
        assert a.steps["x"].flops == 1
