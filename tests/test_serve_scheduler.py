"""Fair-scheduling and admission guarantees of the service layer.

Covers the DRR fairness bound (no tenant exceeds its granted share by
more than one quantum's cost), weighted shares, FIFO ordering within a
tenant, the machine-readable backpressure rejection codes, and the
determinism of the modeled admission wait estimates.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimulationConfig
from repro.serve import (
    REJECT_SERVER_SATURATED,
    REJECT_TENANT_QUEUE_FULL,
    AdmissionController,
    DeficitRoundRobin,
    SessionServer,
    SessionSpec,
    TenantQuota,
)
from repro.serve.admission import Occupancy


def _cfg(**kw) -> SimulationConfig:
    base = dict(algorithm="bvh", traversal="grouped", group_size=16)
    base.update(kw)
    return SimulationConfig(**base)


def _spec(tenant, name, *, arrival=0.0, n=64, steps=2, seed=0):
    return SessionSpec(tenant=tenant, name=name, workload="plummer",
                       n=n, steps=steps, seed=seed, arrival=arrival,
                       config=_cfg())


# ---------------------------------------------------------------------------
# DeficitRoundRobin unit behaviour
# ---------------------------------------------------------------------------
class TestDeficitRoundRobin:
    def _drive(self, sched, work, cost, rounds):
        """Synthetic event loop: *work* quanta per tenant at *cost* each."""
        left = dict(work)
        for _ in range(rounds):
            backlogged = [t for t, k in left.items() if k > 0]
            if not backlogged:
                break
            for tenant in sched.round_order(backlogged):
                if left[tenant] <= 0:
                    continue
                sched.grant(tenant)
                while left[tenant] > 0 and sched.runnable(tenant):
                    sched.charge(tenant, cost[tenant])
                    left[tenant] -= 1
                if left[tenant] <= 0:
                    sched.drained(tenant)
        return left

    def test_registration_order_is_ring_order(self):
        sched = DeficitRoundRobin()
        for t in ("c", "a", "b"):
            sched.register(t)
        assert sched.round_order(["a", "b", "c"]) == ["c", "a", "b"]
        # Re-registration neither moves nor duplicates a tenant.
        sched.register("a", weight=5.0)
        assert sched.round_order(["a", "c"]) == ["c", "a"]

    def test_one_quantum_overshoot_bound(self):
        """charged - granted never exceeds the largest single cost."""
        sched = DeficitRoundRobin()
        sched.register("a")
        sched.register("b")
        costs = {"a": 3e-6, "b": 7e-6}
        self._drive(sched, {"a": 40, "b": 40}, costs, rounds=10_000)
        worst = max(costs.values())
        for t in ("a", "b"):
            assert sched.fairness_slack(t) <= worst + 1e-15

    def test_weighted_shares_converge(self):
        """With 2:1 weights and equal backlog, charges split 2:1."""
        sched = DeficitRoundRobin()
        sched.register("heavy", weight=2.0)
        sched.register("light", weight=1.0)
        cost = {"heavy": 5e-6, "light": 5e-6}
        left = self._drive(sched, {"heavy": 300, "light": 300}, cost,
                           rounds=150)
        # Both still backlogged: the window is fully governed by DRR.
        assert left["heavy"] > 0 and left["light"] > 0
        ratio = sched.charged["heavy"] / sched.charged["light"]
        # Within one quantum of exact 2:1.
        assert ratio == pytest.approx(2.0, abs=0.35)

    def test_drained_forfeits_deficit(self):
        sched = DeficitRoundRobin(quantum=1e-3)
        sched.register("a")
        sched.grant("a")
        assert sched.deficit("a") > 0
        sched.drained("a")
        assert sched.deficit("a") == 0.0

    def test_quantum_autocalibrates_to_max_cost(self):
        sched = DeficitRoundRobin()
        sched.register("a")
        assert sched.quantum == pytest.approx(1e-9)
        sched.grant("a")
        sched.charge("a", 4.2e-5)
        assert sched.quantum == pytest.approx(4.2e-5)
        sched.charge("a", 1e-6)  # smaller costs never shrink it
        assert sched.quantum == pytest.approx(4.2e-5)

    def test_fixed_quantum_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(quantum=0.0)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_tenant_queue_full_code(self):
        ctl = AdmissionController(
            quotas={"t": TenantQuota(max_active=8, max_queued=2)})
        occ = Occupancy({"t": 3}, {"t": 2}, {"t": 1.0})
        res = ctl.offer(_spec("t", "s"), occ)
        assert not res.admitted
        assert res.code == REJECT_TENANT_QUEUE_FULL

    def test_server_saturated_code(self):
        ctl = AdmissionController(max_sessions=4)
        occ = Occupancy({"a": 2, "b": 2}, {}, {})
        res = ctl.offer(_spec("c", "s"), occ)
        assert not res.admitted
        assert res.code == REJECT_SERVER_SATURATED

    def test_tenant_limit_checked_before_server_limit(self):
        ctl = AdmissionController(
            max_sessions=2,
            quotas={"t": TenantQuota(max_active=1)})
        occ = Occupancy({"t": 1, "u": 1}, {}, {})
        res = ctl.offer(_spec("t", "s"), occ)
        assert res.code == REJECT_TENANT_QUEUE_FULL

    def test_wait_estimate_is_gps_bound(self):
        ctl = AdmissionController(
            quotas={"t": TenantQuota(weight=1.0)},
            default_quota=TenantQuota(weight=1.0))
        occ = Occupancy({"t": 1, "u": 1}, {}, {"t": 3.0, "u": 9.0})
        # Two equal-weight tenants with work: t serves its 3.0s backlog
        # at half the aggregate rate.
        res = ctl.offer(_spec("t", "s"), occ)
        assert res.admitted
        assert res.estimated_wait == pytest.approx(6.0)

    def test_wait_estimate_empty_server_is_zero(self):
        ctl = AdmissionController()
        res = ctl.offer(_spec("t", "s"), Occupancy({}, {}, {}))
        assert res.admitted
        assert res.estimated_wait == 0.0


# ---------------------------------------------------------------------------
# End-to-end through the server event loop
# ---------------------------------------------------------------------------
class TestServerScheduling:
    def test_fifo_within_tenant(self):
        specs = [_spec("t", f"s{i}", arrival=0.0) for i in range(3)]
        server = SessionServer(shared_cache=False)
        res = server.run(specs)
        rows = [r for r in res.sessions if r["tenant"] == "t"]
        finished = sorted(rows, key=lambda r: r["finished"])
        assert [r["name"] for r in finished] == ["s0", "s1", "s2"]
        # Head-of-line: a later session never starts before an earlier
        # one finished.
        for prev, nxt in zip(finished, finished[1:]):
            assert nxt["started"] >= prev["finished"]

    def test_rejection_codes_surface_in_result(self):
        quotas = {"t": TenantQuota(max_queued=2, max_active=8)}
        specs = [_spec("t", f"s{i}") for i in range(3)]
        server = SessionServer(quotas=quotas, shared_cache=False)
        res = server.run(specs)
        codes = [r["code"] for r in res.rejected]
        assert codes == [REJECT_TENANT_QUEUE_FULL]
        assert res.tenants["t"]["rejected"] == 1
        assert res.completed == 2

    def test_server_saturation_rejects_across_tenants(self):
        specs = [_spec(f"t{i}", "s") for i in range(4)]
        server = SessionServer(max_sessions=2, shared_cache=False)
        res = server.run(specs)
        codes = sorted(r["code"] for r in res.rejected)
        assert codes == [REJECT_SERVER_SATURATED] * 2

    def test_no_tenant_overdraws_by_more_than_one_quantum(self):
        specs = []
        for i in range(3):
            specs += [_spec(f"t{i}", f"s{j}", steps=4) for j in range(2)]
        server = SessionServer(shared_cache=False, quantum_steps=1)
        server.run(specs)
        sched = server.scheduler
        for t in ("t0", "t1", "t2"):
            assert sched.fairness_slack(t) <= sched.quantum + 1e-15

    def test_throttling_is_counted(self):
        """Multi-session tenants get cut off mid-queue by their share."""
        specs = [_spec("a", f"s{i}", steps=6) for i in range(3)]
        specs += [_spec("b", f"s{i}", steps=6) for i in range(3)]
        server = SessionServer(shared_cache=False, quantum_steps=1)
        res = server.run(specs)
        throttles = sum(t["throttle_events"]
                        for t in res.tenants.values())
        assert throttles > 0

    def test_wait_estimates_deterministic_and_ordered(self):
        specs = [_spec("t", f"s{i}", steps=4) for i in range(4)]

        def run():
            return SessionServer(shared_cache=False).run(specs)

        a, b = run(), run()
        est_a = [r["estimated_wait"] for r in a.sessions]
        est_b = [r["estimated_wait"] for r in b.sessions]
        assert est_a == est_b
        # Later arrivals into the same queue see monotonically larger
        # modeled backlog.
        by_name = sorted(a.sessions, key=lambda r: r["name"])
        ests = [r["estimated_wait"] for r in by_name]
        assert ests == sorted(ests)
        assert ests[0] == 0.0 and ests[-1] > 0.0
