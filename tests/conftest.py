"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams
from repro.stdpar.context import ExecutionContext


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_cloud(rng) -> BodySystem:
    """200 bodies, uniform cube, random masses."""
    n = 200
    return BodySystem(
        rng.random((n, 3)),
        0.1 * rng.standard_normal((n, 3)),
        rng.random(n) + 0.1,
    )


@pytest.fixture
def tiny_cloud(rng) -> BodySystem:
    n = 32
    return BodySystem(
        rng.random((n, 3)),
        np.zeros((n, 3)),
        np.ones(n),
    )


@pytest.fixture
def cloud_2d(rng) -> BodySystem:
    n = 100
    return BodySystem(
        rng.random((n, 2)),
        np.zeros((n, 2)),
        rng.random(n) + 0.5,
    )


@pytest.fixture
def soft_gravity() -> GravityParams:
    return GravityParams(G=1.0, softening=1e-3)


@pytest.fixture
def ctx() -> ExecutionContext:
    return ExecutionContext()


@pytest.fixture
def ref_ctx() -> ExecutionContext:
    return ExecutionContext(backend="reference")
