"""Tests for CALCULATEMULTIPOLES (wait-free tree reduction, Fig. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.multipoles import (
    compute_multipoles_concurrent,
    compute_multipoles_vectorized,
)
from repro.stdpar.context import ExecutionContext


def build_with_moments(x, m, bits=8, concurrent=False, **kw):
    pool = build_octree_vectorized(x, bits=bits)
    if concurrent:
        compute_multipoles_concurrent(pool, x, m, **kw)
    else:
        compute_multipoles_vectorized(pool, x, m, **kw)
    return pool


class TestVectorized:
    def test_root_holds_total_mass(self, small_cloud):
        pool = build_with_moments(small_cloud.x, small_cloud.m)
        assert pool.mass[0] == pytest.approx(small_cloud.m.sum(), rel=1e-12)
        assert pool.count[0] == small_cloud.n

    def test_root_com_is_global_com(self, small_cloud):
        pool = build_with_moments(small_cloud.x, small_cloud.m)
        expected = (small_cloud.m[:, None] * small_cloud.x).sum(0) / small_cloud.m.sum()
        assert np.allclose(pool.com[0], expected, rtol=1e-12)

    def test_internal_nodes_sum_children(self, small_cloud):
        pool = build_with_moments(small_cloud.x, small_cloud.m)
        for node in pool.internal_nodes():
            first = pool.child[node]
            assert pool.mass[node] == pytest.approx(
                pool.mass[first : first + 8].sum(), rel=1e-12
            )
            assert pool.count[node] == pool.count[first : first + 8].sum()

    def test_mass_conservation_every_level(self, small_cloud):
        pool = build_with_moments(small_cloud.x, small_cloud.m)
        total = small_cloud.m.sum()
        for d in range(int(pool.depth[: pool.n_nodes].max()) + 1):
            # mass at depth d of *covering* nodes: leaves above d count too
            nodes = np.arange(pool.n_nodes)
            at_d = nodes[pool.depth[nodes] == d]
            leaves_above = [
                n for n in pool.leaf_nodes() if pool.depth[n] < d
            ]
            level_mass = pool.mass[at_d].sum() + pool.mass[leaves_above].sum()
            assert level_mass == pytest.approx(total, rel=1e-9)

    def test_single_body_leaf_com_is_exact(self, small_cloud):
        """Bitwise: the leaf monopole IS the body (ulp round-trip fix)."""
        pool = build_with_moments(small_cloud.x, small_cloud.m)
        for leaf in pool.body_leaves():
            bodies = pool.leaf_bodies(int(leaf))
            if len(bodies) == 1:
                assert np.array_equal(pool.com[leaf], small_cloud.x[bodies[0]])

    def test_empty_leaves_massless(self, small_cloud):
        pool = build_with_moments(small_cloud.x, small_cloud.m)
        for leaf in pool.leaf_nodes():
            if not pool.leaf_bodies(int(leaf)):
                assert pool.mass[leaf] == 0.0
                assert pool.count[leaf] == 0

    def test_bucket_leaf_moments(self):
        x = np.vstack([np.full((3, 3), 0.25), [[0.9, 0.9, 0.9]]])
        m = np.array([1.0, 2.0, 3.0, 4.0])
        pool = build_with_moments(x, m, bits=3)
        bucket = [
            leaf for leaf in pool.leaf_nodes()
            if len(pool.leaf_bodies(int(leaf))) > 1
        ][0]
        assert pool.mass[bucket] == pytest.approx(6.0)
        assert pool.count[bucket] == 3

    def test_massless_bodies(self, rng):
        x = rng.random((20, 3))
        pool = build_with_moments(x, np.zeros(20))
        assert pool.mass[0] == 0.0
        assert np.all(np.isfinite(pool.com))

    def test_single_body_tree(self):
        x = np.array([[0.3, 0.7, 0.1]])
        pool = build_with_moments(x, np.array([2.5]))
        assert pool.mass[0] == 2.5
        assert np.array_equal(pool.com[0], x[0])


class TestConcurrent:
    def test_matches_vectorized(self, small_cloud):
        pv = build_with_moments(small_cloud.x, small_cloud.m)
        pc = build_with_moments(small_cloud.x, small_cloud.m, concurrent=True)
        n = pv.n_nodes
        assert np.allclose(pv.mass[:n], pc.mass[:n], rtol=1e-12)
        assert np.allclose(pv.com[:n], pc.com[:n], rtol=1e-12, atol=1e-15)
        assert np.array_equal(pv.count[:n], pc.count[:n])

    def test_arrival_counters_complete(self, small_cloud):
        pool = build_octree_vectorized(small_cloud.x, bits=8)
        compute_multipoles_concurrent(pool, small_cloud.x, small_cloud.m)
        # every internal node saw exactly nchild arrivals
        internal = pool.internal_nodes()
        assert np.all(pool.arrivals[internal] == pool.nchild)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_any_schedule_same_result(self, seed):
        rng = np.random.default_rng(3)
        x = rng.random((30, 3))
        m = rng.random(30) + 0.1
        ref = build_with_moments(x, m, bits=5)
        ctx = ExecutionContext(backend="reference", scheduler_shuffle_seed=seed)
        got = build_with_moments(x, m, bits=5, concurrent=True, ctx=ctx)
        assert np.allclose(ref.mass[: ref.n_nodes], got.mass[: got.n_nodes], rtol=1e-12)

    def test_single_node_tree(self):
        x = np.array([[0.4, 0.4, 0.4]])
        pool = build_with_moments(x, np.array([3.0]), concurrent=True)
        assert pool.mass[0] == 3.0

    def test_wait_free_on_lockstep_scheduler(self):
        """The Fig. 2 reduction has no critical sections (wait-free):
        unlike the build it completes even without ITS... though the
        par policy still forbids offloading it there in C++."""
        from repro.machine.catalog import get_device

        rng = np.random.default_rng(4)
        x = rng.random((40, 3))
        m = np.ones(40)
        pool = build_octree_vectorized(x, bits=6)
        ctx = ExecutionContext(
            device=get_device("mi300x"), backend="reference",
            on_progress_violation="simulate", warp_width=8,
        )
        compute_multipoles_concurrent(pool, x, m, ctx)
        assert pool.mass[0] == pytest.approx(40.0)

    def test_accounting_counts_atomics(self, small_cloud, ref_ctx):
        pool = build_octree_vectorized(small_cloud.x, bits=8)
        compute_multipoles_concurrent(pool, small_cloud.x, small_cloud.m, ref_ctx)
        # dim+3 atomics per non-root node, via the real AtomicArray path
        updates = ref_ctx.counters.atomic_ops
        assert updates >= (pool.n_nodes - 1)
