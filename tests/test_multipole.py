"""Tests for the quadrupole extension (paper: "the algorithms described
here extend to multipoles")."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations, bvh_accelerations_scalar
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations, octree_accelerations_scalar
from repro.octree.multipoles import (
    compute_multipoles_concurrent,
    compute_multipoles_vectorized,
)
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.physics.multipole import (
    combine_quadrupoles,
    exact_cluster_accel,
    quadrupole_accel,
    quadrupole_of_points,
)
from repro.workloads import galaxy_collision


class TestTensorMath:
    def test_traceless(self, rng):
        x = rng.random((40, 3))
        m = rng.random(40) + 0.1
        com = (m[:, None] * x).sum(0) / m.sum()
        q = quadrupole_of_points(x, m, com)
        assert abs(np.trace(q)) < 1e-12

    def test_symmetric(self, rng):
        x = rng.random((40, 3))
        m = rng.random(40) + 0.1
        q = quadrupole_of_points(x, m, x.mean(0))
        assert np.allclose(q, q.T)

    def test_point_has_zero_quadrupole(self):
        x = np.array([[0.3, 0.4, 0.5]])
        q = quadrupole_of_points(x, np.array([2.0]), x[0])
        assert np.allclose(q, 0.0)

    def test_parallel_axis_combination_exact(self, rng):
        """Combining children's tensors about the parent com equals the
        direct tensor of all points — for any grouping."""
        x = rng.random((60, 3))
        m = rng.random(60) + 0.1
        com = (m[:, None] * x).sum(0) / m.sum()
        direct = quadrupole_of_points(x, m, com)
        for split in (10, 30, 50):
            groups = [(x[:split], m[:split]), (x[split:], m[split:])]
            coms = np.array([(mm[:, None] * xx).sum(0) / mm.sum() for xx, mm in groups])
            qs = np.array([quadrupole_of_points(xx, mm, cc)
                           for (xx, mm), cc in zip(groups, coms)])
            ms = np.array([mm.sum() for _, mm in groups])
            combined = combine_quadrupoles(qs[None], ms[None], coms[None], com[None])[0]
            assert np.allclose(combined, direct, atol=1e-12)

    def test_zero_mass_children_ignored(self):
        q = np.zeros((1, 2, 3, 3))
        mass = np.array([[1.0, 0.0]])
        coms = np.array([[[1.0, 0, 0], [5.0, 5, 5]]])  # empty child far away
        parent = np.array([[1.0, 0, 0]])
        out = combine_quadrupoles(q, mass, coms, parent)
        assert np.allclose(out, 0.0)

    @given(st.integers(0, 2**32 - 1), st.floats(2.0, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_expansion_converges_quadratically_better(self, seed, dist):
        """Property: at distance R from a cluster of extent s, the
        quadrupole expansion error is O((s/R)^2) smaller than the
        monopole's."""
        rng = np.random.default_rng(seed)
        x = rng.random((30, 3)) * 0.3
        m = rng.random(30) + 0.1
        com = (m[:, None] * x).sum(0) / m.sum()
        q = quadrupole_of_points(x, m, com)
        target = com + dist * np.array([0.6, -0.64, 0.48])
        exact = exact_cluster_accel(target, x, m)
        dvec = com - target
        r2 = float(dvec @ dvec)
        mono = m.sum() * r2**-1.5 * dvec
        with_q = mono + quadrupole_accel(dvec[None], np.array([r2]), q[None], 1.0)[0]
        e_mono = np.linalg.norm(mono - exact)
        e_quad = np.linalg.norm(with_q - exact)
        assert e_quad <= e_mono + 1e-15

    def test_quadrupole_accel_zero_distance_guard(self):
        out = quadrupole_accel(np.zeros((1, 3)), np.zeros(1), np.ones((1, 3, 3)), 1.0)
        assert np.allclose(out, 0.0)


@pytest.fixture(scope="module")
def workload():
    system = galaxy_collision(400, seed=3)
    params = GravityParams(softening=0.05)
    ref = pairwise_accelerations(system.x, system.m, params)
    return system, params, ref


class TestOctreeOrder2:
    def test_improves_accuracy_at_fixed_theta(self, workload):
        system, params, ref = workload
        pool = build_octree_vectorized(system.x)
        errs = {}
        for order in (1, 2):
            compute_multipoles_vectorized(pool, system.x, system.m, order=order)
            acc = octree_accelerations(pool, system.x, system.m, params, theta=0.6)
            errs[order] = np.abs(acc - ref).max()
        assert errs[2] < 0.6 * errs[1]

    def test_batch_matches_scalar(self, workload):
        system, params, _ = workload
        pool = build_octree_vectorized(system.x)
        compute_multipoles_vectorized(pool, system.x, system.m, order=2)
        a = octree_accelerations(pool, system.x, system.m, params, theta=0.5)
        b = octree_accelerations_scalar(pool, system.x, system.m, params, theta=0.5)
        assert np.allclose(a, b, atol=1e-13)

    def test_concurrent_reduction_matches(self, workload):
        system, _, _ = workload
        pool = build_octree_vectorized(system.x, bits=8)
        compute_multipoles_vectorized(pool, system.x, system.m, order=2)
        qv = pool.quad.copy()
        compute_multipoles_concurrent(pool, system.x, system.m, order=2)
        assert np.allclose(pool.quad, qv, atol=1e-12)

    def test_theta_zero_unchanged(self, workload):
        """With theta=0 every interaction is a leaf: quadrupoles never
        fire and the result equals the exact sum."""
        system, params, ref = workload
        pool = build_octree_vectorized(system.x)
        compute_multipoles_vectorized(pool, system.x, system.m, order=2)
        acc = octree_accelerations(pool, system.x, system.m, params, theta=0.0)
        assert np.allclose(acc, ref, rtol=1e-9)

    def test_root_quadrupole_is_global(self, workload):
        system, _, _ = workload
        pool = build_octree_vectorized(system.x)
        compute_multipoles_vectorized(pool, system.x, system.m, order=2)
        direct = quadrupole_of_points(system.x, system.m, pool.com[0])
        assert np.allclose(pool.quad[0], direct, atol=1e-9)

    def test_order2_counts_more_work(self, workload, ctx):
        from repro.stdpar.context import ExecutionContext

        system, params, _ = workload
        pool = build_octree_vectorized(system.x)
        flops = {}
        for order in (1, 2):
            c = ExecutionContext()
            compute_multipoles_vectorized(pool, system.x, system.m, order=order)
            octree_accelerations(pool, system.x, system.m, params, theta=0.5, ctx=c)
            flops[order] = c.counters.flops
        assert flops[2] > flops[1]

    def test_2d_rejected(self, cloud_2d):
        pool = build_octree_vectorized(cloud_2d.x)
        with pytest.raises(ValueError):
            compute_multipoles_vectorized(pool, cloud_2d.x, cloud_2d.m, order=2)

    def test_bad_order(self, workload):
        system, _, _ = workload
        pool = build_octree_vectorized(system.x)
        with pytest.raises(ValueError):
            compute_multipoles_vectorized(pool, system.x, system.m, order=3)


class TestBVHOrder2:
    def test_improves_accuracy(self, workload):
        system, params, ref = workload
        errs = {}
        for order in (1, 2):
            bvh = build_bvh(system.x, system.m, order=order)
            acc = bvh_accelerations(bvh, params, theta=0.6)
            errs[order] = np.abs(acc - ref).max()
        assert errs[2] < 0.6 * errs[1]

    def test_batch_matches_scalar(self, workload):
        system, params, _ = workload
        bvh = build_bvh(system.x, system.m, order=2)
        a = bvh_accelerations(bvh, params, theta=0.5)
        b = bvh_accelerations_scalar(bvh, params, theta=0.5)
        assert np.allclose(a, b, atol=1e-13)

    def test_root_quadrupole_is_global(self, workload):
        system, _, _ = workload
        bvh = build_bvh(system.x, system.m, order=2)
        direct = quadrupole_of_points(system.x, system.m, bvh.com[0])
        assert np.allclose(bvh.quad[0], direct, atol=1e-9)

    def test_monopole_build_has_no_quad(self, workload):
        system, _, _ = workload
        assert build_bvh(system.x, system.m).quad is None

    def test_still_atomics_free(self, workload, ctx):
        system, _, _ = workload
        build_bvh(system.x, system.m, order=2, ctx=ctx)
        assert ctx.counters.atomic_ops == 0


class TestSimulationOrder2:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(multipole_order=3)

    @pytest.mark.parametrize("alg", ["octree", "bvh"])
    def test_full_pipeline_order2(self, alg):
        params = GravityParams(softening=0.05)
        base = galaxy_collision(200, seed=4)
        finals = {}
        for order in (1, 2):
            s = base.copy()
            cfg = SimulationConfig(algorithm=alg, theta=0.7, dt=1e-2,
                                   gravity=params, multipole_order=order)
            Simulation(s, cfg).run(5)
            finals[order] = s.x
        ref = base.copy()
        Simulation(ref, SimulationConfig(algorithm="all-pairs", dt=1e-2,
                                         gravity=params)).run(5)
        e1 = np.abs(finals[1] - ref.x).max()
        e2 = np.abs(finals[2] - ref.x).max()
        assert e2 < e1  # order 2 tracks the exact trajectory closer
