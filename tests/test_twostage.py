"""Tests for the two-stage octree builder (the Thüring et al. comparator)."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.machine import get_device
from repro.machine.costmodel import CostModel
from repro.octree.build_twostage import build_octree_twostage
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.traversal import canonical_structure, validate_tree
from repro.physics.gravity import GravityParams
from repro.stdpar.context import ExecutionContext
from repro.stdpar.progress import ForwardProgress
from repro.workloads import galaxy_collision

PARAMS = GravityParams(softening=0.05)


class TestBuilder:
    def test_same_tree_as_other_builders(self, small_cloud):
        a = build_octree_twostage(small_cloud.x, bits=8)
        b = build_octree_vectorized(small_cloud.x, bits=8)
        assert canonical_structure(a) == canonical_structure(b)
        validate_tree(a, small_cloud.n)

    def test_serial_stage_accounted(self, small_cloud):
        ctx = ExecutionContext()
        build_octree_twostage(small_cloud.x, bits=8, ctx=ctx)
        c = ctx.counters
        assert c.serial_node_ops > 0          # stage 1 exists
        assert c.atomic_ops == 0              # no global atomics at all
        assert c.sync_atomic_ops == 0
        assert c.kernel_launches == 2.0       # the two kernels

    def test_stage_split_respects_target(self, small_cloud):
        """A larger subtree target keeps more levels in stage 1."""
        serial = {}
        for target in (8, 4096):
            ctx = ExecutionContext()
            build_octree_twostage(small_cloud.x, bits=8, ctx=ctx,
                                  subtree_target=target)
            serial[target] = ctx.counters.serial_node_ops
        assert serial[4096] > serial[8]

    def test_invalid_target(self, small_cloud):
        with pytest.raises(ValueError):
            build_octree_twostage(small_cloud.x, subtree_target=0)

    def test_empty_input(self):
        pool = build_octree_twostage(np.zeros((0, 3)))
        assert pool.n_nodes == 1


class TestAlgorithm:
    def test_runs_everywhere(self):
        """Unlike the Concurrent Octree, the two-stage pipeline needs
        only weakly parallel progress: it runs on AMD/Intel GPUs."""
        from repro.core.algorithms import get_algorithm

        alg = get_algorithm("octree-2stage")
        assert alg.required_progress == ForwardProgress.WEAKLY_PARALLEL
        for key in ("mi300x", "pvc1550", "h100", "genoa"):
            assert alg.supports(get_device(key), SimulationConfig())

    def test_matches_octree_trajectory(self):
        base = galaxy_collision(200, seed=5)
        finals = {}
        for alg in ("octree", "octree-2stage"):
            s = base.copy()
            Simulation(s, SimulationConfig(algorithm=alg, theta=0.4,
                                           dt=1e-3, gravity=PARAMS)).run(5)
            finals[alg] = s.x
        # identical tree + identical force kernel => identical physics
        assert np.allclose(finals["octree"], finals["octree-2stage"], atol=1e-13)

    def test_slower_than_concurrent_octree_on_its_gpu(self):
        """The paper's H100 result: the concurrent build beats the
        two-stage comparator (whose stage 1 serializes)."""
        from repro.bench import measure_pipeline, project_throughput

        cfg = SimulationConfig(theta=0.5, gravity=PARAMS)
        mk = lambda n: galaxy_collision(n, seed=0)
        h100 = get_device("h100")
        thr = {
            alg: project_throughput(
                measure_pipeline(mk, alg, 4000, config=cfg), h100
            )
            for alg in ("octree", "octree-2stage")
        }
        assert thr["octree"] > thr["octree-2stage"]

    def test_multipoles_have_no_atomics(self):
        s = galaxy_collision(300, seed=1)
        ctx = ExecutionContext()
        sim = Simulation(s, SimulationConfig(algorithm="octree-2stage",
                                             gravity=PARAMS), ctx=ctx)
        sim.run(1)
        assert sim.last_report.counters.steps["multipoles"].atomic_ops == 0

    def test_tree_reuse_composes(self):
        s = galaxy_collision(200, seed=2)
        cfg = SimulationConfig(algorithm="octree-2stage", gravity=PARAMS,
                               tree_reuse_steps=4)
        sim = Simulation(s, cfg)
        rep = sim.run(8)
        assert "octree-2stage" in sim._tree_cache
