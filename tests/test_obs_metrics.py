"""Tests for repro.obs metrics, watchdogs, report, and bench-v2 wiring."""

import json
import logging

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.bench.record import (
    ACCEPTED_SCHEMAS,
    SCHEMA,
    BenchRecord,
    read_bench_json,
    write_bench_json,
)
from repro.cli import main
from repro.core.trace import TrajectoryRecorder
from repro.machine.costmodel import CostModel
from repro.obs import (
    EnergyDriftWatchdog,
    ImbalanceWatchdog,
    MetricsRegistry,
    NaNWatchdog,
    conservation_sample,
    default_watchdogs,
    profile_rows,
)
from repro.physics import GravityParams
from repro.workloads import plummer_sphere


def _sim(n=300, *, metrics=None, **cfg_kw):
    system = plummer_sphere(n, seed=11)
    cfg = SimulationConfig(dt=1e-3, gravity=GravityParams(softening=0.05),
                           **cfg_kw)
    return Simulation(system, cfg, metrics=metrics)


class TestInstruments:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.0)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1.0)
        reg.histogram("h").observe(3.0)
        assert reg.counters["c"].value == 3.0
        assert reg.gauges["g"].value == 0.5
        h = reg.histograms["h"]
        assert h.count == 2 and h.mean == 2.0 and h.vmin == 1.0 and h.vmax == 3.0
        d = reg.as_dict()
        assert d["counters"]["c"] == 3.0
        assert d["histograms"]["h"]["count"] == 2


class TestPerStepSampling:
    def test_single_rank_grouped(self):
        reg = MetricsRegistry()
        sim = _sim(metrics=reg, algorithm="bvh", traversal="grouped")
        sim.run(3)
        assert len(reg.samples) == 3
        for s in reg.samples:
            assert s["flops"] > 0.0
            assert 0.0 < s["mac_acceptance"] <= 1.0
        assert reg.counters["flops"].value == pytest.approx(
            sim.last_report.counters.total().flops)

    def test_ilist_cache_hits_counted(self):
        reg = MetricsRegistry()
        sim = _sim(metrics=reg, algorithm="bvh", traversal="grouped",
                   tree_update="refit")
        sim.run(4)
        hits = reg.counters.get("ilist_reuses")
        assert hits is not None and hits.value > 0
        assert reg.gauges["refit_fraction"].value > 0.0

    def test_distributed_comm_and_imbalance(self):
        reg = MetricsRegistry()
        sim = _sim(400, metrics=reg, algorithm="bvh", ranks=4,
                   traversal="dual")
        sim.run(2)
        assert reg.counters["comm_bytes"].value > 0.0
        assert reg.gauges["rank_imbalance"].value >= 1.0
        assert all(s["comm_bytes"] > 0.0 for s in reg.samples)

    def test_metrics_do_not_change_physics(self):
        a = _sim(algorithm="bvh")
        a.run(3)
        b = _sim(algorithm="bvh", metrics=MetricsRegistry())
        b.run(3)
        np.testing.assert_array_equal(a.system.x, b.system.x)


class TestTrajectoryRecorderIntegration:
    def test_recorder_routes_drift_to_registry(self):
        reg = MetricsRegistry()
        sim = _sim(metrics=reg, algorithm="bvh")
        rec = TrajectoryRecorder(sim, sample_every=2)
        trace = rec.run(4)
        assert rec.metrics is reg
        cons = [s for s in reg.samples if "energy_drift" in s]
        assert len(cons) == 2  # one per recorder sample after step 0
        assert reg.gauges["energy_drift"].value == pytest.approx(
            trace.max_energy_drift(), rel=1e-9)
        assert "momentum_drift" in cons[-1]

    def test_recorder_uses_shared_sample(self):
        sim = _sim(algorithm="bvh")
        rec = TrajectoryRecorder(sim)
        diag = conservation_sample(sim.system, sim.config.gravity)
        s0 = rec.trace.samples[0]
        assert s0.kinetic == pytest.approx(diag["kinetic"])
        assert s0.potential == pytest.approx(diag["potential"])
        np.testing.assert_allclose(s0.momentum, diag["momentum"])


class TestWatchdogs:
    def test_nan_watchdog(self, caplog):
        reg = MetricsRegistry(watchdogs=[NaNWatchdog()])
        sim = _sim(algorithm="bvh", metrics=reg)
        sim.system.x[0, 0] = np.nan
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            reg.sample_step(sim, 0)
        assert len(reg.alerts) == 1
        assert reg.alerts[0]["kind"] == "nan_positions"
        assert "non-finite" in caplog.text

    def test_energy_drift_watchdog(self):
        reg = MetricsRegistry(watchdogs=[EnergyDriftWatchdog(1e-15)])
        sim = _sim(algorithm="bvh", metrics=reg)
        rec = TrajectoryRecorder(sim, metrics=reg)
        rec.run(3)
        assert any(a["kind"] == "energy_drift" for a in reg.alerts)

    def test_imbalance_watchdog(self):
        reg = MetricsRegistry(watchdogs=[ImbalanceWatchdog(1.0)])
        sim = _sim(400, metrics=reg, algorithm="bvh", ranks=4)
        sim.run(1)
        assert any(a["kind"] == "load_imbalance" for a in reg.alerts)

    def test_default_set_quiet_on_healthy_run(self):
        reg = MetricsRegistry(watchdogs=default_watchdogs())
        sim = _sim(metrics=reg, algorithm="bvh")
        sim.run(3)
        assert reg.alerts == []


class TestBenchSchemaV2:
    def test_v2_roundtrip_with_metrics(self, tmp_path):
        reg = MetricsRegistry()
        sim = _sim(metrics=reg, algorithm="bvh", traversal="grouped")
        sim.run(2)
        rec = BenchRecord(workload="plummer", n=300, config={"algorithm": "bvh"},
                          host_seconds=0.1, model_seconds=1e-3,
                          metrics=reg.metrics_block())
        path = write_bench_json("obs_test", [rec], out_dir=tmp_path)
        payload = read_bench_json(path)
        assert payload["schema"] == SCHEMA == "repro-bench-v2"
        block = payload["records"][0]["metrics"]
        assert block["counters"]["flops"] > 0.0
        assert block["n_alerts"] == 0

    def test_metrics_key_omitted_when_unset(self, tmp_path):
        rec = BenchRecord(workload="w", n=1, config={}, host_seconds=0.0)
        path = write_bench_json("obs_plain", [rec], out_dir=tmp_path)
        assert "metrics" not in read_bench_json(path)["records"][0]

    def test_v1_files_still_read(self, tmp_path):
        payload = {"schema": "repro-bench-v1", "name": "old", "meta": {},
                   "records": []}
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps(payload))
        assert read_bench_json(path)["schema"] == "repro-bench-v1"
        assert set(ACCEPTED_SCHEMAS) == {"repro-bench-v1", "repro-bench-v2"}

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "repro-bench-v99", "records": []}))
        with pytest.raises(ValueError, match="unsupported bench schema"):
            read_bench_json(path)


class TestProfileReport:
    def test_total_row_aggregates_every_column(self):
        sim = _sim(algorithm="bvh", traversal="grouped")
        rep = sim.run(2)
        model = CostModel(sim.ctx.device, toolchain=sim.ctx.toolchain)
        rows = profile_rows(rep.counters, model, 2)
        total = rows[-1]
        assert total["phase"] == "total"
        for col in ("model_s", "flops", "bytes", "comm_bytes", "launches",
                    "mac_evals", "pairs_deferred", "pairs_accepted_cc"):
            want = sum(float(r[col]) for r in rows[:-1])
            assert float(total[col]) == pytest.approx(want)
        assert float(total["flops"]) > 0.0
        assert float(total["launches"]) > 0.0


class TestCLIObservability:
    ARGS = ["run", "--algorithm", "bvh", "--n", "300", "--steps", "2",
            "--ranks", "2", "--workload", "plummer", "--traversal", "dual"]

    def test_trace_and_metrics_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        met = tmp_path / "metrics.json"
        rc = main(self.ARGS + ["--trace-out", str(trace),
                               "--metrics-out", str(met), "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(spans)" in out and "total" in out
        payload = json.loads(trace.read_text())
        assert payload["otherData"]["schema"] == "repro-trace-v1"
        names = {e.get("args", {}).get("name") for e in payload["traceEvents"]
                 if e.get("ph") == "M"}
        assert {"rank 0", "rank 1"} <= names
        mpay = json.loads(met.read_text())
        assert mpay["samples"] and mpay["counters"]["flops"] > 0.0
        assert mpay["gauges"]["energy_drift"] is not None

    def test_cli_traces_byte_identical(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for p in paths:
            assert main(self.ARGS + ["--trace-out", str(p)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_jsonl_trace_out(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main(self.ARGS + ["--trace-out", str(path)]) == 0
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["type"] == "meta" and meta["schema"] == "repro-trace-v1"
        assert all(json.loads(l).get("ph") for l in lines[1:])
