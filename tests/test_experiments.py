"""Tests for the experiment drivers — the figure *shape* assertions.

These encode the paper's qualitative results as executable checks at
scaled-down sizes; the full-size runs live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig5_rows,
    fig6_rows,
    fig8_rows,
    fig9_rows,
    measure_galaxy_runs,
)
from repro.experiments.validation import run_validation
from repro.bench.runner import project_throughput
from repro.machine.catalog import get_device

# Scaled sizes keep the suite fast; the bench harness runs the paper's.
SMALL = dict(max_direct=3000)


@pytest.fixture(scope="module")
def runs_4k():
    return measure_galaxy_runs(4000, max_direct=4000)


class TestFig5Shapes:
    @pytest.fixture(scope="class")
    def rows(self):
        # The paper's tiny size (1e4): the tree-vs-brute-force crossover
        # sits below it but above ~3e3, so the size matters here.
        return fig5_rows(n=10_000, max_direct=4000)

    def test_cpus_only(self, rows):
        assert {r["device"] for r in rows} == {
            "AMD 9654 (Genoa)", "AWS Graviton4", "Intel 8480C (SPR)", "NV Grace-120"
        }

    def test_parallel_speedup_substantial(self, rows):
        """Paper: 'up to 40x performance improvements due to
        parallelization'."""
        speedups = [r["speedup"] for r in rows if r["speedup"]]
        assert max(speedups) > 20
        assert all(s > 3 for s in speedups)

    def test_trees_beat_brute_force(self, rows):
        """'The Octree and BVH algorithms outperform classical
        brute-force algorithms due to their better algorithmic
        complexity.'"""
        for device in {r["device"] for r in rows}:
            by_alg = {r["algorithm"]: r["par_bodies_per_s"] for r in rows
                      if r["device"] == device}
            assert by_alg["octree"] > by_alg["all-pairs"]
            assert by_alg["bvh"] > by_alg["all-pairs"]

    def test_allpairs_beats_col_on_cpus(self, rows):
        """'On CPUs, the classical All-Pairs algorithm outperforms
        All-Pairs-Col, which incurs higher coherency traffic.'"""
        for device in {r["device"] for r in rows}:
            by_alg = {r["algorithm"]: r["par_bodies_per_s"] for r in rows
                      if r["device"] == device}
            assert by_alg["all-pairs"] > by_alg["all-pairs-col"]


class TestFig6Shapes:
    @pytest.fixture(scope="class")
    def runs(self):
        return measure_galaxy_runs(100_000, max_direct=3000)

    def thr(self, runs, alg, dev):
        return project_throughput(runs[alg], get_device(dev))

    def test_octree_unavailable_on_amd_intel_gpus(self, runs):
        for dev in ("mi100", "mi250", "mi300x", "pvc1550"):
            assert self.thr(runs, "octree", dev) is None

    def test_bvh_runs_everywhere(self, runs):
        from repro.machine import list_devices
        for d in list_devices():
            assert project_throughput(runs["bvh"], d) is not None

    def test_col_beats_classic_only_on_nvidia(self, runs):
        for dev in ("v100", "a100", "h100", "gh200"):
            assert self.thr(runs, "all-pairs-col", dev) > self.thr(runs, "all-pairs", dev)
        for dev in ("genoa", "graviton4", "spr", "grace"):
            assert self.thr(runs, "all-pairs-col", dev) < self.thr(runs, "all-pairs", dev)

    def test_mi300x_best_for_all_pairs_family(self, runs):
        """'Overall, MI300X delivered the highest throughput for
        all-pair family algorithms.'"""
        from repro.machine import list_devices
        best = max(
            (project_throughput(runs["all-pairs"], d) or 0, d.key)
            for d in list_devices()
        )
        assert best[1] == "mi300x"

    def test_gh200_octree_beats_bvh_about_1_5x(self, runs):
        """'On GH200, Octree delivered the highest overall throughput,
        outperforming BVH by 1.5x for a fixed distance threshold.'"""
        ratio = self.thr(runs, "octree", "gh200") / self.thr(runs, "bvh", "gh200")
        assert 1.2 < ratio < 2.2

    def test_gh200_octree_highest_overall(self, runs):
        best = max(
            (self.thr(runs, alg, "gh200") or 0) for alg in runs
        )
        assert best == self.thr(runs, "octree", "gh200")

    def test_a100_inversion_small_size(self, runs):
        """Fig. 6: BVH outperforms Octree at 1e5 on Ampere (partitioned
        L2 atomic latency)."""
        assert self.thr(runs, "bvh", "a100") > self.thr(runs, "octree", "a100")
        # ... but not on Hopper
        assert self.thr(runs, "octree", "h100") > self.thr(runs, "bvh", "h100")


class TestFig7Shapes:
    def test_a100_inversion_reverses_at_mid_size(self):
        """Fig. 7: 'the reverse occurs for the mid-size' (1e6)."""
        runs = measure_galaxy_runs(1_000_000, ("octree", "bvh"), max_direct=3000)
        a100 = get_device("a100")
        assert (project_throughput(runs["octree"], a100)
                > project_throughput(runs["bvh"], a100))

    def test_trees_dominate_brute_force_at_mid_size(self):
        runs = measure_galaxy_runs(1_000_000, ("octree", "all-pairs"), max_direct=3000)
        h100 = get_device("h100")
        assert (project_throughput(runs["octree"], h100)
                > 10 * project_throughput(runs["all-pairs"], h100))


class TestFig8Shapes:
    def test_rows_and_fractions(self):
        rows = fig8_rows(n=3000, max_direct=3000)
        assert all(0 <= r["fraction_of_total"] < 1 for r in rows)
        assert {r["toolchain"] for r in rows} >= {"gcc", "nvcpp", "acpp"}
        # BVH rows include the sort step; octree rows include multipoles
        bvh_steps = {r["step"] for r in rows if r["algorithm"] == "bvh"}
        oct_steps = {r["step"] for r in rows if r["algorithm"] == "octree"}
        assert "sort" in bvh_steps and "multipoles" in oct_steps

    def test_toolchain_variation_concentrated_in_sort(self):
        """'such variation is relatively small, attributed mainly in the
        sorting algorithm'.  At the paper's size (1e5) launch overheads
        amortize and the spread localizes in sort."""
        rows = fig8_rows(n=100_000, max_direct=3000)
        by = {}
        for r in rows:
            if r["device"].startswith("NV GH200") and r["algorithm"] == "bvh":
                by.setdefault(r["step"], {})[r["toolchain"]] = r["seconds"]
        sort_spread = max(by["sort"].values()) / min(by["sort"].values())
        bbox_spread = max(by["bounding_box"].values()) / min(by["bounding_box"].values())
        assert sort_spread > bbox_spread


class TestFig9Shapes:
    def test_toolchain_spread_small(self):
        """Fig. 9: 'comparable performance, with the largest absolute
        difference being 1.25x'."""
        rows = fig9_rows(sizes=(3000, 30_000), max_direct=3000)
        for r in rows:
            assert r["ratio"] is not None
            assert 1.0 / 1.4 < r["ratio"] < 1.4


class TestValidation:
    def test_accuracy_below_tolerance(self):
        """Section V-A: L2 error norm below 1e-6 across implementations
        (ours: vs the exact all-pairs reference, which is stricter)."""
        res = run_validation(n=800, steps=24)
        assert res.passed
        assert all(v < 1e-6 for v in res.l2_errors.values())

    def test_energy_conserved(self):
        res = run_validation(n=800, steps=24)
        assert all(d < 1e-9 for d in res.energy_drift.values())

    def test_summary_mentions_pass(self):
        res = run_validation(n=300, steps=6)
        assert "PASSED=True" in res.summary()
