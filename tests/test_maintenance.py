"""Incremental tree maintenance: refit-over-rebuild (repro.maintenance).

Covers the PR's acceptance properties:

* refit at zero drift is bit-exact with a full rebuild (tree arrays and
  maintained forces, single-rank and distributed);
* under bounded drift the maintained forces stay inside the same theta
  error bound the cached-list reuse holds;
* cached interaction lists surviving the drift gate remain conservative
  supersets of every member body's MAC;
* the disorder / key-cache / policy building blocks behave.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh.build import assemble_bvh, build_bvh, hilbert_sort_permutation, refit_bvh
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError
from repro.geometry.aabb import compute_bounding_box
from repro.geometry.hilbert import hilbert_encode
from repro.maintenance.disorder import coarsen_keys, key_disorder, sense_bits
from repro.maintenance.keycache import KeyCache
from repro.physics.accuracy import relative_l2_error
from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision

PARAMS = GravityParams(softening=0.05)
THETA = 0.5


def _cfg(**kw) -> SimulationConfig:
    base = dict(algorithm="bvh", theta=THETA, dt=1e-3, gravity=PARAMS,
                traversal="grouped", group_size=16, tree_update="refit")
    base.update(kw)
    return SimulationConfig(**base)


def _sim(n=300, seed=0, **kw) -> Simulation:
    return Simulation(galaxy_collision(n, seed=seed), _cfg(**kw))


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestConfig:
    def test_modes_accepted(self):
        for mode in ("rebuild", "refit", "auto"):
            assert _cfg(tree_update=mode).tree_update == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            _cfg(tree_update="resort")

    def test_requires_tree_algorithm(self):
        with pytest.raises(ConfigurationError):
            _cfg(algorithm="all-pairs")

    def test_supersedes_tree_reuse(self):
        with pytest.raises(ConfigurationError):
            _cfg(tree_reuse_steps=4)

    def test_drift_budget_positive(self):
        with pytest.raises(ConfigurationError):
            _cfg(drift_budget=0.0)

    def test_disorder_threshold_range(self):
        with pytest.raises(ConfigurationError):
            _cfg(refit_disorder_threshold=1.5)


# ----------------------------------------------------------------------
# refit_bvh kernel
# ----------------------------------------------------------------------
class TestRefitBVH:
    @pytest.mark.parametrize("order", [1, 2])
    def test_bitexact_vs_rebuild_at_drifted_positions(self, order):
        """refit(x') must equal assemble(x', perm) bitwise for ANY x':
        both run the same factored level sweeps, only the (stale)
        permutation is inherited."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal((257, 3))
        m = rng.uniform(0.5, 2.0, 257)
        bvh = build_bvh(x, m, order=order)
        x2 = x + 0.05 * rng.standard_normal(x.shape)
        ref = refit_bvh(bvh, x2)
        reb = assemble_bvh(x2, m, bvh.perm, bvh.box, order=order)
        for name in ("bb_lo", "bb_hi", "com", "mass", "count", "x_sorted"):
            np.testing.assert_array_equal(getattr(ref, name),
                                          getattr(reb, name), err_msg=name)
        if order == 2:
            np.testing.assert_array_equal(ref.quad, reb.quad)

    def test_rejects_changed_body_count(self):
        x = np.random.default_rng(0).standard_normal((64, 3))
        bvh = build_bvh(x, np.ones(64))
        with pytest.raises(ValueError):
            refit_bvh(bvh, x[:32])


# ----------------------------------------------------------------------
# Maintained simulation: zero drift
# ----------------------------------------------------------------------
class TestZeroDrift:
    @pytest.mark.parametrize("alg", ["bvh", "octree"])
    def test_refit_step_bitexact_vs_forced_rebuild(self, alg):
        """At unchanged positions the refit path must reproduce a full
        rebuild bitwise (not just within tolerance)."""
        refitted = _sim(algorithm=alg)
        rebuilt = _sim(algorithm=alg)
        rebuilt._tree_cache.clear()  # forget the epoch -> forced rebuild
        a = refitted.evaluate_forces()  # construction built; this refits
        b = rebuilt.evaluate_forces()
        maint = refitted._tree_cache["_maintainer"]
        assert maint.counts["refit"] >= 1
        np.testing.assert_array_equal(a, b)

    def test_repeated_refits_stable(self):
        sim = _sim()
        a = sim.evaluate_forces()
        b = sim.evaluate_forces()
        np.testing.assert_array_equal(a, b)
        assert sim._tree_cache["_maintainer"].counts["refit"] >= 2


# ----------------------------------------------------------------------
# Maintained simulation: bounded drift
# ----------------------------------------------------------------------
class TestBoundedDrift:
    @pytest.mark.parametrize("alg", ["bvh", "octree"])
    @pytest.mark.parametrize("mode", ["refit", "auto"])
    def test_theta_error_bound_held(self, alg, mode):
        """After several maintained steps the forces stay within the
        cached-list theta bound vs a fresh rebuild at the same state."""
        sim = _sim(algorithm=alg, tree_update=mode, n=400)
        sim.run(6)
        acc = sim.evaluate_forces()
        fresh = Simulation(
            BodySystem(sim.system.x.copy(), sim.system.v.copy(),
                       sim.system.m.copy()),
            _cfg(algorithm=alg, tree_update="rebuild"),
        )
        err = relative_l2_error(acc, fresh.evaluate_forces())
        assert err < 0.12 * THETA

    def test_refits_actually_happen(self):
        sim = _sim(n=400)
        sim.run(6)
        counts = sim._tree_cache["_maintainer"].counts
        assert counts["refit"] >= 3
        assert counts["rebuild"] >= 1  # the construction epoch

    def test_surviving_lists_are_superset_mac(self):
        """Approx entries of gate-surviving cached lists still satisfy
        every member body's MAC (with the drift slack) at the *current*
        positions and refitted geometry."""
        from repro.bvh.force import bvh_tree_view

        sim = _sim(n=400)
        sim.run(5)
        maint = sim._tree_cache["_maintainer"]
        key = ("ilists", THETA, 16)
        cached = maint.entry.get(key)
        assert cached is not None
        lists, groups = cached["lists"], cached["groups"]
        view = bvh_tree_view(maint._bvh)
        x_sorted = maint._bvh.x_sorted
        go = groups.offsets
        checked = 0
        for g in range(lists.n_groups):
            nodes = lists.approx_nodes(g)
            if nodes.size == 0:
                continue
            xs = x_sorted[int(go[g]):int(go[g + 1])]
            for v in nodes:
                d2 = np.min(np.sum((xs - view.com[v]) ** 2, axis=1))
                assert view.size2[v] <= THETA * THETA * d2 * 1.1, (
                    f"group {g} kept node {v} violating a member's MAC")
                checked += 1
        assert checked > 0

    def test_teleport_triggers_rebuild(self):
        sim = _sim(n=300)
        sim.evaluate_forces()  # refit at zero drift
        sim.system.x += 10.0 * np.sign(sim.system.x)  # scatter outward
        sim.evaluate_forces()
        maint = sim._tree_cache["_maintainer"]
        assert maint.last_decision.action == "rebuild"
        assert maint.counts["rebuild"] >= 2


# ----------------------------------------------------------------------
# Disorder measures
# ----------------------------------------------------------------------
class TestDisorder:
    def test_sorted_keys_zero(self):
        s = key_disorder(np.arange(100, dtype=np.uint64))
        assert s.fraction == 0.0 and s.inversion_fraction == 0.0

    def test_reversed_keys_high(self):
        s = key_disorder(np.arange(100, dtype=np.uint64)[::-1])
        assert s.fraction > 0.9

    def test_single_straggler_counts_once(self):
        # One body fell to the back of the curve: it displaces itself
        # only, while the adjacent-inversion count also stays at one.
        k = np.concatenate([np.arange(1, 100), [0]]).astype(np.uint64)
        s = key_disorder(k)
        assert s.displaced == 1 and s.inversions == 1

    def test_coarsen_is_prefix_truncation(self):
        """Hilbert keys are hierarchical: coarsening by shift equals
        re-encoding on the coarser grid."""
        rng = np.random.default_rng(5)
        x = rng.uniform(0.0, 1.0, (500, 3))
        box = compute_bounding_box(x)
        from repro.geometry.aabb import quantize_to_grid

        fine = hilbert_encode(quantize_to_grid(x, box, 9), 9)
        coarse = hilbert_encode(quantize_to_grid(x, box, 4), 4)
        np.testing.assert_array_equal(coarsen_keys(fine, 9, 4, 3), coarse)

    def test_sense_bits_scales_with_n(self):
        assert sense_bits(100, 3) == 3  # floor
        assert sense_bits(10_000, 3, occupancy=32) == 3
        assert sense_bits(10_000_000, 3, occupancy=32) == 7
        assert sense_bits(10_000, 2, occupancy=32) >= sense_bits(10_000, 3)


# ----------------------------------------------------------------------
# Key cache
# ----------------------------------------------------------------------
class TestKeyCache:
    def _setup(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((128, 3))
        return KeyCache(), x, compute_bounding_box(x)

    def test_hit_on_same_buffer(self):
        kc, x, box = self._setup()
        k1 = kc.keys(x, box, bits=8)
        k2 = kc.keys(x, box, bits=8)
        assert kc.hits == 1 and kc.misses == 1
        np.testing.assert_array_equal(k1, k2)

    def test_miss_on_changed_positions_or_grid(self):
        kc, x, box = self._setup()
        kc.keys(x, box, bits=8)
        kc.keys(x + 1e-9, box, bits=8)
        kc.keys(x, box, bits=9)
        kc.keys(x, box, bits=8, curve="morton")
        assert kc.misses == 4 and kc.hits == 0

    def test_lru_eviction(self):
        kc, x, box = self._setup()
        for b in (4, 5, 6, 7, 8):  # capacity 4: bits=4 evicted
            kc.keys(x, box, bits=b)
        kc.keys(x, box, bits=4)
        assert kc.misses == 6

    def test_matches_partitioner_keys(self):
        """Cache and hilbert_keys agree (same cubified-expanded grid)."""
        from repro.distributed.partition import hilbert_keys

        kc, x, box = self._setup()
        np.testing.assert_array_equal(kc.keys(x, box, bits=10),
                                      hilbert_keys(x, box, bits=10))

    def test_encode_charged_only_on_miss(self):
        from repro.stdpar.context import ExecutionContext

        kc, x, box = self._setup()
        ctx = ExecutionContext()
        with ctx.step("encode"):
            kc.keys(x, box, bits=16, ctx=ctx)
        miss_flops = ctx.step_counters.step("encode").flops
        with ctx.step("encode"):
            kc.keys(x, box, bits=16, ctx=ctx)
        hit_flops = ctx.step_counters.step("encode").flops - miss_flops
        assert 0 < hit_flops < 0.1 * miss_flops  # fingerprint only


# ----------------------------------------------------------------------
# Key dedupe: sort consumes precomputed keys
# ----------------------------------------------------------------------
def test_sort_permutation_accepts_precomputed_keys():
    rng = np.random.default_rng(4)
    x = rng.standard_normal((200, 3))
    box = compute_bounding_box(x)
    p1 = hilbert_sort_permutation(x, box, bits=8)
    kc = KeyCache()
    p2 = hilbert_sort_permutation(x, box, bits=8,
                                  keys=kc.keys(x, box, bits=8))
    np.testing.assert_array_equal(p1, p2)


# ----------------------------------------------------------------------
# Distributed runtime
# ----------------------------------------------------------------------
class TestDistributedMaintenance:
    def _mk(self, alg, mode="refit", n=400):
        return Simulation(
            galaxy_collision(n, seed=0),
            _cfg(algorithm=alg, tree_update=mode, ranks=2, group_size=32),
        )

    @pytest.mark.parametrize("alg", ["bvh", "octree"])
    def test_zero_drift_refit_bitexact(self, alg):
        refitted = self._mk(alg)
        rebuilt = self._mk(alg)
        rebuilt.distributed._epoch = None  # forget epoch -> rebuild path
        a = refitted.evaluate_forces()
        b = rebuilt.evaluate_forces()
        assert refitted.distributed.maint_counts["refit"] >= 1
        assert rebuilt.distributed.maint_counts["rebuild"] >= 2
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("alg", ["bvh", "octree"])
    def test_refit_exchange_ships_fewer_bytes(self, alg):
        sim = self._mk(alg)
        sim.evaluate_forces()  # refit step: refresh-only exchange
        refit_bytes = sim.distributed.last_report.let_bytes.sum()
        sim.distributed._epoch = None
        sim.evaluate_forces()  # rebuild step: full LET exchange
        full_bytes = sim.distributed.last_report.let_bytes.sum()
        assert 0 < refit_bytes < full_bytes

    def test_drifted_run_tracks_rebuild_mode(self):
        sim = self._mk("bvh", mode="auto")
        ref = Simulation(
            galaxy_collision(400, seed=0),
            _cfg(algorithm="bvh", tree_update="rebuild", ranks=2,
                 group_size=32),
        )
        sim.run(5)
        ref.run(5)
        dev = relative_l2_error(sim.system.x, ref.system.x)
        assert dev < 1e-3
        assert sim.distributed.maint_counts["refit"] >= 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_profile_runs(capsys):
    from repro.cli import main

    rc = main(["run", "--algorithm", "bvh", "--n", "200", "--steps", "2",
               "--traversal", "grouped", "--tree-update", "auto",
               "--profile"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "--- profile" in out
    assert "tree maintenance:" in out
    assert "refit" in out
