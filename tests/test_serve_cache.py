"""Shared structure cache: fingerprinting, LRU budget, bit-exactness.

The safety argument of cross-session sharing is content addressing:
an entry is only served when the structure key, the complete config
fingerprint, and the blake2b digest of the exact position/mass bytes
all match.  These tests pin the fingerprint's field coverage, the LRU
byte-budget eviction, the hit/miss/eviction counters, and — the part
that matters — that sims sharing a cache produce bit-identical
trajectories to a solo run for every supported algorithm.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.serve import (
    SharedStructureCache,
    config_fingerprint,
    state_digest,
)
from repro.workloads import plummer_sphere

N = 96
STEPS = 5


def _cfg(**kw) -> SimulationConfig:
    base = dict(algorithm="octree", traversal="grouped", group_size=16)
    base.update(kw)
    return SimulationConfig(**base)


# ---------------------------------------------------------------------------
# Fingerprint + digest keying
# ---------------------------------------------------------------------------
class TestFingerprint:
    def test_excludes_cost_only_fields(self):
        base = _cfg()
        for field, value in [("dt", 0.25), ("simt_width", 64),
                             ("rebalance_steps", 7)]:
            varied = dataclasses.replace(base, **{field: value})
            assert config_fingerprint(base) == config_fingerprint(varied), \
                field

    @pytest.mark.parametrize("field,value", [
        ("theta", 0.9),
        ("algorithm", "bvh"),
        ("traversal", "dual"),
        ("group_size", 32),
        ("multipole_order", 2),
    ])
    def test_includes_structure_relevant_fields(self, field, value):
        base = _cfg()
        varied = dataclasses.replace(base, **{field: value})
        assert config_fingerprint(base) != config_fingerprint(varied)

    def test_state_digest_tracks_exact_bytes(self):
        sys_a = plummer_sphere(N, seed=1)
        sys_b = plummer_sphere(N, seed=1)
        assert state_digest(sys_a.x, sys_a.m) == \
            state_digest(sys_b.x, sys_b.m)
        sys_b.x[0, 0] = np.nextafter(sys_b.x[0, 0], np.inf)
        assert state_digest(sys_a.x, sys_a.m) != \
            state_digest(sys_b.x, sys_b.m)

    def test_supports_only_stateless_configs(self):
        assert SharedStructureCache.supports(_cfg())
        assert not SharedStructureCache.supports(
            _cfg(tree_reuse_steps=3))
        assert not SharedStructureCache.supports(
            _cfg(tree_update="refit"))
        assert not SharedStructureCache.supports(_cfg(ranks=2))


# ---------------------------------------------------------------------------
# LRU byte budget + counters
# ---------------------------------------------------------------------------
class TestEviction:
    def _store_states(self, cache, count, n=64):
        cfg = _cfg()
        systems = [plummer_sphere(n, seed=s) for s in range(count)]
        for sys_ in systems:
            entry = cache.store("octree", cfg, sys_,
                                {"payload": sys_.x.copy()})
            assert entry is not None
        return systems

    def test_lru_eviction_under_byte_budget(self):
        # Each payload is 64 * 3 * 8 = 1536 bytes; budget fits ~2.
        cache = SharedStructureCache(byte_budget=4000)
        systems = self._store_states(cache, 4)
        assert cache.stats["evictions"] > 0
        assert cache.nbytes <= 4000
        cfg = _cfg()
        # Newest entry survived, oldest was evicted.
        assert cache.lookup("octree", cfg, systems[-1]) is not None
        assert cache.lookup("octree", cfg, systems[0]) is None

    def test_newest_entry_never_evicted(self):
        # A budget smaller than one entry still keeps the latest store
        # (the force evaluation in flight is populating it).
        cache = SharedStructureCache(byte_budget=100)
        systems = self._store_states(cache, 3)
        assert len(cache) == 1
        assert cache.lookup("octree", _cfg(), systems[-1]) is not None

    def test_hit_miss_counters(self):
        cache = SharedStructureCache()
        cfg = _cfg()
        sys_ = plummer_sphere(64, seed=0)
        assert cache.lookup("octree", cfg, sys_) is None
        cache.store("octree", cfg, sys_, {"x": sys_.x})
        assert cache.lookup("octree", cfg, sys_) is not None
        stats = cache.stats_dict()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["stores"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_unsupported_config_bypasses_cache(self):
        cache = SharedStructureCache()
        cfg = _cfg(tree_reuse_steps=3)
        sys_ = plummer_sphere(64, seed=0)
        assert cache.store("octree", cfg, sys_, {}) is None
        assert cache.lookup("octree", cfg, sys_) is None
        assert cache.stats["misses"] == 0  # not even counted


# ---------------------------------------------------------------------------
# Bit-exactness of shared evaluation
# ---------------------------------------------------------------------------
class TestSharedBitExactness:
    @pytest.mark.parametrize("algorithm", ["octree", "bvh", "octree-2stage"])
    def test_twin_sims_match_solo_run(self, algorithm):
        """Interleaved twins sharing a cache == an unshared solo run."""
        cfg = _cfg(algorithm=algorithm)

        def make():
            return plummer_sphere(N, seed=11)

        solo = Simulation(make(), cfg)
        solo.advance(STEPS)

        shared = SharedStructureCache()
        twins = [
            Simulation(make(), cfg, tree_cache={"_shared": shared})
            for _ in range(2)
        ]
        for _ in range(STEPS):
            for sim in twins:
                sim.advance(1)

        for sim in twins:
            np.testing.assert_array_equal(sim.system.x, solo.system.x)
            np.testing.assert_array_equal(sim.system.v, solo.system.v)
        # The lockstep twins actually shared: at least one hit per step
        # after the first evaluation.
        assert shared.stats["hits"] >= STEPS
