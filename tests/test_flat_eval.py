"""Flattened batch evaluation (:mod:`repro.traversal.flat`).

The flat evaluator is a pure re-execution strategy for the cached
interaction lists: it must match the tile evaluator to float64
round-off (the tile path is the deterministic reference), dedupe the
symmetric near field without breaking Newton's third law, and live in
the structure cache so list invalidation drops it in the same stroke.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations_grouped, bvh_tree_view
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations_grouped
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.accuracy import relative_l2_error
from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams
from repro.traversal import build_flat_lists, evaluate_flat, make_groups
from repro.traversal.engine import build_interaction_lists
from repro.traversal.flat import Segments
from repro.workloads import galaxy_collision

RTOL = 1e-12


def _octree(x, m, *, order=1, bits=None):
    pool = build_octree_vectorized(x, bits=bits)
    compute_multipoles_vectorized(pool, x, m, None, order=order)
    return pool


def _forces(system, **cfg_kw):
    sys2 = BodySystem(system.x.copy(), system.v.copy(), system.m.copy())
    sim = Simulation(sys2, SimulationConfig(**cfg_kw))
    return sim.evaluate_forces(), sim


class TestFlatMatchesTile:
    """flat is a kernel-level rewrite of tile: agreement to round-off."""

    @pytest.mark.parametrize("theta", [0.3, 0.7])
    def test_bvh(self, small_cloud, soft_gravity, theta):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        tile = bvh_accelerations_grouped(bvh, soft_gravity, theta=theta,
                                         group_size=16, eval_mode="tile")
        flat = bvh_accelerations_grouped(bvh, soft_gravity, theta=theta,
                                         group_size=16, eval_mode="flat")
        assert relative_l2_error(flat, tile) < RTOL

    @pytest.mark.parametrize("theta", [0.3, 0.7])
    def test_octree(self, small_cloud, soft_gravity, theta):
        pool = _octree(small_cloud.x, small_cloud.m)
        kw = dict(params=soft_gravity, theta=theta, group_size=16)
        tile = octree_accelerations_grouped(pool, small_cloud.x,
                                            small_cloud.m, eval_mode="tile",
                                            **kw)
        flat = octree_accelerations_grouped(pool, small_cloud.x,
                                            small_cloud.m, eval_mode="flat",
                                            **kw)
        assert relative_l2_error(flat, tile) < RTOL

    def test_octree_bucket_leaves(self, soft_gravity):
        """Coarse grid forces multi-body buckets into the exact path."""
        rng = np.random.default_rng(7)
        x = np.repeat(rng.random((20, 3)), 4, axis=0)
        x += 1e-9 * rng.standard_normal(x.shape)
        m = rng.random(x.shape[0]) + 0.1
        pool = _octree(x, m, bits=3)
        kw = dict(params=soft_gravity, theta=0.5, group_size=8)
        tile = octree_accelerations_grouped(pool, x, m, eval_mode="tile", **kw)
        flat = octree_accelerations_grouped(pool, x, m, eval_mode="flat", **kw)
        assert relative_l2_error(flat, tile) < RTOL

    def test_quadrupole_streaming_path(self, small_cloud, soft_gravity):
        """Order-2 moments disable dense batching; the streaming node
        kernel with its quadrupole sub-gather must still match tile."""
        bvh = build_bvh(small_cloud.x, small_cloud.m, order=2)
        tile = bvh_accelerations_grouped(bvh, soft_gravity, theta=0.6,
                                         group_size=16, eval_mode="tile")
        flat = bvh_accelerations_grouped(bvh, soft_gravity, theta=0.6,
                                         group_size=16, eval_mode="flat")
        assert relative_l2_error(flat, tile) < RTOL
        view = bvh_tree_view(bvh)
        groups = make_groups(bvh.x_sorted, 16)
        lists = build_interaction_lists(view, groups, 0.6)
        fl = build_flat_lists(view, lists, groups)
        assert fl.a_dense is None  # quad trees stream, never batch dense

    def test_eps2_zero(self, small_cloud):
        """Unsoftened gravity: self pairs are excluded, not clamped."""
        params = GravityParams(G=1.0, softening=0.0)
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        tile = bvh_accelerations_grouped(bvh, params, group_size=16,
                                         eval_mode="tile")
        flat = bvh_accelerations_grouped(bvh, params, group_size=16,
                                         eval_mode="flat")
        assert np.all(np.isfinite(flat))
        assert relative_l2_error(flat, tile) < RTOL

    def test_group_size_one(self, small_cloud, soft_gravity):
        """Degenerate groups: every near pair is a single body pair."""
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        tile = bvh_accelerations_grouped(bvh, soft_gravity, group_size=1,
                                         eval_mode="tile")
        flat = bvh_accelerations_grouped(bvh, soft_gravity, group_size=1,
                                         eval_mode="flat")
        assert relative_l2_error(flat, tile) < RTOL

    def test_auto_mode_selection(self, small_cloud, soft_gravity):
        """auto = tile for singleton groups, flat for cached multi-body
        groups, gemm for uncached one-shot calls."""
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        cache: dict = {}
        auto = bvh_accelerations_grouped(bvh, soft_gravity, group_size=16,
                                         eval_mode="auto", cache=cache)
        (entry,) = cache.values()
        assert "flat" in entry  # cached multi-body groups pick flat
        flat = bvh_accelerations_grouped(bvh, soft_gravity, group_size=16,
                                         eval_mode="flat")
        assert np.array_equal(auto, flat)
        uncached = bvh_accelerations_grouped(bvh, soft_gravity,
                                             group_size=16, eval_mode="auto")
        gemm = bvh_accelerations_grouped(bvh, soft_gravity, group_size=16,
                                         eval_mode="gemm")
        assert np.array_equal(uncached, gemm)
        auto1 = bvh_accelerations_grouped(bvh, soft_gravity, group_size=1,
                                          eval_mode="auto")
        tile1 = bvh_accelerations_grouped(bvh, soft_gravity, group_size=1,
                                          eval_mode="tile")
        assert np.array_equal(auto1, tile1)


class TestNewtonThirdLaw:
    def _flat(self, n=500, group_size=16, theta=0.5):
        s = galaxy_collision(n, seed=11)
        bvh = build_bvh(s.x, s.m)
        view = bvh_tree_view(bvh)
        groups = make_groups(bvh.x_sorted, group_size)
        lists = build_interaction_lists(view, groups, theta)
        return bvh, view, groups, build_flat_lists(view, lists, groups)

    def test_dedup_counts(self):
        _, _, _, fl = self._flat()
        assert fl.pairs_evaluated == fl.n_two_sided + fl.n_one_sided
        # naive counts ordered pairs: both orientations of every
        # two-sided pair, one of every one-sided pair.
        assert fl.pairs_naive == 2 * fl.n_two_sided + fl.n_one_sided
        ratio = fl.pairs_naive / fl.pairs_evaluated
        assert 1.0 < ratio <= 2.0

    def test_two_sided_pool_conserves_momentum(self):
        """Each deduped pair scatters an equal and opposite impulse."""
        bvh, view, _, fl = self._flat()
        empty_i = np.zeros(0, dtype=np.int64)
        empty_segs = Segments(empty_i, empty_i)
        two_only = dataclasses.replace(
            fl, a_row=empty_i, a_node=empty_i, a_quad=None, a_segs=empty_segs,
            o_t=empty_i, o_s=empty_i, o_segs=empty_segs,
            a_dense=None, _scratch={})
        assert two_only.n_two_sided > 0
        acc, _ = evaluate_flat(view, two_only, bvh.x_sorted,
                               G=1.0, eps2=1e-4, m_sorted=bvh.m_sorted)
        assert np.any(acc != 0.0)
        net = (bvh.m_sorted[:, None] * acc).sum(axis=0)
        scale = np.abs(bvh.m_sorted[:, None] * acc).sum(axis=0).max()
        assert np.all(np.abs(net) < 1e-12 * scale)

    def test_stats_expose_dedup(self):
        bvh, view, _, fl = self._flat()
        _, stats = evaluate_flat(view, fl, bvh.x_sorted,
                                 G=1.0, eps2=1e-4, m_sorted=bvh.m_sorted)
        assert stats["near_pairs_naive"] == fl.pairs_naive
        assert stats["near_pairs_evaluated"] == fl.pairs_evaluated
        assert stats["flat_launches"] >= 1

    def test_monopole_galaxy_uses_dense_batches(self):
        _, _, _, fl = self._flat()
        assert fl.a_dense is not None and len(fl.a_dense) >= 1
        assert fl.a_row.shape[0] == 0  # node pool fully batched
        assert fl.n_node_pairs == sum(b.n_real for b in fl.a_dense)


class TestStructureCache:
    def test_flat_lists_cached_and_reused(self, small_cloud, soft_gravity):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        cache: dict = {}
        a1 = bvh_accelerations_grouped(bvh, soft_gravity, group_size=16,
                                       eval_mode="flat", cache=cache)
        (entry,) = cache.values()
        first = entry["flat"]
        a2 = bvh_accelerations_grouped(bvh, soft_gravity, group_size=16,
                                       eval_mode="flat", cache=cache)
        assert entry["flat"] is first  # no per-step rebuild
        assert np.array_equal(a1, a2)

    def test_invalidated_with_lists(self, small_cloud, soft_gravity):
        """The maintainer drops the whole entry on rebuild; a fresh
        entry dict must trigger a flat rebuild, not a stale reuse."""
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        cache: dict = {}
        bvh_accelerations_grouped(bvh, soft_gravity, group_size=16,
                                  eval_mode="flat", cache=cache)
        (entry,) = cache.values()
        first = entry["flat"]
        cache.clear()  # what _store_structure does on rebuild
        bvh_accelerations_grouped(bvh, soft_gravity, group_size=16,
                                  eval_mode="flat", cache=cache)
        (entry2,) = cache.values()
        assert entry2["flat"] is not first

    def test_refit_epoch_reuses_flat_lists(self):
        """Refit rewrites com/mass but not topology: the flat index
        arrays survive the epoch and the trajectory stays sane."""
        s = galaxy_collision(400, seed=5)
        sim = Simulation(s, SimulationConfig(
            algorithm="bvh", traversal="grouped", eval_mode="flat",
            tree_update="refit", group_size=16))
        rep = sim.run(6)
        totals = rep.counters.total().as_dict()
        assert totals["flat_launches"] > 0
        assert totals["near_pairs_evaluated"] > 0
        assert totals["near_pairs_naive"] > totals["near_pairs_evaluated"]
        assert np.all(np.isfinite(s.x)) and np.all(np.isfinite(s.v))


class TestDistributed:
    @pytest.mark.parametrize("alg", ["bvh", "octree"])
    def test_ranks2_flat_matches_tile(self, alg):
        s = galaxy_collision(500, seed=3)
        tile, _ = _forces(s, algorithm=alg, traversal="grouped",
                          eval_mode="tile", ranks=2)
        flat, _ = _forces(s, algorithm=alg, traversal="grouped",
                          eval_mode="flat", ranks=2)
        assert relative_l2_error(flat, tile) < RTOL
