"""Tests for snapshot I/O and the trajectory recorder."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.core.trace import TrajectoryRecorder
from repro.io import load_snapshot, save_snapshot
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision

PARAMS = GravityParams(softening=0.05)


class TestSnapshots:
    def test_roundtrip_exact(self, tmp_path, small_cloud):
        p = tmp_path / "snap.npz"
        save_snapshot(p, small_cloud, time=1.25, metadata={"seed": 7})
        loaded, header = load_snapshot(p)
        assert np.array_equal(loaded.x, small_cloud.x)
        assert np.array_equal(loaded.v, small_cloud.v)
        assert np.array_equal(loaded.m, small_cloud.m)
        assert header["time"] == 1.25
        assert header["metadata"] == {"seed": 7}
        assert header["n"] == small_cloud.n

    def test_loaded_system_is_independent(self, tmp_path, small_cloud):
        p = tmp_path / "snap.npz"
        save_snapshot(p, small_cloud)
        loaded, _ = load_snapshot(p)
        loaded.x += 1.0
        assert not np.allclose(loaded.x, small_cloud.x)

    def test_resume_simulation_from_snapshot(self, tmp_path):
        """A checkpointed run continues bit-identically."""
        cfg = SimulationConfig(algorithm="bvh", dt=1e-3, gravity=PARAMS)
        a = galaxy_collision(150, seed=0)
        sim_a = Simulation(a, cfg)
        sim_a.run(3)
        p = tmp_path / "ckpt.npz"
        save_snapshot(p, a, time=sim_a.time)
        sim_a.run(3)

        b, header = load_snapshot(p)
        sim_b = Simulation(b, cfg)
        sim_b.run(3)
        assert np.allclose(a.x, b.x, atol=1e-15)

    def test_version_check(self, tmp_path, small_cloud):
        import json

        p = tmp_path / "bad.npz"
        header = {"format_version": 99, "n": 1, "dim": 3, "time": 0, "metadata": {}}
        np.savez(p, x=small_cloud.x, v=small_cloud.v, m=small_cloud.m,
                 header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8))
        with pytest.raises(ValueError):
            load_snapshot(p)


class TestTrajectoryRecorder:
    def make(self, **kw):
        s = galaxy_collision(150, seed=1)
        sim = Simulation(s, SimulationConfig(algorithm="octree", theta=0.3,
                                             dt=1e-3, gravity=PARAMS))
        return TrajectoryRecorder(sim, **kw)

    def test_samples_at_cadence(self):
        rec = self.make(sample_every=5)
        trace = rec.run(20)
        assert len(trace) == 5  # initial + 4 chunks
        assert trace.samples[0].time == 0.0
        assert trace.samples[-1].step == 20

    def test_energy_drift_small(self):
        rec = self.make(sample_every=4)
        trace = rec.run(16)
        assert trace.max_energy_drift() < 1e-4

    def test_momentum_drift_small(self):
        rec = self.make(sample_every=4)
        trace = rec.run(16)
        assert trace.max_momentum_drift() < 1e-5

    def test_without_potential(self):
        rec = self.make(sample_every=2, compute_potential=False)
        trace = rec.run(4)
        assert all(s.total_energy is None for s in trace.samples)
        assert np.isnan(trace.max_energy_drift())

    def test_partial_chunk(self):
        rec = self.make(sample_every=4)
        trace = rec.run(6)  # 4 + 2
        assert [s.step for s in trace.samples] == [0, 4, 6]

    def test_invalid_cadence(self):
        with pytest.raises(ValueError):
            self.make(sample_every=0)
