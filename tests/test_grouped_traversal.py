"""Group-coherent traversal: exactness, accuracy, caching, accounting.

The contracts under test:

* at ``group_size=1`` (monopole order) the grouped path is *bit
  identical* to the per-body lockstep walk, for both tree strategies;
* the group MAC is conservative — every node a group accepts would be
  accepted by every member body individually — so grouped accelerations
  stay within the same all-pairs error bound the lockstep kernels obey;
* interaction lists live in the structure-cache entry and expire with
  it, and the counters split list-build from list-eval work.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.build import build_bvh
from repro.bvh.force import (
    _bvh_tree_view,
    bvh_accelerations,
    bvh_accelerations_grouped,
)
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError
from repro.machine.catalog import get_device
from repro.machine.costmodel import CostModel
from repro.machine.counters import Counters
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import (
    _hilbert_body_order,
    _octree_tree_view,
    octree_accelerations,
    octree_accelerations_grouped,
)
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.accuracy import relative_l2_error
from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.stdpar.context import ExecutionContext
from repro.traversal import build_interaction_lists, make_groups
from repro.workloads import galaxy_collision

THETAS = [0.25, 0.5, 1.0]


def random_system(seed: int, n: int, clustered: bool) -> BodySystem:
    rng = np.random.default_rng(seed)
    if clustered:
        centers = rng.random((4, 3)) * 4.0
        x = (centers[rng.integers(0, 4, n)]
             + 0.3 * rng.standard_normal((n, 3)))
    else:
        x = rng.random((n, 3))
    m = rng.random(n) + 0.05
    return BodySystem(x, np.zeros((n, 3)), m)


def _octree(system, *, order=1, bits=None):
    pool = build_octree_vectorized(system.x, bits=bits)
    compute_multipoles_vectorized(pool, system.x, system.m, None, order=order)
    return pool


class TestGroups:
    def test_partition_and_boxes(self, small_cloud):
        x = np.sort(small_cloud.x, axis=0)  # any order works
        groups = make_groups(x, 16)
        assert groups.n_bodies == x.shape[0]
        assert groups.offsets[0] == 0 and groups.offsets[-1] == x.shape[0]
        for g in range(groups.n_groups):
            xg = x[groups.members(g)]
            assert np.array_equal(groups.lo[g], xg.min(axis=0))
            assert np.array_equal(groups.hi[g], xg.max(axis=0))

    def test_group_size_one_boxes_degenerate(self, tiny_cloud):
        groups = make_groups(tiny_cloud.x, 1)
        assert groups.n_groups == tiny_cloud.x.shape[0]
        assert groups.max_group_size == 1
        assert np.array_equal(groups.lo, tiny_cloud.x)
        assert np.array_equal(groups.hi, tiny_cloud.x)

    def test_empty_and_invalid(self):
        groups = make_groups(np.empty((0, 3)), 8)
        assert groups.n_groups == 0 and groups.max_group_size == 0
        with pytest.raises(ValueError):
            make_groups(np.zeros((4, 3)), 0)


class TestBitExactAtGroupSizeOne:
    @pytest.mark.parametrize("theta", THETAS)
    def test_octree(self, small_cloud, soft_gravity, theta):
        pool = _octree(small_cloud)
        a = octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                 soft_gravity, theta=theta)
        b = octree_accelerations_grouped(pool, small_cloud.x, small_cloud.m,
                                         soft_gravity, theta=theta,
                                         group_size=1)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("theta", THETAS)
    def test_bvh(self, small_cloud, soft_gravity, theta):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        a = bvh_accelerations(bvh, soft_gravity, theta=theta)
        b = bvh_accelerations_grouped(bvh, soft_gravity, theta=theta,
                                      group_size=1)
        assert np.array_equal(a, b)

    def test_octree_2d(self, cloud_2d, soft_gravity):
        pool = _octree(cloud_2d)
        a = octree_accelerations(pool, cloud_2d.x, cloud_2d.m,
                                 soft_gravity, theta=0.5)
        b = octree_accelerations_grouped(pool, cloud_2d.x, cloud_2d.m,
                                         soft_gravity, theta=0.5,
                                         group_size=1)
        assert np.array_equal(a, b)

    def test_octree_bucket_leaves(self, soft_gravity):
        """Coarse grid forces multi-body buckets; expansion stays exact."""
        rng = np.random.default_rng(7)
        x = np.repeat(rng.random((20, 3)), 4, axis=0)
        x += 1e-9 * rng.standard_normal(x.shape)
        m = rng.random(x.shape[0]) + 0.1
        pool = build_octree_vectorized(x, bits=3)
        compute_multipoles_vectorized(pool, x, m, None)
        a = octree_accelerations(pool, x, m, soft_gravity, theta=0.5)
        b = octree_accelerations_grouped(x=x, m=m, pool=pool,
                                         params=soft_gravity, theta=0.5,
                                         group_size=1)
        assert np.array_equal(a, b)

    @given(st.integers(0, 2**32 - 1), st.integers(2, 120),
           st.booleans(), st.sampled_from(THETAS))
    @settings(max_examples=20, deadline=None)
    def test_property_octree(self, seed, n, clustered, theta):
        s = random_system(seed, n, clustered)
        params = GravityParams(softening=1e-3)
        pool = _octree(s, bits=12)
        a = octree_accelerations(pool, s.x, s.m, params, theta=theta)
        b = octree_accelerations_grouped(pool, s.x, s.m, params,
                                         theta=theta, group_size=1)
        assert np.array_equal(a, b)

    @given(st.integers(0, 2**32 - 1), st.integers(2, 120),
           st.booleans(), st.sampled_from(THETAS))
    @settings(max_examples=20, deadline=None)
    def test_property_bvh(self, seed, n, clustered, theta):
        s = random_system(seed, n, clustered)
        params = GravityParams(softening=1e-3)
        bvh = build_bvh(s.x, s.m)
        a = bvh_accelerations(bvh, params, theta=theta)
        b = bvh_accelerations_grouped(bvh, params, theta=theta, group_size=1)
        assert np.array_equal(a, b)


class TestAccuracy:
    """Grouped results obey the same all-pairs bounds as lockstep."""

    @pytest.mark.parametrize("theta", THETAS)
    @pytest.mark.parametrize("group_size", [4, 32])
    def test_octree_within_bound(self, small_cloud, soft_gravity,
                                 theta, group_size):
        pool = _octree(small_cloud)
        acc = octree_accelerations_grouped(pool, small_cloud.x, small_cloud.m,
                                           soft_gravity, theta=theta,
                                           group_size=group_size)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m,
                                     soft_gravity)
        assert np.abs(acc - ref).max() / np.abs(ref).max() < 0.12 * theta + 1e-9

    @pytest.mark.parametrize("theta", THETAS)
    @pytest.mark.parametrize("group_size", [4, 32])
    def test_bvh_within_bound(self, small_cloud, soft_gravity,
                              theta, group_size):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        acc = bvh_accelerations_grouped(bvh, soft_gravity, theta=theta,
                                        group_size=group_size)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m,
                                     soft_gravity)
        assert np.abs(acc - ref).max() / np.abs(ref).max() < 0.25 * theta

    def test_grouped_no_worse_than_lockstep(self, small_cloud, soft_gravity):
        """Conservative MAC only opens more nodes than per-body would."""
        pool = _octree(small_cloud)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m,
                                     soft_gravity)
        lock = octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                    soft_gravity, theta=0.5)
        grp = octree_accelerations_grouped(pool, small_cloud.x, small_cloud.m,
                                           soft_gravity, theta=0.5,
                                           group_size=16)
        assert (relative_l2_error(grp, ref)
                <= relative_l2_error(lock, ref) + 1e-12)

    def test_conservative_mac_subset_property(self, small_cloud):
        """Every group-accepted node passes the per-body MAC for every
        member — the structural fact behind the error-bound claims."""
        theta = 0.5
        pool = _octree(small_cloud)
        view = _octree_tree_view(pool)
        perm = _hilbert_body_order(small_cloud.x, pool.box)
        xs = small_cloud.x[perm]
        groups = make_groups(xs, 16)
        lists = build_interaction_lists(view, groups, theta)
        assert lists.n_approx > 0
        for g in range(groups.n_groups):
            nodes = lists.approx_nodes(g)
            if nodes.size == 0:
                continue
            xg = xs[groups.members(g)]
            d = view.com[nodes][None, :, :] - xg[:, None, :]
            r2 = np.einsum("bkd,bkd->bk", d, d)
            assert np.all(view.size2[nodes][None, :] < theta**2 * r2)

    def test_tile_matches_gemm(self, small_cloud, soft_gravity):
        pool = _octree(small_cloud)
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        for tile, gemm in [
            (octree_accelerations_grouped(pool, small_cloud.x, small_cloud.m,
                                          soft_gravity, group_size=16,
                                          eval_mode="tile"),
             octree_accelerations_grouped(pool, small_cloud.x, small_cloud.m,
                                          soft_gravity, group_size=16,
                                          eval_mode="gemm")),
            (bvh_accelerations_grouped(bvh, soft_gravity, group_size=16,
                                       eval_mode="tile"),
             bvh_accelerations_grouped(bvh, soft_gravity, group_size=16,
                                       eval_mode="gemm")),
        ]:
            assert np.allclose(tile, gemm, rtol=1e-9, atol=1e-11)

    def test_quadrupole_grouped(self, small_cloud, soft_gravity):
        """Order-2 moments flow through the tile kernels too."""
        pool = _octree(small_cloud, order=2)
        lock = octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                    soft_gravity, theta=0.5)
        grp1 = octree_accelerations_grouped(pool, small_cloud.x,
                                            small_cloud.m, soft_gravity,
                                            theta=0.5, group_size=1)
        assert np.allclose(grp1, lock, rtol=1e-12, atol=1e-14)
        bvh = build_bvh(small_cloud.x, small_cloud.m, order=2)
        lockb = bvh_accelerations(bvh, soft_gravity, theta=0.5)
        grpb = bvh_accelerations_grouped(bvh, soft_gravity, theta=0.5,
                                         group_size=16)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m,
                                     soft_gravity)
        assert relative_l2_error(grpb, ref) < 0.25 * 0.5
        assert relative_l2_error(grpb, lockb) < 0.05


class TestConfig:
    def test_defaults(self):
        cfg = SimulationConfig()
        assert cfg.traversal == "lockstep"
        assert cfg.group_size == 32

    @pytest.mark.parametrize("bad", ["warp", "", "GROUPED"])
    def test_invalid_traversal(self, bad):
        with pytest.raises(ConfigurationError):
            SimulationConfig(traversal=bad)

    @pytest.mark.parametrize("bad", [0, -4, 2.5])
    def test_invalid_group_size(self, bad):
        with pytest.raises(ConfigurationError):
            SimulationConfig(group_size=bad)


def run_sim(alg, *, traversal="grouped", reuse=1, steps=4, n=200,
            group_size=16):
    s = galaxy_collision(n, seed=1)
    cfg = SimulationConfig(algorithm=alg, theta=0.4, dt=1e-3,
                           gravity=GravityParams(softening=0.05),
                           tree_reuse_steps=reuse, traversal=traversal,
                           group_size=group_size)
    sim = Simulation(s, cfg)
    rep = sim.run(steps)
    return s, rep, sim


class TestSimulationIntegration:
    @pytest.mark.parametrize("alg", ["octree", "bvh", "octree-2stage"])
    def test_grouped_tracks_lockstep(self, alg):
        a, _, _ = run_sim(alg, traversal="lockstep")
        b, _, _ = run_sim(alg, traversal="grouped")
        assert np.all(np.isfinite(b.x))
        # Both approximate the same dynamics at the same theta.
        assert relative_l2_error(b.x, a.x) < 1e-3

    def test_lists_cached_with_structure(self):
        _, _, sim = run_sim("octree", reuse=4)
        entry = sim._tree_cache["octree"]
        assert "structure" in entry and "age" in entry  # shape intact
        assert ("ilists", 0.4, 16) in entry

    def test_cache_reuse_skips_list_builds(self):
        _, rep1, _ = run_sim("octree", reuse=1, steps=8)
        _, rep4, _ = run_sim("octree", reuse=4, steps=8)
        b1 = rep1.counters.steps["force"].list_build_steps
        b4 = rep4.counters.steps["force"].list_build_steps
        assert 0 < b4 < 0.5 * b1
        # eval work is the same every step, cached lists or not
        e1 = rep1.counters.steps["force"].interaction_list_size
        e4 = rep4.counters.steps["force"].interaction_list_size
        assert e1 > 0 and e4 > 0

    def test_lockstep_runs_charge_no_lists(self):
        _, rep, _ = run_sim("octree", traversal="lockstep")
        assert rep.counters.steps["force"].interaction_list_size == 0


class TestCounters:
    def test_build_vs_eval_split(self, small_cloud, soft_gravity):
        pool = _octree(small_cloud)
        cache: dict = {}
        ctx = ExecutionContext()
        octree_accelerations_grouped(pool, small_cloud.x, small_cloud.m,
                                     soft_gravity, theta=0.5, group_size=16,
                                     ctx=ctx, cache=cache)
        c = ctx.counters
        assert c.list_build_steps > 0
        assert c.interaction_list_size > 0
        assert c.list_eval_interactions > 0
        # Warp-synchronous walk: no divergence inflation.
        assert c.warp_traversal_steps == c.traversal_steps == c.list_build_steps
        assert c.kernel_launches == 2.0

        cached_ctx = ExecutionContext()
        octree_accelerations_grouped(pool, small_cloud.x, small_cloud.m,
                                     soft_gravity, theta=0.5, group_size=16,
                                     ctx=cached_ctx, cache=cache)
        cc = cached_ctx.counters
        assert cc.list_build_steps == 0
        assert cc.interaction_list_size == c.interaction_list_size
        assert cc.list_eval_interactions == c.list_eval_interactions
        assert cc.kernel_launches == 1.0

    def test_cache_entry_reused_object(self, small_cloud, soft_gravity):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        cache: dict = {}
        bvh_accelerations_grouped(bvh, soft_gravity, group_size=8,
                                  cache=cache)
        key = ("ilists", 0.5, 8)
        lists = cache[key]["lists"]
        bvh_accelerations_grouped(bvh, soft_gravity, group_size=8,
                                  cache=cache)
        assert cache[key]["lists"] is lists

    def test_costmodel_charges_list_roundtrip(self):
        base = dict(flops=1e9, bytes_read=1e8, traversal_steps=1e5,
                    warp_traversal_steps=1e5)
        model = CostModel(get_device("gh200"))
        without = model.step_time(Counters(**base))
        with_lists = model.step_time(
            Counters(**base, interaction_list_size=1e8,
                     list_build_steps=1e5, list_eval_interactions=1e9))
        assert with_lists.memory > without.memory
