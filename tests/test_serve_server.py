"""SessionServer end-to-end: determinism, time-slicing, sharing.

The three properties the service layer stands on:

* **Determinism** — two runs over the same seeded traffic produce
  byte-identical result payloads and byte-identical trace exports.
* **Bit-exact time-slicing** — ``max_resident=1`` forces every context
  switch through the checkpoint suspend/resume path, and every session
  still produces exactly the final state of unlimited residency (even
  mid-epoch, with tree-reuse configs).
* **Structure sharing** — identical-config tenants through the shared
  cache complete in materially less modeled time than isolated ones,
  with identical results.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import SimulationConfig
from repro.obs import Tracer, chrome_trace
from repro.serve import (
    QueueDepthWatchdog,
    SessionServer,
    SessionSpec,
    generate_traffic,
    RequestClass,
)

SEED = 7


def _cfg(**kw) -> SimulationConfig:
    base = dict(algorithm="octree", traversal="grouped", group_size=16)
    base.update(kw)
    return SimulationConfig(**base)


def _traffic(**kw):
    base = dict(seed=SEED, tenants=3, sessions_per_tenant=2,
                classes=[RequestClass("mix", "plummer", n=96, steps=5)],
                mean_interarrival=1e-5)
    base.update(kw)
    return generate_traffic(**base)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_result_payload_byte_identical(self):
        def run():
            res = SessionServer(quantum_steps=2).run(_traffic())
            return json.dumps(res.as_dict(), sort_keys=True)

        assert run() == run()

    def test_trace_export_byte_identical(self):
        def run():
            tracer = Tracer()
            server = SessionServer(quantum_steps=2, tracer=tracer)
            server.run(_traffic())
            return json.dumps(chrome_trace(tracer), sort_keys=True,
                              separators=(",", ":"))

        assert run() == run()

    def test_summary_renders(self):
        res = SessionServer(quantum_steps=2).run(_traffic())
        text = res.summary()
        assert "latency p50=" in text
        assert "tenant-0" in text
        assert "shared cache:" in text


# ---------------------------------------------------------------------------
# Time-slicing through the checkpoint path
# ---------------------------------------------------------------------------
class TestResidencyTimeSlicing:
    @pytest.mark.parametrize("cfg_kw", [
        {},                                        # stateless rebuild
        {"tree_reuse_steps": 3},                   # mid-epoch suspend
        {"algorithm": "bvh", "tree_update": "refit"},
    ])
    def test_single_slot_matches_unlimited(self, cfg_kw):
        specs = _traffic(
            classes=[RequestClass("slice", "plummer", n=96, steps=5,
                                  config=_cfg(**cfg_kw))])

        def digests(max_resident):
            server = SessionServer(
                quantum_steps=2, max_resident=max_resident,
                shared_cache=False)
            res = server.run(specs)
            return {(r["tenant"], r["name"]): r["result"]
                    for r in res.sessions}

        unlimited = digests(None)
        sliced = digests(1)
        assert sliced == unlimited
        assert all(d is not None for d in unlimited.values())

    def test_suspends_actually_happened(self):
        specs = _traffic()
        server = SessionServer(quantum_steps=1, max_resident=1,
                               shared_cache=False)
        res = server.run(specs)
        suspends = sum(
            server.tenant_metrics(t).as_dict()["counters"]
            .get("serve.suspends", 0)
            for t in res.tenants
        )
        assert suspends > 0


# ---------------------------------------------------------------------------
# Cross-session structure sharing
# ---------------------------------------------------------------------------
class TestSharing:
    def _identical_traffic(self):
        return generate_traffic(
            seed=SEED, tenants=8, sessions_per_tenant=1, identical=True,
            classes=[RequestClass("twin", "plummer", n=192, steps=6,
                                  config=_cfg())])

    def test_shared_vs_isolated_speedup_and_equality(self):
        specs = self._identical_traffic()
        shared = SessionServer(quantum_steps=2, shared_cache=True)
        res_shared = shared.run(specs)
        isolated = SessionServer(quantum_steps=2, shared_cache=False)
        res_isolated = isolated.run(specs)

        # Identical physics either way.
        assert ({r["name"]: r["result"] for r in res_shared.sessions}
                == {r["name"]: r["result"] for r in res_isolated.sessions})
        # Aggregate session throughput: the ISSUE acceptance bar.
        speedup = (res_shared.steps_per_second
                   / res_isolated.steps_per_second)
        assert speedup >= 1.5
        assert res_shared.cache["hits"] > 0
        assert res_shared.cache["hit_rate"] > 0.5

    def test_mixed_configs_never_cross_contaminate(self):
        # Same workload bytes, two thetas: every lookup must miss
        # across the config boundary.
        specs = []
        for i, theta in enumerate([0.5, 0.9]):
            specs.append(SessionSpec(
                tenant=f"t{i}", name=f"s{i}", workload="plummer",
                n=96, steps=4, seed=3, arrival=0.0,
                config=_cfg(theta=theta)))
        server = SessionServer(quantum_steps=2, shared_cache=True)
        res = server.run(specs)
        digests = {r["name"]: r["result"] for r in res.sessions}
        assert digests["s0"] != digests["s1"]


# ---------------------------------------------------------------------------
# Telemetry: lanes, metrics, watchdogs, budget
# ---------------------------------------------------------------------------
class TestTelemetry:
    def test_per_session_trace_lanes(self):
        tracer = Tracer()
        server = SessionServer(quantum_steps=2, tracer=tracer)
        server.run(_traffic())
        # Every session got a named tenant/session lane.
        assert server.lane_tenants, "no lanes were assigned"
        for lane, tenant in server.lane_tenants.items():
            assert tracer.lane_names[lane].startswith(tenant + "/")
        # Spans landed on session lanes, not just the driver.
        lanes_used = {rec.lane for rec in tracer.spans}
        assert set(server.lane_tenants) <= lanes_used

    def test_per_tenant_metrics_populated(self):
        server = SessionServer(quantum_steps=2)
        res = server.run(_traffic())
        for tenant in res.tenants:
            counters = server.tenant_metrics(tenant).as_dict()["counters"]
            assert counters["serve.sessions_admitted"] == 2
            assert counters["serve.sessions_completed"] == 2
            assert counters["serve.steps"] == 10
            assert counters["serve.quanta"] >= 5

    def test_queue_depth_watchdog_fires(self):
        server = SessionServer(
            quantum_steps=2, watchdogs=[QueueDepthWatchdog(threshold=1)])
        res = server.run(_traffic(sessions_per_tenant=4))
        kinds = {a.kind for a in res.alerts}
        assert "serve_queue_depth" in kinds
        # Alerts ride into the serialized payload.
        assert any(a["kind"] == "serve_queue_depth"
                   for a in res.as_dict()["alerts"])

    def test_budget_shares_sum_to_one(self):
        res = SessionServer(quantum_steps=2).run(_traffic())
        shares = [t["share"] for t in res.tenants.values()]
        assert sum(shares) == pytest.approx(1.0)
        # The clock is charged work plus idle jumps to arrivals.
        assert 0.0 < res.budget["total"] <= res.clock
