"""Tests for the full BabelStream kernel family."""

import pytest

from repro.machine.babelstream import babelstream_suite
from repro.machine.catalog import HOST, get_device


class TestSuite:
    @pytest.fixture(scope="class")
    def h100(self):
        return babelstream_suite(get_device("h100"), n=2**22)

    def test_five_kernels(self, h100):
        assert [r.kernel for r in h100] == ["Copy", "Mul", "Add", "Triad", "Dot"]

    def test_all_bandwidth_bound_near_measured(self, h100):
        d = get_device("h100")
        for r in h100:
            assert 0.6 * d.measured_bw_gbs < r.predicted_gbs <= d.theoretical_bw_gbs

    def test_triad_consistent_with_table1_kernel(self, h100):
        from repro.machine.babelstream import babelstream_triad

        triad = next(r for r in h100 if r.kernel == "Triad")
        single = babelstream_triad(get_device("h100"), n=2**22)
        assert triad.predicted_gbs == pytest.approx(single.predicted_gbs, rel=0.05)

    def test_catalog_devices_not_measured(self, h100):
        assert all(r.measured_gbs is None for r in h100)

    def test_host_measured(self):
        rows = babelstream_suite(HOST, n=2**18)
        assert all(r.measured_gbs is not None and r.measured_gbs > 0 for r in rows)

    def test_kernels_compute_correct_values(self):
        """Copy/Mul/Add/Triad/Dot produce the right arithmetic."""
        import numpy as np

        from repro.machine.babelstream import _stream_kernels

        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0])
        c = np.array([5.0, 6.0])
        ks = {k.name: k for k in _stream_kernels()}
        ks["Copy"].apply(a, b, c)
        assert np.array_equal(c, a)
        ks["Mul"].apply(a, b, c)
        assert np.allclose(b, 0.4 * c)
        ks["Add"].apply(a, b, c)
        assert np.allclose(c, a + b)
        ks["Triad"].apply(a, b, c)
        assert np.allclose(a, b + 0.4 * c)
        assert ks["Dot"].apply(a, b, c) == pytest.approx(float(a @ b))

    def test_traffic_accounting(self):
        from repro.machine.babelstream import _stream_kernels

        for k in _stream_kernels():
            assert k.bytes_per_element in (16.0, 24.0)
            assert k.read_bytes_per_element >= 8.0
