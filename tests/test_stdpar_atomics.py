"""Tests for AtomicArray and memory-order accounting."""

import numpy as np
import pytest

from repro.errors import VectorizationUnsafeError
from repro.machine.counters import Counters
from repro.stdpar.atomics import (
    AtomicArray,
    MemoryOrder,
    acq_rel,
    acquire,
    relaxed,
    release,
    seq_cst,
    vectorized_region,
    in_vectorized_region,
)


@pytest.fixture
def atom():
    return AtomicArray(np.zeros(8, dtype=np.int64), Counters())


class TestOperations:
    def test_load_store(self, atom):
        atom.store(3, 42)
        assert atom.load(3) == 42

    def test_fetch_add_returns_old(self, atom):
        atom.store(0, 10)
        assert atom.fetch_add(0, 5) == 10
        assert atom.load(0) == 15

    def test_fetch_add_float(self):
        a = AtomicArray(np.zeros(2))
        a.fetch_add(1, 0.25, relaxed)
        a.fetch_add(1, 0.25, relaxed)
        assert a.data[1] == 0.5

    def test_compare_exchange_success(self, atom):
        ok, observed = atom.compare_exchange(2, 0, 7)
        assert ok and observed == 0
        assert atom.load(2) == 7

    def test_compare_exchange_failure(self, atom):
        atom.store(2, 1)
        ok, observed = atom.compare_exchange(2, 0, 7)
        assert not ok and observed == 1
        assert atom.load(2) == 1  # unchanged

    def test_fetch_max(self, atom):
        atom.store(0, 5)
        assert atom.fetch_max(0, 3) == 5
        assert atom.load(0) == 5
        atom.fetch_max(0, 9)
        assert atom.load(0) == 9

    def test_tuple_index(self):
        a = AtomicArray(np.zeros((3, 3)))
        a.fetch_add((1, 2), 1.5, relaxed)
        assert a.data[1, 2] == 1.5

    def test_wraps_only_ndarray(self):
        with pytest.raises(TypeError):
            AtomicArray([1, 2, 3])


class TestCounting:
    def test_ops_counted(self, atom):
        atom.load(0)
        atom.store(0, 1)
        atom.fetch_add(0, 1)
        atom.compare_exchange(0, 2, 3)
        assert atom.counters.atomic_ops == 4

    def test_sync_classification(self, atom):
        """Only synchronizing RMWs count as sync_atomic_ops: relaxed ops
        and plain atomic loads do not."""
        atom.load(0, acquire)           # load: not a sync RMW
        atom.fetch_add(0, 1, relaxed)   # relaxed RMW: no
        atom.fetch_add(0, 1, acq_rel)   # yes
        atom.store(0, 0, release)       # yes
        ok, _ = atom.compare_exchange(0, 0, 1, acquire, relaxed)  # yes
        assert atom.counters.sync_atomic_ops == 3

    def test_failed_cas_is_contended(self, atom):
        atom.store(0, 9)
        atom.compare_exchange(0, 0, 1)
        assert atom.counters.contended_atomic_ops == 1

    def test_successful_cas_not_contended(self, atom):
        atom.compare_exchange(0, 0, 1)
        assert atom.counters.contended_atomic_ops == 0


class TestVectorizationSafety:
    def test_atomics_rejected_under_par_unseq(self, atom):
        """Atomics are vectorization-unsafe ([algorithms.parallel.defns])."""
        with vectorized_region():
            for op in (
                lambda: atom.load(0),
                lambda: atom.store(0, 1),
                lambda: atom.fetch_add(0, 1),
                lambda: atom.compare_exchange(0, 0, 1),
                lambda: atom.fetch_max(0, 1),
            ):
                with pytest.raises(VectorizationUnsafeError):
                    op()

    def test_region_nesting(self):
        assert not in_vectorized_region()
        with vectorized_region():
            assert in_vectorized_region()
            with vectorized_region():
                assert in_vectorized_region()
            assert in_vectorized_region()
        assert not in_vectorized_region()

    def test_region_exits_on_exception(self, atom):
        try:
            with vectorized_region():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not in_vectorized_region()
        atom.fetch_add(0, 1)  # fine again


class TestMemoryOrder:
    def test_relaxed_does_not_synchronize(self):
        assert not MemoryOrder.RELAXED.synchronizes

    @pytest.mark.parametrize("order", [acquire, release, acq_rel, seq_cst])
    def test_others_synchronize(self, order):
        assert order.synchronizes
