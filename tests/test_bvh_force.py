"""Tests for the BVH force traversal (paper Section IV-B step 3)."""

import numpy as np
import pytest

from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations, bvh_accelerations_scalar
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.stdpar.context import ExecutionContext


class TestCorrectness:
    def test_theta_zero_exact(self, small_cloud, soft_gravity):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        acc = bvh_accelerations(bvh, soft_gravity, theta=0.0)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        assert np.allclose(acc, ref, rtol=1e-9, atol=1e-12)

    def test_batch_matches_scalar(self, small_cloud, soft_gravity):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        a = bvh_accelerations(bvh, soft_gravity, theta=0.5)
        b = bvh_accelerations_scalar(bvh, soft_gravity, theta=0.5)
        assert np.allclose(a, b, rtol=1e-12, atol=1e-14)

    def test_results_in_caller_order(self, small_cloud, soft_gravity):
        """The Hilbert permutation must be invisible to the caller."""
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        acc = bvh_accelerations(bvh, soft_gravity, theta=0.0)
        for i in (0, 7, small_cloud.n - 1):
            ref_i = pairwise_accelerations(
                small_cloud.x, small_cloud.m, soft_gravity, targets=np.array([i])
            )[0]
            assert np.allclose(acc[i], ref_i, rtol=1e-9)

    @pytest.mark.parametrize("theta", [0.3, 0.6])
    def test_error_bounded(self, small_cloud, soft_gravity, theta):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        acc = bvh_accelerations(bvh, soft_gravity, theta=theta)
        ref = pairwise_accelerations(small_cloud.x, small_cloud.m, soft_gravity)
        assert np.abs(acc - ref).max() / np.abs(ref).max() < 0.25 * theta

    def test_accuracy_differs_from_octree_at_same_theta(self, small_cloud, soft_gravity):
        """End of Section IV-B: the distance threshold reads differently
        for elongated/overlapping BVH boxes, so accuracy differs for the
        same theta."""
        theta = 0.5
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        pool = build_octree_vectorized(small_cloud.x)
        compute_multipoles_vectorized(pool, small_cloud.x, small_cloud.m)
        a_bvh = bvh_accelerations(bvh, soft_gravity, theta=theta)
        a_oct = octree_accelerations(pool, small_cloud.x, small_cloud.m,
                                     soft_gravity, theta=theta)
        assert not np.allclose(a_bvh, a_oct, rtol=1e-6)

    def test_non_power_of_two_sizes(self, rng, soft_gravity):
        for n in (3, 5, 17, 100):
            x = rng.random((n, 3))
            m = np.ones(n)
            bvh = build_bvh(x, m)
            acc = bvh_accelerations(bvh, soft_gravity, theta=0.0)
            ref = pairwise_accelerations(x, m, soft_gravity)
            assert np.allclose(acc, ref, rtol=1e-9), n

    def test_single_body_zero_force(self):
        bvh = build_bvh(np.array([[0.5, 0.5, 0.5]]), np.array([1.0]))
        acc = bvh_accelerations(bvh, GravityParams())
        assert np.array_equal(acc, np.zeros((1, 3)))

    def test_empty_system(self):
        bvh = build_bvh(np.zeros((0, 3)), np.zeros(0))
        assert bvh_accelerations(bvh, GravityParams()).shape == (0, 3)

    def test_zero_softening_finite(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        acc = bvh_accelerations(bvh, GravityParams(), theta=0.5)
        assert np.all(np.isfinite(acc))

    def test_2d(self, cloud_2d, soft_gravity):
        bvh = build_bvh(cloud_2d.x, cloud_2d.m)
        acc = bvh_accelerations(bvh, soft_gravity, theta=0.0)
        ref = pairwise_accelerations(cloud_2d.x, cloud_2d.m, soft_gravity)
        assert np.allclose(acc, ref, rtol=1e-9)


class TestTraversalBehaviour:
    def test_curve_order_reduces_warp_divergence(self, rng, soft_gravity):
        """Curve-adjacent bodies traverse nearly identical paths, so
        launching threads in Hilbert order has lower SIMT divergence
        than launching them in arbitrary order.  Measured on the octree
        walker, whose tree is independent of the thread-to-body
        assignment (isolating the ordering effect)."""
        from repro.bvh.build import hilbert_sort_permutation
        from repro.geometry.aabb import compute_bounding_box

        x = np.vstack([
            rng.normal(0, 1, (500, 3)),
            rng.normal(6, 1, (500, 3)),
        ])
        m = np.ones(1000)
        pool = build_octree_vectorized(x)
        compute_multipoles_vectorized(pool, x, m)
        perm = hilbert_sort_permutation(x, compute_bounding_box(x))

        def divergence(order):
            ctx = ExecutionContext()
            octree_accelerations(pool, x[order], m[order], soft_gravity,
                                 theta=0.5, ctx=ctx, simt_width=32)
            return ctx.counters.warp_traversal_steps / ctx.counters.traversal_steps

        assert divergence(perm) < divergence(np.arange(1000))

    def test_work_scales_sublinearly(self, rng, soft_gravity):
        """Traversal steps per body grow ~log N, not ~N."""
        steps_per_body = []
        for n in (256, 2048):
            x = rng.random((n, 3))
            bvh = build_bvh(x, np.ones(n))
            ctx = ExecutionContext()
            bvh_accelerations(bvh, soft_gravity, theta=0.5, ctx=ctx)
            steps_per_body.append(ctx.counters.traversal_steps / n)
        assert steps_per_body[1] < 4 * steps_per_body[0]

    def test_empty_subtrees_skipped(self, rng, soft_gravity):
        """Padding nodes contribute no visits below themselves."""
        n = 513  # pads to 1024 leaves: a nearly-empty right half
        x = rng.random((n, 3))
        bvh = build_bvh(x, np.ones(n))
        ctx = ExecutionContext()
        bvh_accelerations(bvh, soft_gravity, theta=0.0, ctx=ctx)
        # full opening visits at most nodes-with-content per body
        nonempty = int((bvh.count > 0).sum())
        assert ctx.counters.traversal_steps <= n * (nonempty + bvh.layout.n_levels)
