"""Tests for the reduce / scan algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stdpar.algorithms import exclusive_scan, inclusive_scan, reduce
from repro.stdpar.context import ExecutionContext
from repro.stdpar.policy import par, par_unseq, seq


class TestReduce:
    def test_sum(self, ctx):
        assert reduce(par, np.arange(10), 0, lambda a, b: a + b, ctx) == 45

    def test_init_included(self, ctx):
        assert reduce(seq, np.arange(5), 100, lambda a, b: a + b, ctx) == 110

    def test_batch_path(self, ctx):
        calls = {"batch": 0}

        def batch(v):
            calls["batch"] += 1
            return float(v.sum())

        out = reduce(par_unseq, np.arange(6.0), 1.0, lambda a, b: a + b, ctx,
                     batch=batch)
        assert out == 16.0 and calls["batch"] == 1

    def test_empty(self, ctx):
        assert reduce(par, np.array([]), 7, lambda a, b: a + b, ctx,
                      batch=lambda v: v.sum()) == 7

    def test_counters(self, ctx):
        reduce(par, np.arange(100.0), 0.0, lambda a, b: a + b, ctx)
        assert ctx.counters.loop_iterations == 100
        assert ctx.counters.flops == 99


class TestScans:
    def test_exclusive_known(self, ctx):
        out = exclusive_scan(par, np.array([1, 2, 3, 4]), 0, ctx)
        assert out.tolist() == [0, 1, 3, 6]

    def test_exclusive_with_init(self, ctx):
        out = exclusive_scan(par, np.array([1, 2, 3]), 10, ctx)
        assert out.tolist() == [10, 11, 13]

    def test_inclusive_known(self, ctx):
        out = inclusive_scan(par, np.array([1, 2, 3, 4]), ctx)
        assert out.tolist() == [1, 3, 6, 10]

    def test_empty(self, ctx):
        assert len(exclusive_scan(par, np.array([]), 0, ctx)) == 0
        assert len(inclusive_scan(par, np.array([]), ctx)) == 0

    @given(hnp.arrays(np.int64, st.integers(1, 200),
                      elements=st.integers(-1000, 1000)))
    @settings(max_examples=50, deadline=None)
    def test_scan_relationship(self, values):
        """inclusive[i] == exclusive[i] + v[i], and the last inclusive
        element is the total sum."""
        ctx = ExecutionContext()
        ex = exclusive_scan(par, values, 0, ctx)
        inc = inclusive_scan(par, values, ctx)
        assert np.array_equal(inc, ex + values)
        assert inc[-1] == values.sum()

    def test_parallel_scan_launch_count(self, ctx):
        """Parallel scans are two-pass (up-sweep + down-sweep)."""
        exclusive_scan(par, np.arange(10), 0, ctx)
        assert ctx.counters.kernel_launches == 2.0
        ctx2 = ExecutionContext()
        exclusive_scan(seq, np.arange(10), 0, ctx2)
        assert ctx2.counters.kernel_launches == 1.0
