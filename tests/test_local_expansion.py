"""Local expansions (M2L / L2L / L2P): convergence, shift exactness.

The contracts under test:

* the order-``k`` series of the softened monopole field converges at
  O((|delta| / r)^(k+1)) — each order buys roughly one decade at
  ``|delta| / r = 0.1``;
* L2L re-centring is exact at the stored order (shifting then
  evaluating equals evaluating the original series at the same point);
* the downsweep's ``stdpar`` path matches the serial sweep bitwise;
* the flop/word accountants grow monotonically with order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh.layout import BVHLayout
from repro.physics.local_expansion import (
    LocalExpansion,
    expansion_words,
    l2_flops,
    l2l_shift,
    l2l_sweep,
    l2p_evaluate,
    m2l_accumulate,
    m2l_flops,
)
from repro.stdpar.context import ExecutionContext
from repro.types import FLOAT, INDEX


def point_accel(x, src, mass, *, G=1.0, eps2=0.0):
    """Exact softened monopole field of point sources at rows of *x*."""
    d = src[None, :, :] - x[:, None, :]
    r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
    w = G * mass * r2 ** -1.5
    return np.einsum("ij,ijk->ik", w, d)


def series_at(sources, masses, center, deltas, order, *, eps2=0.0):
    """Build the order-*order* expansion at *center*, evaluate at
    ``center + deltas``."""
    k = sources.shape[0]
    exp = LocalExpansion.zeros(1, 3, order=order)
    m2l_accumulate(
        exp,
        np.zeros(k, dtype=INDEX),
        np.arange(k, dtype=INDEX),
        sources, masses, center[None, :], eps2=eps2,
    )
    rows = np.zeros(deltas.shape[0], dtype=INDEX)
    return l2p_evaluate(exp, rows, center[None, :] + deltas, center[None, :])


class TestM2LConvergence:
    @pytest.mark.parametrize("eps2", [0.0, 0.01])
    def test_order_ladder(self, eps2):
        """Truncation error drops ~an order of magnitude per order at
        |delta|/r = 0.1."""
        rng = np.random.default_rng(3)
        sources = np.array([4.0, 0.5, -0.3]) + 0.2 * rng.standard_normal((6, 3))
        masses = rng.random(6) + 0.5
        center = np.zeros(3)
        deltas = 0.4 * (rng.random((64, 3)) - 0.5)  # |delta| <~ 0.35, r ~ 4
        exact = point_accel(center + deltas, sources, masses, eps2=eps2)
        scale = np.abs(exact).max()
        errs = []
        for order in (0, 1, 2):
            approx = series_at(sources, masses, center, deltas, order,
                               eps2=eps2)
            errs.append(np.abs(approx - exact).max() / scale)
        assert errs[0] > errs[1] > errs[2]
        assert errs[1] < 0.3 * errs[0]
        assert errs[2] < 0.3 * errs[1]
        assert errs[2] < 1e-3

    def test_exact_at_center(self):
        """Every order reproduces the field exactly at delta = 0."""
        rng = np.random.default_rng(5)
        sources = rng.random((4, 3)) + 3.0
        masses = rng.random(4) + 0.1
        center = np.array([0.2, -0.1, 0.4])
        exact = point_accel(center[None, :], sources, masses)
        for order in (0, 1, 2):
            approx = series_at(sources, masses, center,
                               np.zeros((1, 3)), order)
            assert np.allclose(approx, exact, rtol=1e-13, atol=1e-15)

    def test_error_scaling_with_delta(self):
        """Order-2 error falls ~8x when |delta| halves (cubic term)."""
        rng = np.random.default_rng(11)
        sources = np.array([5.0, 0.0, 0.0]) + 0.1 * rng.standard_normal((3, 3))
        masses = np.ones(3)
        center = np.zeros(3)
        direction = np.array([[0.6, 0.5, -0.62]])
        errs = []
        for h in (0.5, 0.25):
            deltas = h * direction
            exact = point_accel(center + deltas, sources, masses)
            approx = series_at(sources, masses, center, deltas, 2)
            errs.append(np.abs(approx - exact).max())
        assert errs[1] < errs[0] / 6.0

    def test_hessian_symmetry(self):
        """The accumulated third-derivative tensor is fully symmetric."""
        rng = np.random.default_rng(2)
        sources = rng.random((5, 3)) + 2.0
        masses = rng.random(5) + 0.1
        exp = LocalExpansion.zeros(1, 3, order=2)
        m2l_accumulate(exp, np.zeros(5, dtype=INDEX),
                       np.arange(5, dtype=INDEX),
                       sources, masses, np.zeros((1, 3)))
        h = exp.hess[0]
        assert np.allclose(h, np.transpose(h, (1, 0, 2)))
        assert np.allclose(h, np.transpose(h, (2, 1, 0)))
        assert np.allclose(h, np.transpose(h, (0, 2, 1)))


class TestL2L:
    @pytest.mark.parametrize("order", [0, 1, 2])
    def test_shift_is_exact_at_stored_order(self, order):
        """Parent series shifted to a child centre evaluates identically
        to the parent series at the same physical point."""
        rng = np.random.default_rng(17)
        sources = rng.random((6, 3)) + 4.0
        masses = rng.random(6) + 0.2
        center = np.zeros((2, 3), dtype=FLOAT)
        center[1] = [0.2, -0.15, 0.1]
        exp = LocalExpansion.zeros(2, 3, order=order)
        m2l_accumulate(exp, np.zeros(6, dtype=INDEX),
                       np.arange(6, dtype=INDEX),
                       sources, masses, center)
        l2l_shift(exp, np.array([0]), np.array([1]), center)
        x = center[1] + 0.05 * (rng.random((16, 3)) - 0.5)
        via_parent = l2p_evaluate(exp, np.zeros(16, dtype=INDEX), x,
                                  center)
        via_child = l2p_evaluate(exp, np.ones(16, dtype=INDEX), x,
                                 center)
        assert np.allclose(via_child, via_parent, rtol=1e-12, atol=1e-14)

    def test_sweep_matches_serial(self):
        """stdpar downsweep == serial downsweep, bitwise."""
        layout = BVHLayout(8)
        rng = np.random.default_rng(23)
        center = rng.standard_normal((layout.n_nodes, 3))
        a0 = rng.standard_normal((layout.n_nodes, 3))
        jac = rng.standard_normal((layout.n_nodes, 3, 3))
        hess = rng.standard_normal((layout.n_nodes, 3, 3, 3))
        serial = LocalExpansion(a0.copy(), jac.copy(), hess.copy())
        par = LocalExpansion(a0.copy(), jac.copy(), hess.copy())
        n1 = l2l_sweep(serial, layout, center)
        n2 = l2l_sweep(par, layout, center, ctx=ExecutionContext())
        assert n1 == n2 == layout.n_nodes - 1
        assert np.array_equal(serial.a0, par.a0)
        assert np.array_equal(serial.jac, par.jac)
        assert np.array_equal(serial.hess, par.hess)


class TestAccounting:
    def test_expansion_words_monotone(self):
        assert expansion_words(3, 0) == 3
        assert expansion_words(3, 1) == 12
        assert expansion_words(3, 2) == 39
        assert expansion_words(2, 2) == 2 + 4 + 8

    def test_flops_monotone(self):
        assert m2l_flops(3, 0) < m2l_flops(3, 1) < m2l_flops(3, 2)
        assert l2_flops(0) < l2_flops(1) < l2_flops(2)
