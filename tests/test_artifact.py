"""Tests for the Appendix A artifact workflow (bench -> JSON -> report)."""

import json

import pytest

from repro.bench.artifact import (
    ALL_FIGURES,
    format_report,
    load_artifact,
    run_artifact,
    save_artifact,
)
from repro.cli import main


class TestArtifact:
    @pytest.fixture(scope="class")
    def artifact(self):
        return run_artifact(("fig5",), max_direct=2000)

    def test_structure(self, artifact):
        assert artifact["artifact_version"] == 1
        assert "fig5" in artifact["figures"]
        rows = artifact["figures"]["fig5"]["rows"]
        assert len(rows) == 16  # 4 CPUs x 4 algorithms
        assert all(r["figure"] == "fig5" for r in rows)

    def test_roundtrip(self, artifact, tmp_path):
        p = tmp_path / "a.json"
        save_artifact(artifact, p)
        loaded = load_artifact(p)
        assert loaded["figures"]["fig5"]["rows"] == artifact["figures"]["fig5"]["rows"]

    def test_json_serializable(self, artifact):
        json.dumps(artifact)  # no numpy leakage

    def test_report_renders_all_rows(self, artifact):
        text = format_report(artifact)
        assert "Figure 5" in text
        assert "16 data points" in text
        assert "AMD 9654 (Genoa)" in text

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_artifact(("fig99",))

    def test_version_check(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"artifact_version": 99}))
        with pytest.raises(ValueError):
            load_artifact(p)

    def test_all_figures_registered(self):
        assert set(ALL_FIGURES) == {"fig5", "fig6", "fig7", "fig8", "fig9"}

    def test_cli_workflow(self, tmp_path, capsys):
        out = tmp_path / "artifact.json"
        rc = main(["bench", "--figure", "fig5", "--out", str(out),
                   "--max-direct", "2000"])
        assert rc == 0 and out.exists()
        rc = main(["report", str(out)])
        assert rc == 0
        assert "Figure 5" in capsys.readouterr().out
