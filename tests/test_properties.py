"""Cross-cutting property-based tests (hypothesis).

These tie the subsystems together: for arbitrary random systems, the
tree algorithms must agree with each other and with the exact sum at
the accuracy their theory predicts; counters must behave like measures;
the integrator must show its convergence order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.build import build_bvh
from repro.bvh.force import bvh_accelerations
from repro.machine.counters import Counters
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import octree_accelerations
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.octree.traversal import validate_tree
from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.physics.integrator import VerletIntegrator
from repro.physics.diagnostics import total_energy


def random_system(seed: int, n: int, clustered: bool) -> BodySystem:
    rng = np.random.default_rng(seed)
    if clustered:
        centers = rng.random((4, 3)) * 4.0
        x = (centers[rng.integers(0, 4, n)]
             + 0.3 * rng.standard_normal((n, 3)))
    else:
        x = rng.random((n, 3))
    m = rng.random(n) + 0.05
    return BodySystem(x, np.zeros((n, 3)), m)


class TestForceAgreement:
    @given(st.integers(0, 2**32 - 1), st.integers(2, 150), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_octree_exact_at_theta_zero(self, seed, n, clustered):
        s = random_system(seed, n, clustered)
        params = GravityParams(softening=1e-3)
        pool = build_octree_vectorized(s.x, bits=12)
        validate_tree(pool, n)
        compute_multipoles_vectorized(pool, s.x, s.m)
        acc = octree_accelerations(pool, s.x, s.m, params, theta=0.0)
        ref = pairwise_accelerations(s.x, s.m, params)
        assert np.allclose(acc, ref, rtol=1e-8, atol=1e-10)

    @given(st.integers(0, 2**32 - 1), st.integers(2, 150), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_bvh_exact_at_theta_zero(self, seed, n, clustered):
        s = random_system(seed, n, clustered)
        params = GravityParams(softening=1e-3)
        bvh = build_bvh(s.x, s.m)
        acc = bvh_accelerations(bvh, params, theta=0.0)
        ref = pairwise_accelerations(s.x, s.m, params)
        assert np.allclose(acc, ref, rtol=1e-8, atol=1e-10)

    @given(st.integers(0, 2**32 - 1), st.floats(0.1, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_bh_error_within_theory(self, seed, theta):
        """Barnes-Hut relative force error is O(theta^2) with a modest
        constant; assert a generous envelope over random inputs."""
        s = random_system(seed, 120, clustered=True)
        params = GravityParams(softening=1e-3)
        pool = build_octree_vectorized(s.x)
        compute_multipoles_vectorized(pool, s.x, s.m)
        acc = octree_accelerations(pool, s.x, s.m, params, theta=theta)
        ref = pairwise_accelerations(s.x, s.m, params)
        rel = np.abs(acc - ref).max() / np.abs(ref).max()
        assert rel <= 0.6 * theta**2 + 1e-8

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_strategies_agree_at_tight_theta(self, seed):
        s = random_system(seed, 100, clustered=False)
        params = GravityParams(softening=1e-3)
        pool = build_octree_vectorized(s.x)
        compute_multipoles_vectorized(pool, s.x, s.m)
        a_oct = octree_accelerations(pool, s.x, s.m, params, theta=0.1)
        bvh = build_bvh(s.x, s.m)
        a_bvh = bvh_accelerations(bvh, params, theta=0.1)
        scale = np.abs(a_oct).max()
        assert np.abs(a_oct - a_bvh).max() / scale < 5e-3


class TestTreeInvariantsProperty:
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(1, 200),
        st.integers(2, 12),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_octree_structural_invariants(self, seed, n, bits, clustered):
        s = random_system(seed, n, clustered)
        pool = build_octree_vectorized(s.x, bits=bits)
        validate_tree(pool, n)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_bvh_mass_and_cover(self, seed, n):
        s = random_system(seed, n, clustered=False)
        bvh = build_bvh(s.x, s.m)
        assert bvh.mass[0] == pytest.approx(s.m.sum(), rel=1e-12)
        assert bvh.count[0] == n
        assert (bvh.bb_lo[0] <= s.x.min(0) + 1e-12).all()
        assert (bvh.bb_hi[0] >= s.x.max(0) - 1e-12).all()

    @given(st.integers(0, 2**32 - 1), st.integers(2, 120))
    @settings(max_examples=20, deadline=None)
    def test_duplicate_positions_handled(self, seed, n):
        """Any number of coincident bodies must survive both builders."""
        rng = np.random.default_rng(seed)
        base = rng.random((max(n // 3, 1), 3))
        x = base[rng.integers(0, len(base), n)]  # heavy duplication
        m = np.ones(n)
        pool = build_octree_vectorized(x, bits=6)
        validate_tree(pool, n)
        compute_multipoles_vectorized(pool, x, m)
        assert pool.mass[0] == pytest.approx(n)
        bvh = build_bvh(x, m)
        assert bvh.count[0] == n


class TestCountersProperty:
    @given(st.lists(st.tuples(st.floats(0, 1e9), st.floats(0, 1e9)), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_addition_is_componentwise_sum(self, pairs):
        total = Counters()
        expect_flops = expect_bytes = 0.0
        for f, b in pairs:
            c = Counters(flops=f, bytes_read=b)
            total = total + c
            expect_flops += f
            expect_bytes += b
        assert total.flops == pytest.approx(expect_flops)
        assert total.bytes_read == pytest.approx(expect_bytes)

    @given(st.floats(0.01, 100.0), st.floats(0, 1e6), st.floats(0, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_scaling_is_linear(self, k, f, a):
        c = Counters(flops=f, atomic_ops=a)
        s = c.scaled(k)
        assert s.flops == pytest.approx(k * f)
        assert s.atomic_ops == pytest.approx(k * a)


class TestIntegratorOrder:
    def test_verlet_is_second_order(self):
        """Halving dt must cut the global position error ~4x."""
        params = GravityParams()
        m = np.array([1.0, 1.0])
        x0 = np.array([[-0.5, 0, 0], [0.5, 0, 0]])
        vc = np.sqrt(0.5)
        v0 = np.array([[0, -vc, 0], [0, vc, 0]])

        def run(dt, t_end=2.0):
            s = BodySystem(x0.copy(), v0.copy(), m.copy())
            integ = VerletIntegrator(
                s, lambda sy: pairwise_accelerations(sy.x, sy.m, params), dt
            )
            integ.step(int(round(t_end / dt)))
            return s.x

        # reference with a tiny step
        ref = run(1e-4)
        errs = [np.abs(run(dt) - ref).max() for dt in (4e-2, 2e-2, 1e-2)]
        r1 = errs[0] / errs[1]
        r2 = errs[1] / errs[2]
        assert 3.0 < r1 < 5.0
        assert 3.0 < r2 < 5.0
