"""Mid-epoch checkpoint round-trips: bit-exact resume of cached state.

The plain checkpoint tests (test_checkpoint.py) cover configurations
whose force evaluation is a pure function of ``(x, v, config)``.  These
cover the stateful ones: a suspend that lands *between* tree-build
epochs (``tree_reuse_steps > 1``), between refit rebuilds
(``tree_update="refit"`` — cached interaction lists, drift budgets,
adaptive MAC margins), or between distributed rebalances (``ranks > 1``
— domain splits and cadence phase).  The resumed trajectory must be
bitwise the uninterrupted one, which only holds if the embedded runtime
state replays every cache exactly (repro.core.suspend).
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.io import load_checkpoint, load_snapshot, save_checkpoint
from repro.workloads import galaxy_collision, plummer_sphere

N = 128
TOTAL = 11
SPLIT = 5  # deliberately not a multiple of any epoch length below


def _system(n=N):
    return plummer_sphere(n, seed=42)


def _round_trip(tmp_path, cfg_kw, *, n=N, total=TOTAL, split=SPLIT,
                make=_system):
    """Uninterrupted run vs run->suspend->resume->run; returns both."""
    ref = Simulation(make(n), SimulationConfig(**cfg_kw))
    ref.run(total)

    sim = Simulation(make(n), SimulationConfig(**cfg_kw))
    sim.run(split)
    path = tmp_path / "mid.npz"
    save_checkpoint(path, sim)
    resumed = load_checkpoint(path)
    resumed.run(total - split)
    return ref, resumed


def _assert_bitwise(ref, resumed):
    assert np.array_equal(resumed.system.x, ref.system.x)
    assert np.array_equal(resumed.system.v, ref.system.v)


class TestTreeReuseMidEpoch:
    """Suspend with a reused structure mid-lifetime (age in [1, k])."""

    @pytest.mark.parametrize("cfg_kw", [
        dict(algorithm="octree", tree_reuse_steps=3),
        dict(algorithm="bvh", tree_reuse_steps=3),
        dict(algorithm="octree", tree_reuse_steps=4,
             traversal="grouped", group_size=16),
        dict(algorithm="bvh", tree_reuse_steps=4,
             traversal="grouped", group_size=16),
        dict(algorithm="bvh", tree_reuse_steps=3,
             traversal="dual", group_size=16),
    ])
    def test_bit_exact(self, tmp_path, cfg_kw):
        ref, resumed = self._run(tmp_path, cfg_kw)
        _assert_bitwise(ref, resumed)

    def _run(self, tmp_path, cfg_kw):
        return _round_trip(tmp_path, cfg_kw)

    def test_every_split_point(self, tmp_path):
        """The resume is exact wherever the suspend lands in the epoch."""
        cfg_kw = dict(algorithm="octree", tree_reuse_steps=3,
                      traversal="grouped", group_size=16)
        ref = Simulation(_system(), SimulationConfig(**cfg_kw))
        ref.run(7)
        for split in (1, 2, 3, 4, 5, 6):
            sim = Simulation(_system(), SimulationConfig(**cfg_kw))
            sim.run(split)
            path = tmp_path / f"s{split}.npz"
            save_checkpoint(path, sim)
            resumed = load_checkpoint(path)
            resumed.run(7 - split)
            assert np.array_equal(resumed.system.x, ref.system.x), split

    def test_state_rides_in_header(self, tmp_path):
        sim = Simulation(_system(), SimulationConfig(
            algorithm="bvh", tree_reuse_steps=3))
        sim.run(SPLIT)
        path = tmp_path / "mid.npz"
        save_checkpoint(path, sim)
        _, header = load_snapshot(path)
        assert "reuse" in header["runtime"]
        assert header["runtime"]["reuse"]["age"] >= 1

    def test_stateless_config_embeds_nothing(self, tmp_path):
        sim = Simulation(_system(), SimulationConfig(algorithm="octree"))
        sim.run(3)
        path = tmp_path / "plain.npz"
        save_checkpoint(path, sim)
        _, header = load_snapshot(path)
        assert "runtime" not in header


class TestRefitMidEpoch:
    """Suspend between refit rebuilds: lists + drift budget state."""

    @pytest.mark.parametrize("cfg_kw", [
        dict(algorithm="bvh", tree_update="refit",
             traversal="grouped", group_size=16),
        dict(algorithm="octree", tree_update="refit",
             traversal="grouped", group_size=16),
        dict(algorithm="bvh", tree_update="refit",
             traversal="dual", group_size=16),
        dict(algorithm="octree", tree_update="refit",
             traversal="dual", group_size=16),
    ])
    def test_bit_exact(self, tmp_path, cfg_kw):
        ref, resumed = _round_trip(tmp_path, cfg_kw)
        _assert_bitwise(ref, resumed)

    def test_counters_and_budget_survive(self, tmp_path):
        cfg_kw = dict(algorithm="bvh", tree_update="refit",
                      traversal="grouped", group_size=16)
        sim = Simulation(_system(), SimulationConfig(**cfg_kw))
        sim.run(SPLIT)
        maint = sim._tree_cache["_maintainer"]
        path = tmp_path / "mid.npz"
        save_checkpoint(path, sim)
        resumed = load_checkpoint(path)
        r_maint = resumed._tree_cache["_maintainer"]
        # The replay evaluation adds exactly one maintenance action.
        assert (r_maint.counts["rebuild"] + r_maint.counts["refit"]
                == maint.counts["rebuild"] + maint.counts["refit"] + 1)
        assert r_maint._budget_abs == maint._budget_abs
        assert np.array_equal(r_maint._x_ref, maint._x_ref)


class TestDistributedMidCadence:
    """ranks=2 rebuild mode: decomposition + rebalance phase survive."""

    @pytest.mark.parametrize("cfg_kw", [
        dict(algorithm="octree", ranks=2, rebalance_steps=4),
        dict(algorithm="bvh", ranks=2, rebalance_steps=4,
             traversal="grouped", group_size=16),
        dict(algorithm="bvh", ranks=2, rebalance_steps=3,
             decomposition="weighted"),
    ])
    def test_bit_exact(self, tmp_path, cfg_kw):
        ref, resumed = _round_trip(tmp_path, cfg_kw,
                                   make=lambda n: galaxy_collision(n, seed=7))
        _assert_bitwise(ref, resumed)

    def test_cadence_phase_preserved(self, tmp_path):
        cfg_kw = dict(algorithm="octree", ranks=2, rebalance_steps=4)
        sim = Simulation(galaxy_collision(N, seed=7),
                         SimulationConfig(**cfg_kw))
        sim.run(SPLIT)
        calls = sim.distributed.balancer._calls
        path = tmp_path / "mid.npz"
        save_checkpoint(path, sim)
        resumed = load_checkpoint(path)
        # The construction-time replay evaluation must not tick the
        # cadence; the counter matches the suspended run exactly.
        assert resumed.distributed.balancer._calls == calls


class TestInMemoryCheckpoint:
    """The service layer suspends sessions to RAM (BytesIO npz)."""

    def test_bytesio_round_trip_bit_exact(self):
        cfg_kw = dict(algorithm="bvh", tree_reuse_steps=3,
                      traversal="grouped", group_size=16)
        ref = Simulation(_system(), SimulationConfig(**cfg_kw))
        ref.run(TOTAL)

        sim = Simulation(_system(), SimulationConfig(**cfg_kw))
        sim.run(SPLIT)
        buf = io.BytesIO()
        save_checkpoint(buf, sim)
        buf.seek(0)
        resumed = load_checkpoint(buf)
        resumed.run(TOTAL - SPLIT)
        _assert_bitwise(ref, resumed)
