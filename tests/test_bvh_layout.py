"""Tests for the implicit balanced BVH layout and skip list."""

import numpy as np
import pytest

from repro.bvh.layout import DONE, BVHLayout, bvh_escape_indices, next_pow2


class TestNextPow2:
    @pytest.mark.parametrize("n,expect", [(0, 1), (1, 1), (2, 2), (3, 4),
                                          (4, 4), (5, 8), (1000, 1024)])
    def test_values(self, n, expect):
        assert next_pow2(n) == expect


class TestLayout:
    def test_shape_is_predetermined(self):
        """Paper: levels, nodes per level and total nodes are pure
        functions of the leaf count."""
        lay = BVHLayout(8)
        assert lay.n_levels == 4
        assert lay.n_nodes == 15
        assert lay.first_leaf == 7

    def test_level_slices_partition_nodes(self):
        lay = BVHLayout(16)
        seen = []
        for level in range(lay.n_levels):
            sl = lay.level_slice(level)
            seen.extend(range(sl.start, sl.stop))
            assert sl.stop - sl.start == 1 << level
        assert seen == list(range(lay.n_nodes))

    def test_parent_child_inverse(self):
        lay = BVHLayout(16)
        nodes = np.arange(1, lay.n_nodes)
        parents = lay.parent(nodes)
        children = lay.first_child(parents)
        assert np.all((children == nodes) | (children + 1 == nodes))

    def test_is_leaf(self):
        lay = BVHLayout(4)
        assert not lay.is_leaf(np.array([0, 1, 2])).any()
        assert lay.is_leaf(np.array([3, 4, 5, 6])).all()

    def test_level_of(self):
        lay = BVHLayout(8)
        assert lay.level_of(np.array([0])) == 0
        assert lay.level_of(np.array([1, 2])).tolist() == [1, 1]
        assert lay.level_of(np.array([7, 14])).tolist() == [3, 3]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            BVHLayout(6)

    def test_single_leaf(self):
        lay = BVHLayout(1)
        assert lay.n_nodes == 1 and lay.n_levels == 1 and lay.first_leaf == 0


class TestEscapeIndices:
    def walk(self, p):
        """Full DFS opening every node via skip pointers."""
        esc = bvh_escape_indices(p)
        lay = BVHLayout(p)
        order = []
        node = 0
        while node != DONE:
            order.append(node)
            node = 2 * node + 1 if not lay.is_leaf(node) else int(esc[node])
        return order

    def preorder(self, p):
        lay = BVHLayout(p)
        out = []

        def rec(k):
            out.append(k)
            if not lay.is_leaf(k):
                rec(2 * k + 1)
                rec(2 * k + 2)

        rec(0)
        return out

    @pytest.mark.parametrize("p", [1, 2, 4, 8, 32, 128])
    def test_walk_is_preorder(self, p):
        assert self.walk(p) == self.preorder(p)

    def test_multi_level_jump(self):
        """The skip list jumps across levels: from the last leaf of the
        left half directly to the right child of the root."""
        esc = bvh_escape_indices(8)
        # leaves of left subtree: 7..10; last one jumps to node 2
        assert esc[10] == 2

    def test_cached_and_readonly(self):
        a = bvh_escape_indices(16)
        b = bvh_escape_indices(16)
        assert a is b
        with pytest.raises(ValueError):
            a[0] = 5

    def test_root_escape_done(self):
        assert bvh_escape_indices(4)[0] == DONE
