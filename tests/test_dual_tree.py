"""Dual-tree traversal: exactness fallback, accuracy, caching, matrix.

The contracts under test:

* with the cell-cell branch force-disabled (``cc_mac=0``) the dual walk
  degenerates to the grouped traversal *bitwise* — same near lists,
  same accelerations — for both tree strategies and through a full
  ``Simulation`` trajectory;
* with the branch on (defaults ``cc_mac=1.5``, ``expansion_order=2``)
  the dual error vs all-pairs stays within a small constant of the
  grouped-mode bound across workloads and theta;
* the shared-MAC fast path (``mac_margin == 0``) is bit-identical to
  the reference threshold expression;
* ``mac_evals`` / ``pairs_deferred`` / ``pairs_accepted_cc`` split
  build-time from every-step work, and dual lists live in the
  structure cache;
* dual composes with ``tree_update="refit"`` (lists survive bounded
  drift, gated by the far-pair drift check) and with ``ranks>1``
  (the cell-cell walk stays inside the LET halo).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh.build import build_bvh
from repro.bvh.force import (
    _bvh_tree_view,
    bvh_accelerations_dual,
    bvh_accelerations_grouped,
)
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.force import (
    octree_accelerations_dual,
    octree_accelerations_grouped,
)
from repro.octree.multipoles import compute_multipoles_vectorized
from repro.physics.accuracy import relative_l2_error
from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams, pairwise_accelerations
from repro.stdpar.context import ExecutionContext
from repro.traversal import make_groups
from repro.traversal.dual import (
    build_dual_lists,
    build_target_tree,
    dual_lists_valid,
    target_node_drift,
)
from repro.traversal.engine import build_interaction_lists, mac_threshold2
from repro.workloads import galaxy_collision, plummer_sphere, uniform_cube

THETAS = [0.2, 0.5, 1.0]
PARAMS = GravityParams(softening=0.05)
WORKLOADS = {
    "plummer": plummer_sphere,
    "uniform": uniform_cube,
    "galaxy": galaxy_collision,
}


def _octree(x, m, *, order=1, bits=None):
    pool = build_octree_vectorized(x, bits=bits)
    compute_multipoles_vectorized(pool, x, m, None, order=order)
    return pool


def _dual_vs_grouped_bvh(system, theta, **dual_kw):
    bvh = build_bvh(system.x, system.m)
    g = bvh_accelerations_grouped(bvh, PARAMS, theta=theta, group_size=16)
    d = bvh_accelerations_dual(bvh, PARAMS, theta=theta, group_size=16,
                               **dual_kw)
    return g, d


# ----------------------------------------------------------------------
# Exactness: cc_mac = 0 is the grouped traversal, bitwise
# ----------------------------------------------------------------------
class TestExactFallback:
    @pytest.mark.parametrize("theta", THETAS)
    def test_bvh_bit_identical(self, small_cloud, theta):
        g, d = _dual_vs_grouped_bvh(small_cloud, theta, cc_mac=0.0)
        assert np.array_equal(g, d)

    @pytest.mark.parametrize("theta", THETAS)
    def test_octree_bit_identical(self, small_cloud, theta):
        pool = _octree(small_cloud.x, small_cloud.m)
        g = octree_accelerations_grouped(pool, small_cloud.x, small_cloud.m,
                                         PARAMS, theta=theta, group_size=16)
        d = octree_accelerations_dual(pool, small_cloud.x, small_cloud.m,
                                      PARAMS, theta=theta, group_size=16,
                                      cc_mac=0.0)
        assert np.array_equal(g, d)

    def test_near_lists_identical(self, small_cloud):
        """List-level check: the degenerate dual walk emits the grouped
        walk's CSR verbatim (same nodes, same order, same buckets)."""
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        view = _bvh_tree_view(bvh)
        groups = make_groups(bvh.x_sorted, 16)
        ref = build_interaction_lists(view, groups, 0.5)
        dual = build_dual_lists(view, build_target_tree(groups), 0.5,
                                cc_mac=0.0)
        assert dual.n_far == 0
        assert np.array_equal(dual.near.offsets, ref.offsets)
        assert np.array_equal(dual.near.nodes, ref.nodes)
        assert np.array_equal(dual.near.approx, ref.approx)
        assert np.array_equal(dual.near.exact_groups, ref.exact_groups)
        assert np.array_equal(dual.near.exact_nodes, ref.exact_nodes)

    def test_simulation_trajectory_bit_identical(self):
        """Whole-pipeline fallback: a dual run with the cc branch off
        reproduces the grouped trajectory bitwise."""
        out = {}
        for traversal, cc in [("grouped", 1.5), ("dual", 0.0)]:
            s = galaxy_collision(400, seed=2)
            cfg = SimulationConfig(algorithm="bvh", theta=0.5, dt=1e-3,
                                   gravity=PARAMS, traversal=traversal,
                                   group_size=16, cc_mac=cc)
            Simulation(s, cfg).run(4)
            out[traversal] = s.x
        assert np.array_equal(out["grouped"], out["dual"])


# ----------------------------------------------------------------------
# Accuracy: dual stays within a small constant of the grouped bound
# ----------------------------------------------------------------------
class TestAccuracy:
    @pytest.mark.parametrize("theta", THETAS)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_error_tracks_grouped(self, workload, theta):
        s = WORKLOADS[workload](900, seed=5)
        ref = pairwise_accelerations(s.x, s.m, PARAMS)
        g, d = _dual_vs_grouped_bvh(s, theta)  # default cc_mac / order
        eg = relative_l2_error(g, ref)
        ed = relative_l2_error(d, ref)
        assert ed <= max(3.0 * eg, 1e-9)

    @pytest.mark.parametrize("theta", THETAS)
    def test_octree_error_tracks_grouped(self, theta):
        s = plummer_sphere(900, seed=5)
        pool = _octree(s.x, s.m)
        ref = pairwise_accelerations(s.x, s.m, PARAMS)
        g = octree_accelerations_grouped(pool, s.x, s.m, PARAMS,
                                         theta=theta, group_size=16)
        d = octree_accelerations_dual(pool, s.x, s.m, PARAMS,
                                      theta=theta, group_size=16)
        assert (relative_l2_error(d, ref)
                <= max(3.0 * relative_l2_error(g, ref), 1e-9))

    def test_higher_order_is_tighter(self):
        """Order-2 downsweep beats order-0 at the same cc_mac."""
        s = plummer_sphere(1200, seed=9)
        ref = pairwise_accelerations(s.x, s.m, PARAMS)
        errs = {}
        for order in (0, 2):
            _, d = _dual_vs_grouped_bvh(s, 0.5, cc_mac=1.5,
                                        expansion_order=order)
            errs[order] = relative_l2_error(d, ref)
        assert errs[2] < errs[0]

    def test_cc_actually_fires(self, small_cloud):
        """Defaults must exercise the far-field branch, not vacuously
        pass by never accepting a cell-cell pair."""
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        view = _bvh_tree_view(bvh)
        groups = make_groups(bvh.x_sorted, 16)
        dual = build_dual_lists(view, build_target_tree(groups), 0.5,
                                cc_mac=1.5)
        assert dual.n_far > 0
        assert dual.near.n_approx < build_interaction_lists(
            view, groups, 0.5).n_approx


# ----------------------------------------------------------------------
# Engine micro-optimisation: margin-free MAC fast path
# ----------------------------------------------------------------------
class TestMACFastPath:
    def test_zero_margin_bit_identical(self, rng):
        """``mac_margin == 0`` must take the sqrt-free path and produce
        the plain product bitwise."""
        dmin2 = rng.random(4096) * 10.0
        for theta in THETAS:
            ref = theta * theta * dmin2
            assert np.array_equal(mac_threshold2(dmin2, theta * theta, 0.0),
                                  ref)
            assert np.array_equal(mac_threshold2(dmin2, theta * theta, -0.0),
                                  ref)

    def test_margin_shrinks_threshold(self, rng):
        dmin2 = rng.random(512) * 10.0 + 1.0
        t2 = 0.25
        assert np.all(mac_threshold2(dmin2, t2, 0.1)
                      <= mac_threshold2(dmin2, t2, 0.0))


# ----------------------------------------------------------------------
# Counters and caching
# ----------------------------------------------------------------------
class TestCountersAndCache:
    def test_build_vs_eval_split(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        cache: dict = {}
        ctx = ExecutionContext()
        bvh_accelerations_dual(bvh, PARAMS, theta=0.5, group_size=16,
                               ctx=ctx, cache=cache)
        c = ctx.counters
        assert c.mac_evals > 0
        assert c.pairs_accepted_cc > 0
        assert c.pairs_deferred > 0
        assert c.list_build_steps > 0

        cached_ctx = ExecutionContext()
        bvh_accelerations_dual(bvh, PARAMS, theta=0.5, group_size=16,
                               ctx=cached_ctx, cache=cache)
        cc = cached_ctx.counters
        # walk work is build-only; far/near interaction work recurs
        assert cc.mac_evals == 0
        assert cc.list_build_steps == 0
        assert cc.pairs_accepted_cc == c.pairs_accepted_cc
        assert cc.pairs_deferred == c.pairs_deferred

    def test_cache_key_includes_dual_knobs(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        cache: dict = {}
        bvh_accelerations_dual(bvh, PARAMS, theta=0.5, group_size=8,
                               cc_mac=1.5, expansion_order=2, cache=cache)
        bvh_accelerations_dual(bvh, PARAMS, theta=0.5, group_size=8,
                               cc_mac=1.0, expansion_order=2, cache=cache)
        keys = [k for k in cache if k[0] == "dlists"]
        assert ("dlists", 0.5, 8, 1.5, 2) in keys
        assert ("dlists", 0.5, 8, 1.0, 2) in keys

    def test_grouped_mode_charges_no_cc_pairs(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        ctx = ExecutionContext()
        bvh_accelerations_grouped(bvh, PARAMS, theta=0.5, group_size=16,
                                  ctx=ctx)
        assert ctx.counters.mac_evals > 0
        assert ctx.counters.pairs_deferred > 0
        assert ctx.counters.pairs_accepted_cc == 0

    def test_profile_counters_reach_report(self):
        for traversal in ("lockstep", "grouped", "dual"):
            s = galaxy_collision(300, seed=1)
            cfg = SimulationConfig(algorithm="bvh", theta=0.5, dt=1e-3,
                                   gravity=PARAMS, traversal=traversal)
            rep = Simulation(s, cfg).run(2)
            c = rep.counters.steps["force"]
            assert c.mac_evals > 0
            if traversal == "dual":
                assert c.pairs_accepted_cc > 0
            else:
                assert c.pairs_accepted_cc == 0


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestConfig:
    def test_dual_accepted_with_defaults(self):
        cfg = SimulationConfig(traversal="dual")
        assert cfg.cc_mac == 1.5
        assert cfg.expansion_order == 2

    @pytest.mark.parametrize("bad", [-0.5, "wide", None])
    def test_invalid_cc_mac(self, bad):
        with pytest.raises(ConfigurationError):
            SimulationConfig(traversal="dual", cc_mac=bad)

    @pytest.mark.parametrize("bad", [-1, 3, 1.5])
    def test_invalid_expansion_order(self, bad):
        with pytest.raises(ConfigurationError):
            SimulationConfig(traversal="dual", expansion_order=bad)


# ----------------------------------------------------------------------
# Matrix round-trip: refit maintenance and multi-rank
# ----------------------------------------------------------------------
class TestRefitComposition:
    @pytest.mark.parametrize("alg", ["bvh", "octree"])
    def test_refit_holds_theta_bound(self, alg):
        """Dual + refit: after maintained steps, forces stay within the
        cached-list theta bound vs a fresh rebuild at the same state."""
        s = galaxy_collision(400, seed=0)
        cfg = SimulationConfig(algorithm=alg, theta=0.5, dt=1e-3,
                               gravity=PARAMS, traversal="dual",
                               group_size=16, tree_update="refit")
        sim = Simulation(s, cfg)
        sim.run(6)
        assert sim._tree_cache["_maintainer"].counts["refit"] >= 1
        acc = sim.evaluate_forces()
        fresh = Simulation(
            BodySystem(s.x.copy(), s.v.copy(), s.m.copy()),
            SimulationConfig(algorithm=alg, theta=0.5, dt=1e-3,
                            gravity=PARAMS, traversal="dual",
                            group_size=16, tree_update="rebuild"))
        assert relative_l2_error(acc, fresh.evaluate_forces()) < 0.06

    def test_refit_reuses_dual_lists(self):
        """Refit steps skip the pair walk: mac_evals are charged on the
        epoch build only, while cc-pair work recurs every step."""
        s = galaxy_collision(500, seed=3)
        cfg = SimulationConfig(algorithm="bvh", theta=0.5, dt=1e-4,
                               gravity=PARAMS, traversal="dual",
                               group_size=16, tree_update="refit")
        sim = Simulation(s, cfg)
        rep = sim.run(6)
        c = rep.counters.steps["force"]
        maint = sim._tree_cache["_maintainer"]
        assert maint.counts["refit"] >= 1
        assert c.pairs_accepted_cc > 0
        # fewer walk charges than a rebuild-every-step run
        s2 = galaxy_collision(500, seed=3)
        cfg2 = SimulationConfig(algorithm="bvh", theta=0.5, dt=1e-4,
                                gravity=PARAMS, traversal="dual",
                                group_size=16, tree_update="rebuild")
        rep2 = Simulation(s2, cfg2).run(6)
        assert c.mac_evals < rep2.counters.steps["force"].mac_evals

    def test_far_pair_gate_rejects_large_drift(self, small_cloud):
        """The drift gate accepts zero drift and rejects drift beyond
        the margin."""
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        view = _bvh_tree_view(bvh)
        groups = make_groups(bvh.x_sorted, 16)
        tt = build_target_tree(groups)
        dual = build_dual_lists(view, tt, 0.5, cc_mac=1.5, mac_margin=0.05)
        assert dual.n_far > 0
        zero = np.zeros(groups.n_groups)
        node_zero = np.zeros(view.com.shape[0])
        assert dual_lists_valid(dual, zero, node_zero, size_factor=1.0)
        big = np.full(groups.n_groups, 1.0)
        assert not dual_lists_valid(dual, big, node_zero, size_factor=1.0)

    def test_target_drift_is_subtree_max(self, small_cloud):
        bvh = build_bvh(small_cloud.x, small_cloud.m)
        groups = make_groups(bvh.x_sorted, 16)
        tt = build_target_tree(groups)
        rng = np.random.default_rng(0)
        grp = rng.random(groups.n_groups)
        td = target_node_drift(tt, grp)
        assert td[0] == pytest.approx(grp.max())
        fl = tt.first_leaf
        assert np.allclose(td[fl:fl + groups.n_groups], grp)


class TestDistributedComposition:
    def test_ranks_within_theta_bound(self):
        s = galaxy_collision(600, seed=3)
        exact = pairwise_accelerations(s.x, s.m)

        def forces(**kw):
            sys2 = BodySystem(s.x.copy(), s.v.copy(), s.m.copy())
            sim = Simulation(sys2, SimulationConfig(
                algorithm="bvh", theta=0.5, traversal="dual", **kw))
            return sim.evaluate_forces(), sim

        a1, _ = forces()
        aK, sim = forces(ranks=2)
        e1 = relative_l2_error(a1, exact)
        eK = relative_l2_error(aK, exact)
        assert eK < max(3.0 * e1, 0.05)
        assert relative_l2_error(aK, a1) < 0.05
        # the cc branch ran on the remote contributions too
        rep = sim.distributed.last_report
        assert sum(sc.step("force").pairs_accepted_cc
                   for sc in rep.rank_counters) > 0

    def test_ranks_trajectory_tracks_single_rank(self):
        s = galaxy_collision(300, seed=4)
        sysA = BodySystem(s.x.copy(), s.v.copy(), s.m.copy())
        sysB = BodySystem(s.x.copy(), s.v.copy(), s.m.copy())
        Simulation(sysA, SimulationConfig(algorithm="bvh",
                                          traversal="dual")).run(4)
        Simulation(sysB, SimulationConfig(algorithm="bvh", traversal="dual",
                                          ranks=2)).run(4)
        assert relative_l2_error(sysB.x, sysA.x) < 1e-2


# ----------------------------------------------------------------------
# Simulation integration
# ----------------------------------------------------------------------
class TestSimulationIntegration:
    @pytest.mark.parametrize("alg", ["octree", "bvh", "octree-2stage"])
    def test_dual_tracks_grouped(self, alg):
        out = {}
        for traversal in ("grouped", "dual"):
            s = galaxy_collision(300, seed=1)
            cfg = SimulationConfig(algorithm=alg, theta=0.4, dt=1e-3,
                                   gravity=PARAMS, traversal=traversal,
                                   group_size=16)
            Simulation(s, cfg).run(4)
            out[traversal] = s.x
        assert np.all(np.isfinite(out["dual"]))
        assert relative_l2_error(out["dual"], out["grouped"]) < 1e-3
