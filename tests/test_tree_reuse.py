"""Tests for tree reuse across timesteps (Iwasawa et al. amortization,
paper Section VI: "can be applied to any Barnes-Hut implementation")."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError
from repro.physics.accuracy import relative_l2_error
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision

PARAMS = GravityParams(softening=0.05)


def run(alg, reuse, steps=8, n=250, dt=1e-3):
    s = galaxy_collision(n, seed=1)
    cfg = SimulationConfig(algorithm=alg, theta=0.4, dt=dt, gravity=PARAMS,
                           tree_reuse_steps=reuse)
    sim = Simulation(s, cfg)
    rep = sim.run(steps)
    return s, rep, sim


class TestConfig:
    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_invalid_values(self, bad):
        with pytest.raises(ConfigurationError):
            SimulationConfig(tree_reuse_steps=bad)

    def test_default_is_every_step(self):
        assert SimulationConfig().tree_reuse_steps == 1


class TestOctreeReuse:
    def test_reuse_one_is_identical(self):
        a, _, _ = run("octree", 1)
        b, _, _ = run("octree", 1)
        assert np.array_equal(a.x, b.x)

    def test_reuse_skips_builds(self):
        """With reuse=k the build step runs ~steps/k times."""
        _, rep1, _ = run("octree", 1)
        _, rep4, _ = run("octree", 4)
        # build iterations are proportional to the number of rebuilds
        b1 = rep1.counters.steps["build_tree"].loop_iterations
        b4 = rep4.counters.steps["build_tree"].loop_iterations
        assert b4 < 0.5 * b1
        # multipoles still run every step
        m1 = rep1.counters.steps["multipoles"].kernel_launches
        m4 = rep4.counters.steps["multipoles"].kernel_launches
        assert m4 == m1

    def test_reuse_error_small_and_bounded(self):
        fresh, _, _ = run("octree", 1)
        reused, _, _ = run("octree", 4)
        err = relative_l2_error(reused.x, fresh.x)
        assert 0 < err < 1e-3  # an approximation, but a mild one

    def test_error_grows_with_reuse_window(self):
        fresh, _, _ = run("octree", 1, steps=12, dt=5e-3)
        errs = []
        for k in (2, 6, 12):
            s, _, _ = run("octree", k, steps=12, dt=5e-3)
            errs.append(relative_l2_error(s.x, fresh.x))
        assert errs[0] <= errs[-1]

    def test_rebuild_happens_after_window(self):
        _, _, sim = run("octree", 3, steps=7)
        # 7 force evaluations at construction+steps: ages cycle 1,2,3
        assert sim._tree_cache["octree"]["age"] <= 3

    def test_energy_still_conserved(self):
        from repro.physics.diagnostics import energy_report

        s0 = galaxy_collision(250, seed=1)
        e0 = energy_report(s0, PARAMS)
        s, _, _ = run("octree", 4, steps=10)
        assert energy_report(s, PARAMS).drift_from(e0) < 1e-3


class TestBVHReuse:
    def test_reuse_skips_sorts(self):
        _, rep1, _ = run("bvh", 1)
        _, rep4, _ = run("bvh", 4)
        s1 = rep1.counters.steps["sort"].sort_comparisons
        s4 = rep4.counters.steps["sort"].sort_comparisons
        assert s4 < 0.5 * s1
        # the fused build still runs every step (boxes track positions)
        b1 = rep1.counters.steps["build_tree"].kernel_launches
        b4 = rep4.counters.steps["build_tree"].kernel_launches
        assert b4 == b1

    def test_bvh_boxes_stay_correct_under_reuse(self):
        """Reused BVH still covers all bodies: boxes are rebuilt from
        current positions each step (only the *order* is stale)."""
        fresh, _, _ = run("bvh", 1)
        reused, _, _ = run("bvh", 5)
        err = relative_l2_error(reused.x, fresh.x)
        assert err < 1e-6  # order staleness barely matters for the BVH

    def test_caches_are_per_simulation(self):
        s1 = galaxy_collision(100, seed=1)
        s2 = galaxy_collision(100, seed=2)
        cfg = SimulationConfig(algorithm="bvh", gravity=PARAMS, tree_reuse_steps=5)
        sim1 = Simulation(s1, cfg)
        sim2 = Simulation(s2, cfg)
        sim1.run(2)
        sim2.run(2)
        assert sim1._tree_cache is not sim2._tree_cache
        p1 = sim1._tree_cache["bvh"]["structure"][0]
        p2 = sim2._tree_cache["bvh"]["structure"][0]
        assert not np.array_equal(p1, p2)


class TestAllPairsIgnoresCache:
    def test_no_cache_entries(self):
        _, _, sim = run("all-pairs", 4)
        assert sim._tree_cache == {}
