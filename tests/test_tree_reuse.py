"""Tests for tree reuse across timesteps (Iwasawa et al. amortization,
paper Section VI: "can be applied to any Barnes-Hut implementation")."""

import numpy as np
import pytest

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ConfigurationError
from repro.physics.accuracy import relative_l2_error
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision

PARAMS = GravityParams(softening=0.05)


def run(alg, reuse, steps=8, n=250, dt=1e-3):
    s = galaxy_collision(n, seed=1)
    cfg = SimulationConfig(algorithm=alg, theta=0.4, dt=dt, gravity=PARAMS,
                           tree_reuse_steps=reuse)
    sim = Simulation(s, cfg)
    rep = sim.run(steps)
    return s, rep, sim


class TestConfig:
    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_invalid_values(self, bad):
        with pytest.raises(ConfigurationError):
            SimulationConfig(tree_reuse_steps=bad)

    def test_default_is_every_step(self):
        assert SimulationConfig().tree_reuse_steps == 1


class TestOctreeReuse:
    def test_reuse_one_is_identical(self):
        a, _, _ = run("octree", 1)
        b, _, _ = run("octree", 1)
        assert np.array_equal(a.x, b.x)

    def test_reuse_skips_builds(self):
        """With reuse=k the build step runs ~steps/k times."""
        _, rep1, _ = run("octree", 1)
        _, rep4, _ = run("octree", 4)
        # build iterations are proportional to the number of rebuilds
        b1 = rep1.counters.steps["build_tree"].loop_iterations
        b4 = rep4.counters.steps["build_tree"].loop_iterations
        assert b4 < 0.5 * b1
        # multipoles still run every step
        m1 = rep1.counters.steps["multipoles"].kernel_launches
        m4 = rep4.counters.steps["multipoles"].kernel_launches
        assert m4 == m1

    def test_reuse_error_small_and_bounded(self):
        fresh, _, _ = run("octree", 1)
        reused, _, _ = run("octree", 4)
        err = relative_l2_error(reused.x, fresh.x)
        assert 0 < err < 1e-3  # an approximation, but a mild one

    def test_error_grows_with_reuse_window(self):
        fresh, _, _ = run("octree", 1, steps=12, dt=5e-3)
        errs = []
        for k in (2, 6, 12):
            s, _, _ = run("octree", k, steps=12, dt=5e-3)
            errs.append(relative_l2_error(s.x, fresh.x))
        assert errs[0] <= errs[-1]

    def test_rebuild_happens_after_window(self):
        _, _, sim = run("octree", 3, steps=7)
        # 7 force evaluations at construction+steps: ages cycle 1,2,3
        assert sim._tree_cache["octree"]["age"] <= 3

    def test_energy_still_conserved(self):
        from repro.physics.diagnostics import energy_report

        s0 = galaxy_collision(250, seed=1)
        e0 = energy_report(s0, PARAMS)
        s, _, _ = run("octree", 4, steps=10)
        assert energy_report(s, PARAMS).drift_from(e0) < 1e-3


class TestBVHReuse:
    def test_reuse_skips_sorts(self):
        _, rep1, _ = run("bvh", 1)
        _, rep4, _ = run("bvh", 4)
        s1 = rep1.counters.steps["sort"].sort_comparisons
        s4 = rep4.counters.steps["sort"].sort_comparisons
        assert s4 < 0.5 * s1
        # the fused build still runs every step (boxes track positions)
        b1 = rep1.counters.steps["build_tree"].kernel_launches
        b4 = rep4.counters.steps["build_tree"].kernel_launches
        assert b4 == b1

    def test_bvh_boxes_stay_correct_under_reuse(self):
        """Reused BVH still covers all bodies: boxes are rebuilt from
        current positions each step (only the *order* is stale)."""
        fresh, _, _ = run("bvh", 1)
        reused, _, _ = run("bvh", 5)
        err = relative_l2_error(reused.x, fresh.x)
        assert err < 1e-6  # order staleness barely matters for the BVH

    def test_caches_are_per_simulation(self):
        s1 = galaxy_collision(100, seed=1)
        s2 = galaxy_collision(100, seed=2)
        cfg = SimulationConfig(algorithm="bvh", gravity=PARAMS, tree_reuse_steps=5)
        sim1 = Simulation(s1, cfg)
        sim2 = Simulation(s2, cfg)
        sim1.run(2)
        sim2.run(2)
        assert sim1._tree_cache is not sim2._tree_cache
        p1 = sim1._tree_cache["bvh"]["structure"][0]
        p2 = sim2._tree_cache["bvh"]["structure"][0]
        assert not np.array_equal(p1, p2)


class TestAllPairsIgnoresCache:
    def test_no_cache_entries(self):
        _, _, sim = run("all-pairs", 4)
        assert sim._tree_cache == {}


THETA = 0.4
GROUP_SIZE = 16


def grun(alg, reuse, steps=6, n=250, dt=1e-3):
    s = galaxy_collision(n, seed=1)
    cfg = SimulationConfig(algorithm=alg, theta=THETA, dt=dt, gravity=PARAMS,
                           tree_reuse_steps=reuse,
                           traversal="grouped", group_size=GROUP_SIZE)
    sim = Simulation(s, cfg)
    rep = sim.run(steps)
    return s, rep, sim


def _assert_superset_mac(view, lists, groups, x_sorted, slack=1.0):
    """Every accepted (approx) node satisfies the *per-body* MAC for
    every member body of its group: the conservative group MAC used
    dmin <= d_i, so group-accept implies body-accept — the cached group
    lists only ever open MORE than any member's own walk would.
    *slack* loosens the bound for positions that drifted since the
    lists were built (reuse steps)."""
    go = groups.offsets
    checked = 0
    for g in range(lists.n_groups):
        nodes = lists.approx_nodes(g)
        if nodes.size == 0:
            continue
        xs = x_sorted[int(go[g]):int(go[g + 1])]
        for v in nodes:
            d2 = np.min(np.sum((xs - view.com[v]) ** 2, axis=1))
            assert view.size2[v] <= THETA * THETA * d2 * slack, (
                f"group {g} accepted node {v} violating a member's MAC")
            checked += 1
    assert checked > 0


class TestGroupedListCache:
    """The interaction-list cache under ``tree_reuse_steps > 1``:
    lists expire with the tree structure, stay conservative-MAC
    supersets for every member body, and keep the theta error bound
    when evaluated against the refreshed multipoles."""

    ILIST_KEY = ("ilists", THETA, GROUP_SIZE)

    def test_lists_live_in_structure_entry(self):
        _, _, sim = grun("octree", 4)
        entry = sim._tree_cache["octree"]
        assert self.ILIST_KEY in entry
        assert entry[self.ILIST_KEY]["lists"].theta == THETA

    def test_list_builds_amortized(self):
        """With reuse=k the group walk runs ~steps/k times; the dense
        tile evaluation still runs every step."""
        _, rep1, _ = grun("octree", 1, steps=8)
        _, rep4, _ = grun("octree", 4, steps=8)
        b1 = rep1.counters.steps["force"].list_build_steps
        b4 = rep4.counters.steps["force"].list_build_steps
        assert 0 < b4 < 0.5 * b1
        e1 = rep1.counters.steps["force"].list_eval_interactions
        e4 = rep4.counters.steps["force"].list_eval_interactions
        assert e4 > 0.5 * e1  # eval work does not disappear

    def test_octree_cached_lists_superset_mac(self):
        from repro.octree.force import octree_tree_view

        _, _, sim = grun("octree", 8, steps=5)
        entry = sim._tree_cache["octree"]
        cached = entry[self.ILIST_KEY]
        view = octree_tree_view(entry["structure"])
        x_sorted = sim.system.x[cached["perm"]]
        # Multipole COMs were refreshed at the current positions while
        # the lists are up to 5 steps stale; allow the drift slack.
        _assert_superset_mac(view, cached["lists"], cached["groups"],
                             x_sorted, slack=1.05)

    def test_bvh_cached_lists_superset_mac(self):
        from repro.bvh.build import assemble_bvh
        from repro.bvh.force import bvh_tree_view

        _, _, sim = grun("bvh", 8, steps=5)
        entry = sim._tree_cache["bvh"]
        cached = entry[self.ILIST_KEY]
        perm, box = entry["structure"]
        # The BVH is reassembled from the cached permutation at current
        # positions every step — exactly what the cached lists index.
        bvh = assemble_bvh(sim.system.x, sim.system.m, perm, box)
        _assert_superset_mac(bvh_tree_view(bvh), cached["lists"],
                             cached["groups"], bvh.x_sorted, slack=1.05)

    def test_fresh_lists_superset_mac_exact(self):
        """At build time (no drift) the superset property is exact."""
        from repro.octree.build_vectorized import build_octree_vectorized
        from repro.octree.multipoles import compute_multipoles_vectorized
        from repro.octree.force import octree_accelerations_grouped, octree_tree_view

        s = galaxy_collision(300, seed=3)
        pool = build_octree_vectorized(s.x)
        compute_multipoles_vectorized(pool, s.x, s.m, None)
        entry: dict = {}
        octree_accelerations_grouped(pool, s.x, s.m, PARAMS, theta=THETA,
                                     group_size=GROUP_SIZE, cache=entry)
        cached = entry[self.ILIST_KEY]
        _assert_superset_mac(octree_tree_view(pool), cached["lists"],
                             cached["groups"], s.x[cached["perm"]], slack=1.0)

    @pytest.mark.parametrize("alg", ["octree", "bvh"])
    def test_theta_error_bound_with_cached_lists(self, alg):
        """Cached lists + refreshed multipoles stay within the theta
        accuracy class of a full rebuild at the same positions."""
        _, _, sim = grun(alg, 16, steps=5)
        acc_cached = sim.evaluate_forces()  # age 6 < 16: cache hit

        fresh = Simulation(
            sim.system,
            SimulationConfig(algorithm=alg, theta=THETA, gravity=PARAMS,
                             traversal="grouped", group_size=GROUP_SIZE),
        )
        acc_fresh = fresh.evaluate_forces()
        assert relative_l2_error(acc_cached, acc_fresh) < 0.12 * THETA
