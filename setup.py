"""Thin setup shim.

The container used for this reproduction has no ``wheel`` package and no
network access, so PEP 517 editable installs (which require building a
wheel) fail.  This shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` fall back to the legacy ``setup.py develop`` path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
