"""Exception hierarchy for the stdpar-nbody reproduction.

The error types mirror the failure modes discussed in the paper:

* :class:`VectorizationUnsafeError` — a kernel used an operation that the
  C++ standard classifies as *vectorization-unsafe* (atomics, locks)
  while executing under the ``par_unseq`` policy
  ([algorithms.parallel.defns] in ISO C++20, Section II of the paper).
* :class:`ForwardProgressError` — an algorithm that requires *parallel
  forward progress* (starvation-free critical sections, i.e. the
  Concurrent Octree build) was offloaded to a device that only provides
  *weakly parallel* forward progress (a GPU without Independent Thread
  Scheduling).  On real hardware this manifests as a hang (Section V-B);
  we detect and raise instead.
* :class:`LivelockDetected` — the cooperative scheduler observed that no
  virtual thread can make progress under the configured scheduling mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific exceptions."""


class VectorizationUnsafeError(ReproError):
    """Raised when a vectorization-unsafe operation (atomic, lock) is
    attempted from a kernel executing under ``par_unseq``."""


class ForwardProgressError(ReproError):
    """Raised when an algorithm's forward-progress requirements exceed the
    guarantees provided by the target device."""


class LivelockDetected(ReproError):
    """Raised by the virtual-thread scheduler when the configured
    scheduling mode cannot make progress (e.g. a lock holder is never
    rescheduled under strict lockstep execution)."""


class AllocatorExhausted(ReproError):
    """Raised when the octree bump allocator runs out of reserved nodes."""


class ConfigurationError(ReproError):
    """Raised for invalid simulation or experiment configuration."""


class DeviceNotSupported(ReproError):
    """Raised when an algorithm cannot run on the requested device at all
    (e.g. Octree on a no-ITS GPU, mirroring paper Section V-B)."""
