"""Hilbert space-filling curve via Skilling's Gray-code algorithm.

The Hilbert-sorted BVH (paper Section IV-B) grids the bodies on the
coarsest equidistant Cartesian grid and sorts them by the Hilbert index
of their grid cell, "computed with the Skilling's Grey algorithm [17]".

This module implements Skilling's *AxesToTranspose* / *TransposeToAxes*
transforms (J. Skilling, "Programming the Hilbert curve", AIP 2004)
vectorized over numpy arrays of points, plus the bit interleaving that
converts between the transpose representation and a single integer key.

The Hilbert curve's defining property — consecutive indices map to
grid-adjacent cells — is what gives the BVH its spatial locality; it is
asserted by the property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.types import CODE
from repro.geometry.morton import MAX_BITS_2D, MAX_BITS_3D

_U = np.uint64


def _check(grid: np.ndarray, bits: int) -> tuple[np.ndarray, int]:
    grid = np.asarray(grid)
    if grid.ndim != 2 or grid.shape[1] not in (2, 3):
        raise ValueError(f"grid coordinates must be (N, 2) or (N, 3), got {grid.shape}")
    dim = grid.shape[1]
    max_bits = MAX_BITS_3D if dim == 3 else MAX_BITS_2D
    if not 1 <= bits <= max_bits:
        raise ValueError(f"bits must be in [1, {max_bits}] for dim={dim}, got {bits}")
    g = grid.astype(CODE)
    if np.any(g >= (_U(1) << _U(bits))):
        raise ValueError(f"grid coordinate out of range for bits={bits}")
    return g, dim


def axes_to_transpose(grid: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's AxesToTranspose, vectorized.

    Takes ``(N, dim)`` grid coordinates and returns the ``(N, dim)``
    transpose representation of their Hilbert indices.
    """
    x, dim = _check(grid, bits)
    x = x.copy()
    m = _U(1) << _U(bits - 1)

    # Inverse undo.
    q = int(m)
    while q > 1:
        p = _U(q - 1)
        qq = _U(q)
        for i in range(dim):
            hi = (x[:, i] & qq) != 0
            # invert x[0] where bit set
            x[:, 0] ^= np.where(hi, p, _U(0))
            # exchange low bits of x[0] and x[i] where bit clear
            t = np.where(hi, _U(0), (x[:, 0] ^ x[:, i]) & p)
            x[:, 0] ^= t
            x[:, i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, dim):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(x.shape[0], dtype=CODE)
    q = int(m)
    while q > 1:
        nz = (x[:, dim - 1] & _U(q)) != 0
        t ^= np.where(nz, _U(q - 1), _U(0))
        q >>= 1
    for i in range(dim):
        x[:, i] ^= t
    return x


def transpose_to_axes(transpose: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's TransposeToAxes, vectorized (inverse of the above)."""
    x, dim = _check(transpose, bits)
    x = x.copy()
    n_top = _U(2) << _U(bits - 1)

    # Gray decode by H ^ (H/2).
    t = x[:, dim - 1] >> _U(1)
    for i in range(dim - 1, 0, -1):
        x[:, i] ^= x[:, i - 1]
    x[:, 0] ^= t

    # Undo excess work.
    q = 2
    while _U(q) != n_top:
        p = _U(q - 1)
        qq = _U(q)
        for i in range(dim - 1, -1, -1):
            hi = (x[:, i] & qq) != 0
            x[:, 0] ^= np.where(hi, p, _U(0))
            tt = np.where(hi, _U(0), (x[:, 0] ^ x[:, i]) & p)
            x[:, 0] ^= tt
            x[:, i] ^= tt
        q <<= 1
    return x


def _interleave_transpose(x: np.ndarray, bits: int) -> np.ndarray:
    """Pack the transpose form into a single integer key.

    Bit ``q`` of axis ``i`` (0 = most significant axis, per Skilling's
    convention) lands at key bit ``q*dim + (dim-1-i)``, so the key's
    most-significant group holds the top bit of every axis.
    """
    n, dim = x.shape
    key = np.zeros(n, dtype=CODE)
    for q in range(bits):
        for i in range(dim):
            bit = (x[:, i] >> _U(q)) & _U(1)
            key |= bit << _U(q * dim + (dim - 1 - i))
    return key


def _deinterleave_key(key: np.ndarray, bits: int, dim: int) -> np.ndarray:
    """Inverse of :func:`_interleave_transpose`."""
    out = np.zeros((key.shape[0], dim), dtype=CODE)
    for q in range(bits):
        for i in range(dim):
            bit = (key >> _U(q * dim + (dim - 1 - i))) & _U(1)
            out[:, i] |= bit << _U(q)
    return out


def hilbert_encode(grid: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert index of each ``(N, dim)`` grid coordinate.

    The result is a ``uint64`` key in ``[0, 2**(bits*dim))``; sorting by
    it orders points along the Hilbert curve (paper Algorithm 7 — note
    that like the paper we precompute the index once rather than
    recomputing it inside the sort comparator).
    """
    x = axes_to_transpose(grid, bits)
    return _interleave_transpose(x, bits)


def hilbert_decode(key: np.ndarray, bits: int, dim: int) -> np.ndarray:
    """Grid coordinate of each Hilbert index (inverse of encode)."""
    key = np.asarray(key, dtype=CODE)
    if key.ndim != 1:
        raise ValueError("keys must be a 1-D array")
    x = _deinterleave_key(key, bits, dim)
    return transpose_to_axes(x, bits)
