"""Morton (Z-order) codes, vectorized.

The Concurrent Octree orders the children of every node in Morton order
(paper Fig. 1), and the deterministic vectorized tree builder
(:mod:`repro.octree.build_vectorized`) constructs the identical tree by
sorting full-depth Morton codes.  Encoding uses the classic
magic-number bit-spreading method, fully vectorized over numpy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.types import CODE

#: Maximum bits per dimension that fit a 64-bit code.
MAX_BITS_3D = 21
MAX_BITS_2D = 31

_U = np.uint64


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each element to every third bit."""
    x = x.astype(CODE) & _U(0x1FFFFF)
    x = (x | (x << _U(32))) & _U(0x1F00000000FFFF)
    x = (x | (x << _U(16))) & _U(0x1F0000FF0000FF)
    x = (x | (x << _U(8))) & _U(0x100F00F00F00F00F)
    x = (x | (x << _U(4))) & _U(0x10C30C30C30C30C3)
    x = (x | (x << _U(2))) & _U(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    x = x.astype(CODE) & _U(0x1249249249249249)
    x = (x ^ (x >> _U(2))) & _U(0x10C30C30C30C30C3)
    x = (x ^ (x >> _U(4))) & _U(0x100F00F00F00F00F)
    x = (x ^ (x >> _U(8))) & _U(0x1F0000FF0000FF)
    x = (x ^ (x >> _U(16))) & _U(0x1F00000000FFFF)
    x = (x ^ (x >> _U(32))) & _U(0x1FFFFF)
    return x


def _part1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 31 bits of each element to every second bit."""
    x = x.astype(CODE) & _U(0x7FFFFFFF)
    x = (x | (x << _U(16))) & _U(0x0000FFFF0000FFFF)
    x = (x | (x << _U(8))) & _U(0x00FF00FF00FF00FF)
    x = (x | (x << _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << _U(2))) & _U(0x3333333333333333)
    x = (x | (x << _U(1))) & _U(0x5555555555555555)
    return x


def _compact1by1(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by1`."""
    x = x.astype(CODE) & _U(0x5555555555555555)
    x = (x ^ (x >> _U(1))) & _U(0x3333333333333333)
    x = (x ^ (x >> _U(2))) & _U(0x0F0F0F0F0F0F0F0F)
    x = (x ^ (x >> _U(4))) & _U(0x00FF00FF00FF00FF)
    x = (x ^ (x >> _U(8))) & _U(0x0000FFFF0000FFFF)
    x = (x ^ (x >> _U(16))) & _U(0x7FFFFFFF)
    return x


def _check(grid: np.ndarray, bits: int) -> tuple[np.ndarray, int]:
    grid = np.asarray(grid)
    if grid.ndim != 2 or grid.shape[1] not in (2, 3):
        raise ValueError(f"grid coordinates must be (N, 2) or (N, 3), got {grid.shape}")
    dim = grid.shape[1]
    max_bits = MAX_BITS_3D if dim == 3 else MAX_BITS_2D
    if not 1 <= bits <= max_bits:
        raise ValueError(f"bits must be in [1, {max_bits}] for dim={dim}, got {bits}")
    g = grid.astype(CODE)
    limit = _U(1) << _U(bits)
    if np.any(g >= limit):
        raise ValueError(f"grid coordinate out of range for bits={bits}")
    return g, dim


def morton_encode(grid: np.ndarray, bits: int) -> np.ndarray:
    """Encode ``(N, dim)`` integer grid coordinates into Morton codes.

    Bit ``k`` of axis ``d`` lands at code bit ``k * dim + d``, i.e. axis
    0 (x) occupies the least significant position within each bit-group,
    matching the child ordering of paper Fig. 1.
    """
    g, dim = _check(grid, bits)
    if dim == 3:
        return (
            _part1by2(g[:, 0])
            | (_part1by2(g[:, 1]) << _U(1))
            | (_part1by2(g[:, 2]) << _U(2))
        )
    return _part1by1(g[:, 0]) | (_part1by1(g[:, 1]) << _U(1))


def morton_decode(code: np.ndarray, bits: int, dim: int) -> np.ndarray:
    """Decode Morton codes back into ``(N, dim)`` grid coordinates."""
    code = np.asarray(code, dtype=CODE)
    if code.ndim != 1:
        raise ValueError("codes must be a 1-D array")
    max_bits = MAX_BITS_3D if dim == 3 else MAX_BITS_2D
    if dim not in (2, 3):
        raise ValueError(f"dim must be 2 or 3, got {dim}")
    if not 1 <= bits <= max_bits:
        raise ValueError(f"bits must be in [1, {max_bits}] for dim={dim}")
    out = np.empty((code.shape[0], dim), dtype=CODE)
    if dim == 3:
        out[:, 0] = _compact1by2(code)
        out[:, 1] = _compact1by2(code >> _U(1))
        out[:, 2] = _compact1by2(code >> _U(2))
    else:
        out[:, 0] = _compact1by1(code)
        out[:, 1] = _compact1by1(code >> _U(1))
    mask = (_U(1) << _U(bits)) - _U(1)
    out &= mask
    return out


def morton_child_digits(code: np.ndarray, bits: int, dim: int) -> np.ndarray:
    """Return an ``(N, bits)`` array of per-level child indices.

    Column 0 is the child index at the root (most significant digit);
    column ``bits-1`` the index at the deepest level.  Used by the
    vectorized octree builder and by tests validating tree placement.
    """
    code = np.asarray(code, dtype=CODE)
    n = code.shape[0]
    out = np.empty((n, bits), dtype=np.int64)
    mask = _U((1 << dim) - 1)
    for level in range(bits):
        shift = _U(dim * (bits - 1 - level))
        out[:, level] = ((code >> shift) & mask).astype(np.int64)
    return out
