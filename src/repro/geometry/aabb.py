"""Axis-aligned bounding boxes and the CALCULATEBOUNDINGBOX step.

The paper's first pipeline stage (Algorithm 3) is a parallel
``transform_reduce`` over all body positions producing the smallest box
containing every body.  Here we provide the box type plus the plain
vectorized reduction; :mod:`repro.core.steps` wires the same computation
through the stdpar layer so that execution-policy semantics and operation
counting apply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import FLOAT, validate_positions


@dataclass(frozen=True)
class AABB:
    """An axis-aligned bounding box ``[lo, hi]`` (inclusive).

    Empty boxes are represented with ``lo = +inf, hi = -inf`` so that
    merging is the identity, matching the reduction initial value in
    paper Algorithm 3 (``vec::max(), vec::min()``).
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", np.asarray(self.lo, dtype=FLOAT))
        object.__setattr__(self, "hi", np.asarray(self.hi, dtype=FLOAT))
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ValueError("AABB lo/hi must be equal-shape 1-D vectors")

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, dim: int) -> "AABB":
        return cls(np.full(dim, np.inf), np.full(dim, -np.inf))

    @classmethod
    def from_points(cls, x: np.ndarray) -> "AABB":
        x = validate_positions(x)
        if x.shape[0] == 0:
            return cls.empty(x.shape[1])
        return cls(x.min(axis=0), x.max(axis=0))

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def is_empty(self) -> bool:
        return bool(np.any(self.lo > self.hi))

    @property
    def extent(self) -> np.ndarray:
        """Per-axis side lengths (zero for an empty box)."""
        return np.maximum(self.hi - self.lo, 0.0)

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def longest_side(self) -> float:
        return float(self.extent.max(initial=0.0))

    def merge(self, other: "AABB") -> "AABB":
        """Reduce two boxes into one (the reduction operator of Alg. 3)."""
        return AABB(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def contains(self, pts: np.ndarray, *, atol: float = 0.0) -> np.ndarray:
        """Vectorized membership test for an ``(N, dim)`` point array."""
        pts = np.asarray(pts, dtype=FLOAT)
        return np.all((pts >= self.lo - atol) & (pts <= self.hi + atol), axis=-1)

    def expanded(self, rel: float = 1e-12) -> "AABB":
        """Slightly inflated copy so boundary points quantize strictly inside."""
        pad = rel * np.maximum(self.extent, 1.0)
        return AABB(self.lo - pad, self.hi + pad)

    def __eq__(self, other: object) -> bool:  # dataclass eq breaks on arrays
        if not isinstance(other, AABB):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))


def compute_bounding_box(x: np.ndarray) -> AABB:
    """The CALCULATEBOUNDINGBOX step as a single vectorized reduction.

    Semantically identical to paper Algorithm 3's ``transform_reduce``
    with ``par_unseq``: map each body to a degenerate box, reduce by
    min/max merge.
    """
    return AABB.from_points(x)


def cubify(box: AABB) -> AABB:
    """Grow *box* into the smallest cube sharing its lower corner center.

    Both strategies subdivide isotropically, so the root cell must be a
    (hyper-)cube: the octree halves every axis per level, and the Hilbert
    grid of Section IV-B is "the coarsest equidistant Cartesian grid"
    capable of holding all bodies.
    """
    if box.is_empty:
        return box
    side = box.longest_side
    half = 0.5 * side
    c = box.center
    return AABB(c - half, c + half)


def quantize_to_grid(x: np.ndarray, box: AABB, bits: int) -> np.ndarray:
    """Map positions to integer grid coordinates in ``[0, 2**bits)``.

    The grid is the equidistant Cartesian grid over the cubified,
    slightly expanded bounding box.  Returns an ``(N, dim)`` ``uint64``
    array.  Points exactly on the upper boundary are clamped into the
    last cell.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    x = validate_positions(x)
    cube = cubify(box).expanded()
    n_cells = np.uint64(1) << np.uint64(bits)
    extent = np.maximum(cube.extent, np.finfo(FLOAT).tiny)
    scaled = (x - cube.lo) / extent * float(n_cells)
    grid = np.floor(scaled)
    np.clip(grid, 0, float(n_cells) - 1.0, out=grid)
    return grid.astype(np.uint64)
