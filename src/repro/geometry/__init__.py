"""Spatial primitives: bounding boxes, Morton codes, Hilbert curves.

These are the geometric substrates of both tree strategies:

* the Concurrent Octree subdivides the global bounding box isotropically
  and orders children in Morton order (paper Fig. 1);
* the Hilbert BVH grids bodies on the coarsest equidistant Cartesian
  grid and sorts them by the Hilbert index of their grid cell, computed
  with Skilling's Gray-code algorithm (paper Section IV-B).
"""

from repro.geometry.aabb import (
    AABB,
    compute_bounding_box,
    cubify,
    quantize_to_grid,
)
from repro.geometry.morton import (
    morton_decode,
    morton_encode,
    MAX_BITS_2D,
    MAX_BITS_3D,
)
from repro.geometry.hilbert import (
    hilbert_decode,
    hilbert_encode,
    axes_to_transpose,
    transpose_to_axes,
)

__all__ = [
    "AABB",
    "compute_bounding_box",
    "cubify",
    "quantize_to_grid",
    "morton_encode",
    "morton_decode",
    "MAX_BITS_2D",
    "MAX_BITS_3D",
    "hilbert_encode",
    "hilbert_decode",
    "axes_to_transpose",
    "transpose_to_axes",
]
