"""Metrics registry: counters, gauges, histograms, per-step sampling.

The registry is the aggregation half of :mod:`repro.obs`.  A
:class:`~repro.core.simulation.Simulation` constructed with
``metrics=MetricsRegistry(...)`` samples it once per timestep:
counter *deltas* of the step feed derived gauges (MAC acceptance ratio,
interaction-list cache hit rate, per-rank imbalance), cumulative
counters (flops, comm bytes, kernel launches), and the maintenance
refit/rebuild split; every sample then runs the configured
:mod:`~repro.obs.watchdog` hooks.  Conservation diagnostics
(:func:`conservation_sample`) are shared with
:class:`~repro.core.trace.TrajectoryRecorder`, which routes its
energy/momentum drift through :meth:`MetricsRegistry.observe_conservation`
— one sampling path for traces and conservation benches.

Serialize with :meth:`MetricsRegistry.as_dict` (the ``--metrics-out``
payload) or :meth:`metrics_block` (the compact per-record block of the
``repro-bench-v2`` schema, :mod:`repro.bench.record`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs.watchdog import Watchdog, logger


@dataclass
class Counter:
    """Monotonically accumulating total."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (``None`` until first set)."""

    value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary: count / sum / min / max / mean."""

    count: int = 0
    total: float = 0.0
    vmin: float = field(default=float("inf"))
    vmax: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {"count": self.count, "sum": self.total,
                "min": self.vmin, "max": self.vmax, "mean": self.mean}


def conservation_sample(system, gravity, *, compute_potential: bool = True) -> dict:
    """The shared conservation diagnostics sample.

    One code path feeds both the :class:`TrajectoryRecorder` time series
    and the metrics registry; ``compute_potential=False`` skips the
    O(N²) potential (``potential`` is then ``None``).
    """
    from repro.physics.diagnostics import (
        angular_momentum,
        center_of_mass,
        kinetic_energy,
        momentum,
    )
    from repro.physics.gravity import potential_energy

    return {
        "kinetic": kinetic_energy(system),
        "potential": (
            potential_energy(system.x, system.m, gravity)
            if compute_potential else None
        ),
        "momentum": momentum(system),
        "angular_momentum": angular_momentum(system),
        "center_of_mass": center_of_mass(system),
    }


class MetricsRegistry:
    """Named instruments + per-step samples + watchdog alerts."""

    def __init__(self, watchdogs: list[Watchdog] | None = None):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.watchdogs: list[Watchdog] = list(watchdogs or [])
        #: One dict per sampled instant (per-step and conservation rows).
        self.samples: list[dict[str, Any]] = []
        #: Structured watchdog warnings, in firing order.
        self.alerts: list[dict[str, Any]] = []
        self._last_totals: dict[str, float] = {}
        self._model = None

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self.gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        return self.histograms.setdefault(name, Histogram())

    # ------------------------------------------------------------------
    def _model_for(self, sim):
        if self._model is None:
            from repro.machine.costmodel import CostModel

            self._model = CostModel(sim.ctx.device, toolchain=sim.ctx.toolchain)
        return self._model

    def begin_run(self, sim) -> None:
        """Re-baseline the per-step deltas (the context was just reset)."""
        self._last_totals = sim.ctx.step_counters.total().as_dict()

    def end_run(self, sim) -> None:
        """Fold post-loop charges (bulk ``update_position``) into the
        cumulative counters, so they equal the run report's totals."""
        totals = sim.ctx.step_counters.total().as_dict()
        for name in ("flops", "comm_bytes", "comm_messages",
                     "kernel_launches", "flat_launches"):
            self.counter(name).inc(
                totals.get(name, 0.0) - self._last_totals.get(name, 0.0))
        self._last_totals = totals

    def sample_step(self, sim, step_index: int) -> dict[str, Any]:
        """Sample the standard per-step metrics after one timestep."""
        totals = sim.ctx.step_counters.total().as_dict()
        delta = {
            k: v - self._last_totals.get(k, 0.0) for k, v in totals.items()
        }
        self._last_totals = totals
        sample: dict[str, Any] = {"step": int(step_index)}

        for name in ("flops", "comm_bytes", "comm_messages",
                     "kernel_launches", "flat_launches"):
            self.counter(name).inc(delta.get(name, 0.0))
        sample["flops"] = delta.get("flops", 0.0)
        sample["comm_bytes"] = delta.get("comm_bytes", 0.0)

        # n3l near-field dedup: naive ordered pairs / deduped
        # evaluations, from this step's flat-kernel deltas.  Only
        # meaningful when the flat evaluator actually ran.
        evaluated = delta.get("near_pairs_evaluated", 0.0)
        if evaluated > 0.0:
            ratio = delta.get("near_pairs_naive", 0.0) / evaluated
            self.gauge("n3l_dedup_ratio").set(ratio)
            self.histogram("n3l_dedup_ratio").observe(ratio)
            sample["n3l_dedup_ratio"] = ratio

        mac = delta.get("mac_evals", 0.0)
        accepted = (delta.get("interaction_list_size", 0.0)
                    + delta.get("pairs_accepted_cc", 0.0))
        # Only the list-building traversals (grouped/dual) count accepted
        # approximations; the lockstep walk tests MACs without a
        # distinguishable acceptance counter, so the ratio stays unset.
        if mac > 0.0 and accepted > 0.0:
            ratio = min(accepted / mac, 1.0)
            self.gauge("mac_acceptance").set(ratio)
            self.histogram("mac_acceptance").observe(ratio)
            sample["mac_acceptance"] = ratio

        if delta.get("list_eval_interactions", 0.0) > 0.0:
            hit = 1.0 if delta.get("list_build_steps", 0.0) == 0.0 else 0.0
            self.counter("ilist_reuses" if hit else "ilist_builds").inc()
            self.histogram("ilist_cache_hit").observe(hit)
            sample["ilist_cache_hit"] = hit

        counts = None
        if sim.distributed is not None:
            counts = sim.distributed.maint_counts
        elif "_maintainer" in sim._tree_cache:
            counts = sim._tree_cache["_maintainer"].counts
        if counts is not None:
            rebuilds = float(counts.get("rebuild", 0))
            refits = float(counts.get("refit", 0))
            self.gauge("maint_rebuilds").set(rebuilds)
            self.gauge("maint_refits").set(refits)
            if rebuilds + refits > 0:
                frac = refits / (rebuilds + refits)
                self.gauge("refit_fraction").set(frac)
                sample["refit_fraction"] = frac

        if sim.distributed is not None and sim.distributed.last_report is not None:
            report = sim.distributed.last_report
            imb = float(report.imbalance(self._model_for(sim)))
            self.gauge("rank_imbalance").set(imb)
            self.histogram("rank_imbalance").observe(imb)
            sample["rank_imbalance"] = imb

        self.samples.append(sample)
        self._run_watchdogs(sample, sim)
        return sample

    def observe_conservation(
        self,
        step: int,
        *,
        energy_drift: float | None = None,
        momentum_drift: float | None = None,
        sim=None,
    ) -> dict[str, Any]:
        """Record conservation drifts (the TrajectoryRecorder feed)."""
        sample: dict[str, Any] = {"step": int(step)}
        if energy_drift is not None:
            self.gauge("energy_drift").set(energy_drift)
            sample["energy_drift"] = float(energy_drift)
        if momentum_drift is not None:
            self.gauge("momentum_drift").set(momentum_drift)
            sample["momentum_drift"] = float(momentum_drift)
        self.samples.append(sample)
        self._run_watchdogs(sample, sim)
        return sample

    def _run_watchdogs(self, sample: dict[str, Any], sim) -> None:
        for wd in self.watchdogs:
            alert = wd.check(sample, sim)
            if alert is not None:
                self.alerts.append(alert.as_dict())
                logger.warning("obs alert [%s] step %d: %s",
                               alert.kind, alert.step, alert.message)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Full serialization (the ``--metrics-out`` payload)."""
        return {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: v.as_dict() for k, v in sorted(self.histograms.items())
            },
            "samples": self.samples,
            "alerts": self.alerts,
        }

    def metrics_block(self) -> dict[str, Any]:
        """Compact final-value block for ``repro-bench-v2`` records."""
        return {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {
                k: v.value for k, v in sorted(self.gauges.items())
                if v.value is not None
            },
            "histograms": {
                k: v.as_dict() for k, v in sorted(self.histograms.items())
            },
            "n_alerts": len(self.alerts),
        }
