"""The ``--profile`` renderer, rebuilt over span/counter data.

Lives here (not in the CLI) so benches and tests can render the same
per-phase table.  When the simulation traced, rows come from the
tracer's span aggregation (:meth:`~repro.obs.tracer.Tracer.phase_counters`
— identical to the run's counters by the attribution contract);
otherwise from ``rep.counters`` directly.  The totals row aggregates
*every* column — modeled time, flops, bytes, comm, launches, MAC
evaluations and pair classes — not just modeled time.
"""

from __future__ import annotations

from repro.machine.counters import StepCounters
from repro.machine.costmodel import CostModel

#: Column order of the profile table (name, header, width).
_COLUMNS = (
    ("model_s", "model s/step", 12),
    ("flops", "flops", 10),
    ("bytes", "bytes", 10),
    ("comm_bytes", "comm B", 10),
    ("launches", "launches", 8),
    ("flat_launches", "flat ln", 8),
    ("mac_evals", "MACs", 10),
    ("pairs_deferred", "near prs", 10),
    ("pairs_accepted_cc", "cc prs", 10),
    ("n3l_dedup", "n3l dedup", 9),
)


def profile_rows(
    counters: StepCounters, model: CostModel, n_steps: int,
    *, order: tuple[str, ...] = (),
) -> list[dict[str, float | str]]:
    """Per-phase per-step rows plus a fully aggregated ``total`` row."""
    steps = max(n_steps, 1)
    names = [n for n in order if n in counters.steps]
    names += sorted(n for n in counters.steps if n not in order)
    rows: list[dict[str, float | str]] = []
    total = {name: 0.0 for name, _, _ in _COLUMNS}
    # The dedup ratio is not additive across phases: the totals row
    # recomputes it from the separately summed naive/evaluated counts.
    naive_sum = eval_sum = 0.0
    for phase in names:
        c = counters.steps[phase]
        row: dict[str, float | str] = {
            "phase": phase,
            "model_s": model.step_time(c).total / steps,
            "flops": c.flops / steps,
            "bytes": (c.bytes_read + c.bytes_written + c.bytes_irregular) / steps,
            "comm_bytes": c.comm_bytes / steps,
            "launches": c.kernel_launches / steps,
            "flat_launches": c.flat_launches / steps,
            "mac_evals": c.mac_evals / steps,
            "pairs_deferred": c.pairs_deferred / steps,
            "pairs_accepted_cc": c.pairs_accepted_cc / steps,
            "n3l_dedup": (c.near_pairs_naive / c.near_pairs_evaluated
                          if c.near_pairs_evaluated > 0 else 0.0),
        }
        naive_sum += c.near_pairs_naive
        eval_sum += c.near_pairs_evaluated
        rows.append(row)
        for name in total:
            if name != "n3l_dedup":
                total[name] += float(row[name])
    total["n3l_dedup"] = naive_sum / eval_sum if eval_sum > 0 else 0.0
    rows.append({"phase": "total", **total})
    return rows


def format_profile(rows: list[dict[str, float | str]], title: str) -> str:
    """Render the rows as the ``--profile`` table."""
    lines = [f"--- {title} ---"]
    header = "  " + f"{'phase':16s}"
    for _, label, width in _COLUMNS:
        header += f" {label:>{width}s}"
    lines.append(header)
    for row in rows:
        line = "  " + f"{row['phase']:16s}"
        for name, _, width in _COLUMNS:
            v = float(row[name])
            line += (f" {v:{width}.3e}" if name == "model_s"
                     else f" {v:{width}.3g}")
        lines.append(line)
    return "\n".join(lines)


def tenant_phase_counters(tracer, lane_tenants: dict[int, str]) -> dict[str, StepCounters]:
    """Per-tenant phase counters, split by the spans' timeline lanes.

    ``lane_tenants`` is the server's lane->tenant map (every hosted
    session runs on its own lane); spans on unmapped lanes (the driver
    lane, rank lanes of an untenanted run) are ignored.  Summation is
    lane-major in creation order — the same telescoping contract as
    :meth:`~repro.obs.tracer.Tracer.phase_counters`, so the per-tenant
    tables sum to the all-tenants table field for field.
    """
    out: dict[str, StepCounters] = {}
    for rec in sorted(tracer.spans, key=lambda r: (r.lane, r.seq)):
        if rec.cat != "phase" or not rec.delta:
            continue
        tenant = lane_tenants.get(rec.lane)
        if tenant is None:
            continue
        out.setdefault(tenant, StepCounters()).step(rec.name).add(**rec.delta)
    return out


def tenant_profile_rows(
    tracer, lane_tenants: dict[int, str], model: CostModel,
    *, steps_by_tenant: dict[str, int] | None = None,
    order: tuple[str, ...] = (),
) -> list[dict[str, float | str]]:
    """Profile rows with a leading ``tenant`` column, tenants sorted."""
    per = tenant_phase_counters(tracer, lane_tenants)
    rows: list[dict[str, float | str]] = []
    for tenant in sorted(per):
        steps = (steps_by_tenant or {}).get(tenant, 1)
        for row in profile_rows(per[tenant], model, steps, order=order):
            rows.append({"tenant": tenant, **row})
    return rows


def format_tenant_profile(rows: list[dict[str, float | str]], title: str) -> str:
    """Render per-tenant rows as the serve ``--profile`` table."""
    lines = [f"--- {title} ---"]
    header = "  " + f"{'tenant':12s} {'phase':16s}"
    for _, label, width in _COLUMNS:
        header += f" {label:>{width}s}"
    lines.append(header)
    for row in rows:
        line = "  " + f"{row['tenant']:12s} {row['phase']:16s}"
        for name, _, width in _COLUMNS:
            v = float(row[name])
            line += (f" {v:{width}.3e}" if name == "model_s"
                     else f" {v:{width}.3g}")
        lines.append(line)
    return "\n".join(lines)


def render_profile(sim, rep, n_steps: int) -> str:
    """The ``--profile`` output for one finished run.

    A thin renderer: phase counters come from the tracer's spans when
    tracing was on (the attribution contract guarantees they match
    ``rep.counters``), the table from :func:`profile_rows`, plus the
    tree-maintenance event split when a maintainer ran.
    """
    from repro.core.simulation import STEP_ORDER

    model = CostModel(sim.ctx.device, toolchain=sim.ctx.toolchain)
    tracer = sim.ctx.tracer
    counters = tracer.phase_counters() if tracer.enabled else rep.counters
    rows = profile_rows(counters, model, n_steps, order=STEP_ORDER)
    source = "spans" if tracer.enabled else "counters"
    out = format_profile(
        rows,
        f"profile: modeled on {sim.ctx.device.name}, per step over "
        f"{n_steps} ({source})",
    )
    counts = None
    if sim.distributed is not None:
        counts = sim.distributed.maint_counts
    elif "_maintainer" in sim._tree_cache:
        counts = sim._tree_cache["_maintainer"].counts
    if counts is not None:
        split = "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        out += f"\n  tree maintenance: {split}"
    return out
