"""repro.obs — structured tracing, metrics, and watchdogs.

The observability subsystem the ROADMAP's production north-star needs:

* :mod:`repro.obs.tracer` — hierarchical span tracer on a deterministic
  modeled clock (per-phase spans, per-rank lanes, stdpar launch
  instants); disabled by default at negligible cost.
* :mod:`repro.obs.export` — byte-deterministic Chrome trace-event JSON
  (Perfetto-loadable) and JSONL event streams.
* :mod:`repro.obs.metrics` — counters / gauges / histograms sampled per
  step (MAC acceptance, cache hit rate, refit split, imbalance, comm),
  shared with the conservation-diagnostics path.
* :mod:`repro.obs.watchdog` — NaN / energy-drift / imbalance hooks that
  turn bad samples into structured warnings.
* :mod:`repro.obs.report` — the ``--profile`` table, rendered from span
  data.

Wire-up: ``Simulation(system, cfg, tracer=Tracer(), metrics=
MetricsRegistry(watchdogs=default_watchdogs()))``; CLI ``run
--trace-out trace.json --metrics-out metrics.json``.
"""

from repro.obs.export import chrome_trace, write_chrome_trace, write_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    conservation_sample,
)
from repro.obs.report import (
    format_profile,
    format_tenant_profile,
    profile_rows,
    render_profile,
    tenant_phase_counters,
    tenant_profile_rows,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Tracer,
)
from repro.obs.watchdog import (
    Alert,
    EnergyDriftWatchdog,
    ImbalanceWatchdog,
    NaNWatchdog,
    Watchdog,
    default_watchdogs,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "InstantRecord",
    "TRACE_SCHEMA",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "conservation_sample",
    "Watchdog",
    "Alert",
    "NaNWatchdog",
    "EnergyDriftWatchdog",
    "ImbalanceWatchdog",
    "default_watchdogs",
    "profile_rows",
    "format_profile",
    "render_profile",
    "tenant_phase_counters",
    "tenant_profile_rows",
    "format_tenant_profile",
]
