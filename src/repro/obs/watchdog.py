"""Watchdog hooks: per-sample health checks → structured warnings.

A :class:`Watchdog` inspects each metrics sample (plus the live
simulation) and returns an :class:`Alert` when something is wrong.
Alerts are accumulated on the :class:`~repro.obs.metrics.MetricsRegistry`
(``registry.alerts``) and logged through the ``repro.obs`` logger, so
long runs surface NaN positions, runaway energy drift, or rank load
imbalance without anyone staring at stdout.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, dataclass

import numpy as np

logger = logging.getLogger("repro.obs")


@dataclass(frozen=True)
class Alert:
    """One structured watchdog warning."""

    step: int
    kind: str
    message: str
    value: float | None = None

    def as_dict(self) -> dict:
        return asdict(self)


class Watchdog:
    """Base class: override :meth:`check`."""

    kind = "watchdog"

    def check(self, sample: dict, sim) -> Alert | None:  # pragma: no cover
        raise NotImplementedError


class NaNWatchdog(Watchdog):
    """Fires when any body position or velocity is non-finite."""

    kind = "nan_positions"

    def check(self, sample: dict, sim) -> Alert | None:
        if sim is None:
            return None
        x = np.asarray(sim.system.x)
        if not np.isfinite(x).all():
            bad = int(np.size(x) - np.isfinite(x).sum())
            return Alert(
                step=int(sample.get("step", -1)), kind=self.kind,
                message=f"{bad} non-finite position component(s)",
                value=float(bad),
            )
        return None


class EnergyDriftWatchdog(Watchdog):
    """Fires when the sampled relative energy drift exceeds *threshold*."""

    kind = "energy_drift"

    def __init__(self, threshold: float = 0.05):
        self.threshold = float(threshold)

    def check(self, sample: dict, sim) -> Alert | None:
        drift = sample.get("energy_drift")
        if drift is not None and np.isfinite(drift) and drift > self.threshold:
            return Alert(
                step=int(sample.get("step", -1)), kind=self.kind,
                message=f"energy drift {drift:.3e} exceeds "
                        f"threshold {self.threshold:.3e}",
                value=float(drift),
            )
        return None


class ImbalanceWatchdog(Watchdog):
    """Fires when the per-rank load imbalance (max/mean modeled rank
    seconds) exceeds *threshold* — the signal that the decomposition
    needs a weighted rebalance."""

    kind = "load_imbalance"

    def __init__(self, threshold: float = 2.0):
        self.threshold = float(threshold)

    def check(self, sample: dict, sim) -> Alert | None:
        imb = sample.get("rank_imbalance")
        if imb is not None and np.isfinite(imb) and imb > self.threshold:
            return Alert(
                step=int(sample.get("step", -1)), kind=self.kind,
                message=f"rank imbalance {imb:.3f} exceeds "
                        f"threshold {self.threshold:.3f}",
                value=float(imb),
            )
        return None


def default_watchdogs(
    *, energy_drift_threshold: float = 0.05, imbalance_threshold: float = 2.0,
) -> list[Watchdog]:
    """The standard set wired in by ``--metrics-out``."""
    return [
        NaNWatchdog(),
        EnergyDriftWatchdog(energy_drift_threshold),
        ImbalanceWatchdog(imbalance_threshold),
    ]
