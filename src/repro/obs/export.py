"""Trace serialization: Chrome trace-event JSON and a JSONL stream.

Both exports are **deterministic by construction**: events carry only
modeled-clock timestamps and counter-derived payloads, serialized with
sorted keys and fixed separators, so two identical seeded runs write
byte-identical files.  Host wall times are non-deterministic and are
only included when explicitly requested (``include_host=True``).

The Chrome format (``{"traceEvents": [...]}``) loads directly in
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: one track
per lane (the driver plus one per simulated rank), complete ``X``
events for spans, ``i`` instants for stdpar launches and maintenance
decisions.  ``benchmarks/check_trace_schema.py`` validates the schema
in CI.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.obs.tracer import TRACE_SCHEMA, Tracer

#: Single synthetic process id of the simulated machine.
_PID = 1


def _json_bytes(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _us(seconds: float) -> float:
    """Modeled seconds → trace microseconds, ns-rounded (deterministic)."""
    return round(seconds * 1e6, 3)


def _lane_metadata(tracer: Tracer) -> list[dict[str, Any]]:
    lanes = {rec.lane for rec in tracer.spans}
    lanes |= {rec.lane for rec in tracer.instants}
    lanes |= set(tracer.lane_names)
    events: list[dict[str, Any]] = [{
        "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
        "args": {"name": "repro-nbody"},
    }]
    for lane in sorted(lanes):
        name = tracer.lane_names.get(
            lane, "driver" if lane == 0 else f"rank {lane - 1}"
        )
        events.append({
            "ph": "M", "pid": _PID, "tid": lane, "name": "thread_name",
            "args": {"name": name},
        })
    return events


def trace_events(tracer: Tracer, *, include_host: bool = False) -> list[dict[str, Any]]:
    """All events (metadata + spans + instants) in deterministic order."""
    events = _lane_metadata(tracer)
    records: list[tuple[int, dict[str, Any]]] = []
    for rec in tracer.spans:
        args: dict[str, Any] = {"model_s": rec.model_seconds, **rec.delta}
        args.update(rec.args)
        if include_host:
            args["host_s"] = rec.host_seconds
        records.append((rec.seq, {
            "ph": "X", "pid": _PID, "tid": rec.lane, "name": rec.name,
            "cat": rec.cat, "ts": _us(rec.t0),
            "dur": _us(rec.t1) - _us(rec.t0), "args": args,
        }))
    for rec in tracer.instants:
        records.append((rec.seq, {
            "ph": "i", "pid": _PID, "tid": rec.lane, "name": rec.name,
            "cat": "event", "s": "t", "ts": _us(rec.t), "args": dict(rec.args),
        }))
    records.sort(key=lambda p: p[0])
    events.extend(e for _, e in records)
    return events


def chrome_trace(tracer: Tracer, *, include_host: bool = False) -> dict[str, Any]:
    """The Perfetto-loadable trace object."""
    meta: dict[str, Any] = {"schema": TRACE_SCHEMA}
    model = getattr(tracer, "_model", None)
    if model is not None:
        meta["model_device"] = model.device.key
    return {
        "displayTimeUnit": "ms",
        "otherData": meta,
        "traceEvents": trace_events(tracer, include_host=include_host),
    }


def write_chrome_trace(
    tracer: Tracer, path: str | pathlib.Path, *, include_host: bool = False,
) -> pathlib.Path:
    """Write the Chrome trace-event JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(_json_bytes(chrome_trace(tracer, include_host=include_host)) + "\n")
    return path


def write_jsonl(
    tracer: Tracer, path: str | pathlib.Path, *, include_host: bool = False,
) -> pathlib.Path:
    """Write the event stream as JSONL (one event object per line).

    The first line is a meta record (``{"type": "meta", ...}``); every
    following line is one trace event tagged with its ``ph`` kind.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [_json_bytes({
        "type": "meta", "schema": TRACE_SCHEMA,
        "lanes": {str(k): v for k, v in sorted(tracer.lane_names.items())},
    })]
    lines += [_json_bytes(e) for e in trace_events(tracer, include_host=include_host)]
    path.write_text("\n".join(lines) + "\n")
    return path
