"""Hierarchical span tracer with a deterministic modeled clock.

The tracer is the recording half of :mod:`repro.obs`.  It attaches to an
:class:`~repro.stdpar.context.ExecutionContext` (``ctx.tracer``) and
turns every ``ctx.step(name)`` window into a **phase span**: a record of
the phase name, the exact :class:`~repro.machine.counters.Counters`
delta the window attributed to that phase's bucket, the host wall time
of the window, and the cost-model projected device time of the delta.

Timestamps do **not** come from the host clock.  Each lane (the driver
plus one lane per simulated rank) carries a *modeled clock*: when a
phase span closes, its lane's clock advances by the cost model's
projected seconds for the span's own counter delta.  Because counters
are exact and the model is a pure function of them, two identical
seeded runs produce identical span records — and byte-identical
exported traces (:mod:`repro.obs.export`).  Host wall times are kept on
the records but excluded from deterministic exports.

Span kinds
----------

* **phase** — opened by ``ctx.step``; carries a counter delta and
  advances the lane clock by its modeled duration on exit.  Nested
  phases of *different* names attribute exclusively (the context's
  current-step switch routes their counters to their own buckets), so
  summing phase-span deltas reproduces the run's counters exactly
  (:meth:`Tracer.phase_counters`).
* **group** — purely structural (e.g. one ``step`` of the time loop);
  spans the lane clock between enter and exit, carries no counters.
* **instant** — a point event (a stdpar launch, a maintenance
  decision), stamped at the lane's current clock.

When tracing is disabled the shared :data:`NULL_TRACER` stands in; its
``enabled`` flag short-circuits every call site to one attribute test.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.machine.counters import Counters, StepCounters

#: Lane id of the driving (single-rank / session) context.
DRIVER_LANE = 0

#: Trace payload schema identifier stamped into every export.
TRACE_SCHEMA = "repro-trace-v1"


def _counters_from(delta: dict[str, float]) -> Counters:
    c = Counters()
    if delta:
        c.add(**delta)
    return c


def _bucket_delta(b0: dict[str, float], b1: dict[str, float]) -> dict[str, float]:
    """Non-zero per-field difference of two bucket snapshots.

    ``traversal_steps_max`` is max-like: the window's value is the
    bucket's running max, reported as-is when it changed.
    """
    out: dict[str, float] = {}
    for k, v in b1.items():
        prev = b0.get(k, 0.0)
        if k == "traversal_steps_max":
            if v != prev:
                out[k] = v
        elif v != prev:
            out[k] = v - prev
    return out


@dataclass
class SpanRecord:
    """One closed span on one lane (all times in modeled seconds)."""

    seq: int                 #: global creation order (deterministic)
    name: str
    cat: str                 #: "phase" | "group"
    lane: int
    t0: float                #: lane clock at enter
    t1: float                #: lane clock at exit
    model_seconds: float     #: projected device time of *delta*
    host_seconds: float      #: host wall time (non-deterministic)
    delta: dict[str, float]  #: non-zero counter fields attributed here
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class InstantRecord:
    """A point event on one lane."""

    seq: int
    name: str
    lane: int
    t: float
    args: dict[str, Any] = field(default_factory=dict)


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Call sites guard on ``tracer.enabled`` so the disabled cost is one
    attribute load; these methods exist only for direct callers.
    """

    enabled = False
    spans: tuple = ()
    instants: tuple = ()

    def begin_phase(self, name, ctx, *, lane=DRIVER_LANE):  # pragma: no cover
        return None

    def end_phase(self, frame, ctx, host_seconds=0.0):  # pragma: no cover
        pass

    def instant(self, name, *, lane=DRIVER_LANE, args=None):  # pragma: no cover
        pass

    @contextmanager
    def group(self, name, *, lane=DRIVER_LANE, args=None) -> Iterator[None]:
        yield

    def reset(self) -> None:  # pragma: no cover - trivial
        pass


#: Shared disabled tracer (the default of every ExecutionContext).
NULL_TRACER = NullTracer()


class Tracer:
    """Records spans and instants on per-lane modeled timelines.

    Attach with ``Simulation(..., tracer=Tracer())`` (or by assigning
    ``ctx.tracer``); export with :mod:`repro.obs.export`.  The cost
    model used for modeled durations is built lazily from the first
    context seen (same device + toolchain), or can be injected.
    """

    enabled = True

    def __init__(self, model=None):
        self._model = model
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self._clock: dict[int, float] = {}
        self._seq = 0
        self.lane_names: dict[int, str] = {DRIVER_LANE: "driver"}

    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _model_for(self, ctx):
        if self._model is None:
            from repro.machine.costmodel import CostModel

            self._model = CostModel(ctx.device, toolchain=ctx.toolchain)
        return self._model

    def now(self, lane: int = DRIVER_LANE) -> float:
        """Current modeled clock of *lane*, seconds."""
        return self._clock.get(lane, 0.0)

    def ensure_lane(self, lane: int, name: str) -> None:
        self.lane_names.setdefault(lane, name)

    def reset(self) -> None:
        """Drop all records and rewind every lane clock to zero.

        Called by ``ExecutionContext.reset_accounting`` so an exported
        trace covers exactly the counters of the reported run.
        """
        self.spans.clear()
        self.instants.clear()
        self._clock.clear()
        self._seq = 0

    # ------------------------------------------------------------------
    # Phase spans (driven by ExecutionContext.step)
    # ------------------------------------------------------------------
    def begin_phase(self, name: str, ctx, *, lane: int = DRIVER_LANE) -> dict:
        """Open a phase span over *ctx*'s bucket *name*; returns a frame."""
        return {
            "name": name,
            "lane": lane,
            "seq": self._next_seq(),
            "t0": self.now(lane),
            "b0": ctx.step_counters.step(name).as_dict(),
        }

    def end_phase(self, frame: dict, ctx, host_seconds: float = 0.0) -> SpanRecord:
        name, lane = frame["name"], frame["lane"]
        delta = _bucket_delta(frame["b0"], ctx.step_counters.step(name).as_dict())
        model_s = (
            self._model_for(ctx).step_time(_counters_from(delta)).total
            if delta else 0.0
        )
        self._clock[lane] = self.now(lane) + model_s
        rec = SpanRecord(
            seq=frame["seq"], name=name, cat="phase", lane=lane,
            t0=frame["t0"], t1=self._clock[lane],
            model_seconds=model_s, host_seconds=host_seconds, delta=delta,
        )
        self.spans.append(rec)
        return rec

    # ------------------------------------------------------------------
    # Group spans and instants
    # ------------------------------------------------------------------
    @contextmanager
    def group(
        self, name: str, *, lane: int = DRIVER_LANE,
        args: dict[str, Any] | None = None,
    ) -> Iterator[None]:
        """Structural span: brackets the lane clock, carries no counters."""
        seq = self._next_seq()
        t0 = self.now(lane)
        try:
            yield
        finally:
            self.spans.append(SpanRecord(
                seq=seq, name=name, cat="group", lane=lane,
                t0=t0, t1=self.now(lane), model_seconds=0.0,
                host_seconds=0.0, delta={}, args=dict(args or {}),
            ))

    def instant(
        self, name: str, *, lane: int = DRIVER_LANE,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Point event at the lane's current modeled time."""
        self.instants.append(InstantRecord(
            seq=self._next_seq(), name=name, lane=lane,
            t=self.now(lane), args=dict(args or {}),
        ))

    # ------------------------------------------------------------------
    # Synthetic lanes (distributed per-rank timelines)
    # ------------------------------------------------------------------
    def emit_phases(
        self,
        lane: int,
        step_counters: StepCounters,
        ctx,
        *,
        at: float | None = None,
        order: tuple[str, ...] = (),
        lane_name: str | None = None,
    ) -> None:
        """Emit one closed phase span per counter bucket onto *lane*.

        Used by the distributed runtime, which accounts each simulated
        rank into its own :class:`StepCounters` and publishes the final
        buckets as that rank's timeline for the evaluation, starting at
        *at* (typically the driver clock when the evaluation began).
        Buckets are laid out back to back in *order* (unknown names
        follow, sorted) with modeled durations.
        """
        if lane_name is not None:
            self.ensure_lane(lane, lane_name)
        if at is not None:
            self._clock[lane] = max(self.now(lane), at)
        names = [n for n in order if n in step_counters.steps]
        names += sorted(n for n in step_counters.steps if n not in order)
        for name in names:
            delta = _bucket_delta({}, step_counters.steps[name].as_dict())
            if not delta:
                continue
            model_s = self._model_for(ctx).step_time(_counters_from(delta)).total
            t0 = self.now(lane)
            self._clock[lane] = t0 + model_s
            self.spans.append(SpanRecord(
                seq=self._next_seq(), name=name, cat="phase", lane=lane,
                t0=t0, t1=self._clock[lane], model_seconds=model_s,
                host_seconds=0.0, delta=delta,
            ))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def phase_counters(self) -> StepCounters:
        """Per-phase counters re-assembled from the recorded spans.

        Spans are summed lane-major in creation order, which telescopes
        each bucket's deltas back to its exact totals: the result equals
        the run's ``rep.counters`` field for field (max-like fields by
        max).  ``--profile`` renders from this when tracing is on.
        """
        out = StepCounters()
        for rec in sorted(self.spans, key=lambda r: (r.lane, r.seq)):
            if rec.cat == "phase" and rec.delta:
                out.step(rec.name).add(**rec.delta)
        return out
