"""The paper's benchmark workload: two neighboring galaxies colliding.

Section V-A: "The experiments simulate a deterministic collision
between two neighboring Galaxies with varying number of bodies".  We
realize it as two virialized Plummer spheres separated along x and
approaching with a mild transverse offset (a grazing collision, the
classic interacting-galaxies setup).  Determinism: the same ``n`` and
``seed`` always generate the identical system.
"""

from __future__ import annotations

import numpy as np

from repro.physics.bodies import BodySystem
from repro.workloads.plummer import plummer_sphere, _zero_com


def galaxy_collision(
    n: int,
    *,
    seed: int = 0,
    separation: float = 6.0,
    impact_parameter: float = 1.0,
    approach_speed: float = 0.5,
    mass_ratio: float = 1.0,
    G: float = 1.0,
) -> BodySystem:
    """Two-galaxy collision with ``n`` total bodies.

    ``mass_ratio`` is the mass (and body-count) ratio of the second
    galaxy to the first.
    """
    if n < 2:
        raise ValueError("need at least 2 bodies for a collision")
    n2 = max(1, int(round(n * mass_ratio / (1.0 + mass_ratio))))
    n1 = n - n2
    m1 = 1.0
    m2 = mass_ratio

    rng = np.random.default_rng(seed)
    g1 = plummer_sphere(n1, total_mass=m1, scale_radius=1.0, G=G, rng=rng)
    g2 = plummer_sphere(n2, total_mass=m2, scale_radius=1.0, G=G, rng=rng)

    half = 0.5 * separation
    g1.x[:, 0] -= half
    g2.x[:, 0] += half
    g1.x[:, 1] -= 0.5 * impact_parameter
    g2.x[:, 1] += 0.5 * impact_parameter
    g1.v[:, 0] += 0.5 * approach_speed
    g2.v[:, 0] -= 0.5 * approach_speed

    sys = BodySystem(
        np.concatenate((g1.x, g2.x)),
        np.concatenate((g1.v, g2.v)),
        np.concatenate((g1.m, g2.m)),
    )
    _zero_com(sys)
    return sys
