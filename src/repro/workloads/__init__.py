"""Deterministic workload generators.

* :func:`galaxy_collision` — the paper's benchmark workload: "a
  deterministic collision between two neighboring Galaxies with varying
  number of bodies" (Section V-A), realized as two Plummer spheres on
  an approach orbit.
* :func:`plummer_sphere` — the standard collisionless test galaxy.
* :func:`uniform_cube` — uniform random bodies (worst case for tree
  locality; used by property tests and ablations).
* :func:`solar_system` — synthetic stand-in for NASA JPL's Small-Body
  Database used in the validation experiment (Keplerian orbits around
  a dominant central mass; see DESIGN.md substitution table).

All generators are seeded and reproducible: the same arguments always
produce bit-identical systems.
"""

from repro.workloads.plummer import plummer_sphere
from repro.workloads.galaxy import galaxy_collision
from repro.workloads.uniform import uniform_cube
from repro.workloads.solar import solar_system, SOLAR_GM, AU, DAY

__all__ = [
    "plummer_sphere",
    "galaxy_collision",
    "uniform_cube",
    "solar_system",
    "SOLAR_GM",
    "AU",
    "DAY",
]
