"""Plummer-sphere galaxy model.

The Plummer profile is the standard initial condition for collisionless
galaxy experiments (Aarseth, Hénon & Wielen 1974 sampling).  Positions
follow the density rho(r) ∝ (1 + r²/a²)^(-5/2); velocities are drawn
from the isotropic distribution function via von Neumann rejection, so
the sphere starts in virial equilibrium (2T + U ≈ 0), which the tests
check.
"""

from __future__ import annotations

import numpy as np

from repro.physics.bodies import BodySystem
from repro.types import FLOAT


def plummer_sphere(
    n: int,
    *,
    total_mass: float = 1.0,
    scale_radius: float = 1.0,
    G: float = 1.0,
    seed: int = 0,
    dim: int = 3,
    rng: np.random.Generator | None = None,
) -> BodySystem:
    """A virialized Plummer sphere of *n* equal-mass bodies."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if dim != 3:
        raise ValueError("the Plummer sampler is 3-D only")
    rng = np.random.default_rng(seed) if rng is None else rng
    a = scale_radius
    m = np.full(n, total_mass / max(n, 1), dtype=FLOAT)

    # Radius via inverse-CDF of the enclosed-mass fraction.
    u = rng.uniform(0.0, 1.0, n)
    # Clip to avoid the (measure-zero) infinite tail.
    u = np.clip(u, 1e-10, 1.0 - 1e-10)
    r = a / np.sqrt(u ** (-2.0 / 3.0) - 1.0)

    # Isotropic directions.
    x = _isotropic(rng, n, r)

    # Speed from the distribution function g(q) = q^2 (1 - q^2)^(7/2),
    # q = v / v_esc, by rejection sampling (classic Aarseth trick).
    q = np.empty(n, dtype=FLOAT)
    remaining = np.arange(n)
    while remaining.size:
        q1 = rng.uniform(0.0, 1.0, remaining.size)
        q2 = rng.uniform(0.0, 0.1, remaining.size)
        ok = q2 < q1 * q1 * (1.0 - q1 * q1) ** 3.5
        q[remaining[ok]] = q1[ok]
        remaining = remaining[~ok]
    v_esc = np.sqrt(2.0 * G * total_mass) * (r * r + a * a) ** -0.25
    v = _isotropic(rng, n, q * v_esc)

    sys = BodySystem(x, v, m)
    _zero_com(sys)
    return sys


def _isotropic(rng: np.random.Generator, n: int, radius: np.ndarray) -> np.ndarray:
    """Points at the given radii in uniformly random directions."""
    z = rng.uniform(-1.0, 1.0, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    s = np.sqrt(np.maximum(1.0 - z * z, 0.0))
    return (radius[:, None] * np.stack(
        (s * np.cos(phi), s * np.sin(phi), z), axis=1
    )).astype(FLOAT)


def _zero_com(sys: BodySystem) -> None:
    """Move to the centre-of-mass frame (exact momentum zero)."""
    if sys.n == 0:
        return
    M = sys.total_mass
    sys.x -= (sys.m[:, None] * sys.x).sum(axis=0) / M
    sys.v -= (sys.m[:, None] * sys.v).sum(axis=0) / M
