"""Uniform random bodies in a cube.

The least tree-friendly distribution (no clustering): used by property
tests, the ordering ablation, and as a stress case for the traversal
kernels.
"""

from __future__ import annotations

import numpy as np

from repro.physics.bodies import BodySystem
from repro.types import FLOAT


def uniform_cube(
    n: int,
    *,
    side: float = 1.0,
    seed: int = 0,
    dim: int = 3,
    velocity_scale: float = 0.0,
    equal_mass: bool = True,
) -> BodySystem:
    """``n`` bodies uniform in ``[0, side]^dim`` with optional random
    velocities and (optionally) random masses in ``[0.5, 1.5]/n``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = np.random.default_rng(seed)
    x = (side * rng.random((n, dim))).astype(FLOAT)
    v = (velocity_scale * rng.standard_normal((n, dim))).astype(FLOAT)
    if equal_mass:
        m = np.full(n, 1.0 / max(n, 1), dtype=FLOAT)
    else:
        m = ((0.5 + rng.random(n)) / max(n, 1)).astype(FLOAT)
    return BodySystem(x, v, m)
