"""Synthetic solar-system small-body population.

Stand-in for the validation dataset of paper Section V-A (1,039,551
small bodies from NASA JPL's Small-Body Database, evolved for one day
at one-hour timesteps).  The database itself is not redistributable
offline, so we synthesize a belt-like population with the same
*dynamical character*: a dominant central mass and Keplerian orbits
with main-belt element distributions — which is exactly what makes
Barnes-Hut accurate on this workload (distant bodies cluster around
the Sun) and what the validation experiment exercises.

Units: AU, days, solar masses.  With ``G = SOLAR_GM`` a body of mass 1
at the origin reproduces heliocentric orbital periods (Kepler's third
law: a 1 AU circular orbit takes 365.25 days).
"""

from __future__ import annotations

import numpy as np

from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams
from repro.types import FLOAT

#: One astronomical unit / one day, in workload units.
AU = 1.0
DAY = 1.0

#: Gaussian gravitational constant squared: G * M_sun in AU^3 / day^2.
SOLAR_GM = 0.01720209895**2

#: Gravity parameters to use with this workload (softening-free:
#: orbits must be exact Kepler dynamics).
SOLAR_GRAVITY = GravityParams(G=SOLAR_GM, softening=0.0)


def _solve_kepler(mean_anom: np.ndarray, ecc: np.ndarray, iters: int = 12) -> np.ndarray:
    """Solve E - e sin E = M by vectorized Newton iteration."""
    E = mean_anom + ecc * np.sin(mean_anom)
    for _ in range(iters):
        f = E - ecc * np.sin(E) - mean_anom
        E = E - f / (1.0 - ecc * np.cos(E))
    return E


def solar_system(
    n: int,
    *,
    seed: int = 0,
    include_sun: bool = True,
    sun_mass: float = 1.0,
    body_mass: float = 1e-12,
) -> BodySystem:
    """``n`` bodies total (Sun + n-1 small bodies if *include_sun*).

    Element distributions loosely follow the main asteroid belt:
    semi-major axes 1.8-4.5 AU (log-uniform), Rayleigh eccentricities
    (sigma 0.1, clipped at 0.6), Rayleigh inclinations (sigma 8 deg).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    n_small = n - 1 if include_sun else n

    a = np.exp(rng.uniform(np.log(1.8), np.log(4.5), n_small))
    e = np.clip(rng.rayleigh(0.10, n_small), 0.0, 0.6)
    inc = np.clip(rng.rayleigh(np.deg2rad(8.0), n_small), 0.0, np.deg2rad(40.0))
    raan = rng.uniform(0.0, 2.0 * np.pi, n_small)   # longitude of node
    argp = rng.uniform(0.0, 2.0 * np.pi, n_small)   # argument of perihelion
    mean = rng.uniform(0.0, 2.0 * np.pi, n_small)   # mean anomaly

    E = _solve_kepler(mean, e)
    mu = SOLAR_GM * sun_mass

    # Perifocal position and velocity.
    cosE, sinE = np.cos(E), np.sin(E)
    r = a * (1.0 - e * cosE)
    xp = a * (cosE - e)
    yp = a * np.sqrt(1.0 - e * e) * sinE
    k = np.sqrt(mu * a) / r
    vxp = -k * sinE
    vyp = k * np.sqrt(1.0 - e * e) * cosE

    # Rotate perifocal -> ecliptic (Rz(raan) Rx(inc) Rz(argp)).
    cO, sO = np.cos(raan), np.sin(raan)
    ci, si = np.cos(inc), np.sin(inc)
    cw, sw = np.cos(argp), np.sin(argp)
    r11 = cO * cw - sO * sw * ci
    r12 = -cO * sw - sO * cw * ci
    r21 = sO * cw + cO * sw * ci
    r22 = -sO * sw + cO * cw * ci
    r31 = sw * si
    r32 = cw * si

    def rotate(px, py):
        return np.stack(
            (r11 * px + r12 * py, r21 * px + r22 * py, r31 * px + r32 * py),
            axis=1,
        ).astype(FLOAT)

    x_small = rotate(xp, yp)
    v_small = rotate(vxp, vyp)
    m_small = np.full(n_small, body_mass, dtype=FLOAT)

    if include_sun:
        x = np.concatenate((np.zeros((1, 3), dtype=FLOAT), x_small))
        v = np.concatenate((np.zeros((1, 3), dtype=FLOAT), v_small))
        m = np.concatenate((np.array([sun_mass], dtype=FLOAT), m_small))
    else:
        x, v, m = x_small, v_small, m_small
    return BodySystem(x, v, m)
