"""Row generators for the paper's figures.

Each function measures the galaxy-collision pipeline on the host and
projects it onto the relevant slice of the device catalog, returning
the list-of-dicts that the corresponding ``benchmarks/bench_fig*.py``
prints (and that EXPERIMENTS.md records).

The paper's sizes are kept (tiny = 1e4, small = 1e5, mid = 1e6); sizes
beyond ``max_direct`` are measured on a size ladder and power-law
extrapolated (see :mod:`repro.bench.extrapolate`).
"""

from __future__ import annotations

from repro.bench import MeasuredRun, measure_pipeline, project_throughput
from repro.core.config import SimulationConfig
from repro.machine import get_device, list_devices
from repro.machine.costmodel import CostModel
from repro.machine.device import DeviceKind
from repro.physics.gravity import GravityParams
from repro.workloads import galaxy_collision

ALGS = ("all-pairs", "all-pairs-col", "octree", "bvh")

#: Default direct-execution cap; figure benches lower it for speed.
DEFAULT_MAX_DIRECT = 12_000


def _config() -> SimulationConfig:
    # theta = 0.5 and FP64 per Section V-A; softened gravity for the
    # galaxy workload.
    return SimulationConfig(theta=0.5, gravity=GravityParams(softening=0.05))


def measure_galaxy_runs(
    n: int,
    algorithms=ALGS,
    *,
    max_direct: int = DEFAULT_MAX_DIRECT,
    seed: int = 0,
) -> dict[str, MeasuredRun]:
    """Measured per-timestep pipelines for the galaxy workload."""
    cfg = _config()
    mk = lambda k: galaxy_collision(k, seed=seed)
    return {
        alg: measure_pipeline(mk, alg, n, config=cfg, max_direct=max_direct)
        for alg in algorithms
    }


# ----------------------------------------------------------------------
def fig5_rows(*, n: int = 10_000, max_direct: int = DEFAULT_MAX_DIRECT) -> list[dict]:
    """Fig. 5: single-core sequential vs single-socket parallel
    throughput, tiny galaxy workload, CPUs only."""
    runs = measure_galaxy_runs(n, max_direct=max_direct)
    rows = []
    for d in list_devices(DeviceKind.CPU):
        for alg, r in runs.items():
            seq = project_throughput(r, d, sequential=True)
            par = project_throughput(r, d)
            rows.append({
                "figure": "fig5", "device": d.name, "algorithm": alg, "n": r.n,
                "seq_bodies_per_s": seq, "par_bodies_per_s": par,
                "speedup": (par / seq) if (par and seq) else None,
            })
    return rows


def _throughput_rows(figure: str, n: int, max_direct: int,
                     algorithms=ALGS) -> list[dict]:
    runs = measure_galaxy_runs(n, algorithms, max_direct=max_direct)
    rows = []
    for d in list_devices():
        for alg, r in runs.items():
            rows.append({
                "figure": figure, "device": d.name, "kind": d.kind.value,
                "algorithm": alg, "n": r.n,
                "bodies_per_s": project_throughput(r, d),
            })
    return rows


def fig6_rows(*, n: int = 100_000, max_direct: int = DEFAULT_MAX_DIRECT) -> list[dict]:
    """Fig. 6: algorithm throughput, small galaxy workload, all devices."""
    return _throughput_rows("fig6", n, max_direct)


def fig7_rows(*, n: int = 1_000_000, max_direct: int = DEFAULT_MAX_DIRECT) -> list[dict]:
    """Fig. 7: algorithm throughput, mid galaxy workload, all devices."""
    return _throughput_rows("fig7", n, max_direct)


# ----------------------------------------------------------------------
def fig8_rows(*, n: int = 100_000, max_direct: int = DEFAULT_MAX_DIRECT) -> list[dict]:
    """Fig. 8: relative execution time of the non-force pipeline steps
    on GH200 (CPU = Grace, GPU = GH200) across toolchains."""
    runs = measure_galaxy_runs(n, ("octree", "bvh"), max_direct=max_direct)
    targets = [
        ("grace", "gcc"), ("grace", "clang"), ("grace", "acpp"),
        ("gh200", "nvcpp"), ("gh200", "acpp"),
    ]
    rows = []
    for key, tc in targets:
        d = get_device(key)
        for alg, r in runs.items():
            model = CostModel(d, toolchain=tc)
            times = model.step_times(r.counters)
            non_force = {k: v for k, v in times.items()
                         if k not in ("force",)}
            total = sum(times.values())
            for step, t in sorted(non_force.items()):
                rows.append({
                    "figure": "fig8", "device": d.name, "toolchain": tc,
                    "algorithm": alg, "step": step,
                    "seconds": t, "fraction_of_total": t / total if total else None,
                })
    return rows


def fig9_rows(
    *,
    sizes=(10_000, 30_000, 100_000, 300_000, 1_000_000),
    max_direct: int = DEFAULT_MAX_DIRECT,
) -> list[dict]:
    """Fig. 9: AdaptiveCpp vs NVC++ on GH200 over a size sweep."""
    d = get_device("gh200")
    rows = []
    for n in sizes:
        runs = measure_galaxy_runs(n, ("octree", "bvh"), max_direct=max_direct)
        for alg, r in runs.items():
            thr = {
                tc: project_throughput(r, d, toolchain=tc)
                for tc in ("nvcpp", "acpp")
            }
            ratio = (thr["nvcpp"] / thr["acpp"]
                     if thr["nvcpp"] and thr["acpp"] else None)
            rows.append({
                "figure": "fig9", "device": d.name, "algorithm": alg, "n": n,
                "nvcpp_bodies_per_s": thr["nvcpp"],
                "acpp_bodies_per_s": thr["acpp"],
                "ratio": ratio,
            })
    return rows
