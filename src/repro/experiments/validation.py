"""The Section V-A validation experiment.

Paper: "we validate the performance and accuracy of our implementations
against the state-of-the-art n-body solver from Thüring et al. [...] by
simulating the evolution of 1,039,551 small solar system bodies from
NASA's JPL Small-Body Database for one full day with a timestep of one
hour.  The L2 error norm of the final body positions among all three
implementations is below 1e-6.  Our Octree algorithm outperforms BVH by
3.3x, and Thüring et al. by 5.2x, on H100."

Our version: a synthetic small-body population (see
:mod:`repro.workloads.solar`), evolved 24 steps at dt = 1 hour with
Octree, BVH, and the exact All-Pairs reference; pairwise relative L2
position errors must be below 1e-6; the Octree:BVH H100 throughput
ratio is projected at the paper's population size.  Thüring et al.'s
SYCL solver is the one comparator we do not rebuild (see DESIGN.md);
the accuracy cross-check uses All-Pairs instead, which is stricter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.physics.accuracy import relative_l2_error
from repro.workloads.solar import SOLAR_GRAVITY, solar_system

#: Paper population size (JPL SBDB snapshot used in the paper).
PAPER_N = 1_039_551
#: One hour in workload time units (days).
DT_HOUR = 1.0 / 24.0


@dataclass
class ValidationResult:
    n: int
    steps: int
    l2_errors: dict[str, float]        # pairwise relative L2 errors
    energy_drift: dict[str, float]     # per algorithm
    h100_ratio_octree_over_bvh: float | None
    wall_seconds: dict[str, float] = field(default_factory=dict)
    tolerance: float = 1e-6

    @property
    def passed(self) -> bool:
        return all(e < self.tolerance for e in self.l2_errors.values())

    def summary(self) -> str:
        lines = [
            f"Validation: {self.n} synthetic small bodies, {self.steps} steps of 1h",
            f"  pairwise relative L2 position errors (tolerance {self.tolerance:g}):",
        ]
        for k, v in self.l2_errors.items():
            lines.append(f"    {k:24s} {v:.3e}")
        for k, v in self.energy_drift.items():
            lines.append(f"  energy drift {k:12s} {v:.3e}")
        if self.h100_ratio_octree_over_bvh is not None:
            lines.append(
                f"  projected H100 Octree/BVH throughput ratio at N={PAPER_N}: "
                f"{self.h100_ratio_octree_over_bvh:.2f}x (paper: 3.3x)"
            )
        lines.append(f"  PASSED={self.passed}")
        return "\n".join(lines)


def run_validation(
    n: int = 4000,
    steps: int = 24,
    *,
    theta: float = 0.5,
    project_paper_size: bool = False,
    seed: int = 2024,
) -> ValidationResult:
    """Run the validation at *n* bodies (scaled; see EXPERIMENTS.md)."""
    from repro.physics.diagnostics import energy_report

    base = SimulationConfig(theta=theta, dt=DT_HOUR, gravity=SOLAR_GRAVITY)
    finals = {}
    drifts = {}
    walls = {}
    small_enough = n <= 20_000
    for alg in ("all-pairs", "octree", "bvh"):
        system = solar_system(n, seed=seed)
        e0 = energy_report(system, SOLAR_GRAVITY) if small_enough else None
        sim = Simulation(system, base.with_(algorithm=alg))
        rep = sim.run(steps)
        finals[alg] = system.x.copy()
        walls[alg] = rep.wall_seconds
        if e0 is not None:
            drifts[alg] = energy_report(system, SOLAR_GRAVITY).drift_from(e0)

    errors = {
        "octree vs all-pairs": relative_l2_error(finals["octree"], finals["all-pairs"]),
        "bvh vs all-pairs": relative_l2_error(finals["bvh"], finals["all-pairs"]),
        "octree vs bvh": relative_l2_error(finals["octree"], finals["bvh"]),
    }

    ratio = None
    if project_paper_size:
        from repro.bench import measure_pipeline, project_throughput
        from repro.machine import get_device

        h100 = get_device("h100")
        mk = lambda k: solar_system(k, seed=seed)
        thr = {}
        for alg in ("octree", "bvh"):
            run = measure_pipeline(mk, alg, PAPER_N, config=base, max_direct=12_000)
            thr[alg] = project_throughput(run, h100)
        if thr["octree"] and thr["bvh"]:
            ratio = thr["octree"] / thr["bvh"]

    return ValidationResult(
        n=n, steps=steps, l2_errors=errors, energy_drift=drifts,
        h100_ratio_octree_over_bvh=ratio, wall_seconds=walls,
    )
