"""Experiment drivers shared by the CLI and the benchmark suite.

Each paper table/figure has a driver here that produces its rows; the
``benchmarks/`` directory wraps these in pytest-benchmark entry points
and EXPERIMENTS.md records the outputs against the paper's claims.
"""

from repro.experiments.validation import ValidationResult, run_validation
from repro.experiments.figures import (
    fig5_rows,
    fig6_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    measure_galaxy_runs,
)

__all__ = [
    "ValidationResult",
    "run_validation",
    "fig5_rows",
    "fig6_rows",
    "fig7_rows",
    "fig8_rows",
    "fig9_rows",
    "measure_galaxy_runs",
]
