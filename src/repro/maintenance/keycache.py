"""Per-step cache of space-filling-curve keys.

The BVH sort and the distributed partitioner both encode curve keys for
the same position buffer within one timestep (and both quantize on the
same cubified-expanded grid, so the keys are interchangeable).  The
cache is keyed on a cheap content fingerprint of the positions plus the
grid parameters; a hit skips the encode — and its operation charge —
entirely.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB, quantize_to_grid
from repro.geometry.hilbert import hilbert_encode
from repro.geometry.morton import morton_encode
from repro.types import FLOAT


def _fingerprint(x: np.ndarray, box: AABB, bits: int, curve: str) -> tuple:
    """Content fingerprint of (positions, grid).

    Shape + per-axis sums + first/last rows pin the buffer contents
    tightly enough for collision probability to be negligible, at a cost
    of one streaming reduction (far cheaper than the ``bits * dim``
    bit-interleaving of the encode itself).
    """
    n = x.shape[0]
    body = (x.sum(axis=0).tobytes(), x[0].tobytes(), x[-1].tobytes()) if n else ()
    return (x.shape, body, box.lo.tobytes(), box.hi.tobytes(), int(bits), curve)


class KeyCache:
    """Small LRU over recent (positions, grid) -> keys mappings."""

    def __init__(self, max_entries: int = 4):
        self.max_entries = max_entries
        self._entries: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def keys(
        self,
        x: np.ndarray,
        box: AABB,
        *,
        bits: int,
        curve: str = "hilbert",
        ctx=None,
    ) -> np.ndarray:
        """Curve keys for *x* on the grid of *box*, cached.

        The fingerprint reduction is charged on every call; the encode
        only on a miss (that is the dedupe win).
        """
        x = np.asarray(x, dtype=FLOAT)
        n, dim = x.shape
        if ctx is not None:
            ctx.counters.add(flops=float(n * dim), bytes_read=8.0 * n * dim)
        fp = _fingerprint(x, box, bits, curve)
        cached = self._entries.pop(fp, None)
        if cached is not None:
            self._entries[fp] = cached  # refresh LRU position
            self.hits += 1
            return cached
        self.misses += 1
        grid = quantize_to_grid(x, box, bits)
        if curve == "hilbert":
            keys = hilbert_encode(grid, bits)
        elif curve == "morton":
            keys = morton_encode(grid, bits)
        else:
            raise ValueError(f"unknown curve {curve!r}")
        if ctx is not None:
            # Same charge the inline encode in hilbert_sort_permutation
            # makes: ~bits*dim bit-ops per body.
            ctx.counters.add(flops=float(n * bits * dim),
                             bytes_read=8.0 * n * dim,
                             bytes_written=8.0 * n)
        self._entries[fp] = keys
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        return keys
