"""Per-node drift bounds and the cached-list validity gate.

With fixed masses and fixed leaf membership (both invariants of a
refit), a node's centre of mass is a convex combination of its bodies'
positions, so it moves by at most the maximum displacement of any body
below the node.  The same bound caps how far any body below the node
can be from where the list-building walk assumed it to be.  Tracking
that per-node maximum therefore lets cached grouped interaction lists
be revalidated with the *observed* drift instead of a worst-case
inflation.

Lists are built with an opening-radius margin ``m`` (the MAC accepts a
node only when ``size < theta * (dmin - m)``).  Re-using a list at
drifted positions stays a provable superset of the fresh-list MAC as
long as, for every approx entry ``(g, v)``::

    group_drift[g] + node_drift[v] * (1 + size_factor) <= m

where ``size_factor`` accounts for the node size term: an octree cell's
side never changes (``size_factor = 0``), while a refit BVH node's box
is refreshed and its longest side can grow by up to twice the node's
drift, which against the MAC threshold costs ``2 / theta``
(``size_factor = 2 / theta``).  Displacements are measured against the
positions the list was *built* at — not the epoch start — so a body
that wanders off and returns does not poison the gate.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.layout import BVHLayout
from repro.octree.layout import _BODY_BASE, OctreePool
from repro.types import FLOAT


def displacement(x: np.ndarray, x_ref: np.ndarray) -> np.ndarray:
    """Per-body Euclidean displacement between two snapshots."""
    d = np.asarray(x, dtype=FLOAT) - np.asarray(x_ref, dtype=FLOAT)
    return np.sqrt(np.einsum("ij,ij->i", d, d))


def bvh_node_drift(layout: BVHLayout, disp_sorted: np.ndarray) -> np.ndarray:
    """Max body displacement below each BVH node (leaf-order input).

    The same fused bottom-up level sweep as the refit itself — padding
    leaves hold zero, each coarser node takes the pairwise max.
    """
    nn = layout.n_nodes
    nd = np.zeros(nn, dtype=FLOAT)
    n = disp_sorted.shape[0]
    fl = layout.first_leaf
    nd[fl : fl + n] = disp_sorted
    for level in range(layout.n_levels - 2, -1, -1):
        sl = layout.level_slice(level)
        cl = layout.level_slice(level + 1)
        k = sl.stop - sl.start
        nd[sl] = nd[cl].reshape(k, 2).max(axis=1)
    return nd


def octree_node_drift(pool: OctreePool, disp: np.ndarray) -> np.ndarray:
    """Max body displacement below each octree node (body-id input)."""
    nn = pool.n_nodes
    nd = np.zeros(nn, dtype=FLOAT)
    leaves = pool.body_leaves()
    if leaves.size:
        # Scatter each leaf's bucket chain (usually length 1).
        nodes = leaves
        bodies = -pool.child[leaves] - _BODY_BASE
        while bodies.size:
            np.maximum.at(nd, nodes, disp[bodies])
            nxt = pool.next_body[bodies]
            alive = nxt >= 0
            nodes, bodies = nodes[alive], nxt[alive]
    internal = pool.internal_nodes()
    if internal.size:
        depth = pool.depth[:nn]
        lane = np.arange(pool.nchild)
        for d in range(int(depth[internal].max(initial=0)), -1, -1):
            level = internal[depth[internal] == d]
            if level.size:
                ch = pool.child[level][:, None] + lane
                nd[level] = np.maximum(nd[level], nd[ch].max(axis=1))
    return nd


def group_drift(offsets: np.ndarray, disp_rows: np.ndarray) -> np.ndarray:
    """Max displacement per group (CSR offsets over group-row order)."""
    starts = offsets[:-1]
    ng = starts.shape[0]
    out = np.zeros(ng, dtype=FLOAT)
    if disp_rows.shape[0] == 0 or ng == 0:
        return out
    nonempty = offsets[1:] > starts
    if nonempty.any():
        # reduceat yields garbage for empty segments; mask them out.
        red = np.maximum.reduceat(
            disp_rows, np.minimum(starts, disp_rows.shape[0] - 1)
        )
        out[nonempty] = red[nonempty]
    return out


def lists_valid(
    lists,
    grp_drift: np.ndarray,
    node_drift: np.ndarray,
    *,
    size_factor: float,
) -> bool:
    """Drift-bounded gate: may the cached lists be reused as-is?

    Checks every *approx* entry against the list's build margin (exact
    entries enumerate real bodies, whose contributions are evaluated at
    current positions regardless of drift).
    """
    margin = float(lists.mac_margin)
    approx = lists.approx
    if not approx.any():
        return True
    entry_group = np.repeat(
        np.arange(lists.offsets.shape[0] - 1), np.diff(lists.offsets)
    )
    g = entry_group[approx]
    v = lists.nodes[approx]
    slack = grp_drift[g] + node_drift[v] * (1.0 + size_factor)
    return bool(np.all(slack <= margin))
