"""How far out of curve order has the body sequence drifted?

Both measures are single vectorized passes over the keys *in the
current permutation order*:

* **adjacent inversions** — positions where a key is smaller than its
  predecessor; zero iff the sequence is sorted.
* **running-max displaced fraction** — bodies whose key falls below the
  running maximum of the keys before them.  Unlike adjacent inversions
  this counts every body that would have to move under a resort (one
  far-travelled body produces one inversion but displaces itself only
  once, while suppressing its whole overtaken span), which makes it the
  better proxy for how much the stale permutation degrades traversal
  locality.  It is what the refit threshold tests against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DisorderStats:
    """Disorder of a key sequence (in permutation order)."""

    n: int
    inversions: int
    displaced: int

    @property
    def inversion_fraction(self) -> float:
        return self.inversions / max(self.n - 1, 1)

    @property
    def fraction(self) -> float:
        """Displaced fraction — the measure thresholds compare against."""
        return self.displaced / max(self.n, 1)


def key_disorder(keys_in_order: np.ndarray) -> DisorderStats:
    """Disorder statistics of ``keys[perm]`` for the current permutation."""
    k = np.asarray(keys_in_order)
    n = int(k.shape[0])
    if n <= 1:
        return DisorderStats(n=n, inversions=0, displaced=0)
    inversions = int(np.count_nonzero(k[1:] < k[:-1]))
    running_max = np.maximum.accumulate(k)
    displaced = int(np.count_nonzero(k < running_max))
    return DisorderStats(n=n, inversions=inversions, displaced=displaced)


def sense_bits(n: int, dim: int, *, occupancy: int = 32, floor: int = 3) -> int:
    """Grid depth at which disorder is *worth* measuring.

    At the sort's full depth a drift of a few fine cells — far below
    anything that degrades traversal locality — already scrambles the
    low key bits and reports near-total disorder.  What the refit
    threshold cares about is order at the scale of a traversal group /
    leaf run, so we sense on the coarsest grid whose cells hold about
    *occupancy* bodies: ``2**(dim*b) >= n / occupancy``.
    """
    cells = max(float(n) / max(occupancy, 1), 2.0)
    return max(floor, int(np.ceil(np.log2(cells) / max(dim, 1))))


def coarsen_keys(keys: np.ndarray, bits: int, to_bits: int, dim: int) -> np.ndarray:
    """Keys on a ``to_bits`` grid, derived by prefix truncation.

    Hilbert and Morton indices are hierarchical: the top ``dim * b``
    bits of a depth-``bits`` key are exactly the depth-``b`` key of the
    containing cell, so coarsening is a shift — no re-encode.
    """
    if to_bits >= bits:
        return keys
    return keys >> np.uint64(dim * (bits - to_bits))
