"""Per-simulation orchestrator for incremental tree maintenance.

One ``TreeMaintainer`` lives in the simulation's tree cache (under the
``"_maintainer"`` key) and owns the *epoch* state: the tree built at
the last full rebuild, the positions it was built from, the absolute
drift budget derived from the root cell, and the per-interaction-list
position snapshots the drift-bounded gate measures against.

Every step runs the same pipeline:

1. **sense** (``encode`` step) — recompute curve keys through the
   :class:`~repro.maintenance.keycache.KeyCache`, measure disorder of
   the epoch ordering and the max displacement since the epoch build;
2. **decide** — :class:`~repro.maintenance.policy.MaintenancePolicy`
   picks rebuild or refit;
3. **rebuild** (``sort`` + ``build_tree`` steps) or **refit**
   (``refit`` step: fused level-sweep geometry refresh for the BVH, and
   the cached-list validity gate for both backends);
4. after the force phase, :meth:`TreeMaintainer.finish_step` snapshots
   positions for freshly built lists and feeds the cost model's view of
   the executed step back to the auto policy.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.build import (
    assemble_bvh,
    default_sort_bits,
    hilbert_sort_permutation,
    refit_bvh,
)
from repro.machine.counters import Counters
from repro.machine.costmodel import CostModel
from repro.maintenance.disorder import coarsen_keys, key_disorder, sense_bits
from repro.maintenance.drift import (
    bvh_node_drift,
    displacement,
    group_drift,
    lists_valid,
    octree_node_drift,
)
from repro.maintenance.keycache import KeyCache
from repro.maintenance.policy import Decision, MaintenancePolicy
from repro.types import FLOAT

#: Steps whose modeled times the auto policy learns from.
_OBSERVED_STEPS = ("encode", "sort", "build_tree", "refit",
                   "multipoles", "force")


def get_maintainer(cache: dict | None, config, ctx) -> "TreeMaintainer":
    """The simulation's maintainer, created on first use."""
    if cache is None:
        return TreeMaintainer(config, ctx)
    maint = cache.get("_maintainer")
    if maint is None:
        maint = TreeMaintainer(config, ctx)
        cache["_maintainer"] = maint
    return maint


class TreeMaintainer:
    """Owns one tree across timesteps, refitting when the order holds."""

    #: New interaction lists get an opening-radius inflation of this
    #: many *observed per-step drifts* (clamped by the epoch budget):
    #: enough slack for the gate to keep them alive across several
    #: steps, small enough not to inflate the force work noticeably.
    MARGIN_STEPS = 64.0

    def __init__(self, config, ctx):
        self.config = config
        self.ctx = ctx
        self.keycache = KeyCache()
        self.policy = MaintenancePolicy(
            config.tree_update, config.refit_disorder_threshold
        )
        self._model = CostModel(ctx.device, toolchain=ctx.toolchain)
        #: Structure-cache entry dict handed to the grouped force kernels
        #: (they store interaction lists in it under the ``ilists`` key).
        self.entry: dict = {}
        #: Maintenance event counts, exposed through ``--profile``.
        self.counts = {"rebuild": 0, "refit": 0, "lists_dropped": 0}
        self.last_decision: Decision | None = None
        #: Opening-radius inflation for lists built *this* step (the
        #: adaptive margin); force kernels receive it verbatim and the
        #: lists remember it for their own validity gate.
        self.mac_margin = 0.0
        # --- epoch state ---------------------------------------------
        self._bvh = None
        self._pool = None
        self._order: np.ndarray | None = None  # octree epoch Hilbert order
        self._x_ref: np.ndarray | None = None
        self._x_prev: np.ndarray | None = None
        self._step_drift = 0.0
        self._budget_abs = 0.0
        self._list_state: dict = {}  # ilists key -> (lists, x snapshot)
        self._snap: dict | None = None
        self._last_action: str | None = None

    # ------------------------------------------------------------------
    # BVH
    # ------------------------------------------------------------------
    def maintain_bvh(self, system, algo):
        config, ctx = self.config, self.ctx
        x = system.x
        n, dim = x.shape
        self._snap = self._take_snapshot()
        bits = config.bits if config.bits is not None else default_sort_bits(dim)
        have = self._bvh is not None and self._bvh.n_bodies == n
        decision = self._sense(
            x, bits, config.curve, have,
            order=self._bvh.perm if have else None,
            box=self._bvh.box if have else None,
        )
        self.last_decision = decision
        self._last_action = decision.action
        self._emit_decision(decision)
        if decision.action == "rebuild":
            box = algo._bounding_box(system, ctx)
            with ctx.step("encode"):
                keys = self.keycache.keys(x, box, bits=bits,
                                          curve=config.curve, ctx=ctx)
            with ctx.step("sort"):
                perm = hilbert_sort_permutation(
                    x, box, bits=bits, ctx=ctx, curve=config.curve, keys=keys
                )
            with ctx.step("build_tree"):
                self._bvh = assemble_bvh(x, system.m, perm, box, ctx=ctx,
                                         order=config.multipole_order)
            self._begin_epoch(x, box.longest_side)
            self.counts["rebuild"] += 1
        else:
            with ctx.step("refit"):
                self._bvh = refit_bvh(self._bvh, x, ctx=ctx)
                self._gate_lists(x, kind="bvh")
            self.counts["refit"] += 1
        self._update_margin()
        return self._bvh

    # ------------------------------------------------------------------
    # Octree (concurrent / vectorized / two-stage, via *builder*)
    # ------------------------------------------------------------------
    def maintain_octree(self, system, algo, builder):
        config, ctx = self.config, self.ctx
        x = system.x
        n, dim = x.shape
        self._snap = self._take_snapshot()
        bits = default_sort_bits(dim)  # grouped-traversal order grid
        have = (self._pool is not None and self._pool.n_bodies == n
                and self._order is not None)
        decision = self._sense(
            x, bits, "hilbert", have,
            order=self._order if have else None,
            box=self._pool.box if have else None,
        )
        self.last_decision = decision
        self._last_action = decision.action
        self._emit_decision(decision)
        if decision.action == "rebuild":
            box = algo._bounding_box(system, ctx)
            with ctx.step("build_tree"):
                self._pool = builder(box)
            with ctx.step("encode"):
                # Epoch reference order: the Hilbert order the grouped
                # traversal walks in, against which later steps measure
                # disorder.  One argsort, charged as such.
                keys = self.keycache.keys(x, self._pool.box, bits=bits,
                                          curve="hilbert", ctx=ctx)
                self._order = np.argsort(keys, kind="stable")
                ctx.counters.add(
                    sort_comparisons=float(n) * float(np.log2(max(n, 2))),
                    bytes_read=8.0 * n, bytes_written=8.0 * n,
                    kernel_launches=1.0,
                )
            self._begin_epoch(x, self._pool.root_side)
            self.counts["rebuild"] += 1
        else:
            with ctx.step("refit"):
                # Structure and leaf membership are kept; the multipole
                # phase (which the caller runs every step regardless)
                # refreshes coms at the current positions.  Only the
                # cached lists need revalidating here.
                self._gate_lists(x, kind="octree")
            self.counts["refit"] += 1
        self._update_margin()
        return self._pool

    # ------------------------------------------------------------------
    def _emit_decision(self, decision: Decision) -> None:
        """Trace the refit-vs-rebuild decision as an instant event."""
        tracer = self.ctx.tracer
        if tracer.enabled:
            tracer.instant("maintenance_decision", args={
                "action": decision.action,
                "disorder": float(decision.disorder),
                "drift": float(decision.drift),
                "threshold": float(decision.threshold),
            })

    # ------------------------------------------------------------------
    def finish_step(self, x: np.ndarray) -> None:
        """Post-force bookkeeping: list snapshots + policy feedback."""
        for key, cached in self.entry.items():
            if not (isinstance(key, tuple) and key
                    and key[0] in ("ilists", "dlists")):
                continue
            state = self._list_state.get(key)
            if state is None or state[0] is not cached["lists"]:
                self._list_state[key] = (
                    cached["lists"], np.asarray(x, dtype=FLOAT).copy()
                )
        if self._snap is not None and self._last_action is not None:
            secs = {
                name: self._model.step_time(self._delta_counters(name)).total
                for name in _OBSERVED_STEPS
            }
            self.policy.observe(self._last_action, secs)
        self._snap = None
        self._x_prev = np.asarray(x, dtype=FLOAT).copy()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _begin_epoch(self, x: np.ndarray, root_side: float) -> None:
        self._x_ref = np.asarray(x, dtype=FLOAT).copy()
        self._budget_abs = self.config.drift_budget * max(
            float(root_side), np.finfo(FLOAT).tiny
        )
        self.entry.clear()
        self._list_state.clear()

    def _update_margin(self) -> None:
        """Adaptive list margin: slack for ~MARGIN_STEPS steps of the
        drift observed last step, never past the epoch budget.  Zero
        observed drift keeps the margin at zero — and the maintained
        lists bit-identical to a rebuild-every-step run's."""
        self.mac_margin = min(self._budget_abs,
                              self.MARGIN_STEPS * self._step_drift)

    def _sense(self, x, bits, curve, have, *, order, box) -> Decision:
        """Measure disorder + drift and ask the policy (``encode`` step)."""
        if not have:
            self._step_drift = 0.0
            return self.policy.decide(have_structure=False, disorder=0.0,
                                      drift=0.0, drift_ok=False)
        ctx = self.ctx
        n, dim = x.shape
        with ctx.step("encode"):
            keys = self.keycache.keys(x, box, bits=bits, curve=curve, ctx=ctx)
            sb = sense_bits(n, dim, occupancy=self.config.group_size)
            stats = key_disorder(coarsen_keys(keys[order], bits, sb, dim))
            disp = displacement(x, self._x_ref)
            drift = float(disp.max(initial=0.0))
            if self._x_prev is not None and self._x_prev.shape == x.shape:
                self._step_drift = float(
                    displacement(x, self._x_prev).max(initial=0.0))
            else:
                self._step_drift = 0.0
            # Sensing: gather keys through the permutation + running-max
            # pass, and two streaming displacement reductions (since the
            # epoch build and since the previous step).
            ctx.counters.add(
                flops=(6.0 * dim + 3.0) * n,
                special_flops=2.0 * n,
                bytes_read=8.0 * n * (3.0 * dim + 3.0),
                bytes_irregular=8.0 * n,
                loop_iterations=float(n),
                kernel_launches=3.0,
            )
        return self.policy.decide(
            have_structure=True, disorder=stats.fraction, drift=drift,
            drift_ok=drift <= self._budget_abs,
        )

    def _gate_lists(self, x: np.ndarray, *, kind: str) -> None:
        """Drop cached lists whose drift-bounded validity gate fails."""
        theta = self.config.theta
        n, dim = x.shape
        for key in [k for k in self.entry
                    if isinstance(k, tuple) and k
                    and k[0] in ("ilists", "dlists")]:
            cached = self.entry[key]
            state = self._list_state.get(key)
            if state is None or state[0] is not cached["lists"]:
                ok = False  # untracked list: cannot prove anything
            else:
                disp = displacement(x, state[1])
                if kind == "bvh":
                    rows = disp[self._bvh.perm]
                    node_drift = bvh_node_drift(self._bvh.layout, rows)
                    # Refit refreshes BVH boxes, so an accepted node's
                    # longest side can grow by up to twice its drift.
                    size_factor = 2.0 / theta if theta > 0.0 else np.inf
                else:
                    rows = disp[cached["perm"]]
                    node_drift = octree_node_drift(self._pool, disp)
                    size_factor = 0.0  # octree cell sizes never change
                grp = group_drift(cached["groups"].offsets, rows)
                nf = 0
                with np.errstate(invalid="ignore"):
                    if key[0] == "dlists":
                        from repro.traversal.dual import dual_lists_valid

                        ok = dual_lists_valid(cached["dual"], grp,
                                              node_drift,
                                              size_factor=size_factor)
                        nf = cached["dual"].n_far
                    else:
                        ok = lists_valid(cached["lists"], grp, node_drift,
                                         size_factor=size_factor)
                nn = node_drift.shape[0]
                ne = cached["lists"].nodes.shape[0]
                self.ctx.counters.add(
                    flops=(3.0 * dim + 1.0) * n + 2.0 * nn + 3.0 * (ne + nf),
                    bytes_read=8.0 * (n * dim + nn + 2.0 * (ne + nf)),
                    bytes_written=8.0 * nn,
                    loop_iterations=float(nn),
                    kernel_launches=2.0,
                )
            if not ok:
                del self.entry[key]
                self._list_state.pop(key, None)
                self.counts["lists_dropped"] += 1

    # ------------------------------------------------------------------
    def _take_snapshot(self) -> dict:
        out = {}
        for name in _OBSERVED_STEPS:
            c = self.ctx.step_counters.steps.get(name)
            out[name] = c.as_dict() if c is not None else None
        return out

    def _delta_counters(self, name: str) -> Counters:
        cur = self.ctx.step_counters.steps.get(name)
        if cur is None:
            return Counters()
        prev = (self._snap or {}).get(name) or {}
        delta = Counters()
        for k, v in cur.as_dict().items():
            if k == "traversal_steps_max":
                setattr(delta, k, v)
            else:
                setattr(delta, k, v - prev.get(k, 0.0))
        return delta
