"""The rebuild-vs-refit decision.

``tree_update="refit"`` refits whenever structure exists, the epoch
drift budget holds, and the displaced fraction stays under the fixed
configuration threshold.

``tree_update="auto"`` derives the disorder cap from *measured* modeled
costs instead: refitting saves the sort + build time but traverses a
stale ordering, whose locality penalty grows with the displaced
fraction.  Modeling the penalty as ``STALE_TRAVERSAL_COEFF * disorder``
of the force time, the refit pays off while::

    disorder <= (t_rebuild - t_refit) / (COEFF * t_force)

The times come from the machine cost model applied to the counter
deltas of previously executed steps on this very run, so the policy
adapts to problem size, device, and multipole order without tuning.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Decision:
    """One step's maintenance choice, with the evidence it used."""

    action: str            # "rebuild" | "refit"
    reason: str
    disorder: float = 0.0  # displaced fraction measured this step
    drift: float = 0.0     # max body displacement since the epoch build
    threshold: float = 0.0  # disorder cap the decision compared against


class MaintenancePolicy:
    """Chooses rebuild or refit per step from measured costs."""

    #: Penalty coefficient: fraction of the force-phase time wasted per
    #: unit displaced fraction when traversing a stale ordering
    #: (degraded group coherence + extra opened nodes).  Deliberately
    #: pessimistic so "auto" errs toward rebuilding.
    STALE_TRAVERSAL_COEFF = 8.0
    #: Never refit above this displaced fraction, whatever the model
    #: says — the drift-bounded MAC stays *correct*, but the locality
    #: claim behind the cost comparison loses meaning.
    MAX_DISORDER = 0.5

    def __init__(self, mode: str, disorder_threshold: float):
        self.mode = mode
        self.disorder_threshold = float(disorder_threshold)
        self.t_rebuild: float | None = None  # modeled sort+build seconds
        self.t_refit: float | None = None    # modeled refit seconds
        self.t_force: float | None = None    # modeled force seconds

    # ------------------------------------------------------------------
    def observe(self, action: str, step_seconds: dict[str, float]) -> None:
        """Feed the modeled per-step seconds of an executed step back."""
        if action == "rebuild":
            self.t_rebuild = (step_seconds.get("sort", 0.0)
                              + step_seconds.get("build_tree", 0.0))
        elif action == "refit":
            self.t_refit = step_seconds.get("refit", 0.0)
        force = step_seconds.get("force", 0.0)
        if force > 0.0:
            self.t_force = force

    def disorder_cap(self) -> float:
        """The displaced fraction up to which a refit is worthwhile."""
        if self.mode != "auto":
            return self.disorder_threshold
        if self.t_refit is None or self.t_rebuild is None:
            # Bootstrap: until a refit has been measured, fall back to
            # the fixed threshold (the first refit then calibrates it).
            return min(self.disorder_threshold, self.MAX_DISORDER)
        saved = max(self.t_rebuild - self.t_refit, 0.0)
        force = max(self.t_force or 0.0, 1e-30)
        return min(saved / (self.STALE_TRAVERSAL_COEFF * force),
                   self.MAX_DISORDER)

    # ------------------------------------------------------------------
    def decide(
        self,
        *,
        have_structure: bool,
        disorder: float,
        drift: float,
        drift_ok: bool,
    ) -> Decision:
        if not have_structure:
            return Decision("rebuild", "no structure", disorder, drift)
        if not drift_ok:
            return Decision("rebuild", "drift budget exceeded",
                            disorder, drift)
        cap = self.disorder_cap()
        if disorder > cap:
            return Decision("rebuild", "disorder above threshold",
                            disorder, drift, cap)
        return Decision("refit", "order still valid", disorder, drift, cap)
