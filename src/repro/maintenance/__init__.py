"""Incremental tree maintenance (refit-over-rebuild).

The paper rebuilds the octree/BVH from scratch every step; with the
grouped traversal's force evaluation ~5x cheaper, the Hilbert-encode +
sort + build pipeline dominates the amortized per-step cost.  Following
the incremental-maintenance line of Cornerstone (Keller et al.) and
Bonsai, this package refits the existing tree on steps where the
Hilbert ordering is still (nearly) valid:

* :mod:`keycache` — per-step space-filling-curve key cache, deduping
  the encode between the BVH sort and the distributed partitioner;
* :mod:`disorder` — vectorized measures of how far the body sequence
  has fallen out of curve order;
* :mod:`drift` — per-node / per-group maximum body displacement, and
  the drift-bounded validity gate for cached interaction lists;
* :mod:`policy` — the rebuild-vs-refit decision (fixed threshold or
  cost-model-driven ``"auto"``);
* :mod:`maintainer` — the per-simulation orchestrator wired into the
  force algorithms via ``SimulationConfig.tree_update``.
"""

from repro.maintenance.disorder import (
    DisorderStats,
    coarsen_keys,
    key_disorder,
    sense_bits,
)
from repro.maintenance.drift import (
    bvh_node_drift,
    displacement,
    group_drift,
    lists_valid,
    octree_node_drift,
)
from repro.maintenance.keycache import KeyCache
from repro.maintenance.maintainer import TreeMaintainer
from repro.maintenance.policy import Decision, MaintenancePolicy

__all__ = [
    "DisorderStats",
    "key_disorder",
    "coarsen_keys",
    "sense_bits",
    "KeyCache",
    "displacement",
    "bvh_node_drift",
    "octree_node_drift",
    "group_drift",
    "lists_valid",
    "Decision",
    "MaintenancePolicy",
    "TreeMaintainer",
]
