"""All-Pairs-Col: ``par`` over force pairs with atomic accumulation.

Each unordered pair {i, j} is evaluated once; the equal-and-opposite
contributions are scattered to both bodies with relaxed
``atomic fetch_add`` — half the arithmetic of the classical variant at
the price of 2·dim atomic updates per pair.  The scalar kernel performs
the literal atomics on the virtual-thread scheduler and is the oracle
for the equivalence tests; the batch path computes the same sums in a
deterministic order (floating additions to a slot commute across any
legal interleaving up to rounding).

Atomics make the kernel vectorization-unsafe, so the policy must be
``par`` (on AMD/Intel GPUs the paper had to *incorrectly* relax it to
``par_unseq`` to measure at all; we instead refuse, or simulate).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.physics.gravity import (
    FLOPS_PER_INTERACTION,
    GravityParams,
    SPECIAL_PER_INTERACTION,
    pairwise_accelerations,
)
from repro.stdpar.atomics import AtomicArray, relaxed
from repro.stdpar.context import ExecutionContext
from repro.stdpar.kernel import kernel_from_functions
from repro.stdpar.policy import par
from repro.stdpar.scheduler import FetchAdd, Op
from repro.types import FLOAT, INDEX


def pair_index(k: int, n: int) -> tuple[int, int]:
    """Map a flat pair id ``k`` in ``[0, n(n-1)/2)`` to ``(i, j)``, i<j.

    Pairs are laid out row-major: row i owns the n-1-i pairs (i, i+1..n-1).
    """
    i = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * k)) // 2)
    j = int(k - i * n + (i * (i + 1)) // 2 + i + 1)
    return i, j


def _pair_thread(
    x: np.ndarray,
    m: np.ndarray,
    atom_acc: AtomicArray,
    params: GravityParams,
    k: int,
    n: int,
) -> Generator[Op, Any, None]:
    """Virtual thread computing one pair and scattering both updates."""
    i, j = pair_index(k, n)
    d = x[j] - x[i]
    r2 = float(d @ d) + params.eps2
    if r2 <= 0.0:
        return
    w = params.G * r2**-1.5
    for c in range(x.shape[1]):
        yield FetchAdd(atom_acc, (i, c), w * m[j] * d[c], relaxed)
        yield FetchAdd(atom_acc, (j, c), -w * m[i] * d[c], relaxed)


def allpairs_col_accelerations(
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    ctx: ExecutionContext | None = None,
    tile: int = 1024,
) -> np.ndarray:
    """Exact accelerations via pair-parallel atomic accumulation."""
    x = np.asarray(x, dtype=FLOAT)
    m = np.asarray(m, dtype=FLOAT)
    n, dim = x.shape
    acc = np.zeros((n, dim), dtype=FLOAT)
    if n < 2:
        return acc
    n_pairs = n * (n - 1) // 2
    if ctx is None:
        ctx = ExecutionContext()

    if ctx.backend == "reference":
        atom_acc = AtomicArray(acc, ctx.counters)
        kernel = kernel_from_functions(
            "all_pairs_col",
            scalar=lambda k: _pair_thread(x, m, atom_acc, params, int(k), n),
            uses_atomics=True,
        )
        from repro.stdpar.algorithms import for_each

        for_each(par, np.arange(n_pairs, dtype=INDEX), kernel, ctx)
    else:
        def batch(_ids: np.ndarray) -> None:
            acc[:] = pairwise_accelerations(x, m, params, tile=tile)

        kernel = kernel_from_functions(
            "all_pairs_col", batch=batch,
            uses_atomics=True, batch_equivalent_to_atomics=True,
        )
        from repro.stdpar.algorithms import for_each

        # One token: the batch computes all pairs in a single invocation,
        # while for_each still applies the par policy checks.
        for_each(par, np.arange(1, dtype=INDEX), kernel, ctx)
        ctx.counters.add(loop_iterations=float(n_pairs) - 1.0)

    ctx.counters.add(
        flops=n_pairs * (FLOPS_PER_INTERACTION * 0.5 + 2.0 * dim),
        special_flops=n_pairs * SPECIAL_PER_INTERACTION * 0.5,
        atomic_ops=2.0 * dim * n_pairs,   # relaxed adds only
        bytes_read=(dim + 1) * 8.0 * n,
        bytes_written=dim * 8.0 * n,
    )
    return acc
