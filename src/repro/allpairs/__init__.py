"""O(N²) brute-force baselines (paper Section V-A, "Algorithms").

* **All-Pairs** — the classical implementation, parallelized over the
  *bodies* with ``par_unseq``: thread *i* accumulates the force from
  every other body into a private register, no synchronization at all.
* **All-Pairs-Col** — parallelized over the *force pairs* with ``par``:
  each unordered pair {i, j} is computed once and both accelerations
  are updated with ``atomic fetch_add`` (concurrent accumulation).
  Halves the arithmetic but pays for all-to-all atomic reductions —
  which is why the classical variant wins on CPUs (coherency traffic)
  while the collision variant can win on NVIDIA GPUs with their
  fire-and-forget FP64 atomics (paper Figs. 5-7).
"""

from repro.allpairs.classic import allpairs_accelerations
from repro.allpairs.collision import allpairs_col_accelerations

__all__ = ["allpairs_accelerations", "allpairs_col_accelerations"]
