"""Classical All-Pairs: ``par_unseq`` over bodies.

Each logical thread owns one body and streams over all others; there is
no inter-thread communication, making this the canonical trivially
parallel N-body kernel.  The batch path evaluates row tiles of the
interaction matrix (bounded memory); cost accounting assumes positions
are tiled through on-chip memory, i.e. the kernel is compute-bound, as
real all-pairs implementations are [40].
"""

from __future__ import annotations

import numpy as np

from repro.physics.gravity import (
    FLOPS_PER_INTERACTION,
    GravityParams,
    SPECIAL_PER_INTERACTION,
    pairwise_accelerations,
)
from repro.stdpar.context import ExecutionContext
from repro.stdpar.kernel import kernel_from_functions
from repro.stdpar.policy import par_unseq
from repro.types import FLOAT


def allpairs_accelerations(
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    ctx: ExecutionContext | None = None,
    tile: int = 1024,
) -> np.ndarray:
    """Exact accelerations, O(N²), parallelized over bodies."""
    x = np.asarray(x, dtype=FLOAT)
    m = np.asarray(m, dtype=FLOAT)
    n, dim = x.shape
    acc = np.zeros((n, dim), dtype=FLOAT)
    if n == 0:
        return acc

    def batch(idx: np.ndarray) -> None:
        acc[idx] = pairwise_accelerations(x, m, params, targets=idx, tile=tile)

    kernel = kernel_from_functions("all_pairs", batch=batch)
    if ctx is None:
        batch(np.arange(n))
        return acc

    from repro.stdpar.algorithms import for_each

    for_each(par_unseq, np.arange(n), kernel, ctx)
    inter = float(n) * (n - 1)
    ctx.counters.add(
        flops=inter * FLOPS_PER_INTERACTION,
        special_flops=inter * SPECIAL_PER_INTERACTION,
        # Positions/masses are streamed once and reused from cache/tiles.
        bytes_read=(dim + 1) * 8.0 * n,
        bytes_written=dim * 8.0 * n,
    )
    return acc
