"""Roofline-style cost model: operation counts → predicted runtimes.

The model charges each step's counters against a device's resources:

* regular FP64 work at peak FLOP/s (special functions — divides and
  square roots, which dominate the force kernel — at 1/8 of peak);
* streaming bytes at the device's *measured* BabelStream TRIAD
  bandwidth (Table I "Exp." column), irregular (pointer-chasing) bytes
  at a device-specific fraction of it;
* atomics at per-op latencies divided by the number of atomic units
  (one per core/SM), with contended synchronizing atomics charged the
  full CAS latency — this term is what reproduces the paper's
  All-Pairs vs All-Pairs-Col ordering and the A100 Octree/BVH
  inversion (partitioned-L2 latency);
* sort comparisons at a per-comparison cost scaled by the toolchain's
  sort efficiency (Fig. 8: toolchain differences live mostly in sort);
* a per-kernel-launch overhead;
* SIMT divergence: on GPUs, traversal-bound steps are inflated by the
  ratio of warp-granularity work to per-thread work
  (``warp_traversal_steps / traversal_steps``), which the lockstep
  force kernels measure exactly.

The model intentionally has few, globally fixed constants; all
device-specific numbers live in the catalog.  Its purpose is the
*shape* of the paper's figures — orderings and crossovers — not
absolute accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.counters import Counters, StepCounters
from repro.machine.device import Device
from repro.machine.interconnect import Interconnect

#: Cost of one sort comparison (comparator call + swap amortized), ns,
#: on one core at efficiency 1.  Parallel sorts scale with core count.
_SORT_CMP_NS = 1.2

#: Special-function (divide/sqrt) slowdown vs FMA throughput.
_SPECIAL_SLOWDOWN = 8.0

#: Parallel sort efficiency: merge/sample sorts reach only a fraction of
#: linear scaling.
_SORT_PARALLEL_EFF = 0.35

#: Effective nanoseconds per dependent node operation executed by a
#: single work-group (two-stage builder stage 1): dependent global-memory
#: accesses contending on the few top-of-tree nodes, with only one
#: work-group's worth of threads to overlap them — close to raw memory
#: latency per operation.
_SERIAL_OP_NS = 100.0

#: Fraction of peak FP64 a well-tuned real kernel sustains.  Parallel
#: kernels lose to launch/occupancy/instruction mix; a single sequential
#: core gets closer to its own peak.  These are global constants — the
#: same for every device and figure.
_PARALLEL_COMPUTE_EFF = 0.30
_SEQ_COMPUTE_EFF = 0.60


@dataclass(frozen=True)
class TimeBreakdown:
    """Predicted seconds, by resource, for one step."""

    compute: float
    memory: float
    atomics: float
    sort: float
    launch: float
    serial: float = 0.0
    comm: float = 0.0

    @property
    def total(self) -> float:
        # Compute and memory overlap (roofline); the rest serializes.
        return (max(self.compute, self.memory) + self.atomics + self.sort
                + self.launch + self.serial + self.comm)


class CostModel:
    """Predicts execution time of counted work on a catalog device."""

    def __init__(self, device: Device, *, toolchain: str | None = None,
                 sequential: bool = False,
                 interconnect: Interconnect | None = None):
        self.device = device
        self.profile = device.toolchain_profile(
            toolchain if toolchain is not None else device.default_toolchain
        )
        self.sequential = sequential
        #: When set, ``comm_*`` counters are charged at this link's
        #: alpha-beta cost (the single-link-class approximation; the
        #: distributed fabric computes per-link times itself and feeds
        #: them through :class:`repro.distributed.fabric.Fabric`).
        self.interconnect = interconnect

    # ------------------------------------------------------------------
    def step_time(self, c: Counters) -> TimeBreakdown:
        d = self.device
        if self.sequential:
            peak_gflops = d.peak_seq_gflops * _SEQ_COMPUTE_EFF
            bw = d.single_core_bw_gbs
            atomic_units = 1.0
            launch_us = 0.0
            cores = 1.0
        else:
            peak_gflops = (
                d.peak_fp64_gflops * _PARALLEL_COMPUTE_EFF
                * self.profile.compute_efficiency
            )
            bw = d.measured_bw_gbs
            atomic_units = float(d.cores)
            launch_us = self.profile.launch_overhead_us
            cores = float(d.cores)

        # SIMT divergence inflation for traversal-bound steps.
        div = 1.0
        if (not self.sequential and d.is_gpu and c.traversal_steps > 0
                and c.warp_traversal_steps > 0):
            div = max(1.0, c.warp_traversal_steps / c.traversal_steps)

        regular = max(c.flops - c.special_flops, 0.0)
        compute = div * (
            regular / (peak_gflops * 1e9)
            + c.special_flops * _SPECIAL_SLOWDOWN / (peak_gflops * 1e9)
        )

        stream_bytes = max(c.bytes_total - c.bytes_irregular, 0.0)
        irr_frac = d.irregular_bw_fraction
        # Traversal kernels (the only steps with traversal_steps > 0)
        # are where stdpar code generation quality shows: Fig. 9's
        # toolchain differences are "mostly attributable" to
        # CALCULATEFORCE, so the per-toolchain efficiency scales the
        # traversal loop's effective memory throughput.
        traversal_eff = (
            self.profile.compute_efficiency
            if (not self.sequential and c.traversal_steps > 0)
            else 1.0
        )
        # Multi-tile NUMA: once a step's irregular traffic outgrows one
        # tile's cache reach, cross-tile accesses tax the traversal.
        numa = 1.0
        if (not self.sequential and d.numa_threshold_bytes is not None
                and c.bytes_irregular > d.numa_threshold_bytes):
            numa = d.numa_penalty
        memory = (
            stream_bytes / (bw * 1e9)
            + div * numa * c.bytes_irregular
            / (bw * irr_frac * traversal_eff * 1e9)
        )
        # Grouped traversal: the interaction lists make one memory
        # round-trip — written once by the (warp-synchronous, so
        # divergence-free) build walk and re-read coalesced by the dense
        # tile evaluation; 8-byte entries, streaming on both passes.
        if c.interaction_list_size > 0:
            memory += 2.0 * 8.0 * c.interaction_list_size / (bw * 1e9)

        if self.sequential:
            # A single thread pays no coherence traffic: atomics retire
            # like ordinary RMW instructions.
            atomics = c.atomic_ops * d.atomic_add_ns * 1e-9
        else:
            relaxed = max(c.atomic_ops - c.sync_atomic_ops, 0.0)
            # Relaxed atomics stream through per-core/per-SM reduction
            # pipelines (wide on GPUs: warp-coalesced fire-and-forget).
            relaxed_units = atomic_units * (float(d.simt_width) if d.is_gpu else 1.0)
            # Synchronizing RMWs pay the coherence round-trip; contended
            # ones additionally serialize on the owning cache line.
            atomics = (
                relaxed * d.atomic_add_ns / relaxed_units
                + c.sync_atomic_ops * d.atomic_cas_ns / atomic_units
                + c.contended_atomic_ops * d.atomic_cas_ns
            ) * 1e-9

        sort = (
            c.sort_comparisons * _SORT_CMP_NS * 1e-9
            / (cores * _SORT_PARALLEL_EFF * self.profile.sort_efficiency)
        )
        if self.sequential:
            sort = c.sort_comparisons * _SORT_CMP_NS * 1e-9 / self.profile.sort_efficiency

        launch = c.kernel_launches * launch_us * 1e-6
        # Single-work-group sections are latency-bound regardless of the
        # device's width (sequential runs already serialize everything).
        serial = 0.0 if self.sequential else c.serial_node_ops * _SERIAL_OP_NS * 1e-9
        comm = 0.0
        if self.interconnect is not None and (
                c.comm_bytes > 0 or c.comm_messages > 0):
            comm = (c.comm_messages * self.interconnect.latency_us * 1e-6
                    + c.comm_bytes / (self.interconnect.bandwidth_gbs * 1e9))
        return TimeBreakdown(compute, memory, atomics, sort, launch, serial,
                             comm)

    # ------------------------------------------------------------------
    def total_time(self, steps: StepCounters) -> float:
        """Predicted seconds for a full pipeline (sum over steps)."""
        return sum(self.step_time(c).total for c in steps.steps.values())

    def step_times(self, steps: StepCounters) -> dict[str, float]:
        return {k: self.step_time(c).total for k, c in steps.steps.items()}


def predict_time(
    device: Device,
    steps: StepCounters,
    *,
    toolchain: str | None = None,
    sequential: bool = False,
) -> float:
    """Convenience wrapper: predicted seconds for *steps* on *device*."""
    return CostModel(device, toolchain=toolchain, sequential=sequential).total_time(steps)
