"""Operation counters — the instrumentation currency of the cost model.

Every algorithm in this library maintains exact (or analytically tight)
counts of the work it performs: floating-point operations, bytes moved,
atomic operations (split into contended and uncontended), parallel-loop
iterations, and SIMT traversal-divergence statistics.  The cost model in
:mod:`repro.machine.costmodel` converts these counts into predicted
runtimes per device, which is how we regenerate the paper's figures
without the paper's hardware.

Counters are plain data; they add and scale like vectors so per-step
counters can be merged into per-timestep and per-run totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    """Additive operation counts for one algorithm phase."""

    #: Floating point operations (adds, muls, divides, sqrts all count 1;
    #: divides/sqrts are additionally counted in ``special_flops``).
    flops: float = 0.0
    #: Divides + square roots, which retire much slower than FMAs.
    special_flops: float = 0.0
    #: Bytes read from / written to memory (assuming cold caches for
    #: streaming phases; tree phases use per-visit estimates).
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    #: Subset of ``bytes_read`` that is random-access (pointer chasing
    #: through tree nodes); charged at the device's irregular-access
    #: bandwidth rather than streaming bandwidth.
    bytes_irregular: float = 0.0
    #: Atomic RMW / load / store operations, and how many of them are
    #: expected to contend with another thread.
    atomic_ops: float = 0.0
    contended_atomic_ops: float = 0.0
    #: Subset of ``atomic_ops`` that are synchronizing RMWs (acquire /
    #: release / acq_rel / seq_cst compare-exchange, fetch_add, store):
    #: these pay the coherence latency the paper attributes to Ampere's
    #: partitioned L2; relaxed atomics and atomic loads do not.
    sync_atomic_ops: float = 0.0
    #: Iterations executed by parallel loops (for_each elements).
    loop_iterations: float = 0.0
    #: Comparison count of parallel sorts.
    sort_comparisons: float = 0.0
    #: Tree-traversal node visits, summed over threads.
    traversal_steps: float = 0.0
    #: Maximum per-thread traversal length (SIMT lanes wait for the
    #: longest walker in the warp; the gap to the mean is divergence).
    traversal_steps_max: float = 0.0
    #: Warp-granularity traversal work: sum over warps of
    #: (max steps in warp) * (warp width).  What a SIMT device actually
    #: executes; equals ``traversal_steps`` when there is no divergence.
    warp_traversal_steps: float = 0.0
    #: Grouped traversal: total interaction-list entries emitted (the
    #: lists make one memory round-trip — written by the build walk,
    #: re-read by the evaluation).
    interaction_list_size: float = 0.0
    #: Grouped traversal: node visits of the list-*building* walks (one
    #: walk per body group; warp-synchronous by construction).
    list_build_steps: float = 0.0
    #: Grouped traversal: body-node pairs evaluated from the lists (the
    #: dense tile work, including padding entries of partial groups).
    list_eval_interactions: float = 0.0
    #: Multipole-acceptance tests executed (per-body walk visits for
    #: lockstep, per-group walk visits for grouped, (target, source)
    #: pair tests for the dual-tree walk) — the list-build pressure the
    #: ``--profile`` table surfaces for every traversal mode.
    mac_evals: float = 0.0
    #: Dual traversal: cell-cell pairs accepted far-field and evaluated
    #: once via M2L into a local expansion.
    pairs_accepted_cc: float = 0.0
    #: Pairs classified near-field and deferred to the body-level
    #: kernels (interaction-list entries re-evaluated every step).
    pairs_deferred: float = 0.0
    #: Bytes crossing the modeled interconnect fabric (LET halo nodes,
    #: migrated bodies, collective partials); charged at link bandwidth
    #: by the cost model, never at memory bandwidth.
    comm_bytes: float = 0.0
    #: Point-to-point fabric messages; each pays the link latency.
    comm_messages: float = 0.0
    #: Number of parallel-algorithm invocations (kernel launches).
    kernel_launches: float = 0.0
    #: Flattened-batch evaluation: SoA kernels launched per step (node
    #: sources, two-sided pairs, one-sided pairs — at most 3).
    flat_launches: float = 0.0
    #: Near-field body pairs the lists name in ordered form (what the
    #: tile kernels would evaluate), before the n3l dedup.
    near_pairs_naive: float = 0.0
    #: Near-field pair evaluations actually executed by the flat path
    #: (two-sided pairs count once); ``naive / evaluated`` is the n3l
    #: dedup ratio surfaced by ``--profile`` and the metrics block.
    near_pairs_evaluated: float = 0.0
    #: Number of scheduler preemptions / lock retries observed (only
    #: populated by the virtual-thread backend).
    lock_retries: float = 0.0
    #: Dependent node operations executed inside a single work-group
    #: (stage 1 of the two-stage Burtscher-Pingali/Thüring builder);
    #: they cannot use the device's full parallelism.
    serial_node_ops: float = 0.0

    def __add__(self, other: "Counters") -> "Counters":
        if not isinstance(other, Counters):
            return NotImplemented
        out = Counters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        # max-like fields must not be summed
        out.traversal_steps_max = max(self.traversal_steps_max, other.traversal_steps_max)
        return out

    def scaled(self, k: float) -> "Counters":
        """Return a copy with every additive field multiplied by *k*.

        Used to extrapolate counts measured at a scaled-down problem size
        to the paper's sizes (documented in EXPERIMENTS.md); max-like
        fields scale logarithmically and are handled by the caller.
        """
        out = Counters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) * k)
        out.traversal_steps_max = self.traversal_steps_max
        return out

    def add(self, **kw: float) -> None:
        """In-place accumulate named fields (``c.add(flops=8*n)``)."""
        for name, value in kw.items():
            if name == "traversal_steps_max":
                self.traversal_steps_max = max(self.traversal_steps_max, value)
            else:
                setattr(self, name, getattr(self, name) + value)

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class StepCounters:
    """Counters split by pipeline step (paper Algorithm 2 / 6).

    Keys follow the paper's step names: ``bounding_box``, ``sort``
    (Hilbert sort; absent for the octree), ``build_tree``, ``multipoles``
    (fused with ``build_tree`` for the BVH), ``force``,
    ``update_position``.
    """

    steps: dict[str, Counters] = field(default_factory=dict)

    def step(self, name: str) -> Counters:
        if name not in self.steps:
            self.steps[name] = Counters()
        return self.steps[name]

    def total(self) -> Counters:
        out = Counters()
        for c in self.steps.values():
            out = out + c
        return out

    def merge(self, other: "StepCounters") -> "StepCounters":
        out = StepCounters({k: v for k, v in self.steps.items()})
        for k, v in other.steps.items():
            out.steps[k] = out.steps.get(k, Counters()) + v
        return out
