"""Simulated hardware substrate.

The paper evaluates on twelve CPU/GPU systems (Table I).  This package
provides the stand-in: a device catalog with the published parameters
(bandwidth, core counts, SIMT width, Independent Thread Scheduling), an
operation-counter infrastructure that every algorithm feeds, and a
roofline-style cost model that converts counters into predicted runtimes
on each device.  ``babelstream`` reproduces the TRIAD validation column
of Table I against the model.
"""

from repro.machine.counters import Counters, StepCounters
from repro.machine.device import Device, DeviceKind
from repro.machine.interconnect import Interconnect
from repro.machine.catalog import (
    DEVICES,
    INTERCONNECTS,
    get_device,
    get_interconnect,
    list_devices,
    HOST,
)
from repro.machine.budget import DeviceTimeBudget
from repro.machine.costmodel import CostModel, predict_time


def __getattr__(name: str):
    # babelstream pulls in the stdpar layer, which itself imports
    # repro.machine.counters; importing it lazily breaks the cycle.
    if name in ("babelstream_triad", "triad_table", "format_triad_table"):
        from repro.machine import babelstream

        return getattr(babelstream, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Counters",
    "StepCounters",
    "Device",
    "DeviceKind",
    "Interconnect",
    "DEVICES",
    "INTERCONNECTS",
    "get_device",
    "get_interconnect",
    "list_devices",
    "HOST",
    "CostModel",
    "DeviceTimeBudget",
    "predict_time",
    "babelstream_triad",
    "triad_table",
]
