"""BabelStream TRIAD through the stdpar layer (Table I validation).

The paper validates each experimental environment by running the
BabelStream ISO C++ parallel-algorithms TRIAD kernel and comparing the
achieved bandwidth with the hardware's theoretical peak (Table I).  We
do the same for the model: the TRIAD kernel (``a[i] = b[i] + s * c[i]``)
is expressed as a stdpar ``for_each`` with a vectorization-safe batch
path, its counters feed the cost model, and the resulting predicted
bandwidth per catalog device reproduces the "Exp." column.  On the host
the kernel additionally runs for real, giving a measured Python/numpy
bandwidth figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.machine.catalog import DEVICES, HOST
from repro.machine.costmodel import CostModel
from repro.machine.counters import StepCounters
from repro.machine.device import Device
from repro.stdpar.context import ExecutionContext
from repro.stdpar.kernel import kernel_from_functions
from repro.stdpar.policy import par_unseq


@dataclass(frozen=True)
class TriadResult:
    device: Device
    n: int
    #: GB/s predicted by the cost model (catalog devices) — the stand-in
    #: for Table I's "Exp." measurement.
    predicted_gbs: float
    #: GB/s actually achieved by the numpy batch path on the host
    #: (only for the host device; None otherwise).
    measured_gbs: float | None
    #: Theoretical peak from Table I.
    theoretical_gbs: float

    @property
    def efficiency(self) -> float:
        return self.predicted_gbs / self.theoretical_gbs


def babelstream_triad(
    device: Device,
    n: int = 2**25,
    *,
    measure_host: bool | None = None,
    repeats: int = 3,
) -> TriadResult:
    """Run/model TRIAD with ``n`` FP64 elements on *device*."""
    ctx = ExecutionContext(device=device)
    scalar = 0.4

    # Keep real allocations modest: the counters are what matter for the
    # model; the host measurement uses the real arrays.
    n_alloc = min(n, 2**24)
    a = np.zeros(n_alloc)
    b = np.random.default_rng(1).random(n_alloc)
    c = np.random.default_rng(2).random(n_alloc)

    def batch(idx: np.ndarray) -> None:
        np.add(b[: len(idx)], scalar * c[: len(idx)], out=a[: len(idx)])

    kernel = kernel_from_functions("triad", batch=batch)

    with ctx.step("triad") as counters:
        from repro.stdpar.algorithms import for_each

        for_each(par_unseq, np.arange(n_alloc), kernel, ctx)
    # TRIAD moves 3 doubles per element (2 reads + 1 write) and does an
    # FMA; account at the *requested* n.
    scale = n / n_alloc
    counters.add(
        flops=2.0 * n_alloc * scale,
        bytes_read=16.0 * n_alloc * scale,
        bytes_written=8.0 * n_alloc * scale,
    )

    steps = StepCounters({"triad": counters})
    model = CostModel(device)
    t_pred = model.total_time(steps)
    bytes_moved = 24.0 * n
    predicted_gbs = bytes_moved / t_pred / 1e9

    measured = None
    if measure_host if measure_host is not None else device.key == "host":
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            np.add(b, scalar * c, out=a)
            best = min(best, time.perf_counter() - t0)
        measured = 24.0 * n_alloc / best / 1e9

    return TriadResult(
        device=device,
        n=n,
        predicted_gbs=predicted_gbs,
        measured_gbs=measured,
        theoretical_gbs=device.theoretical_bw_gbs,
    )


def triad_table(n: int = 2**25) -> list[TriadResult]:
    """Table I reproduction: TRIAD on every catalog device + the host."""
    out = []
    for d in DEVICES.values():
        out.append(babelstream_triad(d, n))
    return out


def format_triad_table(results: list[TriadResult]) -> str:
    """Render results in the shape of Table I's bandwidth columns."""
    lines = [
        f"{'HW':<28} {'Th. [GB/s]':>12} {'Model [GB/s]':>13} {'Host-measured':>14}",
    ]
    for r in results:
        host = f"{r.measured_gbs:.1f}" if r.measured_gbs is not None else "-"
        lines.append(
            f"{r.device.name:<28} {r.theoretical_gbs:>12.0f} "
            f"{r.predicted_gbs:>13.1f} {host:>14}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The full BabelStream kernel family.  The paper's validation uses TRIAD
# (above); the remaining kernels complete the benchmark as shipped, each
# expressed through the stdpar layer with its canonical byte/flop counts.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamKernel:
    """One BabelStream kernel: name, traffic split, flops per element."""

    name: str
    read_bytes_per_element: float
    write_bytes_per_element: float
    flops_per_element: float
    #: applies the kernel over (a, b, c); writes in place (Dot returns)
    apply: "typing.Callable"

    @property
    def bytes_per_element(self) -> float:
        return self.read_bytes_per_element + self.write_bytes_per_element


def _stream_kernels() -> list[StreamKernel]:
    import typing  # noqa: F401  (annotation above)

    s = 0.4
    return [
        StreamKernel("Copy", 8.0, 8.0, 0.0, lambda a, b, c: np.copyto(c, a)),
        StreamKernel("Mul", 8.0, 8.0, 1.0, lambda a, b, c: np.multiply(s, c, out=b)),
        StreamKernel("Add", 16.0, 8.0, 1.0, lambda a, b, c: np.add(a, b, out=c)),
        StreamKernel("Triad", 16.0, 8.0, 2.0, lambda a, b, c: np.add(b, s * c, out=a)),
        StreamKernel("Dot", 16.0, 0.0, 2.0, lambda a, b, c: float(a @ b)),
    ]


@dataclass(frozen=True)
class StreamResult:
    device: Device
    kernel: str
    predicted_gbs: float
    measured_gbs: float | None


def babelstream_suite(
    device: Device,
    n: int = 2**24,
    *,
    measure_host: bool | None = None,
) -> list[StreamResult]:
    """All five BabelStream kernels on *device* (model + optional host
    measurement), mirroring the benchmark's standard report."""
    measure = measure_host if measure_host is not None else device.key == "host"
    n_alloc = min(n, 2**23)
    rng = np.random.default_rng(3)
    a = rng.random(n_alloc)
    b = rng.random(n_alloc)
    c = rng.random(n_alloc)

    out = []
    for k in _stream_kernels():
        ctx = ExecutionContext(device=device)
        with ctx.step(k.name) as counters:
            kernel = kernel_from_functions(
                k.name.lower(), batch=lambda idx, k=k: k.apply(a, b, c)
            )
            from repro.stdpar.algorithms import for_each

            for_each(par_unseq, np.arange(n_alloc), kernel, ctx)
        scale = n / n_alloc
        counters.add(
            flops=k.flops_per_element * n_alloc * scale,
            bytes_read=k.read_bytes_per_element * n_alloc * scale,
            bytes_written=k.write_bytes_per_element * n_alloc * scale,
        )
        t = CostModel(device).total_time(StepCounters({k.name: counters}))
        predicted = k.bytes_per_element * n / t / 1e9

        measured = None
        if measure:
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                k.apply(a, b, c)
                best = min(best, time.perf_counter() - t0)
            measured = k.bytes_per_element * n_alloc / best / 1e9
        out.append(StreamResult(device, k.name, predicted, measured))
    return out
