"""The Table I device catalog.

One :class:`~repro.machine.device.Device` per Table I row, with the
paper's theoretical and measured (BabelStream TRIAD) bandwidths, the
toolchains evaluated per system (h=HIPCC, a=AdaptiveCpp, g=GCC, c=Clang,
o=DPC++, n=NVC++), and the semantic properties the paper discusses:

* CPUs provide concurrent forward progress (OS threads);
* NVIDIA GPUs since Volta provide Independent Thread Scheduling, i.e.
  parallel forward progress (refs [10], [11]);
* AMD and Intel GPUs provide only weakly parallel forward progress
  (refs [24], [25]) — the Concurrent Octree cannot run there;
* A100 has the Ampere partitioned L2 that inflates synchronizing-atomic
  latency (paper's explanation for Fig. 6's Octree/BVH inversion).

FP64 peaks are public figures; atomic latencies and irregular-access
fractions are plausibility-class parameters chosen once, globally — not
tuned per figure — and documented here.
"""

from __future__ import annotations

from repro.machine.device import Device, DeviceKind, ToolchainProfile
from repro.machine.interconnect import Interconnect
from repro.stdpar.progress import ForwardProgress

_CPU = DeviceKind.CPU
_GPU = DeviceKind.GPU


def _profiles(*specs: tuple[str, float, float, float]) -> tuple[ToolchainProfile, ...]:
    return tuple(
        ToolchainProfile(
            name=n, sort_efficiency=s, compute_efficiency=c, launch_overhead_us=o
        )
        for (n, s, c, o) in specs
    )


DEVICES: dict[str, Device] = {}


def _add(d: Device) -> None:
    DEVICES[d.key] = d


# --- AMD GPUs (no ITS: weakly parallel progress only) -----------------
_add(Device(
    key="mi100", name="AMD MI100", kind=_GPU, vendor="AMD", sw="6.1.3",
    toolchains=("hipcc", "acpp"), theoretical_bw_gbs=1200, measured_bw_gbs=1013,
    peak_fp64_gflops=11_500, cores=120, simt_width=64, threads=120 * 2048,
    progress=ForwardProgress.WEAKLY_PARALLEL,
    atomic_cas_ns=280.0, atomic_add_ns=25.0, irregular_bw_fraction=1.2,
    single_core_bw_gbs=28.0,
    profiles=_profiles(("hipcc", 1.0, 1.0, 8.0), ("acpp", 0.85, 0.97, 8.0)),
))
_add(Device(
    key="mi250", name="AMD MI250 GCD", kind=_GPU, vendor="AMD", sw="6.1.3",
    toolchains=("hipcc", "acpp"), theoretical_bw_gbs=1600, measured_bw_gbs=1375,
    peak_fp64_gflops=23_900, cores=110, simt_width=64, threads=110 * 2048,
    progress=ForwardProgress.WEAKLY_PARALLEL,
    atomic_cas_ns=260.0, atomic_add_ns=25.0, irregular_bw_fraction=1.2,
    single_core_bw_gbs=30.0,
    profiles=_profiles(("hipcc", 1.0, 1.0, 8.0), ("acpp", 0.85, 0.97, 8.0)),
))
_add(Device(
    key="mi300x", name="AMD MI300X", kind=_GPU, vendor="AMD", sw="6.1.3",
    toolchains=("hipcc", "acpp"), theoretical_bw_gbs=5300, measured_bw_gbs=4006,
    peak_fp64_gflops=81_700, cores=304, simt_width=64, threads=304 * 2048,
    progress=ForwardProgress.WEAKLY_PARALLEL,
    atomic_cas_ns=240.0, atomic_add_ns=25.0, irregular_bw_fraction=1.4,
    single_core_bw_gbs=35.0,
    profiles=_profiles(("hipcc", 1.0, 1.0, 8.0), ("acpp", 0.85, 0.97, 8.0)),
))

# --- CPUs (concurrent forward progress) -------------------------------
_add(Device(
    key="genoa", name="AMD 9654 (Genoa)", kind=_CPU, vendor="AMD", sw="13,18",
    toolchains=("gcc", "clang"), theoretical_bw_gbs=460, measured_bw_gbs=287,
    peak_fp64_gflops=7_372, cores=96, simt_width=8, threads=192,
    progress=ForwardProgress.CONCURRENT,
    atomic_cas_ns=120.0, atomic_add_ns=15.0, irregular_bw_fraction=4.0,
    single_core_bw_gbs=25.0,
    profiles=_profiles(("gcc", 1.0, 1.0, 3.0), ("clang", 0.92, 1.0, 3.0)),
))
_add(Device(
    key="graviton4", name="AWS Graviton4", kind=_CPU, vendor="AWS", sw="13,18",
    toolchains=("gcc", "clang"), theoretical_bw_gbs=530, measured_bw_gbs=413,
    peak_fp64_gflops=4_300, cores=96, simt_width=2, threads=96,
    progress=ForwardProgress.CONCURRENT,
    atomic_cas_ns=100.0, atomic_add_ns=12.0, irregular_bw_fraction=3.5,
    single_core_bw_gbs=30.0,
    profiles=_profiles(("gcc", 1.0, 1.0, 3.0), ("clang", 0.92, 1.0, 3.0)),
))
# Table I lists PVC "1/2 Tiles" with 1079 / 2054 GB/s measured: the
# paper reports the best of running on one tile or both ("NUMA effects
# may penalize throughput for larger problems", Section V-B).  We model
# both configurations; the 2-tile device pays a cross-tile traversal
# penalty once irregular traffic outgrows one tile.
_add(Device(
    key="pvc1550", name="Intel PVC1550 2 Tiles", kind=_GPU, vendor="Intel",
    sw="24.1", toolchains=("dpcpp", "acpp"),
    theoretical_bw_gbs=3276, measured_bw_gbs=2054,
    peak_fp64_gflops=52_000, cores=128, simt_width=16, threads=128 * 1024,
    progress=ForwardProgress.WEAKLY_PARALLEL,
    atomic_cas_ns=320.0, atomic_add_ns=35.0, irregular_bw_fraction=1.0,
    single_core_bw_gbs=25.0,
    numa_threshold_bytes=1.0e11, numa_penalty=2.2,
    profiles=_profiles(("dpcpp", 0.7, 0.85, 14.0), ("acpp", 0.85, 0.95, 14.0)),
))
_add(Device(
    key="pvc1550-1t", name="Intel PVC1550 1 Tile", kind=_GPU, vendor="Intel",
    sw="24.1", toolchains=("dpcpp", "acpp"),
    theoretical_bw_gbs=1638, measured_bw_gbs=1079,
    peak_fp64_gflops=26_000, cores=64, simt_width=16, threads=64 * 1024,
    progress=ForwardProgress.WEAKLY_PARALLEL,
    atomic_cas_ns=300.0, atomic_add_ns=35.0, irregular_bw_fraction=1.0,
    single_core_bw_gbs=25.0,
    profiles=_profiles(("dpcpp", 0.7, 0.85, 14.0), ("acpp", 0.85, 0.95, 14.0)),
))
_add(Device(
    key="spr", name="Intel 8480C (SPR)", kind=_CPU, vendor="Intel", sw="13,18",
    toolchains=("gcc", "clang"), theoretical_bw_gbs=307, measured_bw_gbs=197,
    peak_fp64_gflops=3_584, cores=56, simt_width=8, threads=112,
    progress=ForwardProgress.CONCURRENT,
    atomic_cas_ns=130.0, atomic_add_ns=16.0, irregular_bw_fraction=4.0,
    single_core_bw_gbs=20.0,
    profiles=_profiles(("gcc", 1.0, 1.0, 3.0), ("clang", 0.92, 1.0, 3.0)),
))
_add(Device(
    key="grace", name="NV Grace-120", kind=_CPU, vendor="NVIDIA", sw="13,18",
    toolchains=("gcc", "clang", "nvcpp", "acpp"),
    theoretical_bw_gbs=500, measured_bw_gbs=448,
    peak_fp64_gflops=3_400, cores=72, simt_width=4, threads=72,
    progress=ForwardProgress.CONCURRENT,
    atomic_cas_ns=90.0, atomic_add_ns=10.0, irregular_bw_fraction=3.5,
    single_core_bw_gbs=40.0,
    profiles=_profiles(
        ("gcc", 1.0, 1.0, 3.0), ("clang", 0.92, 1.0, 3.0),
        ("nvcpp", 0.88, 0.98, 3.0), ("acpp", 0.85, 0.97, 3.0),
    ),
))

# --- NVIDIA GPUs (ITS since Volta: parallel forward progress) ---------
_add(Device(
    key="v100", name="NV V100-16", kind=_GPU, vendor="NVIDIA", sw="24.7",
    toolchains=("nvcpp", "acpp"), theoretical_bw_gbs=900, measured_bw_gbs=845,
    peak_fp64_gflops=7_800, cores=80, simt_width=32, threads=80 * 2048,
    progress=ForwardProgress.PARALLEL,
    atomic_cas_ns=250.0, atomic_add_ns=0.4, irregular_bw_fraction=1.3,
    single_core_bw_gbs=25.0,
    profiles=_profiles(("nvcpp", 1.0, 1.0, 6.0), ("acpp", 0.9, 0.88, 6.0)),
))
_add(Device(
    key="a100", name="NV A100-80", kind=_GPU, vendor="NVIDIA", sw="24.7",
    toolchains=("nvcpp", "acpp"), theoretical_bw_gbs=2000, measured_bw_gbs=1768,
    peak_fp64_gflops=9_700, cores=108, simt_width=32, threads=108 * 2048,
    progress=ForwardProgress.PARALLEL,
    # Ampere partitioned L2: coherence for synchronizing atomics crosses
    # partitions, inflating latency (paper Section V-B, ref [26]).
    atomic_cas_ns=800.0, atomic_add_ns=0.3, irregular_bw_fraction=1.4,
    single_core_bw_gbs=28.0, l2_partitioned=True,
    profiles=_profiles(("nvcpp", 1.0, 1.0, 6.0), ("acpp", 0.9, 0.88, 6.0)),
))
_add(Device(
    key="h100", name="NV H100-80", kind=_GPU, vendor="NVIDIA", sw="24.7",
    toolchains=("nvcpp", "acpp"), theoretical_bw_gbs=3300, measured_bw_gbs=3073,
    peak_fp64_gflops=34_000, cores=132, simt_width=32, threads=132 * 2048,
    progress=ForwardProgress.PARALLEL,
    atomic_cas_ns=140.0, atomic_add_ns=0.3, irregular_bw_fraction=1.5,
    single_core_bw_gbs=30.0,
    profiles=_profiles(("nvcpp", 1.0, 1.0, 6.0), ("acpp", 0.9, 0.88, 6.0)),
))
_add(Device(
    key="gh200", name="NV GH200-480", kind=_GPU, vendor="NVIDIA", sw="24.7",
    toolchains=("nvcpp", "acpp"), theoretical_bw_gbs=4000, measured_bw_gbs=3683,
    peak_fp64_gflops=34_000, cores=132, simt_width=32, threads=132 * 2048,
    progress=ForwardProgress.PARALLEL,
    atomic_cas_ns=130.0, atomic_add_ns=0.3, irregular_bw_fraction=1.6,
    single_core_bw_gbs=32.0,
    profiles=_profiles(("nvcpp", 1.0, 1.0, 6.0), ("acpp", 0.92, 0.84, 6.0)),
))

#: The machine actually executing this Python process: used when wall
#: clock rather than the cost model is the measurement.  Parameters are
#: a generic single-socket host; wall-clock numbers never consult them.
HOST = Device(
    key="host", name="Measurement host (Python)", kind=_CPU, vendor="generic",
    sw="python", toolchains=("cpython",), theoretical_bw_gbs=50,
    measured_bw_gbs=30, peak_fp64_gflops=50, cores=1, simt_width=1, threads=1,
    progress=ForwardProgress.CONCURRENT,
    atomic_cas_ns=100.0, atomic_add_ns=20.0, irregular_bw_fraction=2.0,
    single_core_bw_gbs=30.0,
    profiles=(ToolchainProfile("cpython", 1.0, 1.0, 1.0),),
)
DEVICES[HOST.key] = HOST


# --- Interconnect link classes (repro.distributed fabric) -------------
# Latencies are software-visible small-message latencies (library
# included), bandwidths sustained per-direction per-link; both are
# plausibility classes like the atomic latencies above — fixed once,
# globally, and only their relative ordering matters to the figures.
INTERCONNECTS: dict[str, Interconnect] = {
    ic.key: ic
    for ic in (
        # NVLink-class: direct GPU-to-GPU inside one chassis.
        Interconnect("nvlink4", "NVLink 4 (Hopper)", "intra-node", 2.0, 450.0),
        Interconnect("nvlink3", "NVLink 3 (Ampere)", "intra-node", 2.2, 300.0),
        Interconnect("xgmi3", "Infinity Fabric 3", "intra-node", 2.5, 350.0),
        Interconnect("pcie5", "PCIe 5.0 x16", "intra-node", 4.0, 55.0),
        # IB-class: NIC-routed, crosses chassis.
        Interconnect("ib-ndr", "InfiniBand NDR400", "inter-node", 3.5, 50.0),
        Interconnect("ib-hdr", "InfiniBand HDR200", "inter-node", 4.0, 25.0),
        Interconnect("roce100", "100G RoCE", "inter-node", 8.0, 12.5),
    )
}


def get_interconnect(key: str) -> Interconnect:
    """Look up an interconnect link class by key (``'nvlink4'``)."""
    try:
        return INTERCONNECTS[key]
    except KeyError:
        raise KeyError(
            f"unknown interconnect {key!r}; have {sorted(INTERCONNECTS)}"
        ) from None


def get_device(key: str) -> Device:
    """Look up a device by key (``'h100'``) or full Table I name."""
    if key in DEVICES:
        return DEVICES[key]
    for d in DEVICES.values():
        if d.name == key:
            return d
    raise KeyError(f"unknown device {key!r}; have {sorted(DEVICES)}")


def list_devices(kind: DeviceKind | None = None, *, include_host: bool = False):
    """All catalog devices, optionally filtered by kind."""
    out = []
    for d in DEVICES.values():
        if d.key == "host" and not include_host:
            continue
        if kind is None or d.kind is kind:
            out.append(d)
    return out
