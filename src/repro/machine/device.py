"""Device specifications for the simulated hardware substrate.

A :class:`Device` carries the parameters the cost model needs to turn
operation counts into predicted runtimes, plus the semantic properties
(forward-progress guarantee, SIMT width) the stdpar layer needs to
decide *whether and how* an algorithm can run at all.

Real measured quantities come from the paper's Table I (theoretical and
BabelStream TRIAD bandwidths); the rest (FP64 peaks, atomic latency
classes) are public figures or plausible classes — the experiments only
depend on their relative ordering, which is documented per figure in
EXPERIMENTS.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.stdpar.progress import ForwardProgress


class DeviceKind(enum.Enum):
    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class ToolchainProfile:
    """Per-toolchain efficiency knobs (paper Figs. 8 and 9).

    The paper finds inter-toolchain variation "relatively small,
    attributed mainly in the sorting algorithm which is not necessarily
    optimised in all compilers"; the profiles encode exactly that: a
    sort efficiency that varies, small variation elsewhere.
    """

    name: str
    #: Relative efficiency of the parallel sort (1.0 = best observed).
    sort_efficiency: float = 1.0
    #: Relative efficiency of compute-bound phases (force calculation).
    compute_efficiency: float = 1.0
    #: Per-kernel-launch overhead in microseconds.
    launch_overhead_us: float = 5.0


@dataclass(frozen=True)
class Device:
    """A simulated CPU or GPU execution target."""

    key: str                   # short identifier ("h100", "genoa", ...)
    name: str                  # Table I row name
    kind: DeviceKind
    vendor: str
    sw: str                    # software stack version (Table I "SW")
    toolchains: tuple[str, ...]
    theoretical_bw_gbs: float  # Table I "Th. [GB/s]"
    measured_bw_gbs: float     # Table I "Exp. [GB/s]" (BabelStream TRIAD)
    peak_fp64_gflops: float
    cores: int                 # CPU cores or GPU SMs/CUs
    simt_width: int            # hardware lockstep width (1 lane group on CPU)
    threads: int               # max concurrently resident threads
    progress: ForwardProgress
    #: Latency of a contended acquire/release atomic RMW, nanoseconds.
    atomic_cas_ns: float
    #: Amortized cost of an uncontended relaxed atomic, nanoseconds.
    atomic_add_ns: float
    #: Effective bandwidth of tree-node traffic relative to streaming
    #: bandwidth.  Tree pools are megabytes and mostly L2/LLC-resident,
    #: so values exceed 1 (cache bandwidth > DRAM bandwidth); CPUs with
    #: large LLCs get higher multipliers than GPUs.
    irregular_bw_fraction: float
    #: Bandwidth achievable by a single sequential thread (GB/s).
    single_core_bw_gbs: float
    #: Ampere-style partitioned L2: inflates synchronizing-atomic latency
    #: (the paper's explanation for BVH>Octree at 1e5 on A100).
    l2_partitioned: bool = False
    #: Multi-tile NUMA (Intel PVC 2-tile mode): once a step's irregular
    #: traffic exceeds the threshold, cross-tile accesses divide the
    #: effective traversal bandwidth by the penalty — "NUMA effects may
    #: penalize throughput for larger problems" (paper Section V-B).
    numa_threshold_bytes: float | None = None
    numa_penalty: float = 1.0
    profiles: tuple[ToolchainProfile, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    @property
    def is_gpu(self) -> bool:
        return self.kind is DeviceKind.GPU

    @property
    def has_its(self) -> bool:
        """Independent Thread Scheduling: parallel forward progress on a GPU."""
        return self.is_gpu and self.progress.satisfies(ForwardProgress.PARALLEL)

    @property
    def default_toolchain(self) -> str:
        return self.toolchains[0]

    def toolchain_profile(self, name: str) -> ToolchainProfile:
        for p in self.profiles:
            if p.name == name:
                return p
        if name in self.toolchains:
            return ToolchainProfile(name=name)
        raise KeyError(f"toolchain {name!r} not available on {self.name!r}")

    @property
    def peak_seq_gflops(self) -> float:
        """Single-core (single-SM) FP64 peak used for ``seq`` runs."""
        return self.peak_fp64_gflops / self.cores

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
