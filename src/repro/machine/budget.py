"""Per-tenant modeled device-time ledger.

The service layer charges every piece of work a session performs —
materialization, step quanta, checkpoint suspend/resume — in modeled
device seconds from the cost model.  The :class:`DeviceTimeBudget`
is the double-entry side of that: an append-free ledger of who spent
what, with optional hard caps per tenant.  Being built from modeled
(not wall) time, two identical runs produce identical ledgers.
"""

from __future__ import annotations


class DeviceTimeBudget:
    """Tracks modeled device seconds spent per tenant."""

    def __init__(self, caps: dict[str, float] | None = None):
        #: Optional hard cap per tenant, modeled seconds.
        self.caps = dict(caps or {})
        for tenant, cap in self.caps.items():
            if cap <= 0:
                raise ValueError(f"cap for {tenant!r} must be positive")
        self._spent: dict[str, float] = {}

    # ------------------------------------------------------------------
    def charge(self, tenant: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative seconds")
        self._spent[tenant] = self._spent.get(tenant, 0.0) + seconds

    def spent(self, tenant: str) -> float:
        return self._spent.get(tenant, 0.0)

    @property
    def total(self) -> float:
        return sum(self._spent.values())

    def remaining(self, tenant: str) -> float:
        """Seconds left under the tenant's cap (inf when uncapped)."""
        cap = self.caps.get(tenant)
        if cap is None:
            return float("inf")
        return max(cap - self.spent(tenant), 0.0)

    def exhausted(self, tenant: str) -> bool:
        return self.remaining(tenant) <= 0.0

    def shares(self) -> dict[str, float]:
        """Fraction of all charged time per tenant (empty ledger: {})."""
        total = self.total
        if total <= 0:
            return {}
        return {t: s / total for t, s in sorted(self._spent.items())}

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "spent": {t: self._spent[t] for t in sorted(self._spent)},
            "caps": dict(self.caps),
        }
