"""Interconnect link classes for the modeled multi-rank fabric.

The single-device cost model charges compute, memory, atomics, sorts
and launches; once a simulation shards across ranks
(:mod:`repro.distributed`), messages crossing the fabric must be
charged too.  An :class:`Interconnect` is a *link class* — a
latency/bandwidth pair representative of a family of real links
(NVLink-class intra-node, InfiniBand-class inter-node, ...), in the
same spirit as the device catalog's atomic-latency classes: chosen
once, globally, for plausible *relative* ordering rather than absolute
accuracy.

A message of ``b`` bytes on a link costs

    seconds = latency_us * 1e-6 + b / (bandwidth_gbs * 1e9)

which is the classic alpha-beta (Hockney) model.  The catalog's
interconnect table lives in :mod:`repro.machine.catalog` next to the
device table it extends.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interconnect:
    """One fabric link class (alpha-beta parameters)."""

    key: str            # short identifier ("nvlink4", "ib-ndr", ...)
    name: str           # human-readable family name
    #: Where the link class typically sits: "intra-node" links connect
    #: ranks inside one chassis, "inter-node" links cross chassis.
    scope: str
    #: One-way small-message latency (software included), microseconds.
    latency_us: float
    #: Sustained per-direction bandwidth of one link, GB/s.
    bandwidth_gbs: float

    def __post_init__(self) -> None:
        if self.latency_us < 0:
            raise ValueError("latency_us must be non-negative")
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth_gbs must be positive")
        if self.scope not in ("intra-node", "inter-node"):
            raise ValueError("scope must be 'intra-node' or 'inter-node'")

    # ------------------------------------------------------------------
    def message_seconds(self, n_bytes: float) -> float:
        """Alpha-beta time of one *n_bytes* message on this link."""
        return self.latency_us * 1e-6 + float(n_bytes) / (self.bandwidth_gbs * 1e9)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.latency_us} us, {self.bandwidth_gbs} GB/s)"
