"""stdpar-nbody-repro: a Python reproduction of
"Efficient Tree-based Parallel Algorithms for N-Body Simulations Using
C++ Standard Parallelism" (Cassell, Deakin, Alpay, Heuveline,
Brito Gadeschi - SC 2024).

Quickstart::

    from repro import Simulation, SimulationConfig, galaxy_collision

    sim = Simulation(
        galaxy_collision(10_000),
        SimulationConfig(algorithm="octree", theta=0.5, dt=1e-3),
    )
    sim.run(10)

See README.md for the architecture overview, DESIGN.md for the system
inventory and per-experiment index, and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.core import Simulation, SimulationConfig, get_algorithm, list_algorithms
from repro.errors import (
    AllocatorExhausted,
    ConfigurationError,
    DeviceNotSupported,
    ForwardProgressError,
    LivelockDetected,
    ReproError,
    VectorizationUnsafeError,
)
from repro.machine import DEVICES, get_device, list_devices
from repro.physics import BodySystem, GravityParams
from repro.stdpar import ExecutionContext, par, par_unseq, seq
from repro.workloads import galaxy_collision, plummer_sphere, solar_system, uniform_cube

__version__ = "1.0.0"

__all__ = [
    "Simulation",
    "SimulationConfig",
    "get_algorithm",
    "list_algorithms",
    "BodySystem",
    "GravityParams",
    "ExecutionContext",
    "seq",
    "par",
    "par_unseq",
    "DEVICES",
    "get_device",
    "list_devices",
    "galaxy_collision",
    "plummer_sphere",
    "solar_system",
    "uniform_cube",
    "ReproError",
    "VectorizationUnsafeError",
    "ForwardProgressError",
    "LivelockDetected",
    "AllocatorExhausted",
    "ConfigurationError",
    "DeviceNotSupported",
    "__version__",
]
