"""HILBERTSORT + BUILDTREEACCUMULATEMASS (paper Algorithm 6, Fig. 4).

The build is two vectorization-safe phases:

1. **HILBERTSORT** — bodies are gridded on the equidistant Cartesian
   grid over the cubified global bounding box, their Hilbert indices
   are precomputed with Skilling's algorithm ("note the Hilbert index
   is precomputed to avoid recomputation"), and a parallel sort yields
   the permutation (the AdaptiveCpp/Clang auxiliary-buffer workaround
   from Section V-A's implementation issue 2).
2. **BUILDTREEACCUMULATEMASS** — leaves take the sorted bodies'
   degenerate boxes and monopoles; each coarser level reduces its two
   children's bounding boxes and moments with plain (non-atomic)
   reshaped numpy sums.  The per-node reductions are independent, so
   ``par_unseq`` suffices — no atomics anywhere in this strategy.

Unlike the C++ artifact we keep the caller's body order intact and
carry the permutation inside the :class:`BVH` handle (forces are
scattered back at the end); this changes nothing observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.aabb import AABB, compute_bounding_box, quantize_to_grid
from repro.geometry.hilbert import hilbert_encode
from repro.geometry.morton import MAX_BITS_2D, MAX_BITS_3D, morton_encode
from repro.bvh.layout import BVHLayout, bvh_escape_indices, next_pow2
from repro.stdpar.context import ExecutionContext
from repro.stdpar.policy import par
from repro.types import FLOAT, INDEX


def default_sort_bits(dim: int) -> int:
    # Finest grid that still fits a 64-bit key; only the *order* matters,
    # so finer is safely conservative.
    return MAX_BITS_3D if dim == 3 else MAX_BITS_2D


def hilbert_sort_permutation(
    x: np.ndarray,
    box: AABB,
    *,
    bits: int | None = None,
    ctx: ExecutionContext | None = None,
    curve: str = "hilbert",
    keys: np.ndarray | None = None,
) -> np.ndarray:
    """Permutation ordering bodies along the space-filling curve.

    ``curve='morton'`` is provided for the ordering ablation (the
    related-work BVH builders sort by Morton codes; the paper argues for
    Hilbert + pairwise aggregation).

    ``keys`` short-circuits the encode: pass curve keys already computed
    for these positions (e.g. shared with the distributed partitioner
    through :class:`repro.maintenance.KeyCache`) and only the sort runs
    — and is charged.
    """
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    if n == 0:
        return np.empty(0, dtype=INDEX)
    if keys is None:
        bits = default_sort_bits(dim) if bits is None else bits
        grid = quantize_to_grid(x, box, bits)
        if curve == "hilbert":
            keys = hilbert_encode(grid, bits)
        elif curve == "morton":
            keys = morton_encode(grid, bits)
        else:
            raise ValueError(f"unknown curve {curve!r}")
        if ctx is not None:
            # Key computation cost: ~bits*dim bit-ops per body.
            ctx.counters.add(flops=float(n * bits * dim),
                             bytes_read=8.0 * n * dim,
                             bytes_written=8.0 * n)
    if ctx is not None:
        from repro.stdpar.algorithms import sort_by_key

        return sort_by_key(par, keys, ctx)
    return np.argsort(keys, kind="stable")


@dataclass
class BVH:
    """A built Hilbert-sorted BVH over one snapshot of body positions."""

    layout: BVHLayout
    box: AABB
    perm: np.ndarray        # sorted order: leaf i holds body perm[i]
    bb_lo: np.ndarray       # (n_nodes, dim)
    bb_hi: np.ndarray       # (n_nodes, dim)
    com: np.ndarray         # (n_nodes, dim) centres of mass
    mass: np.ndarray        # (n_nodes,)
    count: np.ndarray       # (n_nodes,) bodies below the node
    x_sorted: np.ndarray    # (n, dim) positions in leaf order
    m_sorted: np.ndarray    # (n,)
    #: Traceless quadrupole tensors (n_nodes, 3, 3) when built at
    #: multipole order 2; None at the default monopole order.
    quad: np.ndarray | None = None

    @property
    def n_bodies(self) -> int:
        return self.perm.shape[0]

    @property
    def escape(self) -> np.ndarray:
        return bvh_escape_indices(self.layout.n_leaves)

    def node_size2(self) -> np.ndarray:
        """Squared longest bbox side per node (0 for empty nodes) — the
        size entering the acceptance criterion; BVH boxes may be
        elongated and overlap, which is why the distance threshold
        reads differently than the octree's (end of Section IV-B)."""
        ext = np.maximum(self.bb_hi - self.bb_lo, 0.0)
        return ext.max(axis=1) ** 2


def build_bvh(
    x: np.ndarray,
    m: np.ndarray,
    *,
    box: AABB | None = None,
    sort_bits: int | None = None,
    ctx: ExecutionContext | None = None,
    curve: str = "hilbert",
    order: int = 1,
) -> BVH:
    """Build the BVH (sort + fused level reduction)."""
    x = np.asarray(x, dtype=FLOAT)
    m = np.asarray(m, dtype=FLOAT)
    n, dim = x.shape
    if box is None:
        box = compute_bounding_box(x) if n else AABB.empty(dim)
    perm = hilbert_sort_permutation(x, box, bits=sort_bits, ctx=ctx, curve=curve)
    return assemble_bvh(x, m, perm, box, ctx=ctx, order=order)


def assemble_bvh(
    x: np.ndarray,
    m: np.ndarray,
    perm: np.ndarray,
    box: AABB,
    *,
    ctx: ExecutionContext | None = None,
    order: int = 1,
) -> BVH:
    """BUILDTREEACCUMULATEMASS from an existing sort permutation.

    ``order=2`` additionally reduces traceless quadrupole tensors level
    by level (the paper's multipole extension); still atomics-free.
    """
    if order not in (1, 2):
        raise ValueError(f"multipole order must be 1 or 2, got {order}")
    if order == 2 and np.asarray(x).shape[1] != 3:
        raise ValueError("quadrupole moments are 3-D only")
    x = np.asarray(x, dtype=FLOAT)
    m = np.asarray(m, dtype=FLOAT)
    n, dim = x.shape
    xs = x[perm]
    ms = m[perm]

    p = next_pow2(n)
    layout = BVHLayout(p)
    nn = layout.n_nodes
    bb_lo = np.full((nn, dim), np.inf, dtype=FLOAT)
    bb_hi = np.full((nn, dim), -np.inf, dtype=FLOAT)
    com_w = np.zeros((nn, dim), dtype=FLOAT)
    mass = np.zeros(nn, dtype=FLOAT)
    count = np.zeros(nn, dtype=INDEX)

    # Leaves: one body each; padding leaves stay empty.
    fl = layout.first_leaf
    bb_lo[fl : fl + n] = xs
    bb_hi[fl : fl + n] = xs
    com_w[fl : fl + n] = ms[:, None] * xs
    mass[fl : fl + n] = ms
    count[fl : fl + n] = 1

    _reduce_geometry_levels(layout, bb_lo, bb_hi, com_w, mass=mass, count=count)
    com = _finalize_coms(layout, com_w, mass, count, xs)
    quad = _reduce_quadrupoles(layout, mass, com) if order == 2 else None

    if ctx is not None:
        # Streaming reduction: every node is written once and every
        # child read once; ~ (2 boxes + com + mass + count) * 8 bytes.
        node_bytes = (4.0 * dim + 2.0) * 8.0 + (72.0 if order == 2 else 0.0)
        ctx.counters.add(
            flops=10.0 * dim * nn,
            bytes_read=2.0 * node_bytes * nn,
            bytes_written=node_bytes * nn,
            loop_iterations=float(nn),
            kernel_launches=float(layout.n_levels),
        )

    return BVH(
        layout=layout, box=box, perm=perm,
        bb_lo=bb_lo, bb_hi=bb_hi, com=com, mass=mass, count=count,
        x_sorted=xs, m_sorted=ms, quad=quad,
    )


def _reduce_geometry_levels(
    layout: BVHLayout,
    bb_lo: np.ndarray,
    bb_hi: np.ndarray,
    com_w: np.ndarray,
    *,
    mass: np.ndarray | None = None,
    count: np.ndarray | None = None,
) -> None:
    """Level-by-level pairwise reduction (Fig. 4), in place.

    Each uninitialized coarser node reduces its two children; all
    reductions at a level are independent (``par_unseq``).  ``mass`` /
    ``count`` are optional because a refit leaves them untouched (body
    masses and leaf membership are fixed between full builds).
    """
    dim = bb_lo.shape[1]
    for level in range(layout.n_levels - 2, -1, -1):
        sl = layout.level_slice(level)
        cl = layout.level_slice(level + 1)
        k = sl.stop - sl.start
        bb_lo[sl] = bb_lo[cl].reshape(k, 2, dim).min(axis=1)
        bb_hi[sl] = bb_hi[cl].reshape(k, 2, dim).max(axis=1)
        com_w[sl] = com_w[cl].reshape(k, 2, dim).sum(axis=1)
        if mass is not None:
            mass[sl] = mass[cl].reshape(k, 2).sum(axis=1)
        if count is not None:
            count[sl] = count[cl].reshape(k, 2).sum(axis=1)


def _finalize_coms(
    layout: BVHLayout,
    com_w: np.ndarray,
    mass: np.ndarray,
    count: np.ndarray,
    xs: np.ndarray,
) -> np.ndarray:
    """Weighted coms, with the bitwise-exactness fixups."""
    dim = xs.shape[1] if xs.ndim == 2 else com_w.shape[1]
    n = xs.shape[0]
    fl = layout.first_leaf
    with np.errstate(invalid="ignore", divide="ignore"):
        com = np.where(mass[:, None] > 0.0, com_w / np.maximum(mass[:, None], 1e-300), 0.0)
    # Leaf coms must be bitwise equal to the body positions: (m*x)/m is
    # not an exact round-trip, and a one-ulp offset makes the body's
    # visit to its own leaf a divergent near-zero-distance interaction
    # under zero softening.
    com[fl : fl + n] = xs
    # The same holds for internal nodes holding a single body (their
    # sibling subtree is padding): the node's box is degenerate, so
    # ``size2 = 0`` passes the MAC at *any* nonzero distance — including
    # the one-ulp offset of the weighted com from the body's own
    # position.  Propagate the occupied child's com bitwise instead.
    for level in range(layout.n_levels - 2, -1, -1):
        sl = layout.level_slice(level)
        cl = layout.level_slice(level + 1)
        k = sl.stop - sl.start
        single = np.nonzero(count[sl] == 1)[0]
        if single.size:
            ccount = count[cl].reshape(k, 2)
            pick = np.argmax(ccount[single], axis=1)
            com[sl.start + single] = com[cl].reshape(k, 2, dim)[single, pick]
    return com


def _reduce_quadrupoles(
    layout: BVHLayout,
    mass: np.ndarray,
    com: np.ndarray,
) -> np.ndarray:
    """Traceless quadrupoles combined pairwise about the final coms.

    Single-body (and empty) leaves have zero quadrupole.
    """
    from repro.physics.multipole import combine_quadrupoles

    nn = layout.n_nodes
    dim = com.shape[1]
    quad = np.zeros((nn, dim, dim), dtype=FLOAT)
    for level in range(layout.n_levels - 2, -1, -1):
        sl = layout.level_slice(level)
        cl = layout.level_slice(level + 1)
        k = sl.stop - sl.start
        quad[sl] = combine_quadrupoles(
            quad[cl].reshape(k, 2, dim, dim),
            mass[cl].reshape(k, 2),
            com[cl].reshape(k, 2, dim),
            com[sl],
        )
    return quad


def refit_bvh(
    bvh: BVH,
    x: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
) -> BVH:
    """Refit the BVH to moved bodies, keeping the sort permutation.

    Runs the same fused bottom-up level sweep as :func:`assemble_bvh`
    but skips encode, sort and the mass/count reductions (masses and
    leaf membership are unchanged between full builds), so the result is
    *bitwise identical* to ``assemble_bvh(x, m, bvh.perm, bvh.box)`` at
    any positions ``x`` — the refit itself is exact; only the staleness
    of the permutation (and of cached interaction lists) approximates.

    Modeled as a single fused kernel: leaves are streamed once from the
    gathered positions and every node's box + weighted com is written
    once — one launch, no sort traffic.
    """
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    if n != bvh.n_bodies:
        raise ValueError("refit requires an unchanged body count")
    layout = bvh.layout
    nn = layout.n_nodes
    xs = x[bvh.perm]
    ms = bvh.m_sorted

    bb_lo = np.full((nn, dim), np.inf, dtype=FLOAT)
    bb_hi = np.full((nn, dim), -np.inf, dtype=FLOAT)
    com_w = np.zeros((nn, dim), dtype=FLOAT)
    fl = layout.first_leaf
    bb_lo[fl : fl + n] = xs
    bb_hi[fl : fl + n] = xs
    com_w[fl : fl + n] = ms[:, None] * xs

    _reduce_geometry_levels(layout, bb_lo, bb_hi, com_w)
    com = _finalize_coms(layout, com_w, bvh.mass, bvh.count, xs)
    order = 2 if bvh.quad is not None else 1
    quad = _reduce_quadrupoles(layout, bvh.mass, com) if order == 2 else None

    if ctx is not None:
        # Fused refit: read the n gathered positions + masses once plus
        # the per-node count byte-stream for the fixups; write 2 boxes +
        # com per node (mass/count untouched).  One launch.
        ctx.counters.add(
            flops=10.0 * dim * nn,
            bytes_read=8.0 * n * (dim + 1.0) + 8.0 * nn,
            bytes_written=3.0 * dim * 8.0 * nn + (72.0 * nn if order == 2 else 0.0),
            loop_iterations=float(nn),
            kernel_launches=1.0,
        )

    return BVH(
        layout=layout, box=bvh.box, perm=bvh.perm,
        bb_lo=bb_lo, bb_hi=bb_hi, com=com, mass=bvh.mass, count=bvh.count,
        x_sorted=xs, m_sorted=ms, quad=quad,
    )
