"""CALCULATEFORCE over the Hilbert BVH (paper Section IV-B, step 3).

Identical in spirit to the octree traversal with two differences the
paper calls out: the balanced skip list allows multi-level jumps (our
precomputed escape indices), and the acceptance criterion uses the
node's *bounding-box* extent — BVH boxes may be elongated and overlap,
so for the same distance threshold more nodes are opened and the
accuracy differs from the octree's.

The kernel uses no atomics, so it runs under ``par_unseq``; the batch
implementation advances all (Hilbert-sorted) bodies in lockstep, which
both is fast in numpy and measures warp divergence the way a SIMT GPU
would experience it — low, because curve-adjacent bodies traverse
nearly identical paths.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.build import BVH
from repro.bvh.layout import DONE, bvh_dfs_ranks
from repro.machine.counters import Counters
from repro.physics.gravity import (
    FLOPS_PER_INTERACTION,
    GravityParams,
    SPECIAL_PER_INTERACTION,
)
from repro.physics.multipole import (
    QUAD_EXTRA_BYTES,
    QUAD_EXTRA_FLOPS,
    quadrupole_accel,
)
from repro.traversal.engine import (
    KLASS_INTERNAL,
    KLASS_POINT,
    KLASS_SKIP,
    TreeView,
    account_grouped_force,
    build_interaction_lists,
    build_self_pairs,
    evaluate_interaction_lists,
)
from repro.traversal.flat import build_flat_lists
from repro.traversal.groups import make_groups
from repro.types import FLOAT, INDEX

#: Bytes per node visit: bbox (2 * dim * 8) + com (dim * 8) + mass (8);
#: escape indices are implicit (computed from the node index).
def _visit_bytes(dim: int) -> float:
    return (3.0 * dim + 1.0) * 8.0


def bvh_accelerations(
    bvh: BVH,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
    ctx=None,
    simt_width: int = 32,
) -> np.ndarray:
    """Accelerations for all bodies, returned in the *caller's* body
    order (the Hilbert permutation is internal to the BVH)."""
    n = bvh.n_bodies
    dim = bvh.x_sorted.shape[1]
    if n == 0:
        return np.zeros((0, dim), dtype=FLOAT)

    x = bvh.x_sorted
    escape = bvh.escape
    first_leaf = bvh.layout.first_leaf
    com = bvh.com
    mass = bvh.mass
    count = bvh.count
    quad = bvh.quad
    size2 = bvh.node_size2()
    theta2 = theta * theta
    eps2 = params.eps2
    G = params.G

    acc = np.zeros((n, dim), dtype=FLOAT)
    ptr = np.zeros(n, dtype=INDEX)
    steps = np.zeros(n, dtype=np.int64)
    interactions = 0
    quad_terms = 0

    act = np.arange(n, dtype=INDEX)
    while act.size:
        nd = ptr[act]
        leaf = nd >= first_leaf
        empty = count[nd] == 0
        dvec = com[nd] - x[act]
        r2 = np.einsum("ij,ij->i", dvec, dvec)
        accept = ~leaf & ~empty & (size2[nd] < theta2 * r2)
        contrib = (accept | leaf) & ~empty

        if contrib.any():
            r2c = r2[contrib] + eps2
            with np.errstate(divide="ignore", invalid="ignore"):
                w = np.where(r2c > 0.0, G * mass[nd][contrib] * r2c ** -1.5, 0.0)
            acc[act[contrib]] += w[:, None] * dvec[contrib]
            interactions += int(np.count_nonzero(w))
            if quad is not None:
                q_rows = accept[contrib]
                if q_rows.any():
                    sel = np.nonzero(contrib)[0][q_rows]
                    acc[act[sel]] += quadrupole_accel(
                        dvec[sel], r2[sel] + eps2, quad[nd[sel]], G
                    )
                    quad_terms += int(q_rows.sum())

        skip = accept | leaf | empty
        ptr[act] = np.where(skip, escape[nd], 2 * nd + 1)
        steps[act] += 1
        act = act[ptr[act] != DONE]

    if ctx is not None:
        _account_force(steps, interactions, dim, simt_width, ctx.counters,
                       quad_terms=quad_terms)

    out = np.empty_like(acc)
    out[bvh.perm] = acc
    return out


def bvh_accelerations_scalar(
    bvh: BVH,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
) -> np.ndarray:
    """Per-body reference walker (bit-compatible with the batch path)."""
    n = bvh.n_bodies
    dim = bvh.x_sorted.shape[1]
    acc = np.zeros((n, dim), dtype=FLOAT)
    if n == 0:
        return acc
    escape = bvh.escape
    first_leaf = bvh.layout.first_leaf
    size2 = bvh.node_size2()
    theta2 = theta * theta
    eps2 = params.eps2
    for i in range(n):
        node = 0
        while node != DONE:
            leaf = node >= first_leaf
            empty_node = bvh.count[node] == 0
            dvec = bvh.com[node] - bvh.x_sorted[i]
            r2 = float(dvec @ dvec)
            accept = (not leaf) and (not empty_node) and size2[node] < theta2 * r2
            if (accept or leaf) and not empty_node:
                r2f = r2 + eps2
                if r2f > 0.0 and bvh.mass[node] > 0.0:
                    acc[i] += params.G * bvh.mass[node] * r2f**-1.5 * dvec
                    if accept and bvh.quad is not None:
                        acc[i] += quadrupole_accel(
                            dvec[None], np.array([r2f]),
                            bvh.quad[node][None], params.G,
                        )[0]
            node = int(escape[node]) if (accept or leaf or empty_node) else 2 * node + 1
    out = np.empty_like(acc)
    out[bvh.perm] = acc
    return out


def _account_force(
    steps: np.ndarray,
    interactions: int,
    dim: int,
    simt_width: int,
    counters: Counters,
    quad_terms: int = 0,
) -> None:
    total = float(steps.sum())
    n = steps.shape[0]
    pad = (-n) % simt_width
    warps = np.pad(steps, (0, pad)).reshape(-1, simt_width)
    warp_total = float(warps.max(axis=1).sum() * simt_width)
    vb = _visit_bytes(dim)
    counters.add(
        flops=(interactions * FLOPS_PER_INTERACTION + total * 10.0
               + quad_terms * QUAD_EXTRA_FLOPS),
        special_flops=interactions * SPECIAL_PER_INTERACTION,
        bytes_irregular=total * vb + quad_terms * QUAD_EXTRA_BYTES,
        bytes_read=total * vb + n * dim * 8.0 + quad_terms * QUAD_EXTRA_BYTES,
        bytes_written=n * dim * 8.0,
        traversal_steps=total,
        traversal_steps_max=float(steps.max(initial=0)),
        warp_traversal_steps=warp_total,
        mac_evals=total,  # every visit tests the MAC once
        loop_iterations=float(n),
        kernel_launches=1.0,
    )


# ----------------------------------------------------------------------
# Group-coherent traversal (one walk per leaf-aligned group of the
# already-Hilbert-sorted bodies).
# ----------------------------------------------------------------------

def _bvh_tree_view(bvh: BVH) -> TreeView:
    """Flat traversal-engine view of the BVH."""
    layout = bvh.layout
    nn = layout.n_nodes
    first_leaf = layout.first_leaf
    nodes = np.arange(nn, dtype=INDEX)
    leaf = nodes >= first_leaf
    klass = np.full(nn, KLASS_INTERNAL, dtype=np.int8)
    klass[leaf] = KLASS_POINT
    klass[bvh.count == 0] = KLASS_SKIP  # padding leaves / empty subtrees
    point_body = np.full(nn, -1, dtype=INDEX)
    occupied = leaf & (bvh.count > 0)
    point_body[occupied] = nodes[occupied] - first_leaf  # sorted row id
    dim = bvh.x_sorted.shape[1]
    return TreeView(
        com=bvh.com,
        mass=bvh.mass,
        size2=bvh.node_size2(),
        first_child=2 * nodes + 1,
        branch=2,
        klass=klass,
        point_body=point_body,
        dfs_rank=bvh_dfs_ranks(layout.n_leaves),
        quad=bvh.quad,
        visit_bytes=_visit_bytes(dim),
    )


#: Public alias: the distributed runtime builds LETs and cross-rank
#: interaction lists against this same view.
bvh_tree_view = _bvh_tree_view


def bvh_accelerations_grouped(
    bvh: BVH,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
    group_size: int = 32,
    ctx=None,
    simt_width: int = 32,
    cache: dict | None = None,
    eval_mode: str = "auto",
    mac_margin: float = 0.0,
) -> np.ndarray:
    """BVH accelerations via group-coherent traversal.

    The BVH's leaf order *is* the Hilbert order, so contiguous groups of
    sorted bodies are leaf-aligned by construction.  The stackless walk
    runs once per group with the conservative group MAC; the emitted
    interaction lists are evaluated as dense tiles and, when *cache* (a
    structure-cache entry dict) is given, reused across timesteps for as
    long as the cached sort permutation is.

    At ``group_size=1`` (monopole order) the result is bit-identical to
    :func:`bvh_accelerations`.
    """
    n = bvh.n_bodies
    dim = bvh.x_sorted.shape[1]
    if n == 0:
        return np.zeros((0, dim), dtype=FLOAT)

    key = ("ilists", float(theta), int(group_size))
    cached = cache.get(key) if cache is not None else None
    built = cached is None or cached["groups"].n_bodies != n
    view = _bvh_tree_view(bvh)
    if built:
        groups = make_groups(bvh.x_sorted, group_size)
        lists = build_interaction_lists(view, groups, theta,
                                        mac_margin=mac_margin)
        cached = {"groups": groups, "lists": lists}
        if cache is not None:
            cache[key] = cached
    groups = cached["groups"]
    lists = cached["lists"]

    mode = eval_mode
    if mode == "auto":
        # Flat's index expansion is a per-epoch precompute: pick it
        # only when a structure cache amortizes it, gemm otherwise.
        if groups.max_group_size <= 1:
            mode = "tile"
        else:
            mode = "flat" if cache is not None else "gemm"
    # Per-epoch precomputes live inside the cached entry, so the
    # maintainer's list invalidation drops them in the same stroke.
    flat = self_pairs = None
    if mode == "flat":
        flat = cached.get("flat")
        if flat is None:
            flat = build_flat_lists(view, lists, groups)
            cached["flat"] = flat
    elif mode == "gemm":
        self_pairs = cached.get("selfpairs")
        if self_pairs is None:
            self_pairs = build_self_pairs(view, lists, groups)
            cached["selfpairs"] = self_pairs

    # point_body ids are sorted rows, so the default identity body_ids
    # already matches and the gemm kernel can zero self-interactions.
    acc_s, stats = evaluate_interaction_lists(
        view, lists, groups, bvh.x_sorted,
        G=params.G, eps2=params.eps2, mode=mode,
        flat=flat, m_sorted=bvh.m_sorted, self_pairs=self_pairs,
    )

    if ctx is not None:
        account_grouped_force(
            ctx.counters, lists, groups,
            n_bodies=n, dim=dim, simt_width=simt_width,
            pairs=stats["pairs"], quad_terms=stats["quad_terms"],
            visit_bytes=view.visit_bytes, built=built,
            flops_per_visit=10.0,
            flat_launches=stats["flat_launches"],
            near_pairs_naive=stats["near_pairs_naive"],
            near_pairs_evaluated=stats["near_pairs_evaluated"],
        )

    out = np.empty_like(acc_s)
    out[bvh.perm] = acc_s
    return out


def bvh_accelerations_dual(
    bvh: BVH,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
    group_size: int = 32,
    cc_mac: float = 1.5,
    expansion_order: int = 2,
    ctx=None,
    simt_width: int = 32,
    cache: dict | None = None,
    eval_mode: str = "auto",
    mac_margin: float = 0.0,
) -> np.ndarray:
    """BVH accelerations via the dual-tree cell-cell traversal.

    The leaf-aligned Hilbert groups become a balanced target tree; the
    simultaneous walk of :mod:`repro.traversal.dual` retires
    well-separated cell pairs once through M2L + downsweep and defers
    the near field to the grouped tile kernels.  ``cc_mac=0`` disables
    the cell-cell branch and is bit-identical to the grouped mode.
    """
    # Imported here, not at module top: repro.traversal.dual imports
    # this package's layout module, re-entering bvh/__init__.
    from repro.traversal.dual import (
        account_dual_force,
        build_dual_lists,
        build_target_tree,
        evaluate_dual,
    )

    n = bvh.n_bodies
    dim = bvh.x_sorted.shape[1]
    if n == 0:
        return np.zeros((0, dim), dtype=FLOAT)

    key = ("dlists", float(theta), int(group_size), float(cc_mac),
           int(expansion_order))
    cached = cache.get(key) if cache is not None else None
    built = cached is None or cached["groups"].n_bodies != n
    view = _bvh_tree_view(bvh)
    if built:
        groups = make_groups(bvh.x_sorted, group_size)
        tt = build_target_tree(groups)
        dual = build_dual_lists(view, tt, theta, cc_mac=cc_mac,
                                mac_margin=mac_margin)
        cached = {"groups": groups, "dual": dual, "lists": dual.near}
        if cache is not None:
            cache[key] = cached
    groups = cached["groups"]
    dual = cached["dual"]

    mode = eval_mode
    if mode == "auto":
        # Flat's index expansion is a per-epoch precompute: pick it
        # only when a structure cache amortizes it, gemm otherwise.
        if groups.max_group_size <= 1:
            mode = "tile"
        else:
            mode = "flat" if cache is not None else "gemm"
    flat = self_pairs = None
    if mode == "flat":
        flat = cached.get("flat")
        if flat is None:
            flat = build_flat_lists(view, dual.near, groups)
            cached["flat"] = flat
    elif mode == "gemm":
        self_pairs = cached.get("selfpairs")
        if self_pairs is None:
            self_pairs = build_self_pairs(view, dual.near, groups)
            cached["selfpairs"] = self_pairs

    acc_s, stats = evaluate_dual(
        view, dual, groups, bvh.x_sorted,
        G=params.G, eps2=params.eps2, mode=mode,
        expansion_order=expansion_order, ctx=ctx,
        flat=flat, m_sorted=bvh.m_sorted, self_pairs=self_pairs,
    )

    if ctx is not None:
        account_dual_force(
            ctx.counters, dual, groups,
            n_bodies=n, dim=dim, simt_width=simt_width,
            pairs=stats["pairs"], quad_terms=stats["quad_terms"],
            quad_far=stats["quad_far"], expansion_order=expansion_order,
            visit_bytes=view.visit_bytes, built=built,
            flops_per_visit=10.0,
            flat_launches=stats["flat_launches"],
            near_pairs_naive=stats["near_pairs_naive"],
            near_pairs_evaluated=stats["near_pairs_evaluated"],
        )

    out = np.empty_like(acc_s)
    out[bvh.perm] = acc_s
    return out
