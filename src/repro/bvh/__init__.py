"""The Hilbert-sorted BVH strategy (paper Section IV-B).

Bodies are sorted along a Hilbert space-filling curve (HILBERTSORT,
Alg. 7); a *balanced* binary bounding-volume hierarchy with
power-of-two leaves is then built bottom-up, fusing the bounding-box
and multipole reductions in a single level-by-level pass
(BUILDTREEACCUMULATEMASS).  Because the tree is balanced and implicit,
the number of levels, nodes per level and total nodes are predetermined
and the structure needs no connectivity storage: it is a skip list,
enabling stackless traversal with multi-level jumps.

Every phase is free of atomics and locks — only weakly parallel forward
progress is required, so the whole strategy runs under ``par_unseq`` on
any GPU (the portability trade-off the paper contrasts with the
Concurrent Octree).
"""

from repro.bvh.layout import BVHLayout, bvh_escape_indices
from repro.bvh.build import BVH, build_bvh, hilbert_sort_permutation
from repro.bvh.force import bvh_accelerations, bvh_accelerations_scalar

__all__ = [
    "BVHLayout",
    "bvh_escape_indices",
    "BVH",
    "build_bvh",
    "hilbert_sort_permutation",
    "bvh_accelerations",
    "bvh_accelerations_scalar",
]
