"""Implicit balanced binary-tree layout for the Hilbert BVH.

With ``P`` (power-of-two) leaves the tree has ``2P - 1`` nodes in heap
order: node ``k`` has children ``2k+1`` and ``2k+2``; level ``l`` spans
indices ``[2^l - 1, 2^(l+1) - 1)``.  Everything about the shape is a
pure function of ``P`` — the paper's "the number of BVH levels, nodes
per level, and total number of nodes, are predetermined" — so the skip
(escape) indices are computed once per shape and cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.types import INDEX

#: Escape value meaning "traversal finished".
DONE = -1


def next_pow2(n: int) -> int:
    """Smallest power of two >= max(n, 1)."""
    p = 1
    while p < max(n, 1):
        p <<= 1
    return p


@dataclass(frozen=True)
class BVHLayout:
    """Shape of a balanced BVH with ``n_leaves`` (power-of-two) leaves."""

    n_leaves: int

    def __post_init__(self) -> None:
        p = self.n_leaves
        if p < 1 or (p & (p - 1)) != 0:
            raise ValueError("n_leaves must be a positive power of two")

    @property
    def n_levels(self) -> int:
        return int(self.n_leaves).bit_length()

    @property
    def n_nodes(self) -> int:
        return 2 * self.n_leaves - 1

    @property
    def first_leaf(self) -> int:
        return self.n_leaves - 1

    def level_slice(self, level: int) -> slice:
        lo = (1 << level) - 1
        return slice(lo, 2 * lo + 1)

    def level_of(self, nodes: np.ndarray) -> np.ndarray:
        """Level of each node index (0 = root)."""
        return np.int64(np.log2(np.asarray(nodes) + 1))

    def is_leaf(self, nodes) -> np.ndarray:
        return np.asarray(nodes) >= self.first_leaf

    def first_child(self, nodes) -> np.ndarray:
        return 2 * np.asarray(nodes) + 1

    def parent(self, nodes) -> np.ndarray:
        return (np.asarray(nodes) - 1) // 2


@lru_cache(maxsize=64)
def bvh_dfs_ranks(n_leaves: int) -> np.ndarray:
    """DFS-preorder rank of every node (cached per tree shape).

    Used by the grouped traversal to order interaction-list entries the
    way the stackless per-node walk emits them.
    """
    layout = BVHLayout(n_leaves)
    rank = np.zeros(layout.n_nodes, dtype=INDEX)
    for level in range(layout.n_levels - 1):
        sl = layout.level_slice(level)
        k = np.arange(sl.start, sl.stop, dtype=INDEX)
        # A subtree rooted one level down holds 2^(n_levels-1-level) - 1
        # nodes; the right child's rank skips the whole left subtree.
        left_size = (1 << (layout.n_levels - 1 - level)) - 1
        rank[2 * k + 1] = rank[k] + 1
        rank[2 * k + 2] = rank[k] + 1 + left_size
    rank.setflags(write=False)
    return rank


@lru_cache(maxsize=64)
def bvh_escape_indices(n_leaves: int) -> np.ndarray:
    """Skip-list escape index per node (cached per tree shape).

    ``escape[k]`` is the next node in DFS order when ``k``'s subtree is
    skipped: the right sibling for a left child, else the parent's
    escape — allowing the multi-level jumps the paper describes.
    """
    layout = BVHLayout(n_leaves)
    n = layout.n_nodes
    escape = np.full(n, DONE, dtype=INDEX)
    for level in range(1, layout.n_levels):
        sl = layout.level_slice(level)
        k = np.arange(sl.start, sl.stop, dtype=INDEX)
        left = (k & 1) == 1  # left children are odd in heap order
        escape[sl] = np.where(left, k + 1, escape[(k - 1) // 2])
    escape.setflags(write=False)
    return escape
