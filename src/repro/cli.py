"""Command-line interface: ``repro-nbody``.

Subcommands:

* ``run``      — simulate a workload and print conservation diagnostics;
* ``devices``  — list the Table I device catalog;
* ``triad``    — reproduce Table I's BabelStream TRIAD column;
* ``project``  — measure a pipeline and project throughput on a device;
* ``serve``    — host seeded multi-tenant traffic on the session server
  and report fairness, latency percentiles, and cache sharing;
* ``validate`` — the Section V-A solar-system validation experiment;
* ``bench`` / ``report`` — the Appendix A artifact workflow: run the
  figure experiments into a JSON artifact, then render its tables.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--algorithm", default="octree",
                   choices=["all-pairs", "all-pairs-col", "octree", "bvh",
                            "octree-2stage"])
    p.add_argument("--n", type=int, default=10_000, help="number of bodies")
    p.add_argument("--theta", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workload", default="galaxy",
                   choices=["galaxy", "plummer", "uniform", "solar"])


def _make_system(args):
    from repro.workloads import galaxy_collision, plummer_sphere, solar_system, uniform_cube

    if args.workload == "galaxy":
        return galaxy_collision(args.n, seed=args.seed)
    if args.workload == "plummer":
        return plummer_sphere(args.n, seed=args.seed)
    if args.workload == "uniform":
        return uniform_cube(args.n, seed=args.seed)
    return solar_system(args.n, seed=args.seed)


def _cmd_run(args) -> int:
    from repro import Simulation, SimulationConfig
    from repro.physics import GravityParams, energy_report
    from repro.workloads.solar import SOLAR_GRAVITY

    gravity = SOLAR_GRAVITY if args.workload == "solar" else GravityParams(softening=0.05)
    system = _make_system(args)
    cfg = SimulationConfig(algorithm=args.algorithm, theta=args.theta,
                           dt=args.dt, gravity=gravity,
                           traversal=args.traversal, group_size=args.group_size,
                           eval_mode=args.eval_mode,
                           cc_mac=args.cc_mac,
                           expansion_order=args.expansion_order,
                           ranks=args.ranks, decomposition=args.decomposition,
                           rebalance_steps=args.rebalance_steps,
                           interconnect=args.interconnect,
                           ranks_per_node=args.ranks_per_node,
                           inter_interconnect=args.inter_interconnect,
                           tree_update=args.tree_update,
                           drift_budget=args.drift_budget)
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer()
    metrics = None
    if args.metrics_out:
        from repro.obs import MetricsRegistry, default_watchdogs

        metrics = MetricsRegistry(watchdogs=default_watchdogs())
    e0 = energy_report(system, gravity) if system.n <= 20_000 else None
    sim = Simulation(system, cfg, tracer=tracer, metrics=metrics)
    rep = sim.run(args.steps)
    print(f"algorithm={args.algorithm} n={system.n} steps={args.steps} "
          f"wall={rep.wall_seconds:.3f}s "
          f"({system.n * args.steps / max(rep.wall_seconds, 1e-12):.3g} bodies/s)")
    for step, sec in sorted(rep.seconds.items()):
        print(f"  {step:16s} {sec:.4f}s")
    if sim.distributed is not None and sim.distributed.last_report is not None:
        from repro.machine.costmodel import CostModel

        drep = sim.distributed.last_report
        model = CostModel(sim.ctx.device, toolchain=sim.ctx.toolchain)
        compute, comm = drep.comm_compute_split(model)
        print(f"ranks={cfg.ranks} decomposition={cfg.decomposition} "
              f"imbalance={drep.imbalance(model):.3f} "
              f"migrated={drep.migrated} "
              f"halo={drep.let_bytes.sum() / 1e6:.3f}MB/step")
        for r in range(drep.n_ranks):
            print(f"  rank {r}: bodies={int(drep.counts[r])} "
                  f"compute={compute[r]:.3e}s comm={comm[r]:.3e}s")
    if args.profile:
        from repro.obs.report import render_profile

        print(render_profile(sim, rep, args.steps))
    if e0 is not None:
        e1 = energy_report(system, gravity)
        drift = e1.drift_from(e0)
        if metrics is not None:
            metrics.observe_conservation(args.steps, energy_drift=drift,
                                         sim=sim)
        print(f"energy drift: {drift:.3e}  "
              f"(E0={e0.total:.6g}, E1={e1.total:.6g})")
    if tracer is not None:
        from repro.obs import write_chrome_trace, write_jsonl

        if str(args.trace_out).endswith(".jsonl"):
            write_jsonl(tracer, args.trace_out)
        else:
            write_chrome_trace(tracer, args.trace_out)
        print(f"trace: {args.trace_out} ({len(tracer.spans)} spans, "
              f"{len(tracer.instants)} instants)")
    if metrics is not None:
        import json
        import pathlib

        out = pathlib.Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(metrics.as_dict(), indent=1,
                                  sort_keys=True) + "\n")
        print(f"metrics: {args.metrics_out} ({len(metrics.samples)} samples, "
              f"{len(metrics.alerts)} alerts)")
    return 0


def _cmd_devices(_args) -> int:
    from repro.bench import format_table
    from repro.machine import DEVICES

    rows = [
        {
            "key": d.key, "name": d.name, "kind": d.kind.value,
            "th_GB/s": d.theoretical_bw_gbs, "meas_GB/s": d.measured_bw_gbs,
            "fp64_GF": d.peak_fp64_gflops, "progress": d.progress.name,
            "ITS": d.has_its, "toolchains": ",".join(d.toolchains),
        }
        for d in DEVICES.values()
    ]
    print(format_table(rows, title="Table I device catalog"))
    return 0


def _cmd_triad(args) -> int:
    from repro.machine.babelstream import format_triad_table, triad_table

    print(format_triad_table(triad_table(n=args.elements)))
    return 0


def _cmd_project(args) -> int:
    from repro.bench import format_table, measure_pipeline, project_throughput
    from repro.core.config import SimulationConfig
    from repro.machine import get_device
    from repro.physics import GravityParams

    cfg = SimulationConfig(theta=args.theta, gravity=GravityParams(softening=0.05))
    run = measure_pipeline(
        lambda n: _make_system(argparse.Namespace(**{**vars(args), "n": n})),
        args.algorithm, args.n, config=cfg,
    )
    rows = []
    for key in args.device:
        d = get_device(key)
        rows.append({
            "device": d.name,
            "throughput_bodies_per_s": project_throughput(run, d),
            "sequential": project_throughput(run, d, sequential=True),
        })
    rows.append({"device": "host (wall clock)",
                 "throughput_bodies_per_s": run.host_throughput})
    print(format_table(rows, title=f"{args.algorithm} @ N={args.n}"))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.artifact import run_artifact, save_artifact

    artifact = run_artifact(
        tuple(args.figure), max_direct=args.max_direct, progress=print
    )
    save_artifact(artifact, args.out)
    total = sum(len(f["rows"]) for f in artifact["figures"].values())
    print(f"wrote {total} data points to {args.out}")
    return 0


def _cmd_report(args) -> int:
    from repro.bench.artifact import format_report, load_artifact

    print(format_report(load_artifact(args.artifact)))
    return 0


def _cmd_serve(args) -> int:
    import json
    import pathlib

    from repro.core.config import SimulationConfig
    from repro.serve import RequestClass, SessionServer, generate_traffic

    classes = None
    if args.workload_class:
        classes = [RequestClass(
            "cli", args.workload_class, n=args.n, steps=args.steps,
            config=SimulationConfig(algorithm=args.algorithm,
                                    traversal="grouped", group_size=16),
        )]
    specs = generate_traffic(
        seed=args.seed, tenants=args.tenants,
        sessions_per_tenant=args.sessions, classes=classes,
        mean_interarrival=args.mean_interarrival, identical=args.identical,
    )
    tracer = None
    if args.trace_out or args.profile:
        from repro.obs import Tracer

        tracer = Tracer()
    server = SessionServer(
        quantum_steps=args.quantum_steps, max_resident=args.max_resident,
        shared_cache=not args.no_shared_cache, tracer=tracer,
    )
    res = server.run(specs)
    print(res.summary())
    if args.profile:
        from repro.core.simulation import STEP_ORDER
        from repro.obs.report import format_tenant_profile, tenant_profile_rows

        steps_by = {t: d["steps"] for t, d in res.tenants.items()}
        rows = tenant_profile_rows(
            tracer, server.lane_tenants, server.model,
            steps_by_tenant=steps_by, order=STEP_ORDER,
        )
        print(format_tenant_profile(
            rows,
            f"serve profile: modeled on {server.device.name}, "
            f"per tenant per step (spans)",
        ))
    if args.trace_out:
        from repro.obs import write_chrome_trace, write_jsonl

        if str(args.trace_out).endswith(".jsonl"):
            write_jsonl(tracer, args.trace_out)
        else:
            write_chrome_trace(tracer, args.trace_out)
        print(f"trace: {args.trace_out} ({len(tracer.spans)} spans, "
              f"{len(server.lane_tenants)} session lanes)")
    if args.metrics_out:
        payload = {
            "tenants": {
                t: server.tenant_metrics(t).as_dict()
                for t in sorted(res.tenants)
            },
        }
        out = pathlib.Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"metrics: {args.metrics_out} ({len(payload['tenants'])} tenants)")
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(res.as_dict(), indent=1, sort_keys=True)
                       + "\n")
        print(f"result: {args.out}")
    return 0


def _cmd_validate(args) -> int:
    from repro.experiments.validation import run_validation

    res = run_validation(n=args.n, steps=args.steps)
    print(res.summary())
    return 0 if res.passed else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-nbody", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("run", help="run a simulation")
    _add_common(p)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--dt", type=float, default=1e-3)
    p.add_argument("--traversal", default="lockstep",
                   choices=["lockstep", "grouped", "dual"],
                   help="force traversal: per-body lockstep, group-coherent, "
                        "or dual-tree cell-cell with local expansions")
    p.add_argument("--group-size", type=int, default=32, dest="group_size",
                   help="bodies per traversal group (grouped/dual modes)")
    p.add_argument("--eval-mode", default="auto", dest="eval_mode",
                   choices=["auto", "tile", "gemm", "flat"],
                   help="grouped/dual list-evaluation kernel: per-group "
                        "tiles (tile/gemm) or flattened SoA batch kernels "
                        "with n3l near-field dedup (flat); auto = flat "
                        "for multi-body groups")
    p.add_argument("--cc-mac", type=float, default=1.5, dest="cc_mac",
                   help="dual mode: target-side opening multiplier of the "
                        "cell-cell MAC (0 disables the far-field branch)")
    p.add_argument("--expansion-order", type=int, default=2,
                   dest="expansion_order", choices=[0, 1, 2],
                   help="dual mode: local Taylor expansion order of the "
                        "downsweep")
    p.add_argument("--ranks", type=int, default=1,
                   help="simulated ranks (>1 enables repro.distributed)")
    p.add_argument("--decomposition", default="static",
                   choices=["static", "weighted"],
                   help="split points: equal counts or counter-fed work")
    p.add_argument("--rebalance-steps", type=int, default=8,
                   dest="rebalance_steps",
                   help="recompute split points every k-th step")
    p.add_argument("--interconnect", default="nvlink4",
                   help="link class between ranks (see machine.catalog)")
    p.add_argument("--ranks-per-node", type=int, default=0,
                   dest="ranks_per_node",
                   help="ranks sharing the intra-node link (0 = all)")
    p.add_argument("--inter-interconnect", default="ib-ndr",
                   dest="inter_interconnect",
                   help="inter-node link class of the hierarchical fabric")
    p.add_argument("--tree-update", default="rebuild", dest="tree_update",
                   choices=["rebuild", "refit", "auto"],
                   help="tree maintenance: rebuild every step, refit while "
                        "the curve order holds, or cost-model auto policy")
    p.add_argument("--drift-budget", type=float, default=0.01,
                   dest="drift_budget",
                   help="max body drift per epoch, as a fraction of the "
                        "root cell side (bounds the refit MAC inflation)")
    p.add_argument("--profile", action="store_true",
                   help="print a per-phase table of modeled time and "
                        "counter totals per step")
    p.add_argument("--trace-out", default=None, dest="trace_out",
                   metavar="PATH",
                   help="record a structured trace and write it here: "
                        "Chrome trace-event JSON (Perfetto-loadable), or "
                        "a JSONL event stream when PATH ends in .jsonl")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   metavar="PATH",
                   help="sample per-step metrics (with watchdogs) and "
                        "write the registry JSON here")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("devices", help="list the device catalog")
    p.set_defaults(fn=_cmd_devices)

    p = sub.add_parser("triad", help="BabelStream TRIAD (Table I)")
    p.add_argument("--elements", type=int, default=2**24)
    p.set_defaults(fn=_cmd_triad)

    p = sub.add_parser("project", help="project throughput on devices")
    _add_common(p)
    p.add_argument("--device", nargs="+", default=["gh200"])
    p.set_defaults(fn=_cmd_project)

    p = sub.add_parser("validate", help="solar-system validation (Sec V-A)")
    p.add_argument("--n", type=int, default=4000)
    p.add_argument("--steps", type=int, default=24)
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser(
        "serve", help="multi-tenant session server over seeded traffic")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tenants", type=int, default=4)
    p.add_argument("--sessions", type=int, default=4,
                   help="sessions per tenant")
    p.add_argument("--mean-interarrival", type=float, default=0.0,
                   dest="mean_interarrival",
                   help="mean modeled seconds between arrivals "
                        "(0 = all at t=0)")
    p.add_argument("--identical", action="store_true",
                   help="every session runs the same class and workload "
                        "seed (shared-cache scenario)")
    p.add_argument("--workload-class", default=None, dest="workload_class",
                   choices=["galaxy", "plummer", "cube", "solar"],
                   help="single-class traffic "
                        "(default: the interactive/batch/sweep mix)")
    p.add_argument("--algorithm", default="octree",
                   choices=["octree", "bvh", "octree-2stage"],
                   help="algorithm of --workload-class traffic")
    p.add_argument("--n", type=int, default=256,
                   help="bodies per session of --workload-class traffic")
    p.add_argument("--steps", type=int, default=8,
                   help="steps per session of --workload-class traffic")
    p.add_argument("--quantum-steps", type=int, default=2,
                   dest="quantum_steps",
                   help="scheduler time-slice, in simulation steps")
    p.add_argument("--max-resident", type=int, default=None,
                   dest="max_resident",
                   help="residency bound (excess sessions suspend to "
                        "checkpoints)")
    p.add_argument("--no-shared-cache", action="store_true",
                   dest="no_shared_cache",
                   help="disable cross-session structure sharing")
    p.add_argument("--profile", action="store_true",
                   help="print the per-tenant phase profile table")
    p.add_argument("--trace-out", default=None, dest="trace_out",
                   help="write a Perfetto trace with per-session tenant "
                        "lanes (.json or .jsonl)")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   help="write the per-tenant metrics payload (JSON)")
    p.add_argument("--out", default=None,
                   help="write the full serve result payload (JSON)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("bench", help="run figure experiments -> JSON artifact")
    p.add_argument("--figure", nargs="+",
                   default=["fig5", "fig6", "fig7", "fig8", "fig9"],
                   choices=["fig5", "fig6", "fig7", "fig8", "fig9"])
    p.add_argument("--out", default="artifact.json")
    p.add_argument("--max-direct", type=int, default=8000)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("report", help="render a saved artifact's tables")
    p.add_argument("artifact")
    p.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
