"""Snapshot and trajectory persistence.

The C++ artifact generates its datasets on the fly; a reusable library
also needs to save and restore body states (e.g. to checkpoint a long
collision run or to exchange initial conditions).  Snapshots are
``.npz`` archives holding the SoA arrays plus a small metadata header;
everything is exact (no precision loss) and versioned.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

import numpy as np

from repro.physics.bodies import BodySystem

#: Snapshot format version (bumped on incompatible layout changes).
FORMAT_VERSION = 1


def save_snapshot(
    path: str | pathlib.Path,
    system: BodySystem,
    *,
    time: float = 0.0,
    metadata: dict[str, Any] | None = None,
) -> None:
    """Write *system* to ``path`` (.npz, exact FP64)."""
    header = {
        "format_version": FORMAT_VERSION,
        "n": system.n,
        "dim": system.dim,
        "time": float(time),
        "metadata": metadata or {},
    }
    np.savez_compressed(
        path,
        x=system.x,
        v=system.v,
        m=system.m,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    )


def load_snapshot(path: str | pathlib.Path) -> tuple[BodySystem, dict[str, Any]]:
    """Read a snapshot; returns ``(system, header)``."""
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {header.get('format_version')!r}"
            )
        system = BodySystem(data["x"].copy(), data["v"].copy(), data["m"].copy())
    if system.n != header["n"] or system.dim != header["dim"]:
        raise ValueError("snapshot header inconsistent with arrays")
    return system, header
