"""Snapshot and trajectory persistence.

The C++ artifact generates its datasets on the fly; a reusable library
also needs to save and restore body states (e.g. to checkpoint a long
collision run or to exchange initial conditions).  Snapshots are
``.npz`` archives holding the SoA arrays plus a small metadata header;
everything is exact (no precision loss) and versioned.

A snapshot may carry the full :class:`~repro.core.config.
SimulationConfig` in its header, which is what makes it a *checkpoint*:
:func:`save_checkpoint` / :func:`load_checkpoint` round-trip a running
:class:`~repro.core.Simulation` so a resumed run retraces the original
bit for bit (the Verlet state is a pure function of ``(x, v)`` and the
config, so nothing else needs to be stored).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

import numpy as np

from repro.physics.bodies import BodySystem

#: Snapshot format version (bumped on incompatible layout changes).
FORMAT_VERSION = 1


def config_to_metadata(config) -> dict[str, Any]:
    """Flatten a :class:`SimulationConfig` to JSON-serializable dicts."""
    return dataclasses.asdict(config)


def config_from_metadata(meta: dict[str, Any]):
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_metadata`.

    Unknown keys are rejected (a newer writer's field this reader does
    not understand must not be silently dropped — the resumed run would
    diverge from the original).
    """
    from repro.core.config import SimulationConfig
    from repro.physics.gravity import GravityParams

    meta = dict(meta)
    gravity = meta.pop("gravity", None)
    known = {f.name for f in dataclasses.fields(SimulationConfig)}
    unknown = set(meta) - known
    if unknown:
        raise ValueError(f"unknown config fields in snapshot: {sorted(unknown)}")
    if gravity is not None:
        meta["gravity"] = GravityParams(**gravity)
    return SimulationConfig(**meta)


def save_snapshot(
    path: str | pathlib.Path,
    system: BodySystem,
    *,
    time: float = 0.0,
    metadata: dict[str, Any] | None = None,
    config=None,
) -> None:
    """Write *system* to ``path`` (.npz, exact FP64).

    When *config* (a :class:`SimulationConfig`) is given, it is stored
    in the header under ``"config"`` and restored by
    :func:`load_checkpoint`.
    """
    header = {
        "format_version": FORMAT_VERSION,
        "n": system.n,
        "dim": system.dim,
        "time": float(time),
        "metadata": metadata or {},
    }
    if config is not None:
        header["config"] = config_to_metadata(config)
    np.savez_compressed(
        path,
        x=system.x,
        v=system.v,
        m=system.m,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    )


def load_snapshot(path: str | pathlib.Path) -> tuple[BodySystem, dict[str, Any]]:
    """Read a snapshot; returns ``(system, header)``."""
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {header.get('format_version')!r}"
            )
        system = BodySystem(data["x"].copy(), data["v"].copy(), data["m"].copy())
    if system.n != header["n"] or system.dim != header["dim"]:
        raise ValueError("snapshot header inconsistent with arrays")
    return system, header


def save_checkpoint(path: str | pathlib.Path, sim) -> None:
    """Checkpoint a :class:`~repro.core.Simulation` (state + config)."""
    save_snapshot(path, sim.system, time=sim.time, config=sim.config)


def load_checkpoint(path: str | pathlib.Path, *, ctx=None):
    """Restore a :class:`~repro.core.Simulation` from a checkpoint.

    The snapshot must have been written with a config (``save_snapshot
    (..., config=...)`` or :func:`save_checkpoint`).  The returned
    simulation resumes at the stored time; because the integrator's
    acceleration is a pure function of the restored ``(x, v)`` and the
    restored config, stepping it reproduces the original run bit for
    bit at ``ranks=1``.  Distributed runs (``ranks > 1``) resume
    deterministically but re-derive their domain splits at the restored
    positions (the rebalance cadence restarts), which changes summation
    order within the theta accuracy class.
    """
    from repro.core.simulation import Simulation

    system, header = load_snapshot(path)
    if "config" not in header:
        raise ValueError(
            f"snapshot {path} has no config; it is a state snapshot, "
            "not a checkpoint"
        )
    config = config_from_metadata(header["config"])
    sim = Simulation(system, config, ctx=ctx)
    sim._integrator.steps_taken = int(round(header["time"] / config.dt))
    return sim
