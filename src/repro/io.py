"""Snapshot and trajectory persistence.

The C++ artifact generates its datasets on the fly; a reusable library
also needs to save and restore body states (e.g. to checkpoint a long
collision run or to exchange initial conditions).  Snapshots are
``.npz`` archives holding the SoA arrays plus a small metadata header;
everything is exact (no precision loss) and versioned.

A snapshot may carry the full :class:`~repro.core.config.
SimulationConfig` in its header, which is what makes it a *checkpoint*:
:func:`save_checkpoint` / :func:`load_checkpoint` round-trip a running
:class:`~repro.core.Simulation` so a resumed run retraces the original
bit for bit.  For configurations whose force evaluation carries state
across steps (``tree_reuse_steps > 1``, ``tree_update="refit"``,
``ranks > 1``), the checkpoint additionally embeds the **runtime
state** — epoch positions, cached-list build snapshots and MAC margins,
drift-budget counters, the domain decomposition and rebalance cadence —
which :mod:`repro.core.suspend` replays at load so a *mid-epoch* resume
is bit-exact too.  The extra payload rides in reserved ``rt*`` array
slots plus a ``"runtime"`` header key; readers of plain snapshots never
see it, so the format version is unchanged.

Paths may be real files or in-memory file objects (``io.BytesIO``) —
the service layer (:mod:`repro.serve`) suspends sessions to RAM through
the same code path.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

import numpy as np

from repro.physics.bodies import BodySystem

#: Snapshot format version (bumped on incompatible layout changes).
FORMAT_VERSION = 1


def config_to_metadata(config) -> dict[str, Any]:
    """Flatten a :class:`SimulationConfig` to JSON-serializable dicts."""
    return dataclasses.asdict(config)


def config_from_metadata(meta: dict[str, Any]):
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_metadata`.

    Unknown keys are rejected (a newer writer's field this reader does
    not understand must not be silently dropped — the resumed run would
    diverge from the original).
    """
    from repro.core.config import SimulationConfig
    from repro.physics.gravity import GravityParams

    meta = dict(meta)
    gravity = meta.pop("gravity", None)
    known = {f.name for f in dataclasses.fields(SimulationConfig)}
    unknown = set(meta) - known
    if unknown:
        raise ValueError(f"unknown config fields in snapshot: {sorted(unknown)}")
    if gravity is not None:
        meta["gravity"] = GravityParams(**gravity)
    return SimulationConfig(**meta)


# ----------------------------------------------------------------------
# Runtime-state packing (mid-epoch checkpoints)
# ----------------------------------------------------------------------
def _pack_runtime_state(state: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a runtime-state dict into (JSON metadata, array slots).

    Arrays are hoisted into ``rt<N>`` npz entries and replaced by
    ``{"__array__": slot}`` placeholders; everything else must already
    be JSON-serializable.  Slot numbering follows a deterministic
    depth-first walk, so identical states pack identically.
    """
    arrays: dict[str, np.ndarray] = {}

    def walk(obj):
        if isinstance(obj, np.ndarray):
            slot = f"rt{len(arrays)}"
            arrays[slot] = obj
            return {"__array__": slot}
        if isinstance(obj, dict):
            return {k: walk(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [walk(v) for v in obj]
        return obj

    return walk(state), arrays


def _unpack_runtime_state(meta, data) -> Any:
    """Inverse of :func:`_pack_runtime_state` (arrays copied out)."""

    def walk(obj):
        if isinstance(obj, dict):
            if set(obj) == {"__array__"}:
                return data[obj["__array__"]].copy()
            return {k: walk(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [walk(v) for v in obj]
        return obj

    return walk(meta)


def save_snapshot(
    path,
    system: BodySystem,
    *,
    time: float = 0.0,
    metadata: dict[str, Any] | None = None,
    config=None,
    runtime_state: dict | None = None,
) -> None:
    """Write *system* to ``path`` (.npz, exact FP64).

    When *config* (a :class:`SimulationConfig`) is given, it is stored
    in the header under ``"config"`` and restored by
    :func:`load_checkpoint`.  *runtime_state* (from
    :meth:`Simulation.runtime_state`) embeds the mid-epoch cache /
    decomposition payload.  *path* may be a file object (``BytesIO``).
    """
    header = {
        "format_version": FORMAT_VERSION,
        "n": system.n,
        "dim": system.dim,
        "time": float(time),
        "metadata": metadata or {},
    }
    if config is not None:
        header["config"] = config_to_metadata(config)
    arrays: dict[str, np.ndarray] = {}
    if runtime_state is not None:
        header["runtime"], arrays = _pack_runtime_state(runtime_state)
    np.savez_compressed(
        path,
        x=system.x,
        v=system.v,
        m=system.m,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        **arrays,
    )


def load_snapshot(path) -> tuple[BodySystem, dict[str, Any]]:
    """Read a snapshot; returns ``(system, header)``.

    A checkpoint's embedded runtime-state payload comes back decoded
    under ``header["runtime"]`` (arrays rehydrated).
    """
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {header.get('format_version')!r}"
            )
        system = BodySystem(data["x"].copy(), data["v"].copy(), data["m"].copy())
        if "runtime" in header:
            header["runtime"] = _unpack_runtime_state(header["runtime"], data)
    if system.n != header["n"] or system.dim != header["dim"]:
        raise ValueError("snapshot header inconsistent with arrays")
    return system, header


def save_checkpoint(path, sim) -> None:
    """Checkpoint a :class:`~repro.core.Simulation` (state + config).

    Captures the simulation's replayable runtime state (cached epoch
    structures, interaction-list snapshots, drift budgets, domain
    decomposition) alongside ``(x, v, config)`` so the resume is
    bit-exact even between tree-build epochs.
    """
    save_snapshot(
        path, sim.system, time=sim.time, config=sim.config,
        runtime_state=sim.runtime_state(),
    )


def load_checkpoint(path, *, ctx=None, tree_cache: dict | None = None):
    """Restore a :class:`~repro.core.Simulation` from a checkpoint.

    The snapshot must have been written with a config (``save_snapshot
    (..., config=...)`` or :func:`save_checkpoint`).  The returned
    simulation resumes at the stored time and retraces the original run
    bit for bit: stateless configs because the acceleration is a pure
    function of the restored ``(x, v)`` and config, stateful ones
    (``tree_reuse_steps > 1``, ``tree_update="refit"``, rebuild-mode
    ``ranks > 1``) because the embedded runtime state replays the
    suspended epoch (:mod:`repro.core.suspend`).  ``tree_update="auto"``
    and maintained distributed mode resume deterministically but may
    re-derive epochs (their learned-cost / epoch state is not captured),
    which can change summation order within the theta accuracy class.

    *tree_cache* injects a pre-seeded cache dict (e.g. carrying the
    service layer's ``"_shared"`` structure cache) into the resumed
    simulation.
    """
    from repro.core.simulation import Simulation

    system, header = load_snapshot(path)
    if "config" not in header:
        raise ValueError(
            f"snapshot {path} has no config; it is a state snapshot, "
            "not a checkpoint"
        )
    config = config_from_metadata(header["config"])
    sim = Simulation(
        system, config, ctx=ctx, tree_cache=tree_cache,
        runtime_state=header.get("runtime"),
    )
    sim._integrator.steps_taken = int(round(header["time"] / config.dt))
    return sim
