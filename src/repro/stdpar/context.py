"""Execution context: device + backend + per-step accounting.

The context plays the role of the compiled binary's runtime environment:
which device parallel algorithms target (``-stdpar=<cpu|gpu>``), which
stdpar implementation ("toolchain") is in use, and where operation
counts and wall-clock step timings accumulate.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.errors import ConfigurationError
from repro.machine.counters import Counters, StepCounters
from repro.obs.tracer import NULL_TRACER
from repro.stdpar.progress import ForwardProgress
from repro.stdpar.scheduler import SchedulerMode, VirtualThreadScheduler

#: Backend choices: "vectorized" prefers the numpy lockstep kernel path
#: (fast); "reference" prefers the scalar virtual-thread path (faithful,
#: used for semantics validation and small problems).
BACKENDS = ("vectorized", "reference")

#: What to do when a policy's forward-progress requirement exceeds the
#: device guarantee: "raise" immediately (library default — fail fast),
#: or "simulate" the hang by running on the lockstep scheduler, which
#: raises LivelockDetected when it starves (used to demonstrate the
#: paper's Section V-B hang).
PROGRESS_VIOLATION_MODES = ("raise", "simulate")


class ExecutionContext:
    """Runtime environment for stdpar algorithm invocations."""

    def __init__(
        self,
        device: Any = None,
        *,
        backend: str = "vectorized",
        toolchain: str | None = None,
        on_progress_violation: str = "raise",
        scheduler_shuffle_seed: int | None = None,
        warp_width: int | None = None,
        tracer: Any = None,
    ):
        if backend not in BACKENDS:
            raise ConfigurationError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if on_progress_violation not in PROGRESS_VIOLATION_MODES:
            raise ConfigurationError(
                f"on_progress_violation must be one of {PROGRESS_VIOLATION_MODES}"
            )
        if device is None:
            from repro.machine.catalog import HOST

            device = HOST
        self.device = device
        self.backend = backend
        self.toolchain = toolchain if toolchain is not None else device.default_toolchain
        if self.toolchain not in device.toolchains:
            raise ConfigurationError(
                f"toolchain {self.toolchain!r} not available on device "
                f"{device.name!r} (has {device.toolchains})"
            )
        self.on_progress_violation = on_progress_violation
        self.scheduler_shuffle_seed = scheduler_shuffle_seed
        self.warp_width = warp_width if warp_width is not None else device.simt_width
        self.step_counters = StepCounters()
        self.step_seconds: dict[str, float] = {}
        self._current_step = "main"
        #: Span tracer (:mod:`repro.obs`); the shared no-op by default,
        #: so the tracing cost when disabled is one attribute test.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Timeline lane phase spans from this context land on.  The
        #: driver lane by default; the session server gives every
        #: hosted session its own lane so one shared tracer carries
        #: per-tenant timelines side by side.
        self.trace_lane = 0

    # ------------------------------------------------------------------
    @property
    def counters(self) -> Counters:
        """Counters of the step currently being executed."""
        return self.step_counters.step(self._current_step)

    @contextmanager
    def step(self, name: str) -> Iterator[Counters]:
        """Attribute contained work (counts + wall time) to step *name*.

        When a tracer is attached the window also becomes a phase span:
        the tracer snapshots this step's bucket on entry and records the
        exact counter delta (plus host wall time and modeled duration)
        on exit.  Nested steps of other names switch buckets, so the
        attribution stays exclusive.
        """
        prev = self._current_step
        self._current_step = name
        tracer = self.tracer
        frame = (tracer.begin_phase(name, self, lane=self.trace_lane)
                 if tracer.enabled else None)
        t0 = time.perf_counter()
        try:
            yield self.counters
        finally:
            dt = time.perf_counter() - t0
            self.step_seconds[name] = self.step_seconds.get(name, 0.0) + dt
            if frame is not None:
                tracer.end_phase(frame, self, host_seconds=dt)
            self._current_step = prev

    def reset_accounting(self) -> None:
        self.step_counters = StepCounters()
        self.step_seconds = {}
        self._current_step = "main"
        if self.tracer.enabled:
            self.tracer.reset()

    # ------------------------------------------------------------------
    def scheduler_mode(self) -> SchedulerMode:
        """Scheduling semantics the device provides to virtual threads."""
        if self.device.progress.satisfies(ForwardProgress.PARALLEL):
            return SchedulerMode.FAIR
        return SchedulerMode.LOCKSTEP

    def make_scheduler(self, mode: Optional[SchedulerMode] = None) -> VirtualThreadScheduler:
        return VirtualThreadScheduler(
            mode if mode is not None else self.scheduler_mode(),
            warp_width=self.warp_width,
            shuffle_seed=self.scheduler_shuffle_seed,
            counters=self.counters,
        )


def default_context(**kw: Any) -> ExecutionContext:
    """Context targeting the measuring host with the vectorized backend."""
    return ExecutionContext(**kw)
