"""Execution policies: ``seq``, ``par``, ``par_unseq``.

Mirrors ``std::execution``'s policy tag types.  A policy carries two
facts the algorithms layer needs:

* whether element access functions may be *parallelized* across threads
  (``parallel``), and
* whether they may be *vectorized* — interleaved on one thread / run in
  SIMT lockstep (``vectorized``), which makes blocking synchronization
  (atomics, locks) illegal in the kernel.

The forward-progress requirement each policy imposes on the device is
exposed as :attr:`ExecutionPolicy.required_progress` (paper Section II).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stdpar.progress import ForwardProgress


@dataclass(frozen=True)
class ExecutionPolicy:
    """An ``std::execution`` policy tag."""

    name: str
    #: May the implementation run element accesses on multiple threads?
    parallel: bool
    #: May the implementation interleave/vectorize element accesses on a
    #: single thread (or run them in SIMT lockstep)?  If so, kernels must
    #: be vectorization-safe: no atomics, no locks.
    vectorized: bool

    @property
    def required_progress(self) -> ForwardProgress:
        """Weakest device guarantee under which this policy's allowed
        programs (including starvation-free ones for ``par``) terminate."""
        if self.parallel and not self.vectorized:
            return ForwardProgress.PARALLEL
        if self.parallel and self.vectorized:
            return ForwardProgress.WEAKLY_PARALLEL
        return ForwardProgress.WEAKLY_PARALLEL  # seq: trivially fine

    @property
    def allows_atomics(self) -> bool:
        """Atomics are vectorization-unsafe ([algorithms.parallel.defns]).

        ``seq`` and ``par`` allow them; ``par_unseq`` does not.
        """
        return not self.vectorized

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionPolicy({self.name})"


#: Sequential execution on the calling thread.
seq = ExecutionPolicy("seq", parallel=False, vectorized=False)

#: Parallel execution; parallel forward progress; atomics allowed.
par = ExecutionPolicy("par", parallel=True, vectorized=False)

#: Parallel + vectorized execution; weakly parallel forward progress;
#: atomics and locks forbidden.
par_unseq = ExecutionPolicy("par_unseq", parallel=True, vectorized=True)

ALL_POLICIES = (seq, par, par_unseq)


def get_policy(name: str) -> ExecutionPolicy:
    """Look up a policy by name (``'seq' | 'par' | 'par_unseq'``)."""
    for p in ALL_POLICIES:
        if p.name == name:
            return p
    raise ValueError(f"unknown execution policy {name!r}")
