"""Forward-progress guarantees (C++ [intro.progress], paper Section II).

The C++ execution policies demand different guarantees from the
executing hardware/runtime:

* ``par`` requires **parallel forward progress**: once a thread has
  started, it is eventually scheduled again.  This is what makes
  starvation-free algorithms (locks, critical sections) terminate.  On
  GPUs this corresponds to NVIDIA's Independent Thread Scheduling
  (Volta and later).
* ``par_unseq`` requires only **weakly parallel forward progress**:
  threads must make progress *independently of each other*, so they may
  be executed interleaved on a SIMD lane — but they must never block on
  one another (no locks, no atomics).

The ordering below is by strength; a device satisfying a stronger
guarantee satisfies all weaker ones.
"""

from __future__ import annotations

import enum


class ForwardProgress(enum.IntEnum):
    """Forward-progress guarantee levels, weakest first."""

    #: Threads may be run in lock step / interleaved; a blocked thread
    #: can starve forever.  What a pre-Volta GPU (or any AMD/Intel GPU,
    #: per paper refs [24], [25]) provides to individual work-items.
    WEAKLY_PARALLEL = 1

    #: A thread that has started is eventually rescheduled (ITS, OS
    #: threads on CPUs).  Sufficient for starvation-free algorithms.
    PARALLEL = 2

    #: A thread makes progress regardless of other threads (OS threads
    #: with a fair preemptive scheduler).  Strongest; implies PARALLEL.
    CONCURRENT = 3

    def satisfies(self, required: "ForwardProgress") -> bool:
        """True if this guarantee is at least as strong as *required*."""
        return self >= required
