"""Kernel protocol: what a parallel algorithm invokes per element.

A kernel is the Python analogue of the lambda passed to
``std::for_each(policy, ...)``.  Because CPython cannot JIT-vectorize a
per-element callable, kernels may provide *two* implementations:

* ``scalar(i)`` — a generator that yields :class:`~repro.stdpar.scheduler.Op`
  objects at each atomic operation.  This path is faithful to the
  paper's pseudocode (locks, CAS loops) and runs on the virtual-thread
  scheduler, where forward-progress semantics apply.
* ``batch(items)`` — a numpy implementation that advances *all* logical
  threads in lockstep.  This is the fast path and is also exactly how a
  SIMT GPU executes a ``par_unseq`` loop, so the translation is not a
  cheat but a faithful model of vectorized execution.

``uses_atomics`` declares vectorization-unsafety: such a kernel is
rejected under ``par_unseq`` (paper Section II).  A kernel that uses
atomics may still provide a ``batch`` path when a semantically
equivalent vectorized formulation exists (e.g. All-Pairs-Col's atomic
accumulation commutes, so ``np.add.at`` is an equivalent reduction);
``batch_equivalent_to_atomics`` documents that claim and the test suite
verifies it against the scheduler path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.stdpar.scheduler import Op


@dataclass
class Kernel:
    """A named parallel kernel with scalar and/or batch implementations."""

    name: str
    #: Does the scalar path use atomics/locks (vectorization-unsafe)?
    uses_atomics: bool = False
    #: Generator factory: ``scalar(i)`` returns a virtual thread for
    #: element ``i``.
    scalar: Optional[Callable[[Any], Generator[Op, Any, Any]]] = None
    #: Vectorized implementation over an array of elements.
    batch: Optional[Callable[[Any], None]] = None
    #: True if the batch path is semantically equivalent to running the
    #: scalar path under any legal interleaving (required for kernels
    #: with ``uses_atomics=True`` to be batch-executable under ``par``).
    batch_equivalent_to_atomics: bool = False
    #: Extra metadata (used by cost accounting / reporting).
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scalar is None and self.batch is None:
            raise ValueError(f"kernel {self.name!r} must define scalar or batch")

    @property
    def has_scalar(self) -> bool:
        return self.scalar is not None

    @property
    def has_batch(self) -> bool:
        return self.batch is not None


def kernel_from_functions(
    name: str,
    *,
    scalar: Optional[Callable[[Any], Generator[Op, Any, Any]]] = None,
    batch: Optional[Callable[[Any], None]] = None,
    uses_atomics: bool = False,
    batch_equivalent_to_atomics: bool = False,
    **meta: Any,
) -> Kernel:
    """Convenience constructor for :class:`Kernel`."""
    return Kernel(
        name=name,
        uses_atomics=uses_atomics,
        scalar=scalar,
        batch=batch,
        batch_equivalent_to_atomics=batch_equivalent_to_atomics,
        meta=dict(meta),
    )
