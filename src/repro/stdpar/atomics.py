"""Atomic operations with C++ memory orders.

The Concurrent Octree uses (paper Sections II and IV-A):

* ``fetch_add(..., memory_order_relaxed)`` for the bump allocator and
  the multipole accumulation;
* ``compare_exchange`` with acquire semantics to take per-node locks;
* ``store`` with release semantics to publish subdivided children and
  release locks;
* acquire ``load`` to read node state during traversal.

In this single-process model every numpy element access is physically
indivisible, so the *functional* semantics of atomicity come for free;
what this module adds is (a) the policy check — atomics are
vectorization-unsafe, so using them under ``par_unseq`` raises — and
(b) precise operation counting with the memory order recorded, which the
cost model weighs (acquire/release synchronization is what makes the
octree's atomics expensive on hardware with partitioned L2, the paper's
explanation for Ampere's BVH/Octree inversion).
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro.errors import VectorizationUnsafeError
from repro.machine.counters import Counters


class MemoryOrder(enum.Enum):
    """C++ ``std::memory_order`` values used by the paper's algorithms."""

    RELAXED = "relaxed"
    ACQUIRE = "acquire"
    RELEASE = "release"
    ACQ_REL = "acq_rel"
    SEQ_CST = "seq_cst"

    @property
    def synchronizes(self) -> bool:
        """True if the order establishes synchronizes-with edges."""
        return self is not MemoryOrder.RELAXED


relaxed = MemoryOrder.RELAXED
acquire = MemoryOrder.ACQUIRE
release = MemoryOrder.RELEASE
acq_rel = MemoryOrder.ACQ_REL
seq_cst = MemoryOrder.SEQ_CST


# ----------------------------------------------------------------------
# Ambient vectorization-safety flag.  The algorithms layer pushes True
# while running a kernel under par_unseq; AtomicArray checks it.
# ----------------------------------------------------------------------
_VECTORIZED_REGION_DEPTH = 0


class vectorized_region:
    """Context manager marking code as executing under ``par_unseq``."""

    def __enter__(self) -> None:
        global _VECTORIZED_REGION_DEPTH
        _VECTORIZED_REGION_DEPTH += 1

    def __exit__(self, *exc: Any) -> None:
        global _VECTORIZED_REGION_DEPTH
        _VECTORIZED_REGION_DEPTH -= 1


def in_vectorized_region() -> bool:
    return _VECTORIZED_REGION_DEPTH > 0


def _check_vectorization_safety(what: str) -> None:
    if in_vectorized_region():
        raise VectorizationUnsafeError(
            f"atomic operation {what!r} attempted under par_unseq; atomic "
            "operations are vectorization-unsafe ([algorithms.parallel.defns])"
        )


class AtomicArray:
    """A numpy array whose elements are accessed atomically.

    Equivalent to taking ``std::atomic_ref`` to each element of a plain
    array (what the C++ artifact does): the storage is ordinary memory,
    shared with non-atomic vectorized phases, and atomicity applies per
    operation.
    """

    __slots__ = ("data", "counters")

    def __init__(self, data: np.ndarray, counters: Counters | None = None):
        if not isinstance(data, np.ndarray):
            raise TypeError("AtomicArray wraps a numpy array")
        self.data = data
        self.counters = counters if counters is not None else Counters()

    # -- counting helper ------------------------------------------------
    def _count(self, order: MemoryOrder, contended: bool = False,
               rmw: bool = True) -> None:
        self.counters.add(
            atomic_ops=1,
            sync_atomic_ops=1.0 if (rmw and order.synchronizes) else 0.0,
            contended_atomic_ops=1.0 if contended else 0.0,
            bytes_read=float(self.data.itemsize),
            bytes_written=float(self.data.itemsize) if rmw else 0.0,
        )

    # -- operations ------------------------------------------------------
    def load(self, index: Any, order: MemoryOrder = seq_cst):
        _check_vectorization_safety("load")
        self._count(order, rmw=False)
        return self.data[index]

    def store(self, index: Any, value: Any, order: MemoryOrder = seq_cst) -> None:
        _check_vectorization_safety("store")
        self._count(order)
        self.data[index] = value

    def fetch_add(self, index: Any, value: Any, order: MemoryOrder = seq_cst):
        """Atomically add *value*, returning the previous value."""
        _check_vectorization_safety("fetch_add")
        self._count(order)
        old = self.data[index]
        self.data[index] = old + value
        return old

    def compare_exchange(
        self,
        index: Any,
        expected: Any,
        desired: Any,
        success: MemoryOrder = seq_cst,
        failure: MemoryOrder = seq_cst,
    ) -> tuple[bool, Any]:
        """CAS: if ``data[index] == expected`` store *desired*.

        Returns ``(succeeded, observed_value)`` — the C++ API writes the
        observed value back into ``expected``; we return it instead.
        """
        _check_vectorization_safety("compare_exchange")
        observed = self.data[index]
        ok = bool(observed == expected)
        self._count(success if ok else failure, contended=not ok)
        if ok:
            self.data[index] = desired
        return ok, observed

    def fetch_max(self, index: Any, value: Any, order: MemoryOrder = seq_cst):
        """Atomic max (used by diagnostics); returns previous value."""
        _check_vectorization_safety("fetch_max")
        self._count(order)
        old = self.data[index]
        if value > old:
            self.data[index] = value
        return old
