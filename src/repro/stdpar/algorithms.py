"""C++ parallel algorithms: ``for_each``, ``transform_reduce``, ``sort``.

These are the only three algorithms the paper's implementation needs
(Section II).  Each invocation:

1. validates the policy against the kernel (atomics are
   vectorization-unsafe under ``par_unseq``) and against the device's
   forward-progress guarantee (``par`` needs parallel forward progress;
   a violation either raises :class:`~repro.errors.ForwardProgressError`
   or — in ``simulate`` mode — reproduces the hang on the lockstep
   scheduler);
2. dispatches to the batch (vectorized numpy) or scalar (virtual-thread)
   implementation of the kernel;
3. accounts the work to the context's current step counters.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import ForwardProgressError, VectorizationUnsafeError
from repro.stdpar.atomics import vectorized_region
from repro.stdpar.context import ExecutionContext
from repro.stdpar.kernel import Kernel
from repro.stdpar.policy import ExecutionPolicy, seq
from repro.stdpar.scheduler import SchedulerMode, VirtualThreadScheduler


# ----------------------------------------------------------------------
# Policy / device validation
# ----------------------------------------------------------------------
def _validate(policy: ExecutionPolicy, kernel: Kernel, ctx: ExecutionContext) -> None:
    if kernel.uses_atomics and not policy.allows_atomics:
        raise VectorizationUnsafeError(
            f"kernel {kernel.name!r} uses atomics/locks, which are "
            f"vectorization-unsafe; it cannot be invoked with policy "
            f"{policy.name!r} (use par)"
        )
    if policy.parallel and not ctx.device.progress.satisfies(policy.required_progress):
        if ctx.on_progress_violation == "raise":
            raise ForwardProgressError(
                f"policy {policy.name!r} requires "
                f"{policy.required_progress.name} forward progress but device "
                f"{ctx.device.name!r} only provides {ctx.device.progress.name} "
                "(no Independent Thread Scheduling); on real hardware this "
                "hangs (paper Section V-B)"
            )
        # "simulate": fall through — the scalar path will run on the
        # LOCKSTEP scheduler and starve, raising LivelockDetected.


def _launch_event(
    ctx: ExecutionContext, name: str, policy: ExecutionPolicy, n: int,
    kernel_name: str | None = None,
) -> None:
    """Trace one parallel-algorithm launch as an instant event
    (policy + element count; :mod:`repro.obs`)."""
    tracer = ctx.tracer
    if tracer.enabled:
        args = {"policy": policy.name, "n": int(n)}
        if kernel_name is not None:
            args["kernel"] = kernel_name
        tracer.instant(name, args=args)


def _run_scalar_sequential(items: Iterable[Any], kernel: Kernel, ctx: ExecutionContext) -> None:
    """Drive scalar generators to completion one element at a time."""
    sched = VirtualThreadScheduler(SchedulerMode.FAIR, counters=ctx.counters)
    for i in items:
        sched.run([lambda i=i: kernel.scalar(i)])


def _run_scalar_scheduled(
    items: Sequence[Any],
    kernel: Kernel,
    ctx: ExecutionContext,
    mode: SchedulerMode,
) -> None:
    sched = ctx.make_scheduler(mode)
    sched.run([(lambda i=i: kernel.scalar(i)) for i in items])


# ----------------------------------------------------------------------
# for_each
# ----------------------------------------------------------------------
def for_each(
    policy: ExecutionPolicy,
    items: Any,
    kernel: Kernel,
    ctx: ExecutionContext,
) -> None:
    """``std::for_each(policy, begin, end, kernel)``.

    *items* is a range length (int) or a sequence of element values.
    """
    if isinstance(items, (int, np.integer)):
        items = np.arange(int(items))
    _validate(policy, kernel, ctx)
    n = len(items)
    ctx.counters.add(loop_iterations=float(n), kernel_launches=1.0)
    _launch_event(ctx, "for_each", policy, n, kernel.name)
    if n == 0:
        return

    if policy is seq:
        if kernel.has_scalar:
            _run_scalar_sequential(items, kernel, ctx)
        else:
            kernel.batch(items)
        return

    # Parallel policies.
    prefer_batch = ctx.backend == "vectorized" and kernel.has_batch
    if kernel.uses_atomics and kernel.has_batch and not kernel.batch_equivalent_to_atomics:
        prefer_batch = False  # batch translation not proven equivalent

    if prefer_batch or not kernel.has_scalar:
        if policy.vectorized:
            with vectorized_region():
                kernel.batch(items)
        else:
            kernel.batch(items)
        return

    # Scalar path on the virtual-thread scheduler.
    mode = ctx.scheduler_mode()
    if policy.vectorized:
        # par_unseq models SIMT lockstep regardless of ITS; kernels here
        # are atomics-free so lockstep cannot starve.
        mode = SchedulerMode.LOCKSTEP
    _run_scalar_scheduled(items, kernel, ctx, mode)


# ----------------------------------------------------------------------
# transform_reduce
# ----------------------------------------------------------------------
def transform_reduce(
    policy: ExecutionPolicy,
    items: Any,
    init: Any,
    reduce_fn: Callable[[Any, Any], Any],
    transform_fn: Callable[[Any], Any],
    ctx: ExecutionContext,
    *,
    batch: Callable[[Any], Any] | None = None,
    flops_per_item: float = 0.0,
    bytes_per_item: float = 0.0,
) -> Any:
    """``std::transform_reduce(policy, ..., init, reduce, transform)``.

    When *batch* is given and the backend is vectorized, it computes the
    whole reduction in one numpy call (must be semantically equal to the
    fold; reductions here are commutative so any order is legal).
    """
    if isinstance(items, (int, np.integer)):
        items = np.arange(int(items))
    n = len(items)
    ctx.counters.add(
        loop_iterations=float(n),
        flops=flops_per_item * n,
        bytes_read=bytes_per_item * n,
        kernel_launches=1.0,
    )
    _launch_event(ctx, "transform_reduce", policy, n)
    if batch is not None and ctx.backend == "vectorized" and policy is not seq:
        if policy.vectorized:
            with vectorized_region():
                return batch(items)
        return batch(items)
    acc = init
    for i in items:
        acc = reduce_fn(acc, transform_fn(i))
    return acc


# ----------------------------------------------------------------------
# sort
# ----------------------------------------------------------------------
def sort_by_key(
    policy: ExecutionPolicy,
    keys: np.ndarray,
    ctx: ExecutionContext,
) -> np.ndarray:
    """``std::sort(policy, zip(...))`` by precomputed keys.

    Like the paper's HILBERTSORT (Algorithm 7) with the AdaptiveCpp /
    Clang workaround: sorts an auxiliary (key, index) buffer and returns
    the permutation to apply to the body arrays.  A stable sort keeps
    results deterministic under duplicate keys.
    """
    keys = np.asarray(keys)
    n = keys.shape[0]
    # n log2 n comparisons; each touches a (key, index) pair.  Toolchain
    # sort efficiency is applied by the cost model, not here, so that
    # counters stay device- and toolchain-independent.
    log2n = float(np.log2(max(n, 2)))
    ctx.counters.add(
        sort_comparisons=n * log2n,
        bytes_read=2.0 * 16.0 * n * log2n,
        bytes_written=2.0 * 16.0 * n,
        loop_iterations=float(n),
        kernel_launches=1.0,
    )
    _launch_event(ctx, "sort", policy, n)
    return np.argsort(keys, kind="stable")


# ----------------------------------------------------------------------
# reduce / scans
# ----------------------------------------------------------------------
def reduce(
    policy: ExecutionPolicy,
    values: np.ndarray,
    init: Any,
    op: Callable[[Any, Any], Any],
    ctx: ExecutionContext,
    *,
    batch: Callable[[np.ndarray], Any] | None = None,
) -> Any:
    """``std::reduce(policy, first, last, init, op)``.

    *op* must be associative and commutative for parallel policies (the
    C++ precondition); *batch* supplies the vectorized whole-array
    reduction used under the vectorized backend.
    """
    values = np.asarray(values)
    n = len(values)
    ctx.counters.add(loop_iterations=float(n), flops=float(max(n - 1, 0)),
                     bytes_read=float(values.nbytes), kernel_launches=1.0)
    _launch_event(ctx, "reduce", policy, n)
    if batch is not None and ctx.backend == "vectorized" and policy is not seq:
        if policy.vectorized:
            with vectorized_region():
                return op(init, batch(values)) if n else init
        return op(init, batch(values)) if n else init
    acc = init
    for v in values:
        acc = op(acc, v)
    return acc


def exclusive_scan(
    policy: ExecutionPolicy,
    values: np.ndarray,
    init: float,
    ctx: ExecutionContext,
) -> np.ndarray:
    """``std::exclusive_scan`` (addition): out[i] = init + sum(v[:i]).

    The building block of the vectorized tree builders' child-offset
    computation; counted as a two-pass parallel scan (read + write per
    element, log-depth flops).
    """
    values = np.asarray(values)
    n = len(values)
    log2n = float(np.log2(max(n, 2)))
    ctx.counters.add(
        loop_iterations=float(n), flops=2.0 * n,
        bytes_read=2.0 * float(values.nbytes),
        bytes_written=float(values.nbytes),
        kernel_launches=1.0 if policy is seq else 2.0,  # up-sweep + down-sweep
    )
    _launch_event(ctx, "exclusive_scan", policy, n)
    out = np.empty(n, dtype=np.result_type(values.dtype, type(init)))
    if n:
        np.cumsum(values, out=out)
        out[1:] = out[:-1]
        out[0] = 0
        out += init
    return out


def inclusive_scan(
    policy: ExecutionPolicy,
    values: np.ndarray,
    ctx: ExecutionContext,
) -> np.ndarray:
    """``std::inclusive_scan`` (addition)."""
    values = np.asarray(values)
    n = len(values)
    ctx.counters.add(
        loop_iterations=float(n), flops=2.0 * n,
        bytes_read=2.0 * float(values.nbytes),
        bytes_written=float(values.nbytes),
        kernel_launches=1.0 if policy is seq else 2.0,
    )
    _launch_event(ctx, "inclusive_scan", policy, n)
    return np.cumsum(values)
