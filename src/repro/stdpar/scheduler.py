"""A deterministic cooperative virtual-thread scheduler.

This is the semantic stand-in for real CPU threads / GPU warps.  Kernels
that use fine-grained synchronization (the Concurrent Octree build,
Algorithm 4/5; the multipole tree reduction, Fig. 2; All-Pairs-Col's
atomic accumulation) are written as Python *generators* that yield
:class:`Op` objects at every atomic operation — their only
synchronization points, exactly as in the C++ memory model.  The
scheduler executes the yielded op atomically and resumes the thread
according to the configured mode:

* :attr:`SchedulerMode.FAIR` — round-robin over all live threads.  Every
  started thread is eventually rescheduled: **parallel forward
  progress**, i.e. a CPU or an NVIDIA GPU with Independent Thread
  Scheduling.  Starvation-free algorithms terminate.
* :attr:`SchedulerMode.LOCKSTEP` — threads are grouped into warps of
  ``warp_width`` lanes that advance in lockstep.  On branch divergence a
  warp serializes: lanes that failed a ``compare_exchange`` (i.e. are
  spinning on a lock) re-execute *before* their warp-mates advance, the
  behaviour of pre-Volta / non-ITS GPUs.  If the lock holder is a masked
  warp-mate the spinners never succeed and the scheduler raises
  :class:`~repro.errors.LivelockDetected` — reproducing the paper's
  observation that "attempts to run Octree on Intel and AMD GPUs
  reliably caused them to hang" (Section V-B).

An optional ``shuffle_seed`` permutes the FAIR round order every round,
letting property-based tests exercise many legal interleavings while
staying fully deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Sequence

import numpy as np

from repro.errors import LivelockDetected
from repro.machine.counters import Counters
from repro.stdpar.atomics import AtomicArray, MemoryOrder, seq_cst


# ----------------------------------------------------------------------
# Operation vocabulary yielded by virtual threads.
# ----------------------------------------------------------------------
@dataclass
class Op:
    """Base class for synchronization operations."""


@dataclass
class Load(Op):
    array: AtomicArray
    index: Any
    order: MemoryOrder = seq_cst


@dataclass
class Store(Op):
    array: AtomicArray
    index: Any
    value: Any
    order: MemoryOrder = seq_cst


@dataclass
class FetchAdd(Op):
    array: AtomicArray
    index: Any
    value: Any
    order: MemoryOrder = seq_cst


@dataclass
class CompareExchange(Op):
    array: AtomicArray
    index: Any
    expected: Any
    desired: Any
    success: MemoryOrder = seq_cst
    failure: MemoryOrder = seq_cst


@dataclass
class Pause(Op):
    """A pure yield point (e.g. backoff inside a spin loop)."""


ThreadFactory = Callable[[], Generator[Op, Any, Any]]


class SchedulerMode(enum.Enum):
    FAIR = "fair"          # parallel forward progress (CPU / ITS GPU)
    LOCKSTEP = "lockstep"  # weakly parallel forward progress (no-ITS GPU)


class _Thread:
    __slots__ = ("gen", "pending", "finished", "spinning", "retries", "result")

    def __init__(self, gen: Generator[Op, Any, Any]):
        self.gen = gen
        self.pending: Op | None = None
        self.finished = False
        self.spinning = False  # last op was a failed CAS / Pause
        self.retries = 0
        self.result: Any = None

    def start(self) -> None:
        try:
            self.pending = next(self.gen)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value


class VirtualThreadScheduler:
    """Executes a set of virtual threads under a scheduling mode."""

    def __init__(
        self,
        mode: SchedulerMode = SchedulerMode.FAIR,
        *,
        warp_width: int = 32,
        spin_budget: int = 4096,
        op_budget_per_thread: int = 100_000,
        shuffle_seed: int | None = None,
        counters: Counters | None = None,
    ):
        if warp_width < 1:
            raise ValueError("warp_width must be >= 1")
        self.mode = mode
        self.warp_width = warp_width
        self.spin_budget = spin_budget
        self.op_budget_per_thread = op_budget_per_thread
        self.shuffle_seed = shuffle_seed
        self.counters = counters if counters is not None else Counters()
        self.ops_executed = 0

    # ------------------------------------------------------------------
    def _execute(self, op: Op) -> tuple[Any, bool]:
        """Perform *op* atomically.  Returns (result, was_spin)."""
        self.ops_executed += 1
        if isinstance(op, Load):
            return op.array.load(op.index, op.order), False
        if isinstance(op, Store):
            op.array.store(op.index, op.value, op.order)
            return None, False
        if isinstance(op, FetchAdd):
            return op.array.fetch_add(op.index, op.value, op.order), False
        if isinstance(op, CompareExchange):
            ok, observed = op.array.compare_exchange(
                op.index, op.expected, op.desired, op.success, op.failure
            )
            return (ok, observed), not ok
        if isinstance(op, Pause):
            return None, True
        raise TypeError(f"unknown op {op!r}")

    def _step(self, t: _Thread) -> None:
        """Execute the thread's pending op and advance it to the next.

        Spin-branch tracking (drives lockstep divergence): a failed CAS
        or a Pause puts the thread on the spin branch; it leaves the
        branch only by making real progress — a successful CAS, a store,
        or a fetch_add.  Plain loads keep the current branch, so a
        re-load inside a spin loop does not spuriously reconverge the
        warp (which would let a masked lock holder advance).
        """
        assert t.pending is not None and not t.finished
        op = t.pending
        result, spin = self._execute(op)
        if spin:
            t.spinning = True
        elif isinstance(op, (Store, FetchAdd, CompareExchange)):
            t.spinning = False  # successful CAS lands here (spin is False)
        # Load: keep previous branch state.
        t.retries = t.retries + 1 if t.spinning else 0
        self.counters.add(lock_retries=1.0 if spin else 0.0)
        try:
            t.pending = t.gen.send(result)
        except StopIteration as stop:
            t.finished = True
            t.result = stop.value

    # ------------------------------------------------------------------
    def run(self, factories: Iterable[ThreadFactory]) -> list[Any]:
        """Run all threads to completion; returns their return values."""
        threads = [_Thread(f()) for f in factories]
        for t in threads:
            t.start()
        op_budget = max(10_000, self.op_budget_per_thread * max(1, len(threads)))

        if self.mode is SchedulerMode.FAIR:
            self._run_fair(threads, op_budget)
        else:
            self._run_lockstep(threads, op_budget)
        return [t.result for t in threads]

    # ------------------------------------------------------------------
    def _run_fair(self, threads: Sequence[_Thread], op_budget: int) -> None:
        rng = (
            np.random.default_rng(self.shuffle_seed)
            if self.shuffle_seed is not None
            else None
        )
        live = [t for t in threads if not t.finished]
        while live:
            order = live
            if rng is not None:
                order = [live[i] for i in rng.permutation(len(live))]
            for t in order:
                if not t.finished:
                    self._step(t)
            if self.ops_executed > op_budget:
                raise LivelockDetected(
                    f"FAIR scheduler exceeded op budget ({op_budget}); "
                    "the algorithm appears not to terminate"
                )
            live = [t for t in live if not t.finished]

    # ------------------------------------------------------------------
    def _run_lockstep(self, threads: Sequence[_Thread], op_budget: int) -> None:
        warps: list[list[_Thread]] = [
            list(threads[i : i + self.warp_width])
            for i in range(0, len(threads), self.warp_width)
        ]
        live_warps = [w for w in warps if any(not t.finished for t in w)]
        while live_warps:
            for warp in live_warps:
                self._step_warp(warp)
            if self.ops_executed > op_budget:
                raise LivelockDetected(
                    f"LOCKSTEP scheduler exceeded op budget ({op_budget})"
                )
            live_warps = [w for w in live_warps if any(not t.finished for t in w)]

    def _step_warp(self, warp: list[_Thread]) -> None:
        """Advance one warp by one 'instruction'.

        If any lane is spinning (its last executed op was a failed CAS or
        a Pause), the warp has diverged and the spinning branch executes
        first: only spinning lanes step until none spins — which never
        happens when the lock holder is a masked lane of this same warp.
        """
        spinners = [t for t in warp if not t.finished and t.spinning]
        if spinners:
            for t in spinners:
                if t.retries > self.spin_budget:
                    raise LivelockDetected(
                        "lane spun "
                        f"{t.retries} times inside a diverged warp without the "
                        "lock holder being scheduled; a GPU without Independent "
                        "Thread Scheduling hangs here (paper Section V-B)"
                    )
                self._step(t)
        else:
            for t in warp:
                if not t.finished:
                    self._step(t)
