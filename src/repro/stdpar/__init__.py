"""A Python model of ISO C++ standard parallelism (Section II).

This package reproduces the *programming model* the paper builds on:

* execution policies ``seq``, ``par``, ``par_unseq`` with their
  forward-progress guarantees and vectorization-safety rules;
* parallel algorithms ``for_each``, ``transform_reduce``, ``sort``;
* atomic operations with C++ memory orders;
* a deterministic cooperative *virtual-thread scheduler* that models the
  difference between Independent Thread Scheduling (parallel forward
  progress — spinning threads are always eventually rescheduled) and
  classic GPU occupancy-bound scheduling (weakly parallel forward
  progress — a resident spinning warp can starve the lock holder, which
  is why the Concurrent Octree hangs on AMD/Intel GPUs in Section V-B);
* a SIMT "lockstep" batch path: kernels that are vectorization-safe can
  provide a numpy implementation in which all logical threads advance in
  lockstep — exactly how a GPU executes a ``par_unseq`` loop.

Kernels declare whether they use atomics/locks; invoking such a kernel
under ``par_unseq`` raises :class:`~repro.errors.VectorizationUnsafeError`
(atomics are vectorization-unsafe per [algorithms.parallel.defns]).
"""

from repro.stdpar.progress import ForwardProgress
from repro.stdpar.policy import ExecutionPolicy, seq, par, par_unseq
from repro.stdpar.atomics import (
    MemoryOrder,
    relaxed,
    acquire,
    release,
    acq_rel,
    seq_cst,
    AtomicArray,
)
from repro.stdpar.kernel import Kernel, kernel_from_functions
from repro.stdpar.scheduler import (
    VirtualThreadScheduler,
    SchedulerMode,
    Load,
    Store,
    FetchAdd,
    CompareExchange,
    Pause,
)
from repro.stdpar.context import ExecutionContext, default_context
from repro.stdpar.algorithms import for_each, transform_reduce, sort_by_key

__all__ = [
    "ForwardProgress",
    "ExecutionPolicy",
    "seq",
    "par",
    "par_unseq",
    "MemoryOrder",
    "relaxed",
    "acquire",
    "release",
    "acq_rel",
    "seq_cst",
    "AtomicArray",
    "Kernel",
    "kernel_from_functions",
    "VirtualThreadScheduler",
    "SchedulerMode",
    "Load",
    "Store",
    "FetchAdd",
    "CompareExchange",
    "Pause",
    "ExecutionContext",
    "default_context",
    "for_each",
    "transform_reduce",
    "sort_by_key",
]
