"""Cross-session structure sharing with content-addressed entries.

Identical-config tenants running identical workloads pass through
identical position states step for step, so the tree build, the grouped
or dual interaction lists, and the flat index expansions one session
computes are exactly the artifacts every twin session needs at the same
step.  The :class:`SharedStructureCache` makes that reuse safe by
construction: entries are keyed by

* the structure key (``"octree"`` / ``"bvh"`` / ``"octree-2stage"``),
* a **complete config fingerprint** (:func:`config_fingerprint` —
  every field that can influence a cached structure or list: algorithm,
  tree grid bits, curve, multipole order, theta, traversal, group size,
  cc_mac, expansion order, eval mode, gravity), and
* a **state digest** (:func:`state_digest` — blake2b over the exact
  position and mass bytes).

A hit therefore proves the cached entry was built from bit-identical
inputs under a bit-identical configuration — serving a stale or
mismatched list is structurally impossible, with no age bookkeeping to
get wrong across sessions.  Eviction is LRU under a byte budget, with
hit/miss/eviction counters for the per-tenant metrics lanes.

Sharing engages only for ``tree_update="rebuild"``,
``tree_reuse_steps=1``, ``ranks=1`` configurations (the service-layer
default): the per-session aging and epoch state of the other modes is
inherently private.  Unsupported configs fall through to the ordinary
per-session cache untouched.

The cache plugs into :mod:`repro.core.algorithms` through the
``"_shared"`` marker of a simulation's tree-cache dict — see
``Simulation(tree_cache={"_shared": shared})``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import OrderedDict

import numpy as np

#: Config fields that cannot influence any cached structure, list, or
#: per-epoch precompute: integration step size, accounting-only widths,
#: and the distributed-fabric parameters (sharing requires ranks=1).
_FINGERPRINT_EXCLUDED = (
    "dt",
    "simt_width",
    "interconnect",
    "ranks_per_node",
    "inter_interconnect",
    "rebalance_steps",
    "unsafe_relax_policy",
)


def config_fingerprint(config) -> str:
    """Deterministic fingerprint of every cache-relevant config field."""
    fields = dataclasses.asdict(config)
    for name in _FINGERPRINT_EXCLUDED:
        fields.pop(name, None)
    return json.dumps(fields, sort_keys=True, separators=(",", ":"))


def state_digest(x: np.ndarray, m: np.ndarray) -> str:
    """blake2b over the exact position + mass bytes (shape-prefixed)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(repr((x.shape, str(x.dtype))).encode())
    h.update(np.ascontiguousarray(x).tobytes())
    h.update(np.ascontiguousarray(m).tobytes())
    return h.hexdigest()


def entry_nbytes(entry) -> int:
    """Approximate byte size of a cache entry (ndarray payloads)."""
    seen: set[int] = set()

    def walk(obj) -> int:
        if id(obj) in seen:
            return 0
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            return int(obj.nbytes)
        if isinstance(obj, dict):
            return sum(walk(v) for v in obj.values())
        if isinstance(obj, (tuple, list)):
            return sum(walk(v) for v in obj)
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return sum(
                walk(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            )
        if hasattr(obj, "__dict__"):
            return walk(vars(obj))
        return 0

    return walk(entry)


class SharedStructureCache:
    """Content-addressed LRU cache of structure-cache entries.

    One instance is shared by every session the server hosts with
    sharing enabled.  ``lookup`` returns the full entry dict (structure
    + any interaction lists / flat expansions previous force
    evaluations stored into it) or ``None``; ``store`` inserts a fresh
    entry that the ongoing force evaluation then populates in place —
    so the *lists* built this step are shared as soon as they exist.
    """

    def __init__(self, byte_budget: int = 256 * 1024 * 1024):
        if byte_budget <= 0:
            raise ValueError("byte_budget must be positive")
        self.byte_budget = int(byte_budget)
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self.stats = {
            "hits": 0, "misses": 0, "stores": 0, "evictions": 0,
        }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Current payload bytes (recomputed: entries grow in place)."""
        return sum(entry_nbytes(e) for e in self._entries.values())

    @staticmethod
    def supports(config) -> bool:
        """Sharing is exact only for stateless-across-steps configs."""
        return (
            config.tree_update == "rebuild"
            and config.tree_reuse_steps == 1
            and config.ranks == 1
        )

    def _key(self, struct_key: str, config, system) -> tuple:
        return (
            struct_key,
            config_fingerprint(config),
            state_digest(system.x, system.m),
        )

    def _charge_digest(self, system, ctx) -> None:
        """Model the digest pass: one streaming read of x and m."""
        if ctx is None:
            return
        with ctx.step("encode"):
            ctx.counters.add(
                bytes_read=float(system.x.nbytes + system.m.nbytes),
                loop_iterations=float(system.n),
                kernel_launches=1.0,
            )

    # ------------------------------------------------------------------
    def lookup(self, struct_key: str, config, system, *, ctx=None):
        """The shared entry for this exact (config, state), or None."""
        if not self.supports(config):
            return None
        self._charge_digest(system, ctx)
        key = self._key(struct_key, config, system)
        entry = self._entries.get(key)
        if entry is None:
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        self._entries.move_to_end(key)
        return entry

    def store(self, struct_key: str, config, system, structure, *, ctx=None):
        """Insert a fresh entry; returns it (None when unsupported)."""
        if not self.supports(config):
            return None
        # ``exact`` tells the consuming pipeline this entry is keyed by
        # the digest of the positions being evaluated: derived products
        # (assembled BVH, multipole moments) may be reused outright.
        entry = {"structure": structure, "age": 0, "exact": True}
        key = self._key(struct_key, config, system)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stats["stores"] += 1
        self._evict()
        return entry

    def _evict(self) -> None:
        """Drop LRU entries until the byte budget holds (keep newest)."""
        while len(self._entries) > 1 and self.nbytes > self.byte_budget:
            self._entries.popitem(last=False)
            self.stats["evictions"] += 1

    # ------------------------------------------------------------------
    def stats_dict(self) -> dict:
        """Counters + occupancy for metrics and bench records."""
        total = self.stats["hits"] + self.stats["misses"]
        return {
            **self.stats,
            "entries": len(self._entries),
            "nbytes": self.nbytes,
            "hit_rate": self.stats["hits"] / total if total else 0.0,
        }
