"""The multi-tenant session server: admission -> DRR -> sessions.

The server is a deterministic discrete-event loop on the **modeled
clock**: time advances only when work is charged (modeled device
seconds of materialization, step quanta, and checkpoint traffic) or
when the server is idle and jumps to the next arrival.  Wall time
never enters the loop, so two runs over the same seeded traffic
produce byte-identical results, metrics, and traces.

Scheduling is deficit round-robin (:mod:`repro.serve.scheduler`) over
per-tenant FIFO queues: within a tenant, sessions run to completion in
arrival order (head-of-line); across tenants, modeled device time is
split by quota weight to within one step-quantum.  Residency is
bounded by ``max_resident``: when a session must run and the limit is
reached, the least-recently-scheduled resident session is suspended
through the bit-exact checkpoint path and resumed later — with
``max_resident=1`` the server time-slices a single residency slot and
still produces exactly the results of unlimited residency (the
round-trip tests in tests/test_serve_server.py assert this).

Identical-config tenants share tree builds and interaction lists via
the content-addressed :class:`~repro.serve.cache.SharedStructureCache`
(``shared_cache=True``); per-tenant :class:`~repro.obs.MetricsRegistry`
instances and serve watchdogs record queue depth, throttling, and
session latency; with a tracer attached, every session runs on its own
timeline lane named ``tenant/session``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.machine.budget import DeviceTimeBudget
from repro.machine.costmodel import CostModel
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import (
    NOMINAL_SECONDS_PER_BODY_STEP,
    AdmissionController,
    Occupancy,
    TenantQuota,
)
from repro.serve.cache import SharedStructureCache, config_fingerprint
from repro.serve.scheduler import DeficitRoundRobin
from repro.serve.session import Session, SessionSpec, SessionState
from repro.serve.telemetry import percentile, serve_watchdogs
from repro.stdpar.context import ExecutionContext


@dataclass
class ServeResult:
    """Everything one :meth:`SessionServer.run` produced.

    All quantities are modeled and deterministic; ``as_dict()`` is the
    payload the traffic benchmark byte-compares between seeded runs.
    """

    clock: float
    rounds: int
    total_steps: int
    sessions: list[dict]
    rejected: list[dict]
    tenants: dict[str, dict]
    scheduler: dict
    budget: dict
    cache: dict | None
    alerts: list = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.sessions)

    @property
    def steps_per_second(self) -> float:
        """Aggregate session throughput: steps per modeled second."""
        return self.total_steps / self.clock if self.clock > 0 else 0.0

    def latencies(self, tenant: str | None = None) -> list[float]:
        return [
            s["latency"] for s in self.sessions
            if tenant is None or s["tenant"] == tenant
        ]

    def as_dict(self) -> dict:
        return {
            "clock": self.clock,
            "rounds": self.rounds,
            "total_steps": self.total_steps,
            "steps_per_second": self.steps_per_second,
            "sessions": self.sessions,
            "rejected": self.rejected,
            "tenants": self.tenants,
            "scheduler": self.scheduler,
            "budget": self.budget,
            "cache": self.cache,
            "alerts": [
                {"step": a.step, "kind": a.kind, "message": a.message,
                 "value": a.value}
                for a in self.alerts
            ],
        }

    def summary(self) -> str:
        lines = [
            f"serve: {self.completed} sessions, {self.total_steps} steps "
            f"in {self.clock:.3e} modeled s "
            f"({self.steps_per_second:.3e} steps/s), "
            f"{len(self.rejected)} rejected, {self.rounds} rounds",
        ]
        agg = self.latencies()
        lines.append(
            f"latency p50={percentile(agg, 50):.3e}s "
            f"p99={percentile(agg, 99):.3e}s"
        )
        header = (f"{'tenant':<12} {'done':>5} {'rej':>4} {'steps':>6} "
                  f"{'device s':>11} {'share':>6} {'thrtl':>5} "
                  f"{'p50 s':>10} {'p99 s':>10}")
        lines.append(header)
        lines.append("-" * len(header))
        for tenant in sorted(self.tenants):
            t = self.tenants[tenant]
            lines.append(
                f"{tenant:<12} {t['completed']:>5} {t['rejected']:>4} "
                f"{t['steps']:>6} {t['device_seconds']:>11.3e} "
                f"{t['share']:>6.1%} {t['throttle_events']:>5} "
                f"{t['latency_p50']:>10.3e} {t['latency_p99']:>10.3e}"
            )
        if self.cache is not None:
            c = self.cache
            lines.append(
                f"shared cache: {c['hits']} hits / {c['misses']} misses "
                f"(rate {c['hit_rate']:.1%}), {c['entries']} entries, "
                f"{c['nbytes']} bytes, {c['evictions']} evictions"
            )
        for a in self.alerts:
            lines.append(f"ALERT [{a.kind}] {a.message}")
        return "\n".join(lines)


class SessionServer:
    """Hosts many simulation sessions on one modeled device."""

    def __init__(
        self,
        *,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        max_sessions: int = 64,
        quantum_steps: int = 2,
        max_resident: int | None = None,
        shared_cache: bool = True,
        cache_budget: int = 256 * 1024 * 1024,
        scheduler: DeficitRoundRobin | None = None,
        tracer=None,
        watchdogs: list | None = None,
        budget_caps: dict[str, float] | None = None,
        device=None,
        backend: str = "vectorized",
    ):
        if quantum_steps < 1:
            raise ValueError("quantum_steps must be at least 1")
        if max_resident is not None and max_resident < 1:
            raise ValueError("max_resident must be at least 1")
        if isinstance(device, str):
            from repro.machine.catalog import get_device

            device = get_device(device)
        base = ExecutionContext(device, backend=backend)
        self.device = base.device
        self.backend = backend
        self.toolchain = base.toolchain
        #: Cost model every charge and trace duration comes from.
        self.model = CostModel(self.device, toolchain=self.toolchain)
        self.admission = AdmissionController(
            max_sessions=max_sessions, quotas=quotas,
            default_quota=default_quota,
        )
        self.scheduler = scheduler or DeficitRoundRobin()
        self.quantum_steps = int(quantum_steps)
        self.max_resident = max_resident
        self.shared = (SharedStructureCache(cache_budget)
                       if shared_cache else None)
        self.budget = DeviceTimeBudget(budget_caps)
        self.tracer = tracer
        self.watchdogs = (watchdogs if watchdogs is not None
                          else serve_watchdogs())
        # ---- run state -------------------------------------------------
        self.clock = 0.0
        self.sessions: list[Session] = []
        self._queues: dict[str, deque] = {}
        self._resident: list[Session] = []     # LRU order (oldest first)
        self._rejected: list[dict] = []
        self._metrics: dict[str, MetricsRegistry] = {}
        self.alerts: list = []
        #: Trace lane -> tenant (``--profile`` per-tenant aggregation).
        self.lane_tenants: dict[int, str] = {}
        self._next_lane = 1
        #: Observed (cost, steps) per request-class key, for the
        #: deterministic admission wait estimates.
        self._observed: dict[tuple, list[float]] = {}

    # ------------------------------------------------------------------
    # Session plumbing (callbacks used by Session)
    # ------------------------------------------------------------------
    def _session_ctx(self, session: Session) -> ExecutionContext:
        ctx = ExecutionContext(self.device, backend=self.backend,
                               toolchain=self.toolchain)
        if self.tracer is not None and self.tracer.enabled:
            ctx.tracer = self.tracer
            ctx.trace_lane = session.lane
        return ctx

    def _session_tree_cache(self) -> dict:
        return {"_shared": self.shared} if self.shared is not None else {}

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def tenant_metrics(self, tenant: str) -> MetricsRegistry:
        reg = self._metrics.get(tenant)
        if reg is None:
            reg = MetricsRegistry()
            self._metrics[tenant] = reg
        return reg

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _estimate_key(self, spec: SessionSpec) -> tuple:
        return (spec.workload, spec.n, config_fingerprint(spec.config))

    def _per_step_estimate(self, spec: SessionSpec) -> float:
        obs = self._observed.get(self._estimate_key(spec))
        if obs and obs[1] > 0:
            return obs[0] / obs[1]
        return NOMINAL_SECONDS_PER_BODY_STEP * spec.n

    def _observe_cost(self, spec: SessionSpec, cost: float, steps: int):
        key = self._estimate_key(spec)
        acc = self._observed.get(key)
        if acc is None:
            self._observed[key] = [cost, float(steps)]
        else:
            acc[0] += cost
            acc[1] += steps

    def _occupancy(self) -> Occupancy:
        active: dict[str, int] = {}
        queued: dict[str, int] = {}
        backlog: dict[str, float] = {}
        for s in self.sessions:
            if s.done or s.state == SessionState.REJECTED:
                continue
            active[s.tenant] = active.get(s.tenant, 0) + 1
            if s.state == SessionState.QUEUED:
                queued[s.tenant] = queued.get(s.tenant, 0) + 1
            backlog[s.tenant] = backlog.get(s.tenant, 0.0) + \
                self._per_step_estimate(s.spec) * s.remaining
        return Occupancy(active, queued, backlog)

    def _admit(self, spec: SessionSpec) -> Session | None:
        quota = self.admission.quota(spec.tenant)
        self.scheduler.register(spec.tenant, quota.weight)
        reg = self.tenant_metrics(spec.tenant)
        result = self.admission.offer(spec, self._occupancy())
        if not result.admitted:
            self._rejected.append({
                "tenant": spec.tenant, "name": spec.name,
                "arrival": spec.arrival, "code": result.code,
            })
            reg.counter("serve.sessions_rejected").inc()
            return None
        session = Session(spec, server=self)
        session.admitted_at = max(self.clock, spec.arrival)
        session.estimated_wait = result.estimated_wait
        if self.tracer is not None and self.tracer.enabled:
            session.lane = self._next_lane
            self._next_lane += 1
            self.tracer.ensure_lane(
                session.lane, f"{spec.tenant}/{spec.name}")
            self.lane_tenants[session.lane] = spec.tenant
        self.sessions.append(session)
        self._queues.setdefault(spec.tenant, deque()).append(session)
        reg.counter("serve.sessions_admitted").inc()
        return session

    def _admit_due(self, pending: deque) -> None:
        while pending and pending[0].arrival <= self.clock:
            self._admit(pending.popleft())

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def _ensure_resident(self, session: Session) -> float:
        """Make *session* runnable; returns the modeled cost incurred.

        Evicts least-recently-scheduled residents through the checkpoint
        path when the residency bound requires it.  Eviction cost is
        charged to the incoming session's tenant (it caused the work).
        """
        cost = 0.0
        if not session.resident:
            if self.max_resident is not None:
                while len(self._resident) >= self.max_resident:
                    victim = self._resident.pop(0)
                    cost += victim.suspend()
                    self.tenant_metrics(victim.tenant).counter(
                        "serve.suspends").inc()
            cost += session.materialize()
        if session in self._resident:
            self._resident.remove(session)
        self._resident.append(session)
        return cost

    # ------------------------------------------------------------------
    # One quantum
    # ------------------------------------------------------------------
    def _run_one_quantum(self, session: Session) -> float:
        reg = self.tenant_metrics(session.tenant)
        cost = self._ensure_resident(session)
        if session.started_at is None:
            session.started_at = self.clock
            reg.histogram("serve.session_wait_seconds").observe(
                session.started_at - session.spec.arrival)
        steps_before = session.steps_done
        cost += session.run_quantum(self.quantum_steps)
        steps = session.steps_done - steps_before
        self.clock += cost
        session.device_seconds += cost
        self.budget.charge(session.tenant, cost)
        self._observe_cost(session.spec, cost, steps)
        reg.counter("serve.quanta").inc()
        reg.counter("serve.steps").inc(steps)
        reg.gauge("serve.device_seconds").set(
            self.budget.spent(session.tenant))
        return cost

    def _finish(self, session: Session) -> tuple[str, float]:
        session.finished_at = self.clock
        if session in self._resident:
            self._resident.remove(session)
        latency = session.finished_at - session.spec.arrival
        reg = self.tenant_metrics(session.tenant)
        reg.counter("serve.sessions_completed").inc()
        reg.histogram("serve.session_latency_seconds").observe(latency)
        return (f"{session.tenant}/{session.spec.name}", latency)

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self, specs: list[SessionSpec]) -> ServeResult:
        pending = deque(sorted(
            specs, key=lambda s: (s.arrival, s.tenant, s.name)))
        rounds = 0
        self._admit_due(pending)
        while pending or any(self._queues.values()):
            if not any(self._queues.values()):
                # Idle: jump the modeled clock to the next arrival.
                self.clock = max(self.clock, pending[0].arrival)
                self._admit_due(pending)
                continue
            rounds += 1
            completions: list[tuple[str, float]] = []
            backlogged = [t for t, q in self._queues.items() if q]
            for tenant in self.scheduler.round_order(backlogged):
                queue = self._queues[tenant]
                if not queue:
                    continue  # drained earlier this round
                self.scheduler.grant(tenant)
                while queue and self.scheduler.runnable(tenant):
                    session = queue[0]
                    cost = self._run_one_quantum(session)
                    self.scheduler.charge(tenant, cost)
                    if session.done:
                        queue.popleft()
                        completions.append(self._finish(session))
                    # Arrivals up to the advanced clock join their
                    # queues now (and this round, if their turn is
                    # still ahead).
                    self._admit_due(pending)
                if not queue:
                    self.scheduler.drained(tenant)
                else:
                    # Turn ended with work left: the tenant was
                    # throttled to its fair share this round.
                    self.tenant_metrics(tenant).counter(
                        "serve.throttle_events").inc()
            self._sample(rounds, completions)
        return self._result(rounds)

    def _sample(self, round_index: int, completions) -> None:
        depths = {t: len(q) for t, q in sorted(self._queues.items())}
        for tenant, depth in depths.items():
            self.tenant_metrics(tenant).gauge(
                "serve.queue_depth").set(depth)
        sample = {
            "round": round_index,
            "clock": self.clock,
            "queue_depth": depths,
            "completions": completions,
        }
        for dog in self.watchdogs:
            alert = dog.check(sample, self)
            if alert is not None:
                self.alerts.append(alert)

    # ------------------------------------------------------------------
    def _result(self, rounds: int) -> ServeResult:
        session_rows = []
        for s in sorted(self.sessions,
                        key=lambda s: (s.spec.arrival, s.tenant, s.spec.name)):
            if not s.done:
                continue
            session_rows.append({
                "tenant": s.tenant,
                "name": s.spec.name,
                "workload": s.spec.workload,
                "n": s.spec.n,
                "steps": s.spec.steps,
                "seed": s.spec.seed,
                "arrival": s.spec.arrival,
                "started": s.started_at,
                "finished": s.finished_at,
                "wait": s.started_at - s.spec.arrival,
                "latency": s.finished_at - s.spec.arrival,
                "estimated_wait": s.estimated_wait,
                "device_seconds": s.device_seconds,
                "quanta": s.quanta,
                "result": s.result_digest,
            })
        tenants: dict[str, dict] = {}
        total = self.budget.total
        for tenant in sorted(self._metrics):
            rows = [r for r in session_rows if r["tenant"] == tenant]
            lats = [r["latency"] for r in rows]
            reg = self._metrics[tenant]
            counters = reg.as_dict().get("counters", {})
            tenants[tenant] = {
                "completed": len(rows),
                "rejected": int(counters.get("serve.sessions_rejected", 0)),
                "steps": int(sum(r["steps"] for r in rows)),
                "quanta": int(counters.get("serve.quanta", 0)),
                "throttle_events": int(
                    counters.get("serve.throttle_events", 0)),
                "device_seconds": self.budget.spent(tenant),
                "share": (self.budget.spent(tenant) / total
                          if total > 0 else 0.0),
                "latency_p50": percentile(lats, 50),
                "latency_p99": percentile(lats, 99),
            }
        return ServeResult(
            clock=self.clock,
            rounds=rounds,
            total_steps=int(sum(r["steps"] for r in session_rows)),
            sessions=session_rows,
            rejected=list(self._rejected),
            tenants=tenants,
            scheduler=self.scheduler.as_dict(),
            budget=self.budget.as_dict(),
            cache=(self.shared.stats_dict()
                   if self.shared is not None else None),
            alerts=list(self.alerts),
        )
