"""One hosted simulation session.

A :class:`Session` wraps a :class:`~repro.core.Simulation` the way a
service hosts a job: materialized lazily on first scheduling, advanced
one *step quantum* at a time (``Simulation.advance`` — no accounting
reset, so many sessions interleave on one shared tracer, each on its
own timeline lane), and suspendable to an in-memory checkpoint through
the exact ``save_checkpoint`` / ``load_checkpoint`` path — which embeds
the mid-epoch runtime state, so a session evicted from residency and
later resumed retraces the bytes it would have produced had it stayed
resident.

Every modeled cost the session incurs — materialization (the
integrator's construction-time force evaluation), each quantum, and
checkpoint encode/decode — is measured from its own context's counter
deltas through the server's cost model, and is what the fair scheduler
charges against the owning tenant.
"""

from __future__ import annotations

import hashlib
import io
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.machine.counters import Counters
from repro.workloads import (
    galaxy_collision,
    plummer_sphere,
    solar_system,
    uniform_cube,
)

#: Workload registry: spec name -> seeded generator.
WORKLOADS = {
    "galaxy": galaxy_collision,
    "plummer": plummer_sphere,
    "cube": uniform_cube,
    "solar": solar_system,
}


class SessionState:
    """Lifecycle states (plain strings: JSON- and log-friendly)."""

    QUEUED = "queued"        # admitted, waiting for its first quantum
    RESIDENT = "resident"    # materialized, schedulable
    SUSPENDED = "suspended"  # checkpointed to RAM, schedulable
    DONE = "done"
    REJECTED = "rejected"


def final_state_digest(system) -> str:
    """blake2b over the exact final position + velocity bytes.

    Recorded on completion and carried in the serve result rows, so a
    result comparison (time-sliced vs unlimited residency, shared vs
    isolated cache, run vs rerun) is a string equality check.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.ascontiguousarray(system.x).tobytes())
    h.update(np.ascontiguousarray(system.v).tobytes())
    return h.hexdigest()


def _default_config() -> SimulationConfig:
    # Shared-structure-cache eligible (rebuild / reuse 1 / ranks 1).
    return SimulationConfig(algorithm="bvh", traversal="grouped",
                            group_size=16)


@dataclass(frozen=True)
class SessionSpec:
    """An immutable session request (what the traffic generator emits)."""

    tenant: str
    name: str
    workload: str = "plummer"
    n: int = 256
    steps: int = 8
    seed: int = 0
    #: Modeled-clock arrival time, seconds.
    arrival: float = 0.0
    config: SimulationConfig = field(default_factory=_default_config)

    def make_system(self):
        try:
            gen = WORKLOADS[self.workload]
        except KeyError:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {sorted(WORKLOADS)}"
            ) from None
        return gen(self.n, seed=self.seed)

    def describe(self) -> str:
        return (f"{self.tenant}/{self.name}: {self.workload} n={self.n} "
                f"steps={self.steps} seed={self.seed}")


class Session:
    """Lifecycle + cost accounting of one hosted simulation."""

    def __init__(self, spec: SessionSpec, *, server):
        self.spec = spec
        self.server = server
        self.state = SessionState.QUEUED
        self.sim: Simulation | None = None
        self._checkpoint: io.BytesIO | None = None
        self.steps_done = 0
        self.quanta = 0
        #: Modeled device seconds this session has been charged.
        self.device_seconds = 0.0
        self.admitted_at = 0.0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: Deterministic modeled wait estimate from admission.
        self.estimated_wait = 0.0
        #: Trace lane the server assigned (0 = untraced).
        self.lane = 0
        #: Digest of the final (x, v) state, set on completion.
        self.result_digest: str | None = None

    # ------------------------------------------------------------------
    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def remaining(self) -> int:
        return self.spec.steps - self.steps_done

    @property
    def done(self) -> bool:
        return self.remaining <= 0

    @property
    def resident(self) -> bool:
        return self.sim is not None

    def _delta_cost(self, sim: Simulation, before: dict) -> float:
        """Modeled seconds of work since *before* (bucket snapshots)."""
        from repro.obs.tracer import _bucket_delta

        total = 0.0
        model = self.server.model
        for name, c in sim.ctx.step_counters.steps.items():
            d = _bucket_delta(before.get(name, {}), c.as_dict())
            if d:
                cd = Counters()
                cd.add(**d)
                total += model.step_time(cd).total
        return total

    def _checkpoint_cost(self) -> float:
        """Modeled seconds of one state encode/decode pass.

        One streaming read + write of the SoA state (positions,
        velocities, masses): the suspend and the resume each pay this.
        """
        n = self.spec.n
        dim = 3
        nbytes = (2.0 * dim + 1.0) * 8.0 * n
        c = Counters()
        c.add(bytes_read=nbytes, bytes_written=nbytes,
              loop_iterations=float(n), kernel_launches=1.0)
        return self.server.model.step_time(c).total

    # ------------------------------------------------------------------
    def materialize(self) -> float:
        """Create (or resume) the Simulation; returns the modeled cost."""
        if self.sim is not None:
            return 0.0
        ctx = self.server._session_ctx(self)
        cost = 0.0
        if self._checkpoint is not None:
            from repro.io import load_checkpoint

            self._checkpoint.seek(0)
            sim = load_checkpoint(
                self._checkpoint, ctx=ctx,
                tree_cache=self.server._session_tree_cache(),
            )
            self._checkpoint = None
            cost += self._checkpoint_cost()
        else:
            spec = self.spec
            sim = Simulation(
                spec.make_system(), spec.config, ctx=ctx,
                tree_cache=self.server._session_tree_cache(),
            )
        # The construction-time force evaluation is real service work:
        # charge it to the tenant like any quantum.
        cost += self._delta_cost(sim, {})
        self.sim = sim
        self.state = SessionState.RESIDENT
        return cost

    def run_quantum(self, quantum_steps: int) -> float:
        """Advance up to *quantum_steps*; returns the modeled cost."""
        assert self.sim is not None, "session not resident"
        n_steps = min(quantum_steps, self.remaining)
        rep = self.sim.advance(n_steps)
        self.steps_done += n_steps
        self.quanta += 1
        # advance() reports exactly this quantum's counter deltas.
        cost = self.server.model.total_time(rep.counters)
        if self.done:
            self.result_digest = final_state_digest(self.sim.system)
            self.state = SessionState.DONE
            self.sim = None
        return cost

    def suspend(self) -> float:
        """Checkpoint to RAM and release residency; returns the cost.

        Goes through the real checkpoint writer, mid-epoch runtime
        state included, so the later resume is bit-exact.
        """
        assert self.sim is not None, "session not resident"
        from repro.io import save_checkpoint

        buf = io.BytesIO()
        save_checkpoint(buf, self.sim)
        self._checkpoint = buf
        self.sim = None
        self.state = SessionState.SUSPENDED
        return self._checkpoint_cost()
