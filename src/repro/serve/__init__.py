"""repro.serve — multi-tenant simulation-as-a-service session runtime.

The service layer the ROADMAP's "millions of users, heavy traffic"
north star asks for: many concurrent :class:`~repro.core.Simulation`
sessions sharing one modeled device budget.

* :mod:`repro.serve.session` — one hosted simulation: lazy
  materialization, step-quantum execution, checkpoint-backed
  suspend/resume (bit-exact, including mid-epoch cached-list state).
* :mod:`repro.serve.admission` — per-tenant quotas, FIFO queues,
  backpressure with deterministic rejection codes and modeled wait
  estimates.
* :mod:`repro.serve.scheduler` — deficit round-robin over modeled
  device-seconds from :mod:`repro.machine.costmodel`; no tenant
  exceeds its share by more than one step-quantum's cost.
* :mod:`repro.serve.cache` — cross-session structure sharing:
  content-addressed entries keyed by (structure, config fingerprint,
  state digest) with an LRU byte budget, so identical-config tenants
  share tree builds and interaction lists and a stale or mismatched
  list can never be served.
* :mod:`repro.serve.server` — the :class:`SessionServer` event loop on
  the deterministic modeled clock, per-tenant metrics lanes and
  watchdogs, per-session trace lanes.
* :mod:`repro.serve.traffic` — seeded synthetic traffic (arrival
  process + mixed request classes) for ``bench_serve_traffic.py`` and
  the ``repro-nbody serve`` CLI.

Wire-up::

    from repro.serve import SessionServer, TenantQuota, generate_traffic
    server = SessionServer(shared_cache=True)
    specs = generate_traffic(seed=7, tenants=4, sessions_per_tenant=3)
    result = server.run(specs)
    print(result.summary())
"""

from repro.serve.admission import (
    REJECT_SERVER_SATURATED,
    REJECT_TENANT_QUEUE_FULL,
    AdmissionController,
    AdmissionResult,
    TenantQuota,
)
from repro.serve.cache import SharedStructureCache, config_fingerprint, state_digest
from repro.serve.scheduler import DeficitRoundRobin
from repro.serve.server import ServeResult, SessionServer
from repro.serve.session import Session, SessionSpec, SessionState
from repro.serve.telemetry import (
    QueueDepthWatchdog,
    SessionLatencyWatchdog,
    percentile,
    serve_watchdogs,
)
from repro.serve.traffic import RequestClass, default_classes, generate_traffic

__all__ = [
    "SessionServer",
    "ServeResult",
    "Session",
    "SessionSpec",
    "SessionState",
    "AdmissionController",
    "AdmissionResult",
    "TenantQuota",
    "REJECT_TENANT_QUEUE_FULL",
    "REJECT_SERVER_SATURATED",
    "DeficitRoundRobin",
    "SharedStructureCache",
    "config_fingerprint",
    "state_digest",
    "RequestClass",
    "default_classes",
    "generate_traffic",
    "percentile",
    "serve_watchdogs",
    "QueueDepthWatchdog",
    "SessionLatencyWatchdog",
]
