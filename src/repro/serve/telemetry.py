"""Service-level telemetry: percentiles and serve watchdogs.

The per-simulation watchdogs of :mod:`repro.obs.watchdog` guard
physics invariants; these guard *service* invariants — queue depth and
session latency — over the samples the :class:`SessionServer` takes at
the end of every scheduler round.  They reuse the same
:class:`~repro.obs.watchdog.Alert` record type so alerts from both
layers aggregate in one report.
"""

from __future__ import annotations

from repro.obs.watchdog import Alert


def percentile(values, p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``p`` in [0, 100].  Returns 0.0 for an empty sequence — the serve
    report prints percentiles before the first completion.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    xs = sorted(values)
    if not xs:
        return 0.0
    if p == 0.0:
        return float(xs[0])
    rank = max(1, -(-len(xs) * p // 100))  # ceil(len * p / 100)
    return float(xs[int(rank) - 1])


class QueueDepthWatchdog:
    """Fires when any tenant's waiting queue exceeds *threshold*."""

    kind = "serve_queue_depth"

    def __init__(self, threshold: int = 16):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = int(threshold)

    def check(self, sample: dict, server) -> Alert | None:
        depths = sample.get("queue_depth", {})
        worst = max(depths.items(), key=lambda kv: (kv[1], kv[0]),
                    default=None)
        if worst is None or worst[1] <= self.threshold:
            return None
        return Alert(
            step=int(sample.get("round", 0)),
            kind=self.kind,
            message=(f"tenant {worst[0]!r} queue depth {worst[1]} exceeds "
                     f"{self.threshold}"),
            value=float(worst[1]),
        )


class SessionLatencyWatchdog:
    """Fires when a completed session's latency exceeds *threshold*.

    Latency is modeled seconds from arrival to completion — the
    quantity the p50/p99 traffic study reports.
    """

    kind = "serve_session_latency"

    def __init__(self, threshold_seconds: float):
        if threshold_seconds <= 0:
            raise ValueError("threshold_seconds must be positive")
        self.threshold_seconds = float(threshold_seconds)

    def check(self, sample: dict, server) -> Alert | None:
        worst = None
        for name, latency in sample.get("completions", ()):
            if latency > self.threshold_seconds and (
                    worst is None or latency > worst[1]):
                worst = (name, latency)
        if worst is None:
            return None
        return Alert(
            step=int(sample.get("round", 0)),
            kind=self.kind,
            message=(f"session {worst[0]!r} latency {worst[1]:.3e}s exceeds "
                     f"{self.threshold_seconds:.3e}s"),
            value=float(worst[1]),
        )


def serve_watchdogs(
    *, queue_depth: int = 16, latency_seconds: float | None = None,
) -> list:
    """The default serve watchdog set."""
    dogs: list = [QueueDepthWatchdog(queue_depth)]
    if latency_seconds is not None:
        dogs.append(SessionLatencyWatchdog(latency_seconds))
    return dogs
