"""Admission control: per-tenant quotas, FIFO queues, backpressure.

Every arriving :class:`~repro.serve.session.SessionSpec` passes through
the :class:`AdmissionController` before it may consume device time.
The decision is deterministic — a pure function of the server's
current occupancy — and a rejection carries a machine-readable code:

* :data:`REJECT_TENANT_QUEUE_FULL` — the tenant already has
  ``max_queued`` sessions waiting; admitting more would only grow its
  own backlog (per-tenant backpressure).
* :data:`REJECT_SERVER_SATURATED` — the server is at its global
  session capacity across all tenants (global backpressure).

Admitted sessions get a **modeled wait estimate**: the backlog of
device-seconds ahead of the new session (every unfinished session's
remaining steps times its observed — or, before any observation, a
nominal — per-step cost), scaled by the tenant's fair share of the
weights.  Because backlog and costs are modeled quantities, the
estimate is bit-reproducible run to run; the traffic benchmark
compares it against realized waits.
"""

from __future__ import annotations

from dataclasses import dataclass

REJECT_TENANT_QUEUE_FULL = "tenant-queue-full"
REJECT_SERVER_SATURATED = "server-saturated"

#: Per-step cost guess (modeled seconds per body-step) used for
#: sessions whose workload class has not been observed yet.  Only the
#: *estimate* uses it; actual charging always uses measured costs.
NOMINAL_SECONDS_PER_BODY_STEP = 2e-9


@dataclass(frozen=True)
class TenantQuota:
    """Fair-share weight and backpressure bounds of one tenant."""

    #: DRR weight: relative share of modeled device time.
    weight: float = 1.0
    #: Sessions a tenant may have unfinished (queued + schedulable).
    max_active: int = 8
    #: Of those, how many may still be waiting for their first quantum.
    max_queued: int = 8

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("quota weight must be positive")
        if self.max_active < 1 or self.max_queued < 1:
            raise ValueError("quota bounds must be at least 1")


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of offering one spec to the controller."""

    admitted: bool
    #: Rejection code (None when admitted).
    code: str | None = None
    #: Deterministic modeled seconds until the session's first quantum
    #: (0.0 on rejection).
    estimated_wait: float = 0.0


class AdmissionController:
    """Stateless policy over the server's occupancy snapshot."""

    def __init__(
        self,
        *,
        max_sessions: int = 64,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
    ):
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.max_sessions = int(max_sessions)
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()

    def quota(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    # ------------------------------------------------------------------
    def offer(self, spec, occupancy) -> AdmissionResult:
        """Admit or reject *spec* against an :class:`Occupancy` snapshot."""
        q = self.quota(spec.tenant)
        active = occupancy.active_by_tenant.get(spec.tenant, 0)
        queued = occupancy.queued_by_tenant.get(spec.tenant, 0)
        if queued >= q.max_queued or active >= q.max_active:
            return AdmissionResult(False, code=REJECT_TENANT_QUEUE_FULL)
        if occupancy.total_active >= self.max_sessions:
            return AdmissionResult(False, code=REJECT_SERVER_SATURATED)
        return AdmissionResult(
            True, estimated_wait=self.estimate_wait(spec, occupancy)
        )

    def estimate_wait(self, spec, occupancy) -> float:
        """Modeled seconds before *spec* would get its first quantum.

        The modeled clock advances exactly as fast as work is charged
        (aggregate service rate 1), of which the tenant is guaranteed
        its weight fraction; the new session reaches the front of its
        own queue once the tenant's current backlog has been served at
        that guaranteed rate.  This is the GPS bound the deficit
        round-robin approximates to within one step-quantum.
        """
        q = self.quota(spec.tenant)
        total_w = sum(
            self.quota(t).weight for t in occupancy.tenants_with_work(spec.tenant)
        )
        share = q.weight / total_w if total_w > 0 else 1.0
        own = occupancy.backlog_by_tenant.get(spec.tenant, 0.0)
        return own / share


@dataclass
class Occupancy:
    """The server-state snapshot admission decisions read."""

    #: Unfinished (schedulable or queued) sessions per tenant.
    active_by_tenant: dict
    #: Sessions that have not run their first quantum yet, per tenant.
    queued_by_tenant: dict
    #: Estimated remaining modeled seconds per tenant.
    backlog_by_tenant: dict

    @property
    def total_active(self) -> int:
        return sum(self.active_by_tenant.values())

    @property
    def total_backlog(self) -> float:
        return sum(self.backlog_by_tenant.values())

    def tenants_with_work(self, plus: str) -> set:
        out = {t for t, k in self.active_by_tenant.items() if k > 0}
        out.add(plus)
        return out
