"""Seeded synthetic traffic for the service layer.

A traffic pattern is a list of :class:`~repro.serve.session.
SessionSpec` with modeled-clock arrival times: a Poisson process
(exponential interarrivals) over a weighted mix of request classes,
drawn from one ``numpy`` generator seeded by the caller.  The same
seed always produces the same specs — arrival times, tenants, classes,
workload seeds — which is what makes two serve benchmark runs
byte-comparable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SimulationConfig
from repro.serve.session import WORKLOADS, SessionSpec


def _grouped_config() -> SimulationConfig:
    return SimulationConfig(algorithm="bvh", traversal="grouped",
                            group_size=16)


@dataclass(frozen=True)
class RequestClass:
    """One kind of session request in the traffic mix."""

    name: str
    workload: str
    n: int
    steps: int
    #: Relative probability of drawing this class.
    weight: float = 1.0
    config: SimulationConfig = field(default_factory=_grouped_config)

    def __post_init__(self):
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.weight <= 0:
            raise ValueError("class weight must be positive")


def default_classes() -> list[RequestClass]:
    """A small interactive/batch mix (sized for the smoke benchmark)."""
    return [
        RequestClass("interactive", "plummer", n=192, steps=4, weight=3.0),
        RequestClass("batch", "galaxy", n=384, steps=8, weight=1.0),
        RequestClass("sweep", "cube", n=256, steps=6, weight=1.0),
    ]


def generate_traffic(
    *,
    seed: int,
    tenants: int = 4,
    sessions_per_tenant: int = 4,
    classes: list[RequestClass] | None = None,
    mean_interarrival: float = 0.0,
    identical: bool = False,
) -> list[SessionSpec]:
    """Deterministic session specs for *tenants* x *sessions_per_tenant*.

    Arrivals follow exponential interarrivals with *mean_interarrival*
    modeled seconds (0 = everything arrives at t=0: a closed-system
    saturation test); classes are drawn by weight; workload seeds are
    drawn per session so no two sessions share initial conditions —
    unless *identical* is set, which gives every session the same class
    and workload seed (the shared-structure-cache scenario: N tenants
    running the same query).
    """
    if tenants < 1 or sessions_per_tenant < 1:
        raise ValueError("tenants and sessions_per_tenant must be >= 1")
    if mean_interarrival < 0:
        raise ValueError("mean_interarrival must be non-negative")
    classes = list(classes) if classes is not None else default_classes()
    if not classes:
        raise ValueError("classes must be non-empty")
    rng = np.random.default_rng(seed)
    weights = np.array([c.weight for c in classes], dtype=float)
    weights /= weights.sum()

    specs: list[SessionSpec] = []
    clock = 0.0
    total = tenants * sessions_per_tenant
    for i in range(total):
        if mean_interarrival > 0:
            clock += float(rng.exponential(mean_interarrival))
        tenant = f"tenant-{i % tenants}"
        if identical:
            cls = classes[0]
            wl_seed = int(seed)
        else:
            cls = classes[int(rng.choice(len(classes), p=weights))]
            wl_seed = int(rng.integers(0, 2**31 - 1))
        specs.append(SessionSpec(
            tenant=tenant,
            name=f"s{i:03d}-{cls.name}",
            workload=cls.workload,
            n=cls.n,
            steps=cls.steps,
            seed=wl_seed,
            arrival=clock,
            config=cls.config,
        ))
    return specs
