"""Deficit round-robin over modeled device-seconds.

Classic DRR (Shreedhar & Varghese), with the byte counter replaced by
the cost model's modeled device time: every round, each backlogged
tenant's deficit grows by ``weight x quantum`` seconds, and the tenant
runs head-of-line session quanta — charged at their *actual* modeled
cost — for as long as the deficit stays positive.  A tenant whose
queue drains forfeits its leftover deficit (no banking while idle).

Because a quantum's cost is only known after it runs, a tenant can
overdraw its deficit by at most one quantum's cost — the classic DRR
fairness bound, which ``tests/test_serve_scheduler.py`` asserts: over
any backlogged window, no tenant's charged time exceeds its weight
share of the round grants by more than the largest single quantum.

The quantum (seconds of deficit granted per round per unit weight) is
auto-calibrated by default: it starts at a small floor and tracks the
largest observed quantum cost, so one grant is always enough to run at
least one quantum (a fixed too-small quantum would stall every tenant
below the head-of-line cost; a too-large one would degrade to plain
round-robin bursts).
"""

from __future__ import annotations

#: Starting quantum before any cost has been observed, seconds.
_QUANTUM_FLOOR = 1e-9


class DeficitRoundRobin:
    """Fair-share policy object; the server's event loop drives it."""

    def __init__(self, *, quantum: float | None = None):
        if quantum is not None and quantum <= 0:
            raise ValueError("quantum must be positive")
        self._fixed_quantum = quantum
        self._max_seen = 0.0
        self._weights: dict[str, float] = {}
        self._deficit: dict[str, float] = {}
        #: Registration order — the stable round-robin ring order.
        self._ring: list[str] = []
        #: Grants and charges, for fairness accounting/tests.
        self.granted: dict[str, float] = {}
        self.charged: dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def quantum(self) -> float:
        """Deficit seconds granted per round per unit weight."""
        if self._fixed_quantum is not None:
            return self._fixed_quantum
        return max(self._max_seen, _QUANTUM_FLOOR)

    def register(self, tenant: str, weight: float = 1.0) -> None:
        if tenant in self._weights:
            return
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[tenant] = float(weight)
        self._deficit[tenant] = 0.0
        self.granted[tenant] = 0.0
        self.charged[tenant] = 0.0
        self._ring.append(tenant)

    def round_order(self, backlogged) -> list[str]:
        """The ring restricted to tenants with work, in stable order."""
        want = set(backlogged)
        return [t for t in self._ring if t in want]

    # ------------------------------------------------------------------
    def grant(self, tenant: str) -> None:
        """Start the tenant's turn: one round's worth of deficit."""
        inc = self._weights[tenant] * self.quantum
        self._deficit[tenant] += inc
        self.granted[tenant] += inc

    def runnable(self, tenant: str) -> bool:
        """May the tenant run (another) quantum this turn?"""
        return self._deficit[tenant] > 0.0

    def charge(self, tenant: str, cost: float) -> None:
        """Account one quantum's actual modeled cost."""
        self._deficit[tenant] -= cost
        self.charged[tenant] += cost
        if cost > self._max_seen:
            self._max_seen = cost

    def drained(self, tenant: str) -> None:
        """The tenant's queue emptied: leftover deficit is forfeited."""
        self._deficit[tenant] = 0.0

    def deficit(self, tenant: str) -> float:
        return self._deficit[tenant]

    # ------------------------------------------------------------------
    def fairness_slack(self, tenant: str) -> float:
        """``charged - granted`` — bounded by one quantum's cost."""
        return self.charged[tenant] - self.granted[tenant]

    def as_dict(self) -> dict:
        return {
            "quantum": self.quantum,
            "granted": dict(self.granted),
            "charged": dict(self.charged),
        }
