"""Shared numeric types and small helpers.

The paper uses double precision (FP64) throughout to enable comparison
with Thüring et al.; we follow suit.  All body state is stored in
structure-of-arrays (SoA) ``numpy`` arrays, which is both the fast layout
for vectorized Python and the layout the C++ artifact uses.
"""

from __future__ import annotations

import numpy as np

#: Floating point dtype used for positions, velocities, masses, forces.
FLOAT = np.float64

#: Integer dtype used for node/body indices and offsets.  The paper's
#: octree stores one 4-byte child offset per node; int32 would match, but
#: we use int64 to allow the larger node pools Python-side without
#: wraparound checks.  The *layout semantics* (one offset per node, one
#: parent offset per sibling group) are preserved.
INDEX = np.int64

#: Unsigned dtype for Morton / Hilbert codes (up to 21 bits per dimension
#: in 3D = 63 bits).
CODE = np.uint64

#: Number of spatial dimensions.  The library supports 2D (quadtree,
#: matching paper Figure 1's exposition) and 3D (octree, used for all
#: experiments).
DEFAULT_DIM = 3


def as_float_array(a, name: str = "array") -> np.ndarray:
    """Convert *a* to a contiguous FP64 array, validating finiteness."""
    arr = np.ascontiguousarray(a, dtype=FLOAT)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def validate_positions(x: np.ndarray, dim: int | None = None) -> np.ndarray:
    """Validate an ``(N, dim)`` position array and return it contiguous."""
    arr = as_float_array(x, "positions")
    if arr.ndim != 2:
        raise ValueError(f"positions must be 2-D (N, dim), got shape {arr.shape}")
    if dim is not None and arr.shape[1] != dim:
        raise ValueError(f"positions must have dim={dim}, got {arr.shape[1]}")
    if arr.shape[1] not in (2, 3):
        raise ValueError(f"only 2-D and 3-D supported, got dim={arr.shape[1]}")
    return arr


def validate_masses(m: np.ndarray, n: int) -> np.ndarray:
    """Validate an ``(N,)`` mass array (non-negative, finite)."""
    arr = as_float_array(m, "masses")
    if arr.shape != (n,):
        raise ValueError(f"masses must have shape ({n},), got {arr.shape}")
    if np.any(arr < 0):
        raise ValueError("masses must be non-negative")
    return arr
