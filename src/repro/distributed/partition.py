"""Hilbert-key-range domain decomposition.

Every body is assigned the Hilbert index of its grid cell (the same
Skilling encoding the BVH sort uses); a rank owns one *contiguous*
range of the curve.  Contiguity is what makes the scheme work: the
Hilbert curve's locality means a contiguous key range is a compact
blob of space, so a rank's domain has small surface area and its halo
(the locally essential tree, :mod:`repro.distributed.let`) stays small.
This is the Cornerstone-style decomposition (Keller et al.), and the
*work-weighted* split variant is Becciani et al.'s work-sharing: split
points are placed at equal cumulative *work* rather than equal body
counts, with per-body work fed back from the machine counters of the
previous force evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.aabb import AABB, compute_bounding_box, cubify, quantize_to_grid
from repro.geometry.hilbert import hilbert_encode
from repro.geometry.morton import MAX_BITS_2D, MAX_BITS_3D
from repro.types import FLOAT, INDEX

DECOMPOSITION_MODES = ("static", "weighted")


def hilbert_keys(x: np.ndarray, box: AABB, *, bits: int | None = None) -> np.ndarray:
    """Hilbert index of every body on the cubified *box* grid."""
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    if bits is None:
        bits = MAX_BITS_3D if dim == 3 else MAX_BITS_2D
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    return hilbert_encode(quantize_to_grid(x, cubify(box), bits), bits)


@dataclass(frozen=True)
class DomainDecomposition:
    """A partition of bodies into contiguous Hilbert-key ranges.

    ``order`` is the curve-sorted permutation of global body ids; rank
    ``r`` owns the sorted rows ``offsets[r]:offsets[r+1]``.  The split
    points double as *key* boundaries (``key_splits``) so that bodies
    drifting between rebalances can be re-binned against the cached
    splits without recomputing the partition.
    """

    n_ranks: int
    order: np.ndarray       # (n,) global body ids in Hilbert order
    offsets: np.ndarray     # (n_ranks + 1,) split points into `order`
    key_splits: np.ndarray  # (n_ranks + 1,) Hilbert-key range boundaries
    mode: str = "static"

    @property
    def n_bodies(self) -> int:
        return int(self.order.shape[0])

    @property
    def counts(self) -> np.ndarray:
        """Bodies owned per rank."""
        return np.diff(self.offsets)

    def members(self, rank: int) -> np.ndarray:
        """Global body ids owned by *rank* (in Hilbert order)."""
        return self.order[int(self.offsets[rank]):int(self.offsets[rank + 1])]

    def rank_of(self) -> np.ndarray:
        """Owning rank of every global body id."""
        out = np.empty(self.n_bodies, dtype=INDEX)
        for r in range(self.n_ranks):
            out[self.members(r)] = r
        return out

    def assign(self, keys: np.ndarray) -> np.ndarray:
        """Re-bin bodies against the cached key splits (post-drift)."""
        r = np.searchsorted(self.key_splits[1:-1], keys, side="right")
        return r.astype(INDEX)

    def domain_boxes(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Tight per-rank AABBs over the current member positions.

        Empty ranks get inverted boxes (``lo > hi``): the LET walk's
        distance-to-box then stays finite and the rank simply exchanges
        nothing.
        """
        x = np.asarray(x, dtype=FLOAT)
        dim = x.shape[1]
        lo = np.full((self.n_ranks, dim), np.inf, dtype=FLOAT)
        hi = np.full((self.n_ranks, dim), -np.inf, dtype=FLOAT)
        for r in range(self.n_ranks):
            xm = x[self.members(r)]
            if xm.shape[0]:
                lo[r] = xm.min(axis=0)
                hi[r] = xm.max(axis=0)
        return lo, hi


def _split_offsets(cumulative: np.ndarray, n_ranks: int) -> np.ndarray:
    """Split points that equalize *cumulative* (monotone) across ranks."""
    n = cumulative.shape[0]
    total = float(cumulative[-1]) if n else 0.0
    targets = total * np.arange(1, n_ranks) / n_ranks
    cuts = np.searchsorted(cumulative, targets, side="right")
    offsets = np.empty(n_ranks + 1, dtype=INDEX)
    offsets[0] = 0
    offsets[1:-1] = cuts
    offsets[-1] = n
    # Monotonicity: degenerate weights can collapse consecutive cuts.
    np.maximum.accumulate(offsets, out=offsets)
    return offsets


def decompose(
    x: np.ndarray,
    n_ranks: int,
    *,
    box: AABB | None = None,
    mode: str = "static",
    weights: np.ndarray | None = None,
    bits: int | None = None,
    keys: np.ndarray | None = None,
) -> DomainDecomposition:
    """Partition bodies into *n_ranks* contiguous Hilbert ranges.

    ``mode="static"`` splits at equal body counts; ``mode="weighted"``
    splits at equal cumulative per-body *work* (``weights``; counts
    when omitted).  Precomputed *keys* may be passed to skip encoding.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if mode not in DECOMPOSITION_MODES:
        raise ValueError(f"mode must be one of {DECOMPOSITION_MODES}, got {mode!r}")
    x = np.asarray(x, dtype=FLOAT)
    n = x.shape[0]
    if keys is None:
        if box is None:
            box = compute_bounding_box(x) if n else AABB.empty(x.shape[1])
        keys = hilbert_keys(x, box, bits=bits)
    order = np.argsort(keys, kind="stable").astype(INDEX)
    sorted_keys = keys[order]

    if mode == "weighted" and weights is not None and n:
        w = np.asarray(weights, dtype=FLOAT)[order]
        w = np.maximum(w, 0.0)
        if not np.isfinite(w).all() or w.sum() <= 0.0:
            w = np.ones(n, dtype=FLOAT)
        cumulative = np.cumsum(w)
    else:
        cumulative = np.arange(1, n + 1, dtype=FLOAT)
    offsets = _split_offsets(cumulative, n_ranks)

    # Key-range boundaries at the split points (half-open ranges); the
    # extremes are pinned so every representable key falls in a range.
    key_splits = np.zeros(n_ranks + 1, dtype=np.uint64)
    key_splits[-1] = np.uint64(np.iinfo(np.uint64).max)
    for r in range(1, n_ranks):
        cut = int(offsets[r])
        key_splits[r] = sorted_keys[cut] if cut < n else key_splits[-1]
    return DomainDecomposition(n_ranks, order, offsets, key_splits, mode)
