"""Work-weighted rebalancing of the domain decomposition.

The static decomposition splits the Hilbert curve at equal body counts,
which equalizes *memory* but not *work*: clustered regions open far
more tree nodes per body than void regions.  The weighted mode
(Becciani et al.'s work-sharing) splits at equal cumulative per-body
cost instead, with the cost fed back from the machine counters: after
each force evaluation the per-rank modeled seconds are smeared over the
rank's bodies and used as the weights of the next rebalance.

Rebalancing every step would thrash (the split points chase noise and
every move is a migration the fabric charges for), so the balancer
fires on a fixed cadence — ``rebalance_steps`` from the simulation
config — and the decomposition's cached key splits re-bin drifting
bodies in between.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.partition import DomainDecomposition
from repro.types import FLOAT


class WorkBalancer:
    """Cadence + feedback state for split-point recomputation."""

    def __init__(self, rebalance_steps: int, mode: str = "static"):
        self.rebalance_steps = max(int(rebalance_steps), 1)
        self.mode = mode
        #: Per-body modeled seconds from the most recent observation
        #: (global body order); None until the first force evaluation.
        self.weights: np.ndarray | None = None
        self._calls = 0

    def tick(self) -> bool:
        """Advance one step; True when the split points are due."""
        due = (self._calls % self.rebalance_steps) == 0
        self._calls += 1
        return due

    def observe(self, decomp: DomainDecomposition, rank_seconds: np.ndarray) -> None:
        """Record per-rank modeled force seconds as per-body weights.

        The smearing (rank seconds / rank count) is deliberately coarse:
        per-body traversal lengths are available but noisy, and the
        split points only need the *integral* of work along the curve.
        """
        rank_seconds = np.asarray(rank_seconds, dtype=FLOAT)
        w = np.ones(decomp.n_bodies, dtype=FLOAT)
        counts = decomp.counts
        for r in range(decomp.n_ranks):
            if counts[r] > 0:
                w[decomp.members(r)] = rank_seconds[r] / counts[r]
        self.weights = w

    def weights_for(self, n_bodies: int) -> np.ndarray | None:
        """Weights to feed the next rebalance (None → equal counts)."""
        if self.mode != "weighted" or self.weights is None:
            return None
        if self.weights.shape[0] != n_bodies:
            return None
        return self.weights

    @staticmethod
    def imbalance(rank_seconds: np.ndarray) -> float:
        """Load-imbalance factor: max over mean (1.0 = perfect)."""
        rank_seconds = np.asarray(rank_seconds, dtype=FLOAT)
        mean = float(rank_seconds.mean()) if rank_seconds.size else 0.0
        if mean <= 0.0:
            return 1.0
        return float(rank_seconds.max()) / mean
