"""Deterministic simulated multi-rank runtime (BSP step pipeline).

One process *plays* K ranks: every rank's work runs locally, in rank
order, against its own :class:`~repro.stdpar.context.ExecutionContext`,
and every exchange goes through the modeled
:class:`~repro.distributed.fabric.Fabric` instead of a real wire.  The
physics is therefore exactly reproducible (no MPI nondeterminism) while
the *accounting* is what a real K-rank machine would see: per-rank
operation counters, per-rank fabric seconds, and a bulk-synchronous
step time of ``max`` over ranks.

The per-timestep pipeline extends the paper's Algorithm 2/6 with two
distributed phases::

    partition   Hilbert keys, split-point re-bin (or rebalance),
                body migration between owners
    bounding_box/sort/build_tree/multipoles
                per-rank local trees (the existing kernels, verbatim)
    exchange    LET halo selection + fabric transfer of halo nodes
    force       local tree force + cross-rank force against every
                remote tree (the walk provably stays inside the
                exchanged LET; see repro.distributed.let)

``ranks=1`` never reaches this module — ``core.Simulation`` bypasses it
entirely, so the single-rank path stays bit-identical to the kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distributed.balance import WorkBalancer
from repro.distributed.fabric import Fabric, FabricTraffic
from repro.distributed.let import (
    build_let_plan,
    let_refresh_bytes,
    remote_accelerations,
)
from repro.distributed.partition import DomainDecomposition, decompose
from repro.errors import ConfigurationError
from repro.geometry.aabb import compute_bounding_box, cubify
from repro.geometry.morton import MAX_BITS_2D, MAX_BITS_3D
from repro.machine.costmodel import CostModel
from repro.machine.counters import StepCounters
from repro.maintenance.disorder import coarsen_keys, key_disorder, sense_bits
from repro.stdpar.context import ExecutionContext
from repro.traversal.dual import account_dual_force
from repro.traversal.engine import account_grouped_force
from repro.traversal.groups import make_groups
from repro.types import FLOAT, INDEX

#: Wire size of one migrated body: position + velocity + mass.
def _body_bytes(dim: int) -> float:
    return (2.0 * dim + 1.0) * 8.0


@dataclass
class DistributedReport:
    """Per-step accounting of one distributed force evaluation."""

    n_ranks: int
    counts: np.ndarray                   # bodies per rank
    rank_counters: list[StepCounters]    # per-rank operation counts
    traffic: FabricTraffic               # fabric bytes/messages/seconds
    let_bytes: np.ndarray                # (K, K) LET halo bytes src→dst
    migrated: int                        # bodies that changed owner
    rebalanced: bool                     # split points recomputed?
    decomposition: DomainDecomposition = field(repr=False, default=None)  # type: ignore[assignment]

    def model_rank_seconds(self, model: CostModel) -> np.ndarray:
        """Modeled seconds per rank: device compute + fabric time.

        Pass a :class:`CostModel` *without* an interconnect — per-link
        fabric times are already in ``traffic.rank_seconds``, and the
        model's single-link ``comm`` term would double-charge them.
        """
        compute = np.array(
            [model.total_time(sc) for sc in self.rank_counters], dtype=FLOAT
        )
        return compute + self.traffic.rank_seconds

    def model_step_seconds(self, model: CostModel) -> float:
        """Bulk-synchronous step time: the slowest rank."""
        return float(self.model_rank_seconds(model).max())

    def comm_compute_split(self, model: CostModel) -> tuple[np.ndarray, np.ndarray]:
        """(compute seconds, comm seconds) per rank."""
        compute = np.array(
            [model.total_time(sc) for sc in self.rank_counters], dtype=FLOAT
        )
        return compute, self.traffic.rank_seconds.copy()

    def imbalance(self, model: CostModel) -> float:
        return WorkBalancer.imbalance(self.model_rank_seconds(model))


class DistributedRuntime:
    """Runs the distributed pipeline for ``config.ranks`` simulated ranks."""

    def __init__(self, config, ctx: ExecutionContext):
        if config.algorithm not in ("octree", "bvh"):
            raise ConfigurationError(
                f"ranks > 1 requires a tree algorithm (octree or bvh), "
                f"got {config.algorithm!r}"
            )
        self.config = config
        self.ctx = ctx
        self.n_ranks = int(config.ranks)
        if config.ranks_per_node and config.ranks_per_node < self.n_ranks:
            self.fabric = Fabric.hierarchical(
                self.n_ranks, config.ranks_per_node,
                config.interconnect, config.inter_interconnect,
            )
        else:
            self.fabric = Fabric.uniform(self.n_ranks, config.interconnect)
        self.balancer = WorkBalancer(config.rebalance_steps, config.decomposition)
        #: One execution context per simulated rank: same device /
        #: backend / toolchain as the session, separate accounting.
        self.rank_ctx = [
            ExecutionContext(
                ctx.device, backend=ctx.backend, toolchain=ctx.toolchain,
                on_progress_violation=ctx.on_progress_violation,
                warp_width=ctx.warp_width,
            )
            for _ in range(self.n_ranks)
        ]
        self._decomp: DomainDecomposition | None = None
        self._prev_rank_of: np.ndarray | None = None
        self.last_report: DistributedReport | None = None
        #: Cost model used only to convert rank counters into the
        #: per-body weights the work-weighted rebalance feeds on.
        self._feedback_model = CostModel(ctx.device, toolchain=ctx.toolchain)
        # --- incremental maintenance (config.tree_update != "rebuild") -
        from repro.maintenance.keycache import KeyCache

        #: Shared curve-key cache: the partitioner computes global keys
        #: once per step; the per-rank BVH sorts reuse them (satellite
        #: dedupe) instead of re-encoding on per-rank grids.
        self._keycache = KeyCache()
        self._epoch: dict | None = None
        self.maint_counts = {"rebuild": 0, "refit": 0}
        self._last_trees: list | None = None
        self._last_plans: list | None = None
        #: Set by checkpoint resume (repro.core.suspend): the next
        #: evaluation replays the restored decomposition verbatim and
        #: does not advance the rebalance cadence, so the replayed
        #: construction-time evaluation leaves the cadence phase exactly
        #: where the suspended run had it.
        self._resume_replay = False

    # ------------------------------------------------------------------
    def accelerations(self, system) -> np.ndarray:
        """One distributed force evaluation; global body order in/out."""
        cfg = self.config
        x = np.asarray(system.x, dtype=FLOAT)
        m = np.asarray(system.m, dtype=FLOAT)
        n, dim = x.shape
        K = self.n_ranks
        for rc in self.rank_ctx:
            rc.reset_accounting()
        self.fabric.reset()
        tracer = self.ctx.tracer
        # Driver clock when this evaluation starts: the per-rank lanes
        # emitted at the end are anchored here so they line up with the
        # driver's partition/exchange/force spans in the trace viewer.
        t_eval = tracer.now(0) if tracer.enabled else 0.0

        with self.ctx.step("partition"):
            decomp, rebalanced, migrated, keys = self._partition(x, dim)

        maintained = cfg.tree_update != "rebuild"
        refit = maintained and self._refit_valid(x, keys, rebalanced, migrated)
        if maintained and tracer.enabled:
            tracer.instant("tree_maintenance", args={
                "action": "refit" if refit else "rebuild",
                "rebalanced": bool(rebalanced), "migrated": int(migrated),
            })
        if refit:
            # Keep the epoch membership: fresh re-binning may permute
            # rows *within* a rank even with zero migration, which would
            # scramble the row-to-body mapping of the cached trees.
            decomp = self._epoch["decomp"]
            members = self._epoch["members"]
            xr = [x[members[r]] for r in range(K)]
            mr = [m[members[r]] for r in range(K)]
            views, local_force, exact = self._refit_trees(xr, mr)
            with self.ctx.step("exchange"):
                let_bytes = self._exchange_refresh(dim)
            self.maint_counts["refit"] += 1
        else:
            members = [decomp.members(r) for r in range(K)]
            xr = [x[members[r]] for r in range(K)]
            mr = [m[members[r]] for r in range(K)]

            # Per-rank local trees (the existing kernels, per-rank
            # contexts).  Maintained mode hands the partition's global
            # keys to the BVH sorts (encode dedupe) and builds LET
            # plans with the drift margin so they survive refit steps.
            margin = 0.0
            if maintained:
                box = compute_bounding_box(x)
                margin = cfg.drift_budget * max(
                    cubify(box).longest_side, np.finfo(FLOAT).tiny
                )
            if cfg.algorithm == "octree":
                views, local_force, exact = self._build_octrees(xr, mr)
                trees = self._last_trees
            else:
                keys_r = ([keys[members[r]] for r in range(K)]
                          if maintained else None)
                views, local_force, exact = self._build_bvhs(xr, mr, keys_r)
                trees = self._last_trees

            with self.ctx.step("exchange"):
                let_bytes = self._exchange(decomp, x, views, dim,
                                           mac_margin=margin)
            if maintained:
                gate = (2.0 + 2.0 / cfg.theta if cfg.algorithm == "bvh"
                        and cfg.theta > 0.0 else
                        np.inf if cfg.algorithm == "bvh" else 2.0)
                self._epoch = {
                    "x_ref": x.copy(),
                    "decomp": decomp,
                    "members": members,
                    "trees": trees,
                    "plans": self._last_plans,
                    "budget_abs": margin,
                    "gate_factor": gate,
                }
                self.maint_counts["rebuild"] += 1
        counts = decomp.counts

        acc = np.zeros((n, dim), dtype=FLOAT)
        with self.ctx.step("force"):
            gs = cfg.group_size if cfg.traversal in ("grouped", "dual") else 1
            for d in range(K):
                if counts[d] == 0:
                    continue
                rc = self.rank_ctx[d]
                with rc.step("force"):
                    acc_d = local_force(d)
                    groups_d = make_groups(xr[d], gs)
                    # All remote halos are walked and evaluated back to
                    # back in one batched launch pair; the fixed launch
                    # overhead is charged on the first source only.
                    remote_launches = 2.0
                    for s in range(K):
                        if s == d or counts[s] == 0:
                            continue
                        acc_c, st = remote_accelerations(
                            views[s], groups_d, xr[d], cfg.theta,
                            G=cfg.gravity.G, eps2=cfg.gravity.eps2,
                            eval_mode=cfg.eval_mode,
                            exact_bodies=exact(s), x_src=xr[s], m_src=mr[s],
                            traversal=cfg.traversal
                            if cfg.traversal == "dual" else "grouped",
                            cc_mac=cfg.cc_mac,
                            expansion_order=cfg.expansion_order,
                        )
                        acc_d += acc_c
                        fpv = 8.0 if cfg.algorithm == "octree" else 10.0
                        if st.dual is not None:
                            account_dual_force(
                                rc.counters, st.dual, groups_d,
                                n_bodies=int(counts[d]), dim=dim,
                                simt_width=cfg.simt_width,
                                pairs=st.pairs, quad_terms=st.quad_terms,
                                quad_far=st.quad_far,
                                expansion_order=cfg.expansion_order,
                                visit_bytes=views[s].visit_bytes,
                                built=True, flops_per_visit=fpv,
                                launches=remote_launches,
                                flat_launches=st.flat_launches,
                                near_pairs_naive=st.near_pairs_naive,
                                near_pairs_evaluated=st.near_pairs_evaluated,
                            )
                        else:
                            account_grouped_force(
                                rc.counters, st.lists, groups_d,
                                n_bodies=int(counts[d]), dim=dim,
                                simt_width=cfg.simt_width,
                                pairs=st.pairs, quad_terms=st.quad_terms,
                                visit_bytes=views[s].visit_bytes, built=True,
                                flops_per_visit=fpv,
                                launches=remote_launches,
                                flat_launches=st.flat_launches,
                                near_pairs_naive=st.near_pairs_naive,
                                near_pairs_evaluated=st.near_pairs_evaluated,
                            )
                        remote_launches = 0.0
                    acc[members[d]] = acc_d

        # Roll per-rank counters into the session's machine counters.
        # The merge happens outside any session span window, so the
        # traced per-rank lanes below are the *only* span attribution of
        # this work — summing spans over all lanes stays exact.
        merged = StepCounters()
        for rc in self.rank_ctx:
            merged = merged.merge(rc.step_counters)
        self.ctx.step_counters = self.ctx.step_counters.merge(merged)
        if tracer.enabled:
            from repro.core.simulation import STEP_ORDER

            for r, rc in enumerate(self.rank_ctx):
                tracer.emit_phases(
                    r + 1, rc.step_counters, rc, at=t_eval,
                    order=STEP_ORDER, lane_name=f"rank {r}",
                )

        report = DistributedReport(
            n_ranks=K,
            counts=counts.copy(),
            rank_counters=[rc.step_counters for rc in self.rank_ctx],
            traffic=self.fabric.reset(),
            let_bytes=let_bytes,
            migrated=migrated,
            rebalanced=rebalanced,
            decomposition=decomp,
        )
        self.last_report = report

        # Feed per-rank force seconds back into the next rebalance.
        force_seconds = np.array([
            self._feedback_model.step_time(sc.step("force")).total
            for sc in report.rank_counters
        ])
        self.balancer.observe(decomp, force_seconds)
        return acc

    # ------------------------------------------------------------------
    def _partition(self, x: np.ndarray, dim: int):
        """Key computation, split-point maintenance, migration traffic."""
        n = x.shape[0]
        K = self.n_ranks
        box = compute_bounding_box(x)
        if self.config.bits is not None:
            bits = self.config.bits
        else:
            bits = MAX_BITS_3D if dim == 3 else MAX_BITS_2D
        # Same grid as hilbert_keys (quantize_to_grid cubifies), but the
        # cache makes repeat evaluations at unchanged positions free and
        # lets the per-rank BVH sorts reuse the global keys.
        keys = self._keycache.keys(x, box, bits=bits, curve="hilbert")
        if (self._resume_replay and self._decomp is not None
                and self._decomp.n_bodies == n):
            # Checkpoint-resume replay: this evaluation re-runs the one
            # the suspended step already did, so the restored
            # decomposition applies as-is and the cadence must not tick.
            self._resume_replay = False
            decomp = self._decomp
            self._prev_rank_of = decomp.rank_of()
            self._decomp = decomp
            self._charge_partition_ranks(decomp, dim)
            return decomp, False, 0, keys
        self._resume_replay = False
        due = self.balancer.tick()
        stale = self._decomp is None or self._decomp.n_bodies != n
        rebalanced = due or stale
        if rebalanced:
            decomp = decompose(
                x, K, box=box, mode=self.config.decomposition,
                weights=self.balancer.weights_for(n), keys=keys,
            )
            # Split-point agreement is an allgather of K+1 keys.
            self.fabric.allgather((K + 1) * 8.0)
        else:
            # Bodies drifted: re-bin against the cached key splits.
            old = self._decomp
            order = np.argsort(keys, kind="stable").astype(INDEX)
            sorted_keys = keys[order]
            offsets = np.empty(K + 1, dtype=INDEX)
            offsets[0] = 0
            offsets[-1] = n
            offsets[1:-1] = np.searchsorted(
                sorted_keys, old.key_splits[1:-1], side="left"
            )
            decomp = DomainDecomposition(K, order, offsets, old.key_splits, old.mode)

        rank_of = decomp.rank_of()
        migrated = 0
        if self._prev_rank_of is not None and self._prev_rank_of.shape[0] == n:
            moved = np.nonzero(rank_of != self._prev_rank_of)[0]
            migrated = int(moved.size)
            if migrated:
                flow = np.zeros((K, K))
                np.add.at(flow, (self._prev_rank_of[moved], rank_of[moved]), 1.0)
                bb = _body_bytes(dim)
                for s, d in zip(*np.nonzero(flow)):
                    nb = flow[s, d] * bb
                    self.fabric.send(int(s), int(d), nb)
                    self.rank_ctx[s].step_counters.step("partition").add(
                        comm_bytes=nb, comm_messages=1.0)
                    self.rank_ctx[d].step_counters.step("partition").add(
                        comm_bytes=nb, comm_messages=1.0)
        self._prev_rank_of = rank_of
        self._decomp = decomp

        self._charge_partition_ranks(decomp, dim)
        return decomp, rebalanced, migrated, keys

    def _charge_partition_ranks(self, decomp, dim: int) -> None:
        """Each rank encodes + sorts its own bodies (keys are 1 encode,
        ~5 flops/bit/dim; local sort n log n)."""
        for r in range(self.n_ranks):
            nr = float(decomp.counts[r])
            if nr == 0:
                continue
            self.rank_ctx[r].step_counters.step("partition").add(
                flops=nr * 30.0 * dim,
                sort_comparisons=nr * float(np.log2(max(nr, 2.0))),
                bytes_read=nr * (dim + 1) * 8.0,
                bytes_written=nr * 8.0,
                loop_iterations=nr,
                kernel_launches=2.0,
            )

    # ------------------------------------------------------------------
    def _build_octrees(self, xr, mr):
        from repro.octree.build_concurrent import build_octree_concurrent
        from repro.octree.build_vectorized import build_octree_vectorized
        from repro.octree.force import (
            octree_accelerations,
            octree_accelerations_grouped,
            octree_tree_view,
        )
        from repro.octree.multipoles import (
            compute_multipoles_concurrent,
            compute_multipoles_vectorized,
        )

        cfg = self.config
        pools = [None] * self.n_ranks
        views = [None] * self.n_ranks
        with self.ctx.step("build_tree"):
            for r in range(self.n_ranks):
                if xr[r].shape[0] == 0:
                    continue
                rc = self.rank_ctx[r]
                with rc.step("bounding_box"):
                    box = compute_bounding_box(xr[r])
                    rc.counters.add(
                        flops=2.0 * xr[r].size, bytes_read=8.0 * xr[r].size,
                        loop_iterations=float(xr[r].shape[0]), kernel_launches=1.0,
                    )
                with rc.step("build_tree"):
                    if rc.backend == "reference":
                        pools[r] = build_octree_concurrent(
                            xr[r], bits=cfg.bits, box=box, ctx=rc)
                    else:
                        pools[r] = build_octree_vectorized(
                            xr[r], bits=cfg.bits, box=box, ctx=rc)
        with self.ctx.step("multipoles"):
            for r in range(self.n_ranks):
                if pools[r] is None:
                    continue
                rc = self.rank_ctx[r]
                with rc.step("multipoles"):
                    if rc.backend == "reference":
                        compute_multipoles_concurrent(
                            pools[r], xr[r], mr[r], rc, order=cfg.multipole_order)
                    else:
                        compute_multipoles_vectorized(
                            pools[r], xr[r], mr[r], rc, order=cfg.multipole_order)
                views[r] = octree_tree_view(pools[r])
        self._last_trees = pools
        return (views, *self._octree_closures(pools, xr, mr))

    def _octree_closures(self, pools, xr, mr):
        from repro.octree.force import (
            octree_accelerations,
            octree_accelerations_dual,
            octree_accelerations_grouped,
        )

        cfg = self.config

        def local_force(r: int) -> np.ndarray:
            rc = self.rank_ctx[r]
            if cfg.traversal == "dual":
                return octree_accelerations_dual(
                    pools[r], xr[r], mr[r], cfg.gravity,
                    theta=cfg.theta, group_size=cfg.group_size,
                    cc_mac=cfg.cc_mac, expansion_order=cfg.expansion_order,
                    ctx=rc, simt_width=cfg.simt_width,
                    eval_mode=cfg.eval_mode,
                )
            if cfg.traversal == "grouped":
                return octree_accelerations_grouped(
                    pools[r], xr[r], mr[r], cfg.gravity,
                    theta=cfg.theta, group_size=cfg.group_size,
                    ctx=rc, simt_width=cfg.simt_width,
                    eval_mode=cfg.eval_mode,
                )
            return octree_accelerations(
                pools[r], xr[r], mr[r], cfg.gravity,
                theta=cfg.theta, ctx=rc, simt_width=cfg.simt_width,
            )

        def exact(s: int):
            return pools[s].leaf_bodies

        return local_force, exact

    def _refit_octrees(self, xr, mr):
        """Refit step: keep pool structure, refresh multipoles + views.

        Leaf membership is the epoch's; bounded drift (the refit gate)
        keeps the fixed cell geometry a valid MAC bound because the LET
        plans were built with the inflated opening radius.
        """
        from repro.octree.force import octree_tree_view
        from repro.octree.multipoles import (
            compute_multipoles_concurrent,
            compute_multipoles_vectorized,
        )

        cfg = self.config
        pools = self._epoch["trees"]
        views = [None] * self.n_ranks
        with self.ctx.step("multipoles"):
            for r in range(self.n_ranks):
                if pools[r] is None:
                    continue
                rc = self.rank_ctx[r]
                with rc.step("multipoles"):
                    if rc.backend == "reference":
                        compute_multipoles_concurrent(
                            pools[r], xr[r], mr[r], rc, order=cfg.multipole_order)
                    else:
                        compute_multipoles_vectorized(
                            pools[r], xr[r], mr[r], rc, order=cfg.multipole_order)
                views[r] = octree_tree_view(pools[r])
        return (views, *self._octree_closures(pools, xr, mr))

    def _build_bvhs(self, xr, mr, keys_r=None):
        from repro.bvh.build import assemble_bvh, hilbert_sort_permutation
        from repro.bvh.force import (
            bvh_accelerations,
            bvh_accelerations_grouped,
            bvh_tree_view,
        )

        cfg = self.config
        bvhs = [None] * self.n_ranks
        views = [None] * self.n_ranks
        with self.ctx.step("build_tree"):
            for r in range(self.n_ranks):
                if xr[r].shape[0] == 0:
                    continue
                rc = self.rank_ctx[r]
                with rc.step("bounding_box"):
                    box = compute_bounding_box(xr[r])
                    rc.counters.add(
                        flops=2.0 * xr[r].size, bytes_read=8.0 * xr[r].size,
                        loop_iterations=float(xr[r].shape[0]), kernel_launches=1.0,
                    )
                with rc.step("sort"):
                    # Global curve keys from the partitioner, when
                    # handed down, stand in for the per-rank encode:
                    # key order is preserved under restriction to a
                    # rank's (curve-contiguous) slice.
                    kr = keys_r[r] if keys_r is not None else None
                    perm = hilbert_sort_permutation(
                        xr[r], box, bits=cfg.bits, ctx=rc, curve=cfg.curve,
                        keys=kr)
                with rc.step("build_tree"):
                    bvhs[r] = assemble_bvh(
                        xr[r], mr[r], perm, box, ctx=rc, order=cfg.multipole_order)
                views[r] = bvh_tree_view(bvhs[r])
        self._last_trees = bvhs
        return (views, *self._bvh_closures(bvhs, xr, mr))

    def _bvh_closures(self, bvhs, xr, mr):
        from repro.bvh.force import (
            bvh_accelerations,
            bvh_accelerations_dual,
            bvh_accelerations_grouped,
        )

        cfg = self.config

        def local_force(r: int) -> np.ndarray:
            rc = self.rank_ctx[r]
            if cfg.traversal == "dual":
                return bvh_accelerations_dual(
                    bvhs[r], cfg.gravity,
                    theta=cfg.theta, group_size=cfg.group_size,
                    cc_mac=cfg.cc_mac, expansion_order=cfg.expansion_order,
                    ctx=rc, simt_width=cfg.simt_width,
                    eval_mode=cfg.eval_mode,
                )
            if cfg.traversal == "grouped":
                return bvh_accelerations_grouped(
                    bvhs[r], cfg.gravity,
                    theta=cfg.theta, group_size=cfg.group_size,
                    ctx=rc, simt_width=cfg.simt_width,
                    eval_mode=cfg.eval_mode,
                )
            return bvh_accelerations(
                bvhs[r], cfg.gravity,
                theta=cfg.theta, ctx=rc, simt_width=cfg.simt_width,
            )

        def exact(s: int):
            return None  # BVH leaves are single bodies; no buckets

        return local_force, exact

    def _refit_bvhs(self, xr, mr):
        """Refit step: fused level-sweep AABB/multipole refresh per rank."""
        from repro.bvh.build import refit_bvh
        from repro.bvh.force import bvh_tree_view

        bvhs = self._epoch["trees"]
        new = [None] * self.n_ranks
        views = [None] * self.n_ranks
        with self.ctx.step("refit"):
            for r in range(self.n_ranks):
                if bvhs[r] is None:
                    continue
                rc = self.rank_ctx[r]
                with rc.step("refit"):
                    new[r] = refit_bvh(bvhs[r], xr[r], ctx=rc)
                views[r] = bvh_tree_view(new[r])
        self._epoch["trees"] = new
        return (views, *self._bvh_closures(new, xr, mr))

    def _refit_trees(self, xr, mr):
        if self.config.algorithm == "octree":
            return self._refit_octrees(xr, mr)
        return self._refit_bvhs(xr, mr)

    # ------------------------------------------------------------------
    def _refit_valid(self, x, keys, rebalanced, migrated) -> bool:
        """Can this step reuse the epoch's membership, trees and plans?

        Requires: an epoch of the same size, no rebalance and no owner
        changes this step, every body within the drift gate (the LET
        margin divided by the gate factor, which bounds domain-box plus
        node-geometry motion), and the epoch's curve order still below
        the disorder threshold.  Sensing is charged under ``encode``.
        """
        ep = self._epoch
        if (ep is None or rebalanced or migrated
                or ep["x_ref"].shape != x.shape):
            return False
        gate = ep["budget_abs"] / ep["gate_factor"]
        with self.ctx.step("encode"):
            n, dim = x.shape
            disp = np.sqrt(((x - ep["x_ref"]) ** 2).sum(axis=1))
            drift = float(disp.max(initial=0.0))
            if self.config.bits is not None:
                bits = self.config.bits
            else:
                bits = MAX_BITS_3D if dim == 3 else MAX_BITS_2D
            sb = sense_bits(n, dim, occupancy=self.config.group_size)
            stats = key_disorder(
                coarsen_keys(keys[ep["decomp"].order], bits, sb, dim))
            self.ctx.counters.add(
                flops=(3.0 * dim + 2.0) * n,
                special_flops=float(n),
                bytes_read=8.0 * n * (2.0 * dim + 3.0),
                bytes_irregular=8.0 * n,
                loop_iterations=float(n),
                kernel_launches=2.0,
            )
        if not np.isfinite(gate) or drift > gate:
            return False
        return stats.fraction <= self.config.refit_disorder_threshold

    # ------------------------------------------------------------------
    def _exchange(self, decomp, x, views, dim, *, mac_margin=0.0):
        """LET selection per source rank + modeled halo transfer."""
        cfg = self.config
        K = self.n_ranks
        counts = decomp.counts
        lo, hi = decomp.domain_boxes(x)
        let_bytes = np.zeros((K, K))
        plans: list = [None] * K
        for s in range(K):
            if counts[s] == 0 or views[s] is None:
                continue
            dests = np.array(
                [d for d in range(K) if d != s and counts[d] > 0], dtype=INDEX
            )
            if dests.size == 0:
                continue
            plan = build_let_plan(
                views[s], s, dests, lo, hi, cfg.theta,
                dim=dim, multipole_order=cfg.multipole_order,
                mac_margin=mac_margin,
            )
            plans[s] = plan
            cs = self.rank_ctx[s].step_counters.step("exchange")
            for d, nb in zip(plan.dests, plan.n_bytes):
                self.fabric.send(s, int(d), float(nb))
                let_bytes[s, int(d)] = float(nb)
                cs.add(comm_bytes=float(nb), comm_messages=1.0)
                self.rank_ctx[int(d)].step_counters.step("exchange").add(
                    comm_bytes=float(nb), comm_messages=1.0)
            # The selection walk itself (pointer chasing on the source).
            visited = float(plan.visited_nodes.sum())
            cs.add(
                flops=visited * 8.0,
                bytes_irregular=visited * views[s].visit_bytes,
                bytes_read=visited * views[s].visit_bytes,
                traversal_steps=visited,
                warp_traversal_steps=visited,
                loop_iterations=float(dests.size),
                kernel_launches=1.0,
            )
        self._last_plans = plans
        return let_bytes

    def _exchange_refresh(self, dim) -> np.ndarray:
        """Refit-step halo update: ship only refreshed multipole deltas.

        Topology, masses and node ids of every epoch LET are unchanged,
        so each source resends ``visited`` nodes at the (smaller)
        refresh wire size — no selection walk, just a gather of the
        refreshed centres of mass (+ quadrupoles) into send buffers.
        """
        cfg = self.config
        K = self.n_ranks
        rb = let_refresh_bytes(dim, cfg.multipole_order)
        let_bytes = np.zeros((K, K))
        for s in range(K):
            plan = self._epoch["plans"][s]
            if plan is None:
                continue
            cs = self.rank_ctx[s].step_counters.step("exchange")
            for d, visited in zip(plan.dests, plan.visited_nodes):
                nb = float(visited) * rb
                self.fabric.send(s, int(d), nb)
                let_bytes[s, int(d)] = nb
                cs.add(comm_bytes=nb, comm_messages=1.0)
                self.rank_ctx[int(d)].step_counters.step("exchange").add(
                    comm_bytes=nb, comm_messages=1.0)
            visited = float(plan.visited_nodes.sum())
            cs.add(
                flops=visited * 2.0,
                bytes_read=visited * rb,
                bytes_written=visited * rb,
                loop_iterations=float(plan.dests.size),
                kernel_launches=1.0,
            )
        return let_bytes
