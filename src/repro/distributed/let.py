"""Locally essential trees: halo selection and cross-rank evaluation.

A rank's *locally essential tree* (LET, Salmon & Warren; Cornerstone's
"focused octree") is the subset of a remote rank's tree that any of
its own bodies could ever touch during the force walk.  Selection
reuses the grouped traversal's **conservative MAC** with the whole
destination domain box as the "group": a node is exported as a
multipole only when ``size^2 < theta^2 * dmin^2`` for ``dmin`` the
distance from the node's centre of mass to the nearest point of the
destination box.  Because ``dmin <= d_body`` for every destination
body, any node a *body-level* walk would open also fails the
domain-level MAC — so the domain walk's visited set is a superset of
every member body's visited set, and evaluating the imported LET with
the ordinary per-body/per-group MAC reproduces exactly the accept
decisions a single-rank walk would make inside those subtrees.  With
``theta = 0`` nothing is ever accepted and the LET degenerates to the
full remote body set: the exchange is exact.

Costing: the exchanged bytes are the *visited* node count of the
domain walk (the LET content: every opened node's children plus the
accepted frontier) times the per-node wire size.  The cross-rank force
contribution is then computed by walking the source tree with the
destination's body groups — operationally identical to walking the
imported LET, since the walk provably never leaves it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.physics.multipole import quadrupole_accel
from repro.traversal.engine import (
    InteractionLists,
    TreeView,
    build_interaction_lists,
    evaluate_interaction_lists,
)
from repro.traversal.groups import BodyGroups
from repro.types import FLOAT, INDEX

#: body_ids sentinel for cross-rank evaluation: destination bodies can
#: never be a source tree's point leaves, but their *local* indices can
#: collide with the source's, so the gemm kernel must be told that no
#: row matches any ``point_body`` entry (-1 marks non-point nodes,
#: hence -2).
_FOREIGN_BODY_ID = INDEX(-2)


def let_node_bytes(dim: int, multipole_order: int = 1) -> float:
    """Wire size of one LET node: com + mass + packed child/size word,
    plus the traceless quadrupole tensor at order 2."""
    base = (dim + 2) * 8.0
    if multipole_order >= 2:
        base += dim * dim * 8.0
    return base


def let_refresh_bytes(dim: int, multipole_order: int = 1) -> float:
    """Wire size of one *refreshed* LET node on a refit step.

    Masses, child topology and node ids are unchanged since the epoch
    exchange, so only the centre of mass (tagged with its slot index)
    — plus the quadrupole tensor at order 2 — crosses the wire.
    """
    base = (dim + 1) * 8.0
    if multipole_order >= 2:
        base += dim * dim * 8.0
    return base


@dataclass(frozen=True)
class LETPlan:
    """Halo exchange plan of one source rank toward every other rank."""

    src: int
    dests: np.ndarray          # destination ranks (non-empty, != src)
    visited_nodes: np.ndarray  # LET node count per destination
    emitted_nodes: np.ndarray  # accepted frontier size per destination
    n_bytes: np.ndarray        # wire bytes per destination

    @property
    def total_bytes(self) -> float:
        return float(self.n_bytes.sum())


def _domain_groups(lo: np.ndarray, hi: np.ndarray) -> BodyGroups:
    """Abuse of :class:`BodyGroups`: one 'group' per destination domain
    box.  The list builder only reads ``lo``/``hi``/``n_groups``."""
    ng = lo.shape[0]
    return BodyGroups(np.arange(ng + 1, dtype=INDEX), lo, hi)


def build_let_plan(
    view: TreeView,
    src: int,
    dests: np.ndarray,
    dom_lo: np.ndarray,
    dom_hi: np.ndarray,
    theta: float,
    *,
    dim: int,
    multipole_order: int = 1,
    mac_margin: float = 0.0,
) -> LETPlan:
    """Size the LET of *src*'s tree toward each destination domain.

    One conservative-MAC walk per destination, all destinations level-
    synchronously at once (the same frontier sweep the grouped
    traversal uses).  ``visited_nodes`` is what crosses the wire.
    ``mac_margin`` inflates the opening radius (see
    :mod:`repro.maintenance.drift`) so the plan survives bounded body
    drift on refit steps.
    """
    dests = np.asarray(dests, dtype=INDEX)
    if dests.size == 0:
        z = np.zeros(0)
        return LETPlan(src, dests, z, z, z)
    lists = build_interaction_lists(
        view, _domain_groups(dom_lo[dests], dom_hi[dests]), theta,
        mac_margin=mac_margin,
    )
    visited = lists.steps.astype(float)
    emitted = np.diff(lists.offsets).astype(float)
    n_bytes = visited * let_node_bytes(dim, multipole_order)
    return LETPlan(src, dests, visited, emitted, n_bytes)


@dataclass
class RemoteEvalStats:
    """Accounting of one cross-rank force contribution."""

    lists: InteractionLists
    pairs: int
    quad_terms: int
    #: Dual-traversal remote evaluations carry their DualLists here
    #: (None for grouped); the runtime then accounts the M2L/downsweep
    #: work on top of the near-field tile work.
    dual: object | None = None
    quad_far: int = 0
    #: Flat-evaluation stats (zero for the tile kernels).  Remote halo
    #: tiles are one-sided by construction — the mirror pair lives on
    #: the other rank — so n3l is disabled and only the launch count is
    #: ever non-zero here.
    flat_launches: int = 0
    near_pairs_naive: int = 0
    near_pairs_evaluated: int = 0


def remote_accelerations(
    view: TreeView,
    groups: BodyGroups,
    x_sorted: np.ndarray,
    theta: float,
    *,
    G: float = 1.0,
    eps2: float = 0.0,
    eval_mode: str = "auto",
    exact_bodies: Callable[[int], list[int]] | None = None,
    x_src: np.ndarray | None = None,
    m_src: np.ndarray | None = None,
    traversal: str = "grouped",
    cc_mac: float = 1.5,
    expansion_order: int = 2,
) -> tuple[np.ndarray, RemoteEvalStats]:
    """Force of one source rank's tree on a destination's body groups.

    *groups* / *x_sorted* are the destination rank's Hilbert-contiguous
    groups and sorted positions (``group_size = 1`` reproduces the
    per-body MAC of the lockstep kernels).  Bucket leaves of the source
    tree (octree duplicate-cell chains) are expanded exactly through
    *exact_bodies* against the source arrays.

    ``traversal="dual"`` runs the cell-cell walk against the source
    tree instead.  This stays inside the one-sided LET halo: the dual
    walk only opens a source node that fails the conservative MAC
    against some target box contained in the destination domain, and
    failing the easier domain-level criterion is exactly what put the
    node's children into the LET in the first place.
    """
    dual = None
    quad_far = 0
    if traversal == "dual":
        # Deferred import: repro.traversal.dual pulls in the BVH
        # package, which this module must not load at import time.
        from repro.traversal.dual import (
            build_dual_lists,
            build_target_tree,
            evaluate_dual,
        )

        tt = build_target_tree(groups)
        dual = build_dual_lists(view, tt, theta, cc_mac=cc_mac)
        lists = dual.near
        acc, stats = evaluate_dual(
            view, dual, groups, x_sorted,
            G=G, eps2=eps2, mode=eval_mode,
            body_ids=np.full(x_sorted.shape[0], _FOREIGN_BODY_ID,
                             dtype=INDEX),
            expansion_order=expansion_order,
        )
        quad_far = stats["quad_far"]
    else:
        lists = build_interaction_lists(view, groups, theta)
        acc, stats = evaluate_interaction_lists(
            view, lists, groups, x_sorted,
            G=G, eps2=eps2, mode=eval_mode,
            body_ids=np.full(x_sorted.shape[0], _FOREIGN_BODY_ID,
                             dtype=INDEX),
        )
    pairs = stats["pairs"]
    if lists.exact_groups.size:
        if exact_bodies is None or x_src is None or m_src is None:
            raise ValueError("source tree has bucket leaves; need exact_bodies")
        go = groups.offsets
        for g, node in zip(lists.exact_groups, lists.exact_nodes):
            bodies = exact_bodies(int(node))
            if not bodies:
                continue
            xb = x_src[bodies]
            mb = m_src[bodies]
            rows = slice(int(go[g]), int(go[g + 1]))
            d = xb[None, :, :] - x_sorted[rows][:, None, :]
            r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
            with np.errstate(divide="ignore"):
                w = np.where(r2 > 0.0, G * mb * r2 ** -1.5, 0.0)
            acc[rows] += np.einsum("ij,ijk->ik", w, d)
            pairs += w.size
    return acc, RemoteEvalStats(
        lists, pairs, stats["quad_terms"], dual=dual, quad_far=quad_far,
        flat_launches=stats.get("flat_launches", 0),
        near_pairs_naive=stats.get("near_pairs_naive", 0),
        near_pairs_evaluated=stats.get("near_pairs_evaluated", 0),
    )


def halo_point_accelerations(
    x_targets: np.ndarray,
    halo_x: np.ndarray,
    halo_m: np.ndarray,
    *,
    G: float = 1.0,
    eps2: float = 0.0,
    halo_quad: np.ndarray | None = None,
    tile: int = 2048,
) -> np.ndarray:
    """Direct evaluation of imported halo point masses / multipoles.

    Utility for callers that materialize a flat halo (e.g. the exact
    ``theta = 0`` exchange); the runtime's standard path goes through
    :func:`remote_accelerations` instead.
    """
    x_targets = np.asarray(x_targets, dtype=FLOAT)
    nt, dim = x_targets.shape
    acc = np.zeros((nt, dim), dtype=FLOAT)
    if halo_x.shape[0] == 0:
        return acc
    for s in range(0, nt, tile):
        xt = x_targets[s:s + tile]
        d = halo_x[None, :, :] - xt[:, None, :]
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        with np.errstate(divide="ignore"):
            w = np.where(r2 > 0.0, G * halo_m * r2 ** -1.5, 0.0)
        acc[s:s + tile] = np.einsum("ij,ijk->ik", w, d)
        if halo_quad is not None:
            b, k = xt.shape[0], halo_x.shape[0]
            qt = np.broadcast_to(halo_quad, (b, k, dim, dim)).reshape(-1, dim, dim)
            acc[s:s + tile] += quadrupole_accel(
                d.reshape(-1, dim), r2.reshape(-1), qt, G
            ).reshape(b, k, dim).sum(axis=1)
    return acc
