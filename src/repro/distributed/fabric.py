"""Message-passing fabric model connecting the simulated ranks.

The fabric is to the interconnect what :class:`repro.machine.device.
Device` is to the chip: a small set of alpha-beta link classes (from
the ``machine.catalog`` interconnect table) arranged in a topology.
Two topologies cover the machines the paper's testbeds come from:

* ``uniform``      — all-to-all over one link class (one NVLink-domain
  chassis, or one IB subnet when every rank is its own node);
* ``hierarchical`` — ``ranks_per_node`` ranks share an intra-node link
  (NVLink-class); pairs in different nodes use the inter-node link
  (IB-class).  This is the DGX/HGX-cluster shape.

Every :meth:`send` charges the alpha-beta cost of the message to
*both* endpoints (the NIC/copy engine is busy on each side), which is
what a bulk-synchronous exchange step observes.  The fabric is purely
a model: no data moves through it, only byte counts and times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.catalog import get_interconnect
from repro.machine.interconnect import Interconnect


@dataclass
class FabricTraffic:
    """Accumulated traffic since the last :meth:`Fabric.reset`."""

    n_ranks: int
    #: Bytes sent from rank i to rank j.
    bytes_matrix: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Messages sent from rank i to rank j.
    message_matrix: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Modeled seconds each rank spent on the fabric.
    rank_seconds: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        k = self.n_ranks
        if self.bytes_matrix is None:
            self.bytes_matrix = np.zeros((k, k))
        if self.message_matrix is None:
            self.message_matrix = np.zeros((k, k))
        if self.rank_seconds is None:
            self.rank_seconds = np.zeros(k)

    @property
    def total_bytes(self) -> float:
        return float(self.bytes_matrix.sum())

    @property
    def total_messages(self) -> float:
        return float(self.message_matrix.sum())

    def merged(self, other: "FabricTraffic") -> "FabricTraffic":
        out = FabricTraffic(self.n_ranks)
        out.bytes_matrix = self.bytes_matrix + other.bytes_matrix
        out.message_matrix = self.message_matrix + other.message_matrix
        out.rank_seconds = self.rank_seconds + other.rank_seconds
        return out


class Fabric:
    """A topology of interconnect links between ``n_ranks`` ranks."""

    def __init__(self, n_ranks: int, links: np.ndarray):
        """*links* is an ``(n_ranks, n_ranks)`` object array of
        :class:`Interconnect` (diagonal entries are ignored); prefer
        the :meth:`uniform` / :meth:`hierarchical` constructors."""
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        links = np.asarray(links, dtype=object)
        if links.shape != (n_ranks, n_ranks):
            raise ValueError(f"links must be ({n_ranks}, {n_ranks}), got {links.shape}")
        self.n_ranks = n_ranks
        self._latency_us = np.zeros((n_ranks, n_ranks))
        self._bw_gbs = np.ones((n_ranks, n_ranks))
        self._links = links
        for i in range(n_ranks):
            for j in range(n_ranks):
                if i == j:
                    continue
                ic = links[i, j]
                self._latency_us[i, j] = ic.latency_us
                self._bw_gbs[i, j] = ic.bandwidth_gbs
        self.traffic = FabricTraffic(n_ranks)

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, n_ranks: int, interconnect: Interconnect | str) -> "Fabric":
        """All-to-all over one link class."""
        if isinstance(interconnect, str):
            interconnect = get_interconnect(interconnect)
        links = np.full((n_ranks, n_ranks), interconnect, dtype=object)
        return cls(n_ranks, links)

    @classmethod
    def hierarchical(
        cls,
        n_ranks: int,
        ranks_per_node: int,
        intra: Interconnect | str,
        inter: Interconnect | str,
    ) -> "Fabric":
        """NVLink-class inside a node, IB-class between nodes."""
        if ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if isinstance(intra, str):
            intra = get_interconnect(intra)
        if isinstance(inter, str):
            inter = get_interconnect(inter)
        node = np.arange(n_ranks) // ranks_per_node
        links = np.empty((n_ranks, n_ranks), dtype=object)
        same = node[:, None] == node[None, :]
        links[same] = intra
        links[~same] = inter
        return cls(n_ranks, links)

    # ------------------------------------------------------------------
    def link(self, src: int, dst: int) -> Interconnect:
        return self._links[src, dst]

    def message_seconds(self, src: int, dst: int, n_bytes: float) -> float:
        """Alpha-beta time of one message on the (src, dst) link."""
        return (self._latency_us[src, dst] * 1e-6
                + float(n_bytes) / (self._bw_gbs[src, dst] * 1e9))

    def send(self, src: int, dst: int, n_bytes: float) -> float:
        """Record one message; returns (and charges) its modeled time.

        The time lands on both endpoints' ``rank_seconds`` — sender
        packs/injects while the receiver drains, and a BSP exchange
        step cannot complete for either until the transfer does.
        """
        if src == dst:
            return 0.0
        t = self.message_seconds(src, dst, n_bytes)
        self.traffic.bytes_matrix[src, dst] += n_bytes
        self.traffic.message_matrix[src, dst] += 1.0
        self.traffic.rank_seconds[src] += t
        self.traffic.rank_seconds[dst] += t
        return t

    def allgather(self, n_bytes_per_rank: float) -> float:
        """Ring allgather of *n_bytes_per_rank* from every rank.

        Charged as ``n_ranks - 1`` ring hops (each rank forwards to its
        neighbour); returns the slowest rank's added seconds.
        """
        k = self.n_ranks
        if k == 1:
            return 0.0
        before = self.traffic.rank_seconds.copy()
        for hop in range(k - 1):
            for r in range(k):
                self.send(r, (r + 1) % k, n_bytes_per_rank)
        return float((self.traffic.rank_seconds - before).max())

    def reset(self) -> FabricTraffic:
        """Zero the accumulators; returns the traffic so far."""
        out = self.traffic
        self.traffic = FabricTraffic(self.n_ranks)
        return out
