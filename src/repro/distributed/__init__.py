"""Simulated multi-rank domain decomposition (``ranks=K`` in the config).

Layers, bottom up:

* :mod:`repro.distributed.partition` — Hilbert-key-range decomposition
  (static equal-count or work-weighted splits);
* :mod:`repro.distributed.let` — locally-essential-tree halo selection
  with the grouped traversal's conservative MAC, plus cross-rank force
  evaluation;
* :mod:`repro.distributed.fabric` — alpha-beta interconnect model
  (uniform or NVLink-intra / IB-inter hierarchical topologies);
* :mod:`repro.distributed.balance` — rebalance cadence and counter-fed
  per-body work weights;
* :mod:`repro.distributed.runtime` — the BSP pipeline binding them to
  ``core.Simulation``.
"""

from repro.distributed.balance import WorkBalancer
from repro.distributed.fabric import Fabric, FabricTraffic
from repro.distributed.let import (
    LETPlan,
    build_let_plan,
    halo_point_accelerations,
    let_node_bytes,
    remote_accelerations,
)
from repro.distributed.partition import (
    DECOMPOSITION_MODES,
    DomainDecomposition,
    decompose,
    hilbert_keys,
)
from repro.distributed.runtime import DistributedReport, DistributedRuntime

__all__ = [
    "WorkBalancer",
    "Fabric",
    "FabricTraffic",
    "LETPlan",
    "build_let_plan",
    "halo_point_accelerations",
    "let_node_bytes",
    "remote_accelerations",
    "DECOMPOSITION_MODES",
    "DomainDecomposition",
    "decompose",
    "hilbert_keys",
    "DistributedReport",
    "DistributedRuntime",
]
