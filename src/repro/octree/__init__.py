"""The Concurrent Octree strategy (paper Section IV-A).

Data structure (paper Fig. 1): a pool of nodes where each node stores a
single *child* word that is either a token (Empty / Locked / Body) or
the offset of its first child; children are allocated in contiguous
groups of 2^dim siblings in Morton order by a concurrent bump
allocator, and each sibling group stores one parent offset.  Because
the allocator only moves forward, children always have larger offsets
than their parents — the property the stackless DFS traversal (Fig. 3)
relies on.

Three parallel algorithms:

* BUILDTREE (Alg. 4/5) — all bodies inserted concurrently with a
  starvation-free locking protocol (requires ``par``);
* CALCULATEMULTIPOLES (Fig. 2) — wait-free leaf-to-root reduction with
  relaxed accumulation and acquire/release arrival counters (requires
  ``par``);
* CALCULATEFORCE (Fig. 3) — stackless depth-first traversal with the
  multipole acceptance criterion (vectorization-safe: ``par_unseq``).

Each algorithm exists in two equivalent forms: a *scalar* virtual-thread
form faithful to the paper's pseudocode, and a *vectorized* numpy form
(the tree produced by concurrent insertion is insertion-order
independent, so a deterministic builder reconstructs it exactly; the
test suite asserts structural equality).
"""

from repro.octree.layout import (
    OctreePool,
    EMPTY,
    LOCKED,
    encode_body,
    decode_body,
    is_body_token,
)
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.build_concurrent import build_octree_concurrent
from repro.octree.multipoles import (
    compute_multipoles_vectorized,
    compute_multipoles_concurrent,
)
from repro.octree.traversal import compute_escape_indices, canonical_structure
from repro.octree.force import octree_accelerations

__all__ = [
    "OctreePool",
    "EMPTY",
    "LOCKED",
    "encode_body",
    "decode_body",
    "is_body_token",
    "build_octree_vectorized",
    "build_octree_concurrent",
    "compute_multipoles_vectorized",
    "compute_multipoles_concurrent",
    "compute_escape_indices",
    "canonical_structure",
    "octree_accelerations",
]
