"""Concurrent BUILDTREE: paper Algorithm 4 with Algorithm 5's critical
section, as virtual threads.

One thread per body performs a root-to-leaf traversal of the growing
tree, locking Empty or Body-containing leaves with
``compare_exchange`` (acquire) and publishing insertions/subdivisions
with release stores.  The protocol is starvation-free: it terminates iff
every thread that enters a critical section is eventually rescheduled,
i.e. iff the executor provides *parallel forward progress*.  Running it
on the FAIR scheduler (CPU / ITS GPU) completes; on the LOCKSTEP
scheduler (GPU without ITS) it livelocks, which the scheduler detects —
both behaviours are exercised by the tests and the progress-semantics
benchmark, reproducing paper Section V-B.

Descent uses the body's precomputed Morton digits, which is exactly the
geometric "child covering b" choice on the quantized grid and guarantees
bit-identical placement with the vectorized builder.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.errors import AllocatorExhausted
from repro.geometry.aabb import AABB, compute_bounding_box, quantize_to_grid
from repro.geometry.morton import morton_encode, morton_child_digits
from repro.octree.build_vectorized import default_bits
from repro.octree.layout import EMPTY, LOCKED, OctreePool, decode_body, encode_body
from repro.stdpar.atomics import AtomicArray, acquire, relaxed, release
from repro.stdpar.context import ExecutionContext
from repro.stdpar.kernel import kernel_from_functions
from repro.stdpar.scheduler import CompareExchange, FetchAdd, Load, Op, Pause, Store
from repro.stdpar.policy import par
from repro.types import INDEX


def _insert_thread(
    pool: OctreePool,
    atom_child: AtomicArray,
    atom_alloc: AtomicArray,
    digits: np.ndarray,
    body: int,
) -> Generator[Op, Any, None]:
    """Virtual thread inserting one body (Algorithm 4)."""
    nch = pool.nchild
    bits = pool.bits
    index = 0
    depth = 0
    while True:
        next_ = int((yield Load(atom_child, index, acquire)))
        if next_ >= 0:
            # Internal node: traverse to the sibling covering b.
            index = next_ + int(digits[depth])
            depth += 1
            continue
        if next_ == LOCKED:
            # Failed to lock: try again (the spin of Algorithm 4 line 17).
            yield Pause()
            continue
        if next_ == EMPTY:
            ok, _ = yield CompareExchange(atom_child, index, EMPTY, LOCKED, acquire, relaxed)
            if not ok:
                continue
            # Critical section: insert b at the empty leaf.
            yield Store(atom_child, index, encode_body(body), release)
            return
        # Leaf containing a body: lock it, then either chain (max depth)
        # or subdivide (Algorithm 5).
        ok, _ = yield CompareExchange(atom_child, index, next_, LOCKED, acquire, relaxed)
        if not ok:
            continue
        occupant = decode_body(next_)
        if depth == bits:
            # Cannot subdivide further: append to the bucket chain.
            pool.next_body[body] = occupant
            yield Store(atom_child, index, encode_body(body), release)
            return
        # Allocate children and move the occupant into the child
        # covering it; the new children are unpublished, so plain writes
        # are race-free until the release store below.
        gid = int((yield FetchAdd(atom_alloc, 0, 1, relaxed)))
        first = 1 + gid * nch
        if first + nch > pool.capacity:
            raise AllocatorExhausted(
                f"concurrent octree pool exhausted at node {first + nch}"
            )
        pool.depth[first : first + nch] = depth + 1
        pool.parent_of_group[gid] = index
        occ_digit = int(digits_of_occupant(pool, occupant, depth))
        pool.child[first + occ_digit] = encode_body(occupant)
        yield Store(atom_child, index, first, release)
        # Next try traverses to the children (Algorithm 4 line 16).


def digits_of_occupant(pool: OctreePool, occupant: int, depth: int) -> int:
    """Morton child digit of *occupant* at *depth* (set by the builder)."""
    return pool._digits[occupant, depth]  # type: ignore[attr-defined]


def build_octree_concurrent(
    x: np.ndarray,
    *,
    bits: int | None = None,
    box: AABB | None = None,
    ctx: ExecutionContext | None = None,
    capacity: int | None = None,
) -> OctreePool:
    """Build the octree by concurrent insertion on the virtual-thread
    scheduler.  Semantics (FAIR completes / LOCKSTEP livelocks) follow
    the context's device; the pool is retried doubled on exhaustion.
    """
    x = np.asarray(x, dtype=float)
    n, dim = x.shape
    bits = default_bits(dim) if bits is None else bits
    if box is None:
        box = compute_bounding_box(x) if n else AABB.empty(dim)
    if ctx is None:
        ctx = ExecutionContext(backend="reference")

    grid = quantize_to_grid(x, box, bits) if n else np.zeros((0, dim), dtype=np.uint64)
    codes = morton_encode(grid, bits) if n else np.zeros(0, dtype=np.uint64)
    digits = morton_child_digits(codes, bits, dim) if n else np.zeros((0, bits), dtype=INDEX)

    cap = capacity if capacity is not None else OctreePool.estimate_capacity(n, dim, bits)
    while True:
        pool = OctreePool(dim=dim, bits=bits, box=box, capacity=cap, n_bodies=n)
        pool._digits = digits  # type: ignore[attr-defined]
        if n == 0:
            return pool
        atom_child = AtomicArray(pool.child, ctx.counters)
        alloc_counter = np.zeros(1, dtype=INDEX)
        atom_alloc = AtomicArray(alloc_counter, ctx.counters)

        kernel = kernel_from_functions(
            "octree_build",
            scalar=lambda b: _insert_thread(pool, atom_child, atom_alloc, digits[b], int(b)),
            uses_atomics=True,
        )
        try:
            from repro.stdpar.algorithms import for_each

            for_each(par, np.arange(n), kernel, ctx)
        except AllocatorExhausted:
            cap *= 2
            continue
        groups = int(alloc_counter[0])
        pool.n_nodes = 1 + groups * pool.nchild
        pool._next_group_slot = pool.n_nodes
        pool.count[0] = n
        return pool
