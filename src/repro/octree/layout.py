"""Octree node-pool memory layout (paper Fig. 1) and bump allocator.

Per node the tree stores one *child word* (``child[i]``):

* ``EMPTY``  — an empty leaf;
* ``LOCKED`` — transient: a thread is inserting / subdividing here;
* ``encode_body(b)`` — a leaf containing body ``b`` (negative encoding);
* ``c >= 0`` — an internal node whose 2^dim children occupy the
  contiguous slots ``c .. c + 2^dim - 1`` in Morton order.

Each *sibling group* additionally stores the offset of its parent
(``parent_of_group``), enabling the leaf-to-root multipole reduction;
this mirrors the paper's "one parent offset per siblings" (1 byte/node
equivalent).  A concurrent bump allocator hands out sibling groups with
a single relaxed ``fetch_add``; since it only moves forward, child
offsets are strictly greater than their parents', which the stackless
force traversal exploits.

Bodies that share a grid cell at the maximum refinement depth cannot be
separated; they form a *bucket*: the leaf's child word holds the head
body and ``next_body`` chains the rest (-1 terminated).  With distinct
positions and default depth this virtually never happens, but it makes
the structure total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocatorExhausted
from repro.geometry.aabb import AABB, cubify
from repro.types import FLOAT, INDEX

#: Child-word tokens (must be negative; body encoding starts at -3).
EMPTY = -1
LOCKED = -2
_BODY_BASE = 3


def encode_body(b: int) -> int:
    """Child-word encoding of 'leaf containing body b'."""
    return -(int(b) + _BODY_BASE)


def decode_body(token: int) -> int:
    """Inverse of :func:`encode_body`."""
    return -int(token) - _BODY_BASE


def is_body_token(token) -> bool | np.ndarray:
    """True for child words that encode a body leaf (scalar or array)."""
    return token <= -_BODY_BASE


@dataclass
class OctreePool:
    """Node pool + per-node attribute arrays for one octree.

    Node 0 is the root.  ``n_nodes`` is the bump-allocator frontier; all
    arrays are valid in ``[0, n_nodes)``.
    """

    dim: int
    bits: int                 # maximum refinement depth (levels below root)
    box: AABB                 # cubified root cell
    capacity: int
    n_bodies: int

    # --- core layout (Fig. 1) ---------------------------------------
    child: np.ndarray = field(init=False)             # int64[capacity]
    parent_of_group: np.ndarray = field(init=False)   # int64[n_groups]
    depth: np.ndarray = field(init=False)             # int16[capacity]
    next_body: np.ndarray = field(init=False)         # int64[n_bodies]

    # --- multipole storage (monopole: mass + centre of mass) --------
    com_w: np.ndarray = field(init=False)             # float64[capacity, dim]
    mass: np.ndarray = field(init=False)              # float64[capacity]
    count: np.ndarray = field(init=False)             # int64[capacity]
    arrivals: np.ndarray = field(init=False)          # int64[capacity]

    # --- traversal acceleration -------------------------------------
    escape: np.ndarray | None = field(init=False, default=None)
    com: np.ndarray | None = field(init=False, default=None)
    #: Traceless quadrupole tensors, allocated when the multipole step
    #: runs at order 2 (paper: "the algorithms described here extend to
    #: multipoles"); None at the default monopole order.
    quad: np.ndarray | None = field(init=False, default=None)

    n_nodes: int = field(init=False, default=1)

    def __post_init__(self) -> None:
        if self.dim not in (2, 3):
            raise ValueError("dim must be 2 or 3")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.box = cubify(self.box)
        nch = self.nchild
        n_groups = self.capacity // nch + 2
        self.child = np.full(self.capacity, EMPTY, dtype=INDEX)
        self.parent_of_group = np.full(n_groups, -1, dtype=INDEX)
        self.depth = np.zeros(self.capacity, dtype=np.int16)
        self.next_body = np.full(self.n_bodies, -1, dtype=INDEX)
        self.com_w = np.zeros((self.capacity, self.dim), dtype=FLOAT)
        self.mass = np.zeros(self.capacity, dtype=FLOAT)
        self.count = np.zeros(self.capacity, dtype=INDEX)
        self.arrivals = np.zeros(self.capacity, dtype=INDEX)
        self.n_nodes = 1  # root pre-allocated
        self._next_group_slot = 1  # node index where the next group starts

    # ------------------------------------------------------------------
    @property
    def nchild(self) -> int:
        return 1 << self.dim

    @property
    def root_side(self) -> float:
        return self.box.longest_side

    def node_side(self, depth) -> np.ndarray | float:
        """Geometric side length of nodes at the given depth(s)."""
        return self.root_side * np.exp2(-np.asarray(depth, dtype=FLOAT))

    # ------------------------------------------------------------------
    # Bump allocation of sibling groups.
    # ------------------------------------------------------------------
    def allocate_groups(self, n_groups: int, parents: np.ndarray | None = None) -> int:
        """Reserve *n_groups* contiguous sibling groups; returns the node
        index of the first group's first child.

        The concurrent build performs this with a relaxed atomic
        ``fetch_add`` on the group counter (one group at a time); the
        vectorized build batches the same allocation.
        """
        nch = self.nchild
        base = self._next_group_slot
        end = base + n_groups * nch
        if end > self.capacity:
            raise AllocatorExhausted(
                f"octree pool exhausted: need {end} nodes, capacity {self.capacity}"
            )
        self._next_group_slot = end
        self.n_nodes = end
        if parents is not None:
            # groups are aligned: base == 1 + k * nch
            gids = (base - 1) // nch + np.arange(n_groups)
            self.parent_of_group[gids] = parents
        return base

    def group_of(self, node) -> np.ndarray | int:
        """Sibling-group id of a non-root node."""
        return (np.asarray(node) - 1) // self.nchild

    def parent_of(self, node) -> np.ndarray | int:
        """Parent node index (root maps to -1)."""
        node = np.asarray(node)
        grp = (node - 1) // self.nchild
        parent = np.where(node > 0, self.parent_of_group[np.maximum(grp, 0)], -1)
        return parent if parent.ndim else int(parent)

    # ------------------------------------------------------------------
    def alive(self) -> np.ndarray:
        """Indices of all allocated nodes."""
        return np.arange(self.n_nodes)

    def internal_nodes(self) -> np.ndarray:
        return np.nonzero(self.child[: self.n_nodes] >= 0)[0]

    def leaf_nodes(self) -> np.ndarray:
        return np.nonzero(self.child[: self.n_nodes] < 0)[0]

    def body_leaves(self) -> np.ndarray:
        return np.nonzero(self.child[: self.n_nodes] <= -_BODY_BASE)[0]

    def leaf_bodies(self, node: int) -> list[int]:
        """All bodies stored in leaf *node* (walking the bucket chain)."""
        token = int(self.child[node])
        out: list[int] = []
        if token > -_BODY_BASE:
            return out
        b = decode_body(token)
        while b >= 0:
            out.append(b)
            b = int(self.next_body[b])
        return out

    def finalize_com(self) -> None:
        """Convert accumulated mass-weighted sums into centres of mass."""
        n = self.n_nodes
        with np.errstate(invalid="ignore", divide="ignore"):
            self.com = np.where(
                self.mass[:n, None] > 0.0,
                self.com_w[:n] / self.mass[:n, None],
                0.0,
            )

    # ------------------------------------------------------------------
    @staticmethod
    def estimate_capacity(n_bodies: int, dim: int, bits: int) -> int:
        """Pool-size estimate, mirroring the paper's 'estimated from the
        number of nodes required to fit all bodies at an isotropically
        sub-divided tree level' heuristic (with generous headroom; the
        concurrent builder retries with a doubled pool on exhaustion)."""
        nch = 1 << dim
        return int(max(4 * nch * max(n_bodies, 1), 64)) + nch * bits
