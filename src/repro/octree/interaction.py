"""Generic Barnes-Hut tree interaction with pluggable kernels.

The paper motivates tree codes beyond gravity: "the tree data
structures it uses are transferable to other domains and algorithms"
(Section I), naming t-SNE's high-dimensional visualization as the
modern driver [27], [28].  This module generalizes the stackless
lockstep traversal to an arbitrary pairwise kernel: an accepted node
contributes a *vector* term (weight × direction) and optionally a
*scalar* term (e.g. t-SNE's normalization mass Z) — gravity is the
special case ``w = G m r^-3`` with no scalar.

The traversal, acceptance criterion, bucket handling and divergence
accounting are identical to :mod:`repro.octree.force`.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.octree.layout import OctreePool
from repro.octree.traversal import DONE, compute_escape_indices
from repro.types import FLOAT, INDEX


class InteractionKernel(Protocol):
    """Pairwise interaction evaluated against tree nodes.

    ``evaluate`` receives, row-wise, the squared distance to the node's
    centre of mass and the node's aggregate mass (body count when all
    masses are 1), and returns the vector weight ``w`` (the
    contribution is ``w * dvec``) and the scalar contribution ``z``.
    It must vanish for ``r2 == 0`` rows (self-interaction)."""

    def evaluate(
        self, r2: np.ndarray, mass: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]: ...


class GravityKernel:
    """The paper's force law as an :class:`InteractionKernel`."""

    def __init__(self, G: float = 1.0, softening: float = 0.0):
        self.G = G
        self.eps2 = softening * softening

    def evaluate(self, r2, mass):
        r2f = r2 + self.eps2
        with np.errstate(divide="ignore", invalid="ignore"):
            w = np.where(r2f > 0.0, self.G * mass * r2f ** -1.5, 0.0)
        return w, np.zeros_like(w)


class StudentTKernel:
    """The Barnes-Hut-SNE repulsion kernel [28].

    With ``q = 1 / (1 + r^2)`` (Student-t with one degree of freedom),
    an accepted node of ``count`` points contributes ``count * q^2`` to
    the repulsive numerator (vector term) and ``count * q`` to the
    normalization Z (scalar term)."""

    def evaluate(self, r2, mass):
        q = 1.0 / (1.0 + r2)
        # self-interaction guard: r2 == 0 rows would contribute q = 1
        # to their own sum; the caller excludes them via zero weight.
        nonself = r2 > 0.0
        return (
            np.where(nonself, mass * q * q, 0.0),
            np.where(nonself, mass * q, 0.0),
        )


def tree_interaction(
    pool: OctreePool,
    x: np.ndarray,
    m: np.ndarray,
    kernel: InteractionKernel,
    *,
    theta: float = 0.5,
    ctx=None,
    simt_width: int = 32,
) -> tuple[np.ndarray, np.ndarray]:
    """Lockstep Barnes-Hut evaluation of *kernel* for every body.

    Returns ``(vec, scalar)``: the accumulated vector field ``(N, dim)``
    and scalar field ``(N,)``.  Multipoles must be computed on *pool*.
    """
    if pool.com is None:
        raise ValueError("multipoles must be computed before tree_interaction")
    if pool.escape is None:
        compute_escape_indices(pool)
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    vec = np.zeros((n, dim), dtype=FLOAT)
    scalar = np.zeros(n, dtype=FLOAT)
    if n == 0 or pool.n_nodes == 0:
        return vec, scalar

    nn = pool.n_nodes
    child = pool.child[:nn]
    com = pool.com
    mass = pool.mass[:nn]
    count = pool.count[:nn]
    escape = pool.escape
    side2 = pool.node_side(pool.depth[:nn]) ** 2
    theta2 = theta * theta

    ptr = np.zeros(n, dtype=INDEX)
    steps = np.zeros(n, dtype=np.int64)
    bucket_pairs: list[tuple[np.ndarray, np.ndarray]] = []

    act = np.arange(n, dtype=INDEX)
    while act.size:
        nd = ptr[act]
        c = child[nd]
        internal = c >= 0
        dvec = com[nd] - x[act]
        r2 = np.einsum("ij,ij->i", dvec, dvec)
        accept = internal & (side2[nd] < theta2 * r2)
        leaf = ~internal
        bucket = leaf & (count[nd] > 1)
        contrib = (accept | leaf) & ~bucket

        if contrib.any():
            w, z = kernel.evaluate(r2[contrib], mass[nd][contrib])
            vec[act[contrib]] += w[:, None] * dvec[contrib]
            scalar[act[contrib]] += z

        if bucket.any():
            bucket_pairs.append((act[bucket].copy(), nd[bucket].copy()))

        ptr[act] = np.where(accept | leaf, escape[nd], c)
        steps[act] += 1
        act = act[ptr[act] != DONE]

    for targets, nodes in bucket_pairs:
        for i, node in zip(targets, nodes):
            for b in pool.leaf_bodies(int(node)):
                if b == i:
                    continue
                d = x[b] - x[i]
                r2b = np.array([float(d @ d)])
                w, z = kernel.evaluate(r2b, np.array([m[b]]))
                vec[i] += w[0] * d
                scalar[i] += z[0]

    if ctx is not None:
        from repro.octree.force import _account_force

        interactions = int(steps.sum())  # upper bound: one eval per visit
        _account_force(steps, interactions, dim, simt_width, ctx.counters)
    return vec, scalar
