"""CALCULATEFORCE: stackless depth-first force traversal (paper Fig. 3).

For every body, the tree is walked from the root in DFS order.  An
internal node whose cell size ``s`` and distance-to-centre-of-mass ``d``
satisfy the multipole acceptance criterion ``s < theta * d`` is
*accepted*: its monopole approximates all bodies beneath it and its
subtree is skipped.  Leaf nodes interact exactly (a single-body leaf's
centre of mass *is* the body, so the monopole term is the exact
pairwise interaction; bucket leaves are expanded body by body).

The computation per body is independent and lock-free, so the paper
runs it with ``par_unseq``.  The batch implementation below advances
all bodies' traversal pointers in lockstep with masked numpy ops —
operationally identical to SIMT execution of the C++ kernel — and
measures per-warp divergence exactly, which feeds the cost model's
divergence term.  A per-body scalar walker (used by the tests and the
reference backend) produces bit-identical visit sequences.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import quantize_to_grid
from repro.geometry.hilbert import hilbert_encode
from repro.geometry.morton import MAX_BITS_2D, MAX_BITS_3D
from repro.machine.counters import Counters
from repro.octree.layout import _BODY_BASE, OctreePool
from repro.octree.traversal import DONE, compute_escape_indices
from repro.physics.gravity import (
    FLOPS_PER_INTERACTION,
    GravityParams,
    SPECIAL_PER_INTERACTION,
)
from repro.physics.multipole import (
    QUAD_EXTRA_BYTES,
    QUAD_EXTRA_FLOPS,
    quadrupole_accel,
)
from repro.traversal.engine import (
    KLASS_EXACT,
    KLASS_INTERNAL,
    KLASS_POINT,
    KLASS_SKIP,
    TreeView,
    account_grouped_force,
    build_interaction_lists,
    build_self_pairs,
    evaluate_interaction_lists,
)
from repro.traversal.flat import build_flat_lists
from repro.traversal.groups import make_groups
from repro.types import FLOAT, INDEX

#: Bytes touched per node visit: child word (8) + centre of mass
#: (dim * 8) + mass (8) + depth (2) + escape (8).
_VISIT_BYTES_3D = 50.0


def _prepare(pool: OctreePool) -> None:
    if pool.com is None:
        raise ValueError("multipoles must be computed before forces")
    if pool.escape is None:
        compute_escape_indices(pool)


def octree_accelerations(
    pool: OctreePool,
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
    ctx=None,
    simt_width: int = 32,
) -> np.ndarray:
    """Barnes-Hut accelerations for all bodies (lockstep batch walk)."""
    _prepare(pool)
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    acc = np.zeros((n, dim), dtype=FLOAT)
    if n == 0 or pool.n_nodes == 0:
        return acc

    nn = pool.n_nodes
    child = pool.child[:nn]
    com = pool.com
    mass = pool.mass[:nn]
    count = pool.count[:nn]
    quad = pool.quad
    escape = pool.escape
    side2 = pool.node_side(pool.depth[:nn]) ** 2
    theta2 = theta * theta
    eps2 = params.eps2
    G = params.G

    ptr = np.zeros(n, dtype=INDEX)           # every body starts at the root
    steps = np.zeros(n, dtype=np.int64)
    interactions = 0
    quad_terms = 0
    bucket_targets: list[np.ndarray] = []
    bucket_nodes: list[np.ndarray] = []

    act = np.arange(n, dtype=INDEX)
    while act.size:
        nd = ptr[act]
        c = child[nd]
        internal = c >= 0
        dvec = com[nd] - x[act]
        r2 = np.einsum("ij,ij->i", dvec, dvec)
        accept = internal & (side2[nd] < theta2 * r2)
        leaf = ~internal
        bucket = leaf & (count[nd] > 1)
        contrib = (accept | leaf) & ~bucket

        if contrib.any():
            r2c = r2[contrib] + eps2
            with np.errstate(divide="ignore", invalid="ignore"):
                w = np.where(r2c > 0.0, G * mass[nd][contrib] * r2c ** -1.5, 0.0)
            # `act` rows are unique, so fancy-index += is race-free here.
            acc[act[contrib]] += w[:, None] * dvec[contrib]
            interactions += int(np.count_nonzero(w))
            if quad is not None:
                # Order-2 term for accepted internal nodes (leaf
                # monopoles are exact; their quadrupole is zero).
                q_rows = accept[contrib]
                if q_rows.any():
                    sel = np.nonzero(contrib)[0][q_rows]
                    acc[act[sel]] += quadrupole_accel(
                        dvec[sel], r2[sel] + eps2, quad[nd[sel]], G
                    )
                    quad_terms += int(q_rows.sum())

        if bucket.any():
            bucket_targets.append(act[bucket].copy())
            bucket_nodes.append(nd[bucket].copy())

        ptr[act] = np.where(accept | leaf, escape[nd], c)
        steps[act] += 1
        act = act[ptr[act] != DONE]

    # Exact expansion of bucket leaves (deepest-cell collisions; rare).
    for targets, nodes in zip(bucket_targets, bucket_nodes):
        for i, node in zip(targets, nodes):
            for b in pool.leaf_bodies(int(node)):
                if b == i:
                    continue
                d = x[b] - x[i]
                r2 = float(d @ d) + eps2
                if r2 > 0.0:
                    acc[i] += G * m[b] * r2**-1.5 * d
                    interactions += 1

    if ctx is not None:
        _account_force(steps, interactions, dim, simt_width, ctx.counters,
                       quad_terms=quad_terms)
    return acc


def octree_accelerations_scalar(
    pool: OctreePool,
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
) -> np.ndarray:
    """Per-body stackless walker (reference; bit-compatible traversal)."""
    _prepare(pool)
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    acc = np.zeros((n, dim), dtype=FLOAT)
    nn = pool.n_nodes
    side2 = pool.node_side(pool.depth[:nn]) ** 2
    theta2 = theta * theta
    eps2 = params.eps2
    for i in range(n):
        node = 0
        while node != DONE:
            c = int(pool.child[node])
            internal = c >= 0
            dvec = pool.com[node] - x[i]
            r2 = float(dvec @ dvec)
            accept = internal and side2[node] < theta2 * r2
            if accept or (not internal and pool.count[node] <= 1):
                r2f = r2 + eps2
                if r2f > 0.0 and pool.mass[node] > 0.0:
                    acc[i] += params.G * pool.mass[node] * r2f**-1.5 * dvec
                    if accept and pool.quad is not None:
                        acc[i] += quadrupole_accel(
                            dvec[None], np.array([r2f]),
                            pool.quad[node][None], params.G,
                        )[0]
            elif not internal:
                for b in pool.leaf_bodies(node):
                    if b == i:
                        continue
                    d = x[b] - x[i]
                    r2b = float(d @ d) + eps2
                    if r2b > 0.0:
                        acc[i] += params.G * m[b] * r2b**-1.5 * d
            node = int(pool.escape[node]) if (accept or not internal) else c
    return acc


def _account_force(
    steps: np.ndarray,
    interactions: int,
    dim: int,
    simt_width: int,
    counters: Counters,
    quad_terms: int = 0,
) -> None:
    """Charge traversal + interaction work, with exact warp divergence."""
    total = float(steps.sum())
    n = steps.shape[0]
    pad = (-n) % simt_width
    warps = np.pad(steps, (0, pad)).reshape(-1, simt_width)
    warp_total = float(warps.max(axis=1).sum() * simt_width)
    visit_bytes = _VISIT_BYTES_3D if dim == 3 else 42.0
    counters.add(
        flops=(interactions * FLOPS_PER_INTERACTION + total * 8.0
               + quad_terms * QUAD_EXTRA_FLOPS),
        special_flops=interactions * SPECIAL_PER_INTERACTION,
        bytes_irregular=total * visit_bytes + quad_terms * QUAD_EXTRA_BYTES,
        bytes_read=(total * visit_bytes + n * dim * 8.0
                    + quad_terms * QUAD_EXTRA_BYTES),
        bytes_written=n * dim * 8.0,
        traversal_steps=total,
        traversal_steps_max=float(steps.max(initial=0)),
        warp_traversal_steps=warp_total,
        mac_evals=total,  # every visit tests the MAC once
        loop_iterations=float(n),
        kernel_launches=1.0,
    )


# ----------------------------------------------------------------------
# Group-coherent traversal (one walk per Hilbert-contiguous body group).
# ----------------------------------------------------------------------

def _hilbert_body_order(x: np.ndarray, box) -> np.ndarray:
    """Hilbert-curve permutation of the (unsorted) octree bodies."""
    n, dim = x.shape
    bits = MAX_BITS_3D if dim == 3 else MAX_BITS_2D
    keys = hilbert_encode(quantize_to_grid(x, box, bits), bits)
    return np.argsort(keys, kind="stable")


def _octree_dfs_ranks(pool: OctreePool) -> np.ndarray:
    """DFS-preorder rank of every pool node (level-vectorized)."""
    nn = pool.n_nodes
    child = pool.child[:nn]
    depth = pool.depth[:nn].astype(np.int64)
    nch = pool.nchild
    internal = np.nonzero(child >= 0)[0]
    max_depth = int(depth[internal].max(initial=0))
    lane = np.arange(nch, dtype=INDEX)
    # Subtree sizes bottom-up, then child ranks top-down: a child's rank
    # is its parent's, plus one, plus its earlier siblings' subtrees.
    size = np.ones(nn, dtype=np.int64)
    for d in range(max_depth, -1, -1):
        nodes = internal[depth[internal] == d]
        if nodes.size:
            ch = child[nodes][:, None] + lane
            size[nodes] = 1 + size[ch].sum(axis=1)
    rank = np.zeros(nn, dtype=np.int64)
    for d in range(max_depth + 1):
        nodes = internal[depth[internal] == d]
        if nodes.size:
            ch = child[nodes][:, None] + lane
            sz = size[ch]
            rank[ch] = rank[nodes][:, None] + 1 + np.cumsum(sz, axis=1) - sz
    return rank


def _octree_tree_view(pool: OctreePool) -> TreeView:
    """Flat traversal-engine view of the pool."""
    nn = pool.n_nodes
    child = pool.child[:nn]
    count = pool.count[:nn]
    internal = child >= 0
    leaf = ~internal
    klass = np.full(nn, KLASS_SKIP, dtype=np.int8)  # empty leaves skip
    klass[internal] = KLASS_INTERNAL
    point = leaf & (count == 1)
    klass[point] = KLASS_POINT
    klass[leaf & (count > 1)] = KLASS_EXACT
    point_body = np.full(nn, -1, dtype=INDEX)
    point_body[point] = -child[point] - _BODY_BASE  # decode_body, batched
    return TreeView(
        com=pool.com,
        mass=pool.mass[:nn],
        size2=pool.node_side(pool.depth[:nn]) ** 2,
        first_child=child,
        branch=pool.nchild,
        klass=klass,
        point_body=point_body,
        dfs_rank=_octree_dfs_ranks(pool),
        quad=pool.quad,
        visit_bytes=_VISIT_BYTES_3D if pool.dim == 3 else 42.0,
    )


#: Public alias: the distributed runtime builds LETs and cross-rank
#: interaction lists against this same view.
octree_tree_view = _octree_tree_view


def octree_accelerations_grouped(
    pool: OctreePool,
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
    group_size: int = 32,
    ctx=None,
    simt_width: int = 32,
    cache: dict | None = None,
    eval_mode: str = "auto",
    mac_margin: float = 0.0,
) -> np.ndarray:
    """Barnes-Hut accelerations via group-coherent traversal.

    Bodies are Hilbert-sorted and partitioned into contiguous groups of
    *group_size*; the stackless walk runs once per group with the
    conservative group MAC and emits an interaction list, which is then
    evaluated as dense ``group x node`` tiles.  *cache*, when given, is
    the structure-cache entry dict: the lists (and the Hilbert
    permutation) are stored in it and reused across timesteps for as
    long as the tree structure itself is, then rebuilt with it.

    At ``group_size=1`` (monopole order) the result is bit-identical to
    :func:`octree_accelerations`.
    """
    _prepare(pool)
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    if n == 0 or pool.n_nodes == 0:
        return np.zeros((n, dim), dtype=FLOAT)

    key = ("ilists", float(theta), int(group_size))
    cached = cache.get(key) if cache is not None else None
    built = cached is None or cached["perm"].shape[0] != n
    view = _octree_tree_view(pool)
    if built:
        perm = _hilbert_body_order(x, pool.box)
        groups = make_groups(x[perm], group_size)
        lists = build_interaction_lists(view, groups, theta,
                                        mac_margin=mac_margin)
        cached = {"perm": perm, "groups": groups, "lists": lists}
        if cache is not None:
            cache[key] = cached
    perm = cached["perm"]
    groups = cached["groups"]
    lists = cached["lists"]

    mode = eval_mode
    if mode == "auto":
        # Flat's index expansion is a per-epoch precompute: pick it
        # only when a structure cache amortizes it, gemm otherwise.
        if groups.max_group_size <= 1:
            mode = "tile"
        else:
            mode = "flat" if cache is not None else "gemm"
    # Per-epoch precomputes live inside the cached entry, so the
    # maintainer's list invalidation drops them in the same stroke.
    flat = self_pairs = None
    if mode == "flat":
        flat = cached.get("flat")
        if flat is None:
            # Bucket-leaf bodies fold into the flat near-field pools, so
            # the scalar exact loop below is skipped in this mode.
            flat = build_flat_lists(view, lists, groups, body_ids=perm,
                                    exact_bodies=pool.leaf_bodies)
            cached["flat"] = flat
    elif mode == "gemm":
        self_pairs = cached.get("selfpairs")
        if self_pairs is None:
            self_pairs = build_self_pairs(view, lists, groups,
                                          body_ids=perm)
            cached["selfpairs"] = self_pairs

    m_sorted = np.asarray(m, dtype=FLOAT)[perm]
    acc_s, stats = evaluate_interaction_lists(
        view, lists, groups, x[perm],
        G=params.G, eps2=params.eps2, body_ids=perm, mode=mode,
        flat=flat, m_sorted=m_sorted, self_pairs=self_pairs,
    )

    # Exact expansion of bucket leaves (same scalar math as lockstep).
    pairs = stats["pairs"]
    if not (flat is not None and flat.includes_exact):
        eps2 = params.eps2
        G = params.G
        go = groups.offsets
        for g, node in zip(lists.exact_groups, lists.exact_nodes):
            bodies = pool.leaf_bodies(int(node))
            for row in range(int(go[g]), int(go[g + 1])):
                i = int(perm[row])
                for b in bodies:
                    if b == i:
                        continue
                    d = x[b] - x[i]
                    r2b = float(d @ d) + eps2
                    if r2b > 0.0:
                        acc_s[row] += G * m[b] * r2b**-1.5 * d
                        pairs += 1

    if ctx is not None:
        account_grouped_force(
            ctx.counters, lists, groups,
            n_bodies=n, dim=dim, simt_width=simt_width,
            pairs=pairs, quad_terms=stats["quad_terms"],
            visit_bytes=view.visit_bytes, built=built,
            sort_comparisons=float(n) * float(np.log2(max(n, 2))) if built else 0.0,
            flat_launches=stats["flat_launches"],
            near_pairs_naive=stats["near_pairs_naive"],
            near_pairs_evaluated=stats["near_pairs_evaluated"],
        )

    out = np.empty_like(acc_s)
    out[perm] = acc_s
    return out


def octree_accelerations_dual(
    pool: OctreePool,
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
    group_size: int = 32,
    cc_mac: float = 1.5,
    expansion_order: int = 2,
    ctx=None,
    simt_width: int = 32,
    cache: dict | None = None,
    eval_mode: str = "auto",
    mac_margin: float = 0.0,
) -> np.ndarray:
    """Barnes-Hut accelerations via the dual-tree cell-cell traversal.

    Same Hilbert grouping as :func:`octree_accelerations_grouped`, but
    groups are organized into a target tree and classified against the
    octree by the simultaneous walk of :mod:`repro.traversal.dual`:
    well-separated cell pairs are evaluated once via M2L and swept down
    to bodies, the near field falls back to the grouped tile kernels
    verbatim.  ``cc_mac=0`` disables the cell-cell branch and is
    bit-identical to the grouped mode.
    """
    # Imported here, not at module top: repro.traversal.dual itself
    # imports the BVH layout, whose package init re-enters this module.
    from repro.traversal.dual import (
        account_dual_force,
        build_dual_lists,
        build_target_tree,
        evaluate_dual,
    )

    _prepare(pool)
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    if n == 0 or pool.n_nodes == 0:
        return np.zeros((n, dim), dtype=FLOAT)

    key = ("dlists", float(theta), int(group_size), float(cc_mac),
           int(expansion_order))
    cached = cache.get(key) if cache is not None else None
    built = cached is None or cached["perm"].shape[0] != n
    view = _octree_tree_view(pool)
    if built:
        perm = _hilbert_body_order(x, pool.box)
        groups = make_groups(x[perm], group_size)
        tt = build_target_tree(groups)
        dual = build_dual_lists(view, tt, theta, cc_mac=cc_mac,
                                mac_margin=mac_margin)
        # "lists" aliases the near side so the maintenance snapshot /
        # drift gate sees the same shape as a grouped entry.
        cached = {"perm": perm, "groups": groups, "dual": dual,
                  "lists": dual.near}
        if cache is not None:
            cache[key] = cached
    perm = cached["perm"]
    groups = cached["groups"]
    dual = cached["dual"]

    mode = eval_mode
    if mode == "auto":
        # Flat's index expansion is a per-epoch precompute: pick it
        # only when a structure cache amortizes it, gemm otherwise.
        if groups.max_group_size <= 1:
            mode = "tile"
        else:
            mode = "flat" if cache is not None else "gemm"
    flat = self_pairs = None
    if mode == "flat":
        flat = cached.get("flat")
        if flat is None:
            flat = build_flat_lists(view, dual.near, groups,
                                    body_ids=perm,
                                    exact_bodies=pool.leaf_bodies)
            cached["flat"] = flat
    elif mode == "gemm":
        self_pairs = cached.get("selfpairs")
        if self_pairs is None:
            self_pairs = build_self_pairs(view, dual.near, groups,
                                          body_ids=perm)
            cached["selfpairs"] = self_pairs

    m_sorted = np.asarray(m, dtype=FLOAT)[perm]
    acc_s, stats = evaluate_dual(
        view, dual, groups, x[perm],
        G=params.G, eps2=params.eps2, body_ids=perm, mode=mode,
        expansion_order=expansion_order, ctx=ctx,
        flat=flat, m_sorted=m_sorted, self_pairs=self_pairs,
    )

    # Exact expansion of bucket leaves (same scalar math as grouped).
    pairs = stats["pairs"]
    if not (flat is not None and flat.includes_exact):
        eps2 = params.eps2
        G = params.G
        go = groups.offsets
        for g, node in zip(dual.near.exact_groups, dual.near.exact_nodes):
            bodies = pool.leaf_bodies(int(node))
            for row in range(int(go[g]), int(go[g + 1])):
                i = int(perm[row])
                for b in bodies:
                    if b == i:
                        continue
                    d = x[b] - x[i]
                    r2b = float(d @ d) + eps2
                    if r2b > 0.0:
                        acc_s[row] += G * m[b] * r2b**-1.5 * d
                        pairs += 1

    if ctx is not None:
        account_dual_force(
            ctx.counters, dual, groups,
            n_bodies=n, dim=dim, simt_width=simt_width,
            pairs=pairs, quad_terms=stats["quad_terms"],
            quad_far=stats["quad_far"], expansion_order=expansion_order,
            visit_bytes=view.visit_bytes, built=built,
            sort_comparisons=float(n) * float(np.log2(max(n, 2))) if built else 0.0,
            flat_launches=stats["flat_launches"],
            near_pairs_naive=stats["near_pairs_naive"],
            near_pairs_evaluated=stats["near_pairs_evaluated"],
        )

    out = np.empty_like(acc_s)
    out[perm] = acc_s
    return out
