"""CALCULATEFORCE: stackless depth-first force traversal (paper Fig. 3).

For every body, the tree is walked from the root in DFS order.  An
internal node whose cell size ``s`` and distance-to-centre-of-mass ``d``
satisfy the multipole acceptance criterion ``s < theta * d`` is
*accepted*: its monopole approximates all bodies beneath it and its
subtree is skipped.  Leaf nodes interact exactly (a single-body leaf's
centre of mass *is* the body, so the monopole term is the exact
pairwise interaction; bucket leaves are expanded body by body).

The computation per body is independent and lock-free, so the paper
runs it with ``par_unseq``.  The batch implementation below advances
all bodies' traversal pointers in lockstep with masked numpy ops —
operationally identical to SIMT execution of the C++ kernel — and
measures per-warp divergence exactly, which feeds the cost model's
divergence term.  A per-body scalar walker (used by the tests and the
reference backend) produces bit-identical visit sequences.
"""

from __future__ import annotations

import numpy as np

from repro.machine.counters import Counters
from repro.octree.layout import OctreePool
from repro.octree.traversal import DONE, compute_escape_indices
from repro.physics.gravity import (
    FLOPS_PER_INTERACTION,
    GravityParams,
    SPECIAL_PER_INTERACTION,
)
from repro.types import FLOAT, INDEX

#: Bytes touched per node visit: child word (8) + centre of mass
#: (dim * 8) + mass (8) + depth (2) + escape (8).
_VISIT_BYTES_3D = 50.0


def _prepare(pool: OctreePool) -> None:
    if pool.com is None:
        raise ValueError("multipoles must be computed before forces")
    if pool.escape is None:
        compute_escape_indices(pool)


def octree_accelerations(
    pool: OctreePool,
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
    ctx=None,
    simt_width: int = 32,
) -> np.ndarray:
    """Barnes-Hut accelerations for all bodies (lockstep batch walk)."""
    _prepare(pool)
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    acc = np.zeros((n, dim), dtype=FLOAT)
    if n == 0 or pool.n_nodes == 0:
        return acc

    nn = pool.n_nodes
    child = pool.child[:nn]
    com = pool.com
    mass = pool.mass[:nn]
    count = pool.count[:nn]
    quad = pool.quad
    escape = pool.escape
    side2 = pool.node_side(pool.depth[:nn]) ** 2
    theta2 = theta * theta
    eps2 = params.eps2
    G = params.G

    ptr = np.zeros(n, dtype=INDEX)           # every body starts at the root
    steps = np.zeros(n, dtype=np.int64)
    interactions = 0
    quad_terms = 0
    bucket_targets: list[np.ndarray] = []
    bucket_nodes: list[np.ndarray] = []

    act = np.arange(n, dtype=INDEX)
    while act.size:
        nd = ptr[act]
        c = child[nd]
        internal = c >= 0
        dvec = com[nd] - x[act]
        r2 = np.einsum("ij,ij->i", dvec, dvec)
        accept = internal & (side2[nd] < theta2 * r2)
        leaf = ~internal
        bucket = leaf & (count[nd] > 1)
        contrib = (accept | leaf) & ~bucket

        if contrib.any():
            r2c = r2[contrib] + eps2
            with np.errstate(divide="ignore", invalid="ignore"):
                w = np.where(r2c > 0.0, G * mass[nd][contrib] * r2c ** -1.5, 0.0)
            # `act` rows are unique, so fancy-index += is race-free here.
            acc[act[contrib]] += w[:, None] * dvec[contrib]
            interactions += int(np.count_nonzero(w))
            if quad is not None:
                # Order-2 term for accepted internal nodes (leaf
                # monopoles are exact; their quadrupole is zero).
                q_rows = accept[contrib]
                if q_rows.any():
                    from repro.physics.multipole import quadrupole_accel

                    sel = np.nonzero(contrib)[0][q_rows]
                    acc[act[sel]] += quadrupole_accel(
                        dvec[sel], r2[sel] + eps2, quad[nd[sel]], G
                    )
                    quad_terms += int(q_rows.sum())

        if bucket.any():
            bucket_targets.append(act[bucket].copy())
            bucket_nodes.append(nd[bucket].copy())

        ptr[act] = np.where(accept | leaf, escape[nd], c)
        steps[act] += 1
        act = act[ptr[act] != DONE]

    # Exact expansion of bucket leaves (deepest-cell collisions; rare).
    for targets, nodes in zip(bucket_targets, bucket_nodes):
        for i, node in zip(targets, nodes):
            for b in pool.leaf_bodies(int(node)):
                if b == i:
                    continue
                d = x[b] - x[i]
                r2 = float(d @ d) + eps2
                if r2 > 0.0:
                    acc[i] += G * m[b] * r2**-1.5 * d
                    interactions += 1

    if ctx is not None:
        _account_force(steps, interactions, dim, simt_width, ctx.counters,
                       quad_terms=quad_terms)
    return acc


def octree_accelerations_scalar(
    pool: OctreePool,
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    theta: float = 0.5,
) -> np.ndarray:
    """Per-body stackless walker (reference; bit-compatible traversal)."""
    _prepare(pool)
    x = np.asarray(x, dtype=FLOAT)
    n, dim = x.shape
    acc = np.zeros((n, dim), dtype=FLOAT)
    nn = pool.n_nodes
    side2 = pool.node_side(pool.depth[:nn]) ** 2
    theta2 = theta * theta
    eps2 = params.eps2
    for i in range(n):
        node = 0
        while node != DONE:
            c = int(pool.child[node])
            internal = c >= 0
            dvec = pool.com[node] - x[i]
            r2 = float(dvec @ dvec)
            accept = internal and side2[node] < theta2 * r2
            if accept or (not internal and pool.count[node] <= 1):
                r2f = r2 + eps2
                if r2f > 0.0 and pool.mass[node] > 0.0:
                    acc[i] += params.G * pool.mass[node] * r2f**-1.5 * dvec
                    if accept and pool.quad is not None:
                        from repro.physics.multipole import quadrupole_accel

                        acc[i] += quadrupole_accel(
                            dvec[None], np.array([r2f]),
                            pool.quad[node][None], params.G,
                        )[0]
            elif not internal:
                for b in pool.leaf_bodies(node):
                    if b == i:
                        continue
                    d = x[b] - x[i]
                    r2b = float(d @ d) + eps2
                    if r2b > 0.0:
                        acc[i] += params.G * m[b] * r2b**-1.5 * d
            node = int(pool.escape[node]) if (accept or not internal) else c
    return acc


def _account_force(
    steps: np.ndarray,
    interactions: int,
    dim: int,
    simt_width: int,
    counters: Counters,
    quad_terms: int = 0,
) -> None:
    """Charge traversal + interaction work, with exact warp divergence."""
    from repro.physics.multipole import QUAD_EXTRA_BYTES, QUAD_EXTRA_FLOPS

    total = float(steps.sum())
    n = steps.shape[0]
    pad = (-n) % simt_width
    warps = np.pad(steps, (0, pad)).reshape(-1, simt_width)
    warp_total = float(warps.max(axis=1).sum() * simt_width)
    visit_bytes = _VISIT_BYTES_3D if dim == 3 else 42.0
    counters.add(
        flops=(interactions * FLOPS_PER_INTERACTION + total * 8.0
               + quad_terms * QUAD_EXTRA_FLOPS),
        special_flops=interactions * SPECIAL_PER_INTERACTION,
        bytes_irregular=total * visit_bytes + quad_terms * QUAD_EXTRA_BYTES,
        bytes_read=(total * visit_bytes + n * dim * 8.0
                    + quad_terms * QUAD_EXTRA_BYTES),
        bytes_written=n * dim * 8.0,
        traversal_steps=total,
        traversal_steps_max=float(steps.max(initial=0)),
        warp_traversal_steps=warp_total,
        loop_iterations=float(n),
        kernel_launches=1.0,
    )
