"""Stackless DFS support (paper Fig. 3) and structural canonicalization.

The bump allocator hands out children at strictly larger offsets than
their parents, so a depth-first traversal needs no stack: a *forward
step* descends to the first child; a *backward step* moves to the next
sibling, or — from the last sibling — to the parent's successor.  The
composition of backward steps from any node is a static function of the
tree, its *escape index*; we precompute it level by level (children
derive theirs from their parent's), which is semantically identical to
deriving it from the offset ordering on the fly.
"""

from __future__ import annotations

import numpy as np

from repro.octree.layout import OctreePool, is_body_token, decode_body
from repro.types import INDEX

#: Escape value meaning "traversal finished".
DONE = -1


def compute_escape_indices(pool: OctreePool) -> np.ndarray:
    """Next-node-in-DFS-after-skipping-subtree, for every node."""
    n = pool.n_nodes
    nch = pool.nchild
    escape = np.full(n, DONE, dtype=INDEX)
    internal = pool.internal_nodes()
    if internal.size:
        depths = pool.depth[internal]
        for d in range(0, int(depths.max(initial=0)) + 1):
            nodes_d = internal[depths == d]
            if not nodes_d.size:
                continue
            first = pool.child[nodes_d]
            # siblings chain to each other ...
            for i in range(nch - 1):
                escape[first + i] = first + i + 1
            # ... and the last sibling escapes to the parent's escape.
            escape[first + nch - 1] = escape[nodes_d]
    pool.escape = escape
    return escape


def canonical_structure(pool: OctreePool):
    """A nested-tuple canonical form of the tree, independent of node
    allocation order — equal for the concurrent and vectorized builders.

    Leaves map to ``('leaf', frozenset(bodies))``; internal nodes to a
    tuple of their children's canonical forms in Morton child order.
    """

    def rec(node: int):
        c = int(pool.child[node])
        if c >= 0:
            return tuple(rec(c + i) for i in range(pool.nchild))
        return ("leaf", frozenset(pool.leaf_bodies(node)))

    return rec(0)


def validate_tree(pool: OctreePool, n_bodies: int) -> None:
    """Structural invariants, raising AssertionError on violation:

    * every body appears in exactly one leaf;
    * children always have larger offsets than parents (Fig. 3's
      stackless-traversal precondition);
    * child depths are parent depth + 1;
    * no node is left in the transient Locked state.
    """
    seen: list[int] = []
    n = pool.n_nodes
    child = pool.child[:n]
    assert not np.any(child == -2), "node left LOCKED after build"
    internal = pool.internal_nodes()
    if internal.size:
        first = child[internal]
        assert np.all(first > internal), "child offset not larger than parent"
        for i in range(pool.nchild):
            assert np.all(pool.depth[first + i] == pool.depth[internal] + 1)
            parents = pool.parent_of(first + i)
            assert np.all(parents == internal), "parent offsets inconsistent"
    for leaf in pool.leaf_nodes():
        seen.extend(pool.leaf_bodies(int(leaf)))
    assert sorted(seen) == list(range(n_bodies)), "bodies lost or duplicated"
