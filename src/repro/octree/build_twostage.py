"""Two-stage octree construction (the paper's benchmarked comparator).

Thüring et al. [22] — whose SYCL solver the paper validates against —
enhance the top-down builder of Burtscher and Pingali [29] by splitting
construction into two kernels: first, a *single work-group* builds the
partial tree near the root; second, the now-independent subtrees are
built in parallel, one work-group each (paper Section VI).  The split
exists because SYCL's execution model only synchronizes within a
work-group: without Independent Thread Scheduling there is no safe
global locking, so the contended top of the tree must be serialized.

We reproduce that strategy: the tree materialized is *identical* to
the other builders' (structure is position-determined); what differs
is the execution shape, and therefore the accounting — stage-1 levels
are charged as dependent single-work-group operations
(``serial_node_ops``), stage-2 subtree construction as ordinary
parallel work.  Because it needs no global atomics or locks, this
builder runs under weakly parallel forward progress, i.e. everywhere —
portability bought with the serial stage the Concurrent Octree avoids.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB
from repro.octree.build_vectorized import build_octree_vectorized
from repro.octree.layout import OctreePool
from repro.stdpar.context import ExecutionContext

#: Stage 1 runs until at least this many independent subtrees exist
#: (Thüring et al. size the split so stage 2 fills the device).
DEFAULT_SUBTREE_TARGET = 256


def build_octree_twostage(
    x: np.ndarray,
    *,
    bits: int | None = None,
    box: AABB | None = None,
    ctx: ExecutionContext | None = None,
    subtree_target: int = DEFAULT_SUBTREE_TARGET,
) -> OctreePool:
    """Build the octree with two-stage accounting.

    Returns the same pool as :func:`build_octree_vectorized`; when *ctx*
    is given, stage-1 work (levels whose frontier is narrower than
    *subtree_target*) is charged as single-work-group serial node
    operations and stage-2 work as parallel insertion.
    """
    if subtree_target < 1:
        raise ValueError("subtree_target must be >= 1")
    stats: list[dict] = []
    pool = build_octree_vectorized(
        x, bits=bits, box=box, ctx=None, level_stats=stats, account="none"
    )
    if ctx is not None:
        _account_twostage(pool, stats, int(np.asarray(x).shape[0]),
                          subtree_target, ctx)
    return pool


def _account_twostage(
    pool: OctreePool,
    stats: list[dict],
    n: int,
    subtree_target: int,
    ctx: ExecutionContext,
) -> None:
    """Charge stage-1 (serial work-group) and stage-2 (parallel) work.

    Stage 1 processes every body through each top level (each body's
    cell must be routed down to its subtree): the dependent-op count is
    the bodies spanned per serialized level.  Stage 2 is the standard
    insertion pass over the remaining depth, lock-free within subtrees.
    """
    word = 8.0
    serial_ops = 0.0
    stage2_descent = 0.0
    for s in stats:
        if s["frontier_nodes"] < subtree_target:
            serial_ops += float(s["bodies_spanned"])
        else:
            stage2_descent += float(s["bodies_spanned"])
    nn = pool.n_nodes
    n_groups = (nn - 1) // pool.nchild
    ctx.counters.add(
        serial_node_ops=serial_ops,
        # Stage 2: plain (work-group local) inserts — no global atomics.
        bytes_irregular=stage2_descent * word,
        bytes_read=(serial_ops + stage2_descent) * word + 32.0 * n,
        bytes_written=word * (n + 3.0 * n_groups),
        loop_iterations=float(n),
        kernel_launches=2.0,
    )
