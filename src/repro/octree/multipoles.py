"""CALCULATEMULTIPOLES: parallel tree reduction (paper Fig. 2).

Monopole moments (mass, mass-weighted centre of mass, body count) are
reduced leaf-to-root.  The paper's wait-free algorithm launches one
thread per node; non-leaf threads exit immediately, leaf threads
accumulate their moments onto the parent with relaxed ``fetch_add`` and
signal with an acquire+release arrival counter — the *last* arriver
recurses to the parent.  There are no critical sections (wait-free),
but the synchronizing atomics are vectorization-unsafe, so the kernel
requires ``par``.

Both forms below produce identical results; the scalar form is the
faithful one, the vectorized form processes levels bottom-up with the
concurrent algorithm's operation counts charged analytically.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.octree.layout import OctreePool, decode_body, is_body_token
from repro.stdpar.atomics import AtomicArray, acq_rel, relaxed
from repro.stdpar.context import ExecutionContext
from repro.stdpar.kernel import kernel_from_functions
from repro.stdpar.policy import par
from repro.stdpar.scheduler import FetchAdd, Op


def _leaf_moment(pool: OctreePool, x: np.ndarray, m: np.ndarray, node: int):
    """(weighted-position, mass, count) of a leaf's bodies (0 if empty)."""
    bodies = pool.leaf_bodies(node)
    if not bodies:
        return np.zeros(pool.dim), 0.0, 0
    idx = np.asarray(bodies)
    return (m[idx, None] * x[idx]).sum(axis=0), float(m[idx].sum()), len(bodies)


def _reduce_thread(
    pool: OctreePool,
    atoms: dict[str, AtomicArray],
    x: np.ndarray,
    m: np.ndarray,
    node: int,
) -> Generator[Op, Any, None]:
    """One virtual thread of the Fig. 2 reduction."""
    if pool.child[node] >= 0:
        return  # internal node: exit immediately
    com_w, mass, cnt = _leaf_moment(pool, x, m, node)
    # Store the leaf's own moments (each leaf is owned by exactly one
    # thread, so plain stores are race-free); the force kernel reads
    # them when it reaches the leaf.
    pool.com_w[node] = com_w
    pool.mass[node] = mass
    pool.count[node] = cnt
    if pool.quad is not None and cnt > 1:
        from repro.physics.multipole import quadrupole_of_points

        idx = np.asarray(pool.leaf_bodies(node))
        pool.quad[node] = quadrupole_of_points(x[idx], m[idx], com_w / mass)
    if node == 0:
        return  # single-node tree: the root is itself the leaf
    cur = node
    while cur != 0:
        parent = int(pool.parent_of(cur))
        for k in range(pool.dim):
            yield FetchAdd(atoms["com_w"], (parent, k), com_w[k], relaxed)
        yield FetchAdd(atoms["mass"], parent, mass, relaxed)
        yield FetchAdd(atoms["count"], parent, cnt, relaxed)
        old = yield FetchAdd(atoms["arrivals"], parent, 1, acq_rel)
        if int(old) + 1 < pool.nchild:
            return  # a sibling will finish this parent
        # Last arriver: all children's moments are visible (the
        # acquire+release counter orders them); recurse to the parent.
        com_w = pool.com_w[parent].copy()
        mass = float(pool.mass[parent])
        cnt = int(pool.count[parent])
        if pool.quad is not None:
            # Order 2: the last arriver owns the parent now — combine
            # the children's (final) quadrupoles about the parent com.
            _finish_parent_quadrupole(pool, parent, com_w, mass)
        cur = parent


def _exact_single_body_coms(pool: OctreePool, x: np.ndarray) -> None:
    """Make single-body leaf centres of mass bitwise equal to the body
    position.

    ``(m * x) / m`` is not guaranteed to round-trip in floating point;
    a one-ulp offset turns the body's visit to its *own* leaf into a
    near-zero-distance interaction, which diverges when softening is
    zero (the leaf monopole is only "the exact pairwise interaction" if
    the com is exact).
    """
    leaves = pool.body_leaves()
    if not leaves.size:
        return
    single = leaves[pool.count[leaves] == 1]
    heads = (-pool.child[single] - 3).astype(np.int64)
    pool.com[single] = x[heads]


def _finish_parent_quadrupole(
    pool: OctreePool, parent: int, com_w: np.ndarray, mass: float
) -> None:
    """Combine the children's quadrupoles about the parent com (called
    exactly once per internal node, by its last-arriving thread)."""
    from repro.physics.multipole import combine_quadrupoles

    com_parent = com_w / mass if mass > 0.0 else np.zeros(pool.dim)
    first = int(pool.child[parent])
    ch = np.arange(first, first + pool.nchild)
    with np.errstate(invalid="ignore", divide="ignore"):
        com_ch = np.where(
            pool.mass[ch, None] > 0.0,
            pool.com_w[ch] / np.maximum(pool.mass[ch, None], 1e-300),
            0.0,
        )
    pool.quad[parent] = combine_quadrupoles(
        pool.quad[ch][None], pool.mass[ch][None], com_ch[None], com_parent[None]
    )[0]


def compute_multipoles_concurrent(
    pool: OctreePool,
    x: np.ndarray,
    m: np.ndarray,
    ctx: ExecutionContext | None = None,
    *,
    order: int = 1,
) -> None:
    """Faithful wait-free reduction on the virtual-thread scheduler."""
    _check_order(pool, order)
    if ctx is None:
        ctx = ExecutionContext(backend="reference")
    n = pool.n_nodes
    pool.com_w[:n] = 0.0
    pool.mass[:n] = 0.0
    pool.count[:n] = 0
    pool.arrivals[:n] = 0
    pool.quad = np.zeros((n, pool.dim, pool.dim)) if order == 2 else None
    atoms = {
        "com_w": AtomicArray(pool.com_w, ctx.counters),
        "mass": AtomicArray(pool.mass, ctx.counters),
        "count": AtomicArray(pool.count, ctx.counters),
        "arrivals": AtomicArray(pool.arrivals, ctx.counters),
    }
    kernel = kernel_from_functions(
        "octree_multipoles",
        scalar=lambda i: _reduce_thread(pool, atoms, x, m, int(i)),
        uses_atomics=True,
    )
    from repro.stdpar.algorithms import for_each

    for_each(par, np.arange(n), kernel, ctx)
    pool.finalize_com()
    _exact_single_body_coms(pool, x)


def _leaf_quadrupoles(pool: OctreePool, x: np.ndarray, m: np.ndarray) -> None:
    """Quadrupoles of leaves: zero for empty/single-body leaves (a point
    has no quadrupole about itself); exact sums for bucket chains."""
    from repro.physics.multipole import quadrupole_of_points

    assert pool.quad is not None
    for leaf in pool.body_leaves():
        bodies = pool.leaf_bodies(int(leaf))
        if len(bodies) > 1:
            idx = np.asarray(bodies)
            pool.quad[leaf] = quadrupole_of_points(x[idx], m[idx], pool.com[leaf])


def _reduce_quadrupoles_vectorized(pool: OctreePool) -> None:
    """Bottom-up parallel-axis combination over final centres of mass."""
    from repro.physics.multipole import combine_quadrupoles

    nch = pool.nchild
    internal = pool.internal_nodes()
    if not internal.size:
        return
    depths = pool.depth[internal]
    for d in range(int(depths.max(initial=0)), -1, -1):
        nodes_d = internal[depths == d]
        if not nodes_d.size:
            continue
        blocks = pool.child[nodes_d][:, None] + np.arange(nch)
        pool.quad[nodes_d] = combine_quadrupoles(
            pool.quad[blocks], pool.mass[blocks], pool.com[blocks],
            pool.com[nodes_d],
        )


def _check_order(pool: OctreePool, order: int) -> None:
    if order not in (1, 2):
        raise ValueError(f"multipole order must be 1 or 2, got {order}")
    if order == 2 and pool.dim != 3:
        raise ValueError("quadrupole moments are 3-D only")


def compute_multipoles_vectorized(
    pool: OctreePool,
    x: np.ndarray,
    m: np.ndarray,
    ctx: ExecutionContext | None = None,
    *,
    order: int = 1,
    account: str = "waitfree",
) -> None:
    """Level-by-level bottom-up reduction (identical results).

    *account* selects whose operation counts are charged: ``"waitfree"``
    for the paper's Fig. 2 atomic reduction (the Concurrent Octree's
    CALCULATEMULTIPOLES), ``"levelwise"`` for an atomics-free
    level-synchronous reduction (the two-stage/Thüring-style pipeline,
    analogous to the BVH's fused pass).
    """
    _check_order(pool, order)
    if account not in ("waitfree", "levelwise"):
        raise ValueError(f"unknown accounting mode {account!r}")
    n = pool.n_nodes
    nch = pool.nchild
    pool.com_w[:n] = 0.0
    pool.mass[:n] = 0.0
    pool.count[:n] = 0

    # Leaf moments in one scatter pass; bucket chains iterate (their
    # length is 1 except for deepest-cell collisions).
    leaves = pool.body_leaves()
    if leaves.size:
        cur = (-pool.child[leaves] - 3).astype(np.int64)  # head bodies
        nodes = leaves
        while cur.size:
            np.add.at(pool.com_w, nodes, m[cur, None] * x[cur])
            np.add.at(pool.mass, nodes, m[cur])
            np.add.at(pool.count, nodes, 1)
            nxt = pool.next_body[cur]
            keep = nxt >= 0
            cur = nxt[keep]
            nodes = nodes[keep]

    internal = pool.internal_nodes()
    if internal.size:
        depths = pool.depth[internal]
        for d in range(int(depths.max(initial=0)), -1, -1):
            nodes_d = internal[depths == d]
            if not nodes_d.size:
                continue
            blocks = pool.child[nodes_d][:, None] + np.arange(nch)
            pool.com_w[nodes_d] = pool.com_w[blocks].sum(axis=1)
            pool.mass[nodes_d] = pool.mass[blocks].sum(axis=1)
            pool.count[nodes_d] = pool.count[blocks].sum(axis=1)

    pool.finalize_com()
    _exact_single_body_coms(pool, x)
    if order == 2:
        pool.quad = np.zeros((pool.n_nodes, pool.dim, pool.dim))
        _leaf_quadrupoles(pool, x, m)
        _reduce_quadrupoles_vectorized(pool)
    else:
        pool.quad = None
    if ctx is not None:
        if account == "waitfree":
            _account_reduction(pool, ctx, order)
        else:
            _account_levelwise_reduction(pool, ctx, order)


def _account_reduction(pool: OctreePool, ctx: ExecutionContext,
                       order: int = 1) -> None:
    """Charge the wait-free algorithm's atomics: every non-root node
    performs (dim + 2) relaxed fetch_adds plus one acquire+release
    arrival increment on its parent; siblings contend on the parent's
    cache line about half the time."""
    updates = float(pool.n_nodes - 1)
    # Monopole: dim com components + mass + count + arrival.  Order 2
    # additionally reduces 6 unique tensor components per node.
    per_update = pool.dim + 3.0 + (6.0 if order == 2 else 0.0)
    word = 8.0
    # The only serialized dependency chain is the last-arriver path from
    # the deepest leaf to the root (tree depth hops); sibling updates to
    # distinct parents proceed in parallel.
    depth_max = float(pool.depth[: pool.n_nodes].max(initial=0))
    ctx.counters.add(
        atomic_ops=updates * per_update,
        sync_atomic_ops=updates,  # one acq_rel arrival increment each
        contended_atomic_ops=depth_max * pool.nchild,
        bytes_irregular=updates * per_update * word,
        bytes_read=updates * per_update * word,
        bytes_written=updates * per_update * word,
        loop_iterations=float(pool.n_nodes),
        kernel_launches=1.0,
    )


def _account_levelwise_reduction(pool: OctreePool, ctx: ExecutionContext,
                                 order: int = 1) -> None:
    """Atomics-free level-synchronous reduction: every node is written
    once and its children read once per level pass, one kernel launch
    per level (the BVH-style alternative used by the two-stage
    pipeline)."""
    nn = float(pool.n_nodes)
    node_bytes = (pool.dim + 2.0) * 8.0 + (48.0 if order == 2 else 0.0)
    levels = float(pool.depth[: pool.n_nodes].max(initial=0)) + 1.0
    ctx.counters.add(
        flops=(4.0 * pool.dim + (30.0 if order == 2 else 0.0)) * nn,
        bytes_read=2.0 * node_bytes * nn,
        bytes_written=node_bytes * nn,
        loop_iterations=nn,
        kernel_launches=levels,
    )
