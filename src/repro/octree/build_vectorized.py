"""Deterministic vectorized octree construction.

The concurrent BUILDTREE (Alg. 4) produces a tree whose *shape* depends
only on body positions: a cell is subdivided iff more than one body lies
in it (up to the maximum depth).  Insertion order changes node indices
but not structure.  This builder exploits that: it sorts full-depth
Morton codes once and materializes the identical tree level by level
with pure numpy — the fast path standing in for concurrent insertion,
with the concurrent algorithm's operation counts derived analytically.
The structural equality of both builders is asserted by the test suite
(see :func:`repro.octree.traversal.canonical_structure`).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import AABB, compute_bounding_box, quantize_to_grid
from repro.geometry.morton import morton_encode, MAX_BITS_2D, MAX_BITS_3D
from repro.octree.layout import EMPTY, OctreePool, encode_body
from repro.types import INDEX


def default_bits(dim: int) -> int:
    return MAX_BITS_3D if dim == 3 else MAX_BITS_2D


def _ranges_to_positions(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenate ``[start, start+len)`` ranges into one index array."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX)
    reset = np.repeat(starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens)
    return np.arange(total, dtype=INDEX) + reset


def build_octree_vectorized(
    x: np.ndarray,
    *,
    bits: int | None = None,
    box: AABB | None = None,
    ctx=None,
    level_stats: list | None = None,
    account: str = "concurrent",
) -> OctreePool:
    """Build the octree over positions *x*; returns the populated pool.

    Multipoles are not computed here — CALCULATEMULTIPOLES is a separate
    pipeline step (Algorithm 2).

    *level_stats*, if a list, receives one dict per materialized level
    (frontier width and bodies spanned) — used by the two-stage builder
    to attribute stage-1 work.  *account* selects whose operation
    counts are charged to *ctx*: ``"concurrent"`` (the paper's Alg. 4/5)
    or ``"none"`` (caller accounts separately).
    """
    x = np.asarray(x, dtype=float)
    n, dim = x.shape
    bits = default_bits(dim) if bits is None else bits
    if box is None:
        box = compute_bounding_box(x) if n else AABB.empty(dim)

    nch = 1 << dim
    pool = OctreePool(
        dim=dim, bits=bits, box=box,
        capacity=OctreePool.estimate_capacity(n, dim, bits),
        n_bodies=n,
    )
    if n == 0:
        return pool

    grid = quantize_to_grid(x, box, bits)
    codes = morton_encode(grid, bits)
    order = np.argsort(codes, kind="stable").astype(INDEX)
    sorted_codes = codes[order]

    pool.count[0] = n
    nodes = np.array([0], dtype=INDEX)
    starts = np.array([0], dtype=INDEX)
    ends = np.array([n], dtype=INDEX)
    level = 0

    while len(nodes):
        sizes = ends - starts

        # Single-body cells become body leaves at any level.
        one = sizes == 1
        if one.any():
            pool.child[nodes[one]] = encode_body(0) - order[starts[one]]

        if level == bits:
            # Bodies sharing the deepest cell: bucket leaves (chained).
            multi = sizes > 1
            for node, s, e in zip(nodes[multi], starts[multi], ends[multi]):
                chain = order[s:e]
                pool.child[node] = encode_body(int(chain[0]))
                pool.next_body[chain[:-1]] = chain[1:]
            break

        sub = sizes > 1
        if level_stats is not None:
            level_stats.append({
                "level": level,
                "frontier_nodes": int(len(nodes)),
                "subdivided": int(sub.sum()),
                "bodies_spanned": int(sizes[sub].sum()),
            })
        if not sub.any():
            break
        subnodes = nodes[sub]
        substarts = starts[sub]
        sublens = sizes[sub]
        k = len(subnodes)

        base = pool.allocate_groups(k, parents=subnodes)
        first_child = base + np.arange(k, dtype=INDEX) * nch
        pool.child[subnodes] = first_child
        pool.depth[base : base + k * nch] = level + 1

        positions = _ranges_to_positions(substarts, sublens)
        shift = np.uint64(dim * (bits - 1 - level))
        dig = ((sorted_codes[positions] >> shift) & np.uint64(nch - 1)).astype(INDEX)
        owner = np.repeat(np.arange(k, dtype=INDEX), sublens)
        cnt = np.bincount(owner * nch + dig, minlength=k * nch).reshape(k, nch)

        child_starts = substarts[:, None] + np.concatenate(
            (np.zeros((k, 1), dtype=INDEX), np.cumsum(cnt, axis=1)[:, :-1]), axis=1
        )
        child_ends = child_starts + cnt
        child_nodes = first_child[:, None] + np.arange(nch, dtype=INDEX)
        pool.count[child_nodes.ravel()] = cnt.ravel()

        flat = cnt.ravel()
        sel = flat > 0
        nodes = child_nodes.ravel()[sel]
        starts = child_starts.ravel()[sel].astype(INDEX)
        ends = child_ends.ravel()[sel].astype(INDEX)
        level += 1

    if ctx is not None and account == "concurrent":
        _account_concurrent_build(pool, n, ctx)
    return pool


def _account_concurrent_build(pool: OctreePool, n: int, ctx) -> None:
    """Charge the *concurrent* algorithm's operation counts (Alg. 4/5).

    Per body: one acquire load of the child word per descent level; one
    CAS + one release store to insert.  Per subdivision: one CAS (lock),
    one relaxed fetch_add (bump allocation), one release store
    (publish).  Contention concentrates near the root where all threads
    funnel through few nodes; we charge one contended CAS per
    subdivision plus a small per-body term.
    """
    nn = pool.n_nodes
    leaves = pool.leaf_nodes()
    body_leaves = leaves[pool.count[leaves] > 0]
    descent_steps = float(
        (pool.depth[body_leaves].astype(float) * pool.count[body_leaves]).sum()
    )
    n_groups = (nn - 1) // pool.nchild
    word = 8.0
    # Lock conflicts concentrate near the root while the tree is small
    # and become rare as threads spread out ("the likelihood of waiting
    # decreases as the tree grows", Section IV-A).  Integrating the
    # conflict probability over the growing frontier gives a sublinear
    # count; we use kappa * sqrt(N) (empirical contention model — the
    # same kappa for every device and figure).
    contended = min(float(n), 30.0 * np.sqrt(float(n)))
    ctx.counters.add(
        # acquire loads during descent + one relaxed alloc fetch_add per
        # subdivision are cheap; insert (CAS + release store) and
        # subdivision (CAS + publish store) synchronize.
        atomic_ops=descent_steps + 2.0 * n + 3.0 * n_groups,
        sync_atomic_ops=2.0 * n + 2.0 * n_groups,
        contended_atomic_ops=contended,
        bytes_irregular=descent_steps * word,
        bytes_read=descent_steps * word + 32.0 * n,
        bytes_written=word * (2.0 * n + 3.0 * n_groups),
        loop_iterations=float(n),
        kernel_launches=1.0,
        lock_retries=0.0,
    )
