"""Power-law extrapolation of measured counters to larger problem sizes.

Pure-Python kernels cannot run the paper's mid-size (10^6-body)
workloads in reasonable wall time, but every counter field of every
pipeline step follows a smooth power law in N over the relevant range
(linear for streaming steps, N log N ≈ N^(1+eps) locally for tree
steps).  We therefore measure the real counters at a ladder of sizes
and fit ``c(N) = a * N^b`` per (step, field) in log-log space, then
evaluate the fit at the target size.  The fit quality is validated by
the test suite (held-out size prediction within a few percent).
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np

from repro.machine.counters import Counters, StepCounters


def fit_power_law(ns: np.ndarray, ys: np.ndarray) -> tuple[float, float]:
    """Least-squares fit of ``y = a * n^b``; returns ``(a, b)``.

    Requires positive ``ys``; callers must filter zeros (a counter that
    is zero at every measured size is identically zero).
    """
    ns = np.asarray(ns, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if ns.shape != ys.shape or ns.ndim != 1 or len(ns) < 2:
        raise ValueError("need >= 2 (n, y) samples of equal length")
    if np.any(ns <= 0) or np.any(ys <= 0):
        raise ValueError("power-law fit requires positive data")
    b, log_a = np.polyfit(np.log(ns), np.log(ys), 1)
    return float(np.exp(log_a)), float(b)


def _extrapolate_field(ns: np.ndarray, ys: np.ndarray, target: float) -> float:
    ys = np.asarray(ys, dtype=float)
    if np.all(ys == 0.0):
        return 0.0
    if np.any(ys <= 0.0):
        # Mixed zero/positive (rare; e.g. contention kicking in late):
        # fall back to scaling the largest sample linearly.
        return float(ys[-1] * target / ns[-1])
    a, b = fit_power_law(ns, ys)
    return float(a * target**b)


def extrapolate_counters(
    sizes: list[int],
    measured: list[StepCounters],
    target_n: int,
) -> StepCounters:
    """Extrapolate per-step counters measured at *sizes* to *target_n*.

    If *target_n* is within the measured range the fit interpolates; if
    it equals a measured size, the fit still smooths noise (counters are
    deterministic, so in practice it reproduces the measurement).
    """
    if len(sizes) != len(measured) or len(sizes) < 2:
        raise ValueError("need >= 2 measured sizes")
    order = np.argsort(sizes)
    ns = np.asarray(sizes, dtype=float)[order]
    runs = [measured[i] for i in order]

    step_names: list[str] = []
    for r in runs:
        for k in r.steps:
            if k not in step_names:
                step_names.append(k)

    out = StepCounters()
    for step in step_names:
        target = out.step(step)
        for f in fields(Counters):
            ys = np.array(
                [getattr(r.steps.get(step, Counters()), f.name) for r in runs]
            )
            setattr(target, f.name, _extrapolate_field(ns, ys, float(target_n)))
    return out
