"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, Iterable


def _fmt(v: Any) -> str:
    if v is None:
        return "n/a"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_table(rows: Iterable[dict], columns: list[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned text table (stable column order)."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for r in rows:
            for k in r:
                if k not in columns:
                    columns.append(k)
    cells = [[_fmt(r.get(c)) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
