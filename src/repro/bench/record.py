"""Standardized benchmark result files (``BENCH_<name>.json``).

Every microbenchmark under ``benchmarks/`` emits its data points in one
shared schema so that CI can collect them as artifacts and downstream
tooling (plots, regression diffs) never has to parse bespoke formats.
A file holds a list of *records*; each record is one measured
configuration::

    {"workload": "galaxy", "n": 10000, "config": {...},
     "host_seconds": 0.42, "model_seconds": 1.3e-3, "extra": {...},
     "metrics": {...}}

``host_seconds`` is wall clock of this Python reproduction on the host;
``model_seconds`` is the cost-model projection (device time), ``None``
when the bench does not project.  Anything bench-specific (speedups,
efficiencies, per-rank splits) goes under ``extra``.

Schema ``repro-bench-v2`` adds the optional per-record ``metrics``
block — the compact :meth:`repro.obs.MetricsRegistry.metrics_block`
serialization (final counter/gauge values, histogram summaries, alert
count).  Readers accept both versions; v1 files simply have no
``metrics`` key.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Any

#: Bump on incompatible record-layout changes.
SCHEMA = "repro-bench-v2"

#: Schemas read_bench_json accepts (v2 only adds the optional
#: per-record ``metrics`` block, so v1 files stay readable).
ACCEPTED_SCHEMAS = ("repro-bench-v1", "repro-bench-v2")


@dataclass
class BenchRecord:
    """One measured data point of a benchmark."""

    workload: str
    n: int
    config: dict[str, Any]
    host_seconds: float
    model_seconds: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    #: Optional ``MetricsRegistry.metrics_block()`` snapshot (v2).
    metrics: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["n"] = int(d["n"])
        d["host_seconds"] = float(d["host_seconds"])
        if d["model_seconds"] is not None:
            d["model_seconds"] = float(d["model_seconds"])
        if d["metrics"] is None:
            del d["metrics"]
        return d


def bench_path(name: str, out_dir: str | pathlib.Path | None = None) -> pathlib.Path:
    """Canonical location of a bench file: ``<out_dir>/BENCH_<name>.json``."""
    base = pathlib.Path(out_dir) if out_dir is not None else pathlib.Path(".")
    return base / f"BENCH_{name}.json"


def write_bench_json(
    name: str,
    records: list[BenchRecord | dict[str, Any]],
    *,
    out_dir: str | pathlib.Path | None = None,
    meta: dict[str, Any] | None = None,
) -> pathlib.Path:
    """Write *records* to ``BENCH_<name>.json``; returns the path."""
    rows = [r.to_dict() if isinstance(r, BenchRecord) else dict(r) for r in records]
    required = {"workload", "n", "config", "host_seconds", "model_seconds"}
    for row in rows:
        missing = required - set(row)
        if missing:
            raise ValueError(f"bench record missing fields {sorted(missing)}")
    payload = {
        "schema": SCHEMA,
        "name": name,
        "generated_unix_time": time.time(),
        "hostname": platform.node(),
        "python": platform.python_version(),
        "meta": meta or {},
        "records": rows,
    }
    path = bench_path(name, out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


def read_bench_json(path: str | pathlib.Path) -> dict[str, Any]:
    """Load and validate a ``BENCH_*.json`` file."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("schema") not in ACCEPTED_SCHEMAS:
        raise ValueError(f"unsupported bench schema {payload.get('schema')!r}")
    return payload
