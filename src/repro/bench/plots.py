"""ASCII figure rendering: grouped horizontal bars on a log axis.

The paper's Figures 5-7 are grouped bar charts of throughput per
(device, algorithm) on a log scale.  ``repro-nbody report`` uses this
module to render saved artifacts in the same visual shape, directly in
a terminal.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Bar glyph per algorithm, mirroring a legend.
_BAR = "="


def _fmt_thr(v: float | None) -> str:
    if v is None:
        return "n/a"
    if v >= 1e6:
        return f"{v / 1e6:.2f}M"
    if v >= 1e3:
        return f"{v / 1e3:.1f}k"
    return f"{v:.0f}"


def grouped_bars(
    rows: Iterable[dict],
    *,
    group_key: str = "device",
    label_key: str = "algorithm",
    value_key: str = "bodies_per_s",
    width: int = 44,
    title: str | None = None,
) -> str:
    """Render rows as grouped log-scale horizontal bars.

    Rows with ``None`` values render as ``(not supported)`` — the
    paper's missing bars.
    """
    rows = list(rows)
    values = [r[value_key] for r in rows if r.get(value_key)]
    if not values:
        return f"{title}\n(no data)" if title else "(no data)"
    lo = min(values)
    hi = max(values)
    log_lo = math.log10(lo) - 0.05
    log_span = max(math.log10(hi) - log_lo, 1e-9)

    label_w = max(len(str(r[label_key])) for r in rows)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("")
    current_group = object()
    for r in rows:
        if r[group_key] != current_group:
            current_group = r[group_key]
            lines.append(f"{current_group}")
        v = r.get(value_key)
        label = str(r[label_key]).rjust(label_w)
        if v:
            frac = (math.log10(v) - log_lo) / log_span
            bar = _BAR * max(1, int(round(frac * width)))
            lines.append(f"  {label} |{bar} {_fmt_thr(v)}")
        else:
            lines.append(f"  {label} |(not supported)")
    lines.append("")
    lines.append(f"  {'':{label_w}} log scale, {_fmt_thr(lo)} .. {_fmt_thr(hi)} "
                 f"[{value_key}]")
    return "\n".join(lines)


def render_figure(fig: str, rows: list[dict]) -> str | None:
    """Figure-specific chart for the artifact report (None = tabular
    only, e.g. Fig. 8's breakdown)."""
    if fig in ("fig6", "fig7"):
        return grouped_bars(rows, title=f"{fig}: throughput by device/algorithm")
    if fig == "fig5":
        par = [
            {**r, "mode": f"{r['algorithm']} (par)",
             "value": r["par_bodies_per_s"]}
            for r in rows
        ]
        seq = [
            {**r, "mode": f"{r['algorithm']} (seq)",
             "value": r["seq_bodies_per_s"]}
            for r in rows
        ]
        merged: list[dict] = []
        for p, s in zip(par, seq):
            merged.extend([s, p])
        return grouped_bars(
            merged, label_key="mode", value_key="value",
            title="fig5: sequential vs parallel (CPUs)",
        )
    if fig == "fig9":
        flat: list[dict] = []
        for r in rows:
            flat.append({"device": f"N = {r['n']}", "algorithm": f"{r['algorithm']} nvcpp",
                         "bodies_per_s": r["nvcpp_bodies_per_s"]})
            flat.append({"device": f"N = {r['n']}", "algorithm": f"{r['algorithm']} acpp",
                         "bodies_per_s": r["acpp_bodies_per_s"]})
        return grouped_bars(flat, title="fig9: NVC++ vs AdaptiveCpp on GH200")
    return None
