"""Measure pipelines and project them onto the device catalog."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.extrapolate import extrapolate_counters
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.errors import ForwardProgressError
from repro.machine.costmodel import CostModel
from repro.machine.counters import StepCounters
from repro.machine.device import Device
from repro.physics.bodies import BodySystem
from repro.stdpar.context import ExecutionContext


@dataclass
class MeasuredRun:
    """One measured (workload, algorithm, N) pipeline execution."""

    algorithm: str
    n: int
    counters: StepCounters           # per single timestep
    wall_seconds: float              # host wall clock per timestep
    measured_at: int                 # size actually executed
    simt_width: int = 32
    meta: dict = field(default_factory=dict)

    @property
    def host_throughput(self) -> float:
        """Bodies/s of the host Python kernels."""
        return self.n / self.wall_seconds if self.wall_seconds > 0 else float("inf")


def measure_pipeline(
    make_system,
    algorithm: str,
    n: int,
    *,
    config: SimulationConfig | None = None,
    steps: int = 1,
    max_direct: int = 40_000,
    ladder: tuple[float, ...] = (0.25, 0.5, 1.0),
    simt_width: int = 32,
) -> MeasuredRun:
    """Run the pipeline and return per-timestep counters for size *n*.

    ``make_system(n) -> BodySystem`` builds the workload.  Sizes up to
    *max_direct* execute directly; larger sizes are measured on a
    ladder of subsizes and extrapolated (see
    :mod:`repro.bench.extrapolate`).  O(N²) algorithms cap direct
    execution harder since their cost explodes.
    """
    base = config if config is not None else SimulationConfig()
    cfg = base.with_(algorithm=algorithm, simt_width=simt_width)
    quadratic = algorithm.startswith("all-pairs")
    cap = min(max_direct, 20_000) if quadratic else max_direct

    if n <= cap:
        counters, wall = _run_once(make_system, n, cfg, steps)
        return MeasuredRun(algorithm, n, counters, wall, n, simt_width)

    sizes = sorted({max(1024, int(cap * f)) for f in ladder})
    measured = []
    walls = []
    for s in sizes:
        c, w = _run_once(make_system, s, cfg, steps)
        measured.append(c)
        walls.append(w)
    counters = extrapolate_counters(sizes, measured, n)
    # Host wall time extrapolated with the same power law on totals.
    from repro.bench.extrapolate import _extrapolate_field

    wall = _extrapolate_field(np.asarray(sizes, float), np.asarray(walls), float(n))
    return MeasuredRun(algorithm, n, counters, wall, sizes[-1], simt_width,
                       meta={"ladder": sizes})


def _run_once(make_system, n: int, cfg: SimulationConfig, steps: int):
    system: BodySystem = make_system(n)
    ctx = ExecutionContext()
    sim = Simulation(system, cfg, ctx=ctx)
    report = sim.run(steps)
    per_step = report.per_step()
    return per_step, report.wall_seconds / max(steps, 1)


def project_throughput(
    run: MeasuredRun,
    device: Device,
    *,
    toolchain: str | None = None,
    sequential: bool = False,
) -> float | None:
    """Projected throughput (bodies/s) of *run* on *device*.

    Returns ``None`` when the algorithm cannot run there (the paper's
    missing bars: Octree / All-Pairs-Col on AMD and Intel GPUs).
    """
    from repro.core.algorithms import get_algorithm

    alg = get_algorithm(run.algorithm)
    if not device.progress.satisfies(alg.required_progress):
        if not run.meta.get("unsafe_relax_policy", False):
            return None
    model = CostModel(device, toolchain=toolchain, sequential=sequential)
    t = model.total_time(run.counters)
    return run.n / t if t > 0 else float("inf")


def throughput_table(
    runs: list[MeasuredRun],
    devices: list[Device],
    *,
    sequential: bool = False,
) -> list[dict]:
    """Rows of (device, algorithm, N, projected bodies/s)."""
    rows = []
    for d in devices:
        for r in runs:
            thr = project_throughput(r, d, sequential=sequential)
            rows.append(
                {
                    "device": d.name,
                    "algorithm": r.algorithm,
                    "n": r.n,
                    "throughput": thr,
                    "host_throughput": r.host_throughput,
                }
            )
    return rows
