"""The artifact-evaluation workflow (paper Appendix A).

The paper's artifact runs ``./ci/run_docker bench`` to produce a raw
``out_$(hostname)`` file and post-processes it with ``./ci/data.py``
into "a table that contains the single data points of the Figures in
Section V".  This module mirrors that two-phase workflow:

* :func:`run_artifact` executes the figure experiments and writes one
  JSON file with every data point plus environment metadata;
* :func:`format_report` renders a saved artifact back into the
  per-figure tables.

Exposed on the CLI as ``repro-nbody bench`` and ``repro-nbody report``.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from typing import Any, Callable

from repro.bench.report import format_table

#: Registry of figure-row generators (lazy imports keep startup light).
def _generators() -> dict[str, Callable[..., list[dict]]]:
    from repro.experiments.figures import (
        fig5_rows,
        fig6_rows,
        fig7_rows,
        fig8_rows,
        fig9_rows,
    )

    return {
        "fig5": fig5_rows,
        "fig6": fig6_rows,
        "fig7": fig7_rows,
        "fig8": fig8_rows,
        "fig9": fig9_rows,
    }


ARTIFACT_VERSION = 1
ALL_FIGURES = ("fig5", "fig6", "fig7", "fig8", "fig9")


def run_artifact(
    figures: tuple[str, ...] = ALL_FIGURES,
    *,
    max_direct: int = 8000,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Execute the selected figure experiments; returns the artifact."""
    gens = _generators()
    unknown = [f for f in figures if f not in gens]
    if unknown:
        raise ValueError(f"unknown figures {unknown}; have {sorted(gens)}")
    artifact: dict[str, Any] = {
        "artifact_version": ARTIFACT_VERSION,
        "generated_unix_time": time.time(),
        "hostname": platform.node(),
        "python": platform.python_version(),
        "max_direct": max_direct,
        "figures": {},
    }
    for fig in figures:
        if progress:
            progress(f"running {fig} ...")
        t0 = time.perf_counter()
        rows = gens[fig](max_direct=max_direct)
        artifact["figures"][fig] = {
            "rows": rows,
            "wall_seconds": time.perf_counter() - t0,
        }
    return artifact


def save_artifact(artifact: dict[str, Any], path: str | pathlib.Path) -> None:
    pathlib.Path(path).write_text(json.dumps(artifact, indent=1))


def load_artifact(path: str | pathlib.Path) -> dict[str, Any]:
    artifact = json.loads(pathlib.Path(path).read_text())
    if artifact.get("artifact_version") != ARTIFACT_VERSION:
        raise ValueError(
            f"unsupported artifact version {artifact.get('artifact_version')!r}"
        )
    return artifact


#: Figure titles, mirroring the paper's captions.
_TITLES = {
    "fig5": "Figure 5: sequential vs single-socket parallel throughput "
            "(tiny galaxy, CPUs)",
    "fig6": "Figure 6: algorithm throughput (small galaxy, all systems)",
    "fig7": "Figure 7: algorithm throughput (mid galaxy, all systems)",
    "fig8": "Figure 8: relative execution time of algorithm components "
            "(GH200, toolchains)",
    "fig9": "Figure 9: NVC++ vs AdaptiveCpp on GH200",
}


def format_report(artifact: dict[str, Any]) -> str:
    """Render a saved artifact as the per-figure data-point tables."""
    lines = [
        f"artifact from host {artifact.get('hostname', '?')!r} "
        f"(python {artifact.get('python', '?')}, "
        f"max_direct={artifact.get('max_direct', '?')})",
    ]
    for fig, payload in artifact.get("figures", {}).items():
        lines.append("")
        lines.append(format_table(payload["rows"], title=_TITLES.get(fig, fig)))
        from repro.bench.plots import render_figure

        chart = render_figure(fig, payload["rows"])
        if chart:
            lines.append("")
            lines.append(chart)
        lines.append(f"[{fig}: {len(payload['rows'])} data points, "
                     f"{payload['wall_seconds']:.1f}s to generate]")
    return "\n".join(lines)
