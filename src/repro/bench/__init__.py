"""Experiment harness reproducing the paper's tables and figures.

The harness separates *measurement* from *projection*:

1. a workload runs for real on the host (vectorized backend), producing
   exact operation counters per pipeline step;
2. counters measured at a ladder of sizes are extrapolated to the
   paper's problem sizes with per-field power-law fits
   (:mod:`repro.bench.extrapolate`);
3. the cost model projects the counters onto every Table I device,
   yielding the throughput figures (bodies/s) behind each plot.

Wall-clock numbers for the host Python kernels are reported alongside,
clearly labelled — they measure this reproduction, not the paper's
hardware.
"""

from repro.bench.runner import (
    MeasuredRun,
    measure_pipeline,
    project_throughput,
    throughput_table,
)
from repro.bench.extrapolate import extrapolate_counters, fit_power_law
from repro.bench.record import (
    SCHEMA,
    BenchRecord,
    bench_path,
    read_bench_json,
    write_bench_json,
)
from repro.bench.report import format_table

__all__ = [
    "MeasuredRun",
    "measure_pipeline",
    "project_throughput",
    "throughput_table",
    "extrapolate_counters",
    "fit_power_law",
    "format_table",
    "SCHEMA",
    "BenchRecord",
    "bench_path",
    "read_bench_json",
    "write_bench_json",
]
