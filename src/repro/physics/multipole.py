"""Quadrupole moments and their force contribution.

The paper uses monopoles (centre of mass) "for exposition" and notes
that "the algorithms described here extend to multipoles" (Section IV,
CALCULATEMULTIPOLES).  This module supplies that extension for both
tree strategies: the traceless quadrupole tensor

    Q_ij = sum_b m_b (3 d_i d_j - |d|^2 delta_ij),   d = x_b - com

its parallel-axis combination rule (how a parent's Q is reduced from
its children's, the operation both tree reductions need), and the
acceleration of the order-2 expansion

    a(r) = -G M d / r^3  +  G [ 2.5 (d^T Q d) d / r^7 - Q d / r^5 ] / ...

written in the conventions of the traversal kernels (``d = com -
target``).  The dipole term vanishes identically because moments are
taken about the centre of mass.

Quadrupoles are 3-D only (the tensor structure comes from the 1/r
Green's function in three dimensions); 2-D systems use monopoles.
"""

from __future__ import annotations

import numpy as np

from repro.types import FLOAT

#: Extra FP64 work of one quadrupole interaction beyond the monopole
#: (tensor contraction + two extra powers of 1/r), for cost accounting.
QUAD_EXTRA_FLOPS = 36.0
#: Extra node bytes per visit (6 unique tensor components stored as 9).
QUAD_EXTRA_BYTES = 72.0


def quadrupole_of_points(x: np.ndarray, m: np.ndarray, com: np.ndarray) -> np.ndarray:
    """Traceless quadrupole of a point set about *com* (3x3)."""
    x = np.asarray(x, dtype=FLOAT)
    m = np.asarray(m, dtype=FLOAT)
    d = x - com
    r2 = np.einsum("bi,bi->b", d, d)
    outer = np.einsum("b,bi,bj->ij", m, d, d)
    return 3.0 * outer - np.einsum("b,b->", m, r2) * np.eye(x.shape[1])


def shift_quadrupole(
    q_child: np.ndarray,
    mass_child: np.ndarray,
    com_child: np.ndarray,
    com_parent: np.ndarray,
) -> np.ndarray:
    """Parallel-axis shift: children's quadrupoles re-expressed about the
    parent's centre of mass, summed.

    Vectorized over a leading children axis: ``q_child (K, 3, 3)``,
    ``mass_child (K,)``, ``com_child (K, 3)``, ``com_parent (3,)`` or
    ``(K, 3)`` → ``(3, 3)`` if parent is a single com, else summed over
    the *last* grouping by the caller.
    """
    s = com_child - com_parent
    s2 = np.einsum("...i,...i->...", s, s)
    eye = np.eye(s.shape[-1])
    shift = 3.0 * np.einsum("...,...i,...j->...ij", mass_child, s, s) - np.einsum(
        "...,...->...", mass_child, s2
    )[..., None, None] * eye
    return (q_child + shift).sum(axis=0) if q_child.ndim == 3 else q_child + shift


def combine_quadrupoles(
    q_children: np.ndarray,
    mass_children: np.ndarray,
    com_children: np.ndarray,
    com_parent: np.ndarray,
) -> np.ndarray:
    """Batched parent reduction.

    ``q_children (P, C, 3, 3)``, ``mass_children (P, C)``,
    ``com_children (P, C, 3)``, ``com_parent (P, 3)`` → ``(P, 3, 3)``:
    each of P parents reduces its C children.
    """
    s = com_children - com_parent[:, None, :]
    s2 = np.einsum("pci,pci->pc", s, s)
    eye = np.eye(s.shape[-1])
    shift = 3.0 * np.einsum("pc,pci,pcj->pcij", mass_children, s, s)
    shift -= (mass_children * s2)[..., None, None] * eye
    return (q_children + shift).sum(axis=1)


def quadrupole_accel(
    dvec: np.ndarray,
    r2: np.ndarray,
    quad: np.ndarray,
    G: float,
) -> np.ndarray:
    """Quadrupole acceleration term for traversal rows.

    ``dvec (K, 3)`` is ``com - target`` (the traversal convention),
    ``r2 (K,)`` its squared length (softened by the caller), ``quad
    (K, 3, 3)`` the node tensors.  Zero rows (r2 == 0) return zero.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_r5 = np.where(r2 > 0.0, r2 ** -2.5, 0.0)
        inv_r7 = np.where(r2 > 0.0, r2 ** -3.5, 0.0)
    qd = np.einsum("kij,kj->ki", quad, dvec)
    dqd = np.einsum("ki,ki->k", dvec, qd)
    # Derived from a = -grad(-G/2 d^T Q d / r^5) with d = target - com,
    # rewritten for dvec = -d.
    return G * (2.5 * (dqd * inv_r7)[:, None] * dvec - qd * inv_r5[:, None])


def exact_cluster_accel(
    target: np.ndarray,
    x: np.ndarray,
    m: np.ndarray,
    G: float = 1.0,
) -> np.ndarray:
    """Reference: exact acceleration at *target* from a point cluster
    (used by the tests to verify the expansion's convergence order)."""
    d = x - target
    r2 = np.einsum("bi,bi->b", d, d)
    return G * np.einsum("b,b,bi->i", m, r2 ** -1.5, d)
