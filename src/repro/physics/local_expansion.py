"""Local expansions for the dual-tree traversal (M2L / L2L / L2P).

The dual-tree walk (:mod:`repro.traversal.dual`) approximates the
effect of a well-separated *source cell* on a whole *target cell* once,
instead of once per target body/group.  The machinery is a first-order
Cartesian Taylor expansion of the (softened) monopole acceleration
field about the target cell's centre ``c``:

    a(c + delta)  ~=  a0 + J delta

* **M2L** (multipole-to-local): a far source node with centre of mass
  ``s``, mass ``M`` and separation ``d = s - c``,
  ``r2 = |d|^2 + eps^2``, contributes

      a0 += G M d r2^-3/2                      (+ quadrupole term)
      J  += G M (3 d d^T r2^-5/2  -  I r2^-3/2)

  — the exact value and Jacobian of the Plummer-softened kernel at the
  centre, so softening is treated consistently rather than as an
  afterthought.
* **L2L** (local-to-local): shifting the truncated series from a parent
  centre to a child centre is exact at the stored order:
  ``a0' = a0 + J (c' - c)``, ``J' = J``.  The downsweep applies this
  top-down, one balanced-tree level per parallel round.
* **L2P** (local-to-particle): each body evaluates its leaf's series at
  its own position, ``acc += a0 + J (x - c)``.

At ``expansion_order=2`` the series additionally carries the symmetric
third-derivative tensor ``H`` of the kernel (``H_ijk = dJ_ij/dx_k``):

    M2L:  H += G M (15 d_i d_j d_k r2^-7/2
                    - 3 (delta_ij d_k + delta_ik d_j + delta_jk d_i)
                        r2^-5/2)
    L2L:  a0' = a0 + J delta + 1/2 H:delta delta
          J'  = J + H . delta,   H' = H
    L2P:  acc += a0 + J dx + 1/2 H:dx dx

which pushes the Taylor truncation from second to third order in the
(target size / distance) ratio — the accuracy headroom that lets the
dual walk open ``cc_mac`` past 1 while staying inside the grouped-mode
error envelope.

Error model: a far pair is accepted only when the *source* passes the
conservative MAC against the target box (``size_s < theta * dmin``, so
the multipole error keeps the paper's O(theta^2) bound) **and** the
*target* box is small against the same distance
(``size_t < theta * cc_mac * dmin``), which bounds the Taylor
truncation — the first neglected term — by
O((theta * cc_mac)^(order + 1)) relative.  Both error sources
therefore scale with theta, and the total stays within a small constant
of the one-sided grouped bound (pinned by the property tests).
``expansion_order=0`` keeps only ``a0`` (the cell-centre force, a
cheaper but coarser substitution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.gravity import FLOPS_PER_INTERACTION
from repro.physics.multipole import quadrupole_accel
from repro.types import FLOAT

#: FP64 work of one M2L beyond the monopole point evaluation (the
#: Jacobian outer product + scaled identity, dim = 3).
M2L_JACOBIAN_FLOPS = 40.0
#: Extra FP64 of the order-2 M2L (symmetric third-derivative tensor).
M2L_HESSIAN_FLOPS = 90.0
#: Per-node L2L shift (matrix-vector + adds) and per-body L2P work at
#: order 1; order 2 adds the tensor contraction on top.
L2L_FLOPS = 24.0
L2P_FLOPS = 24.0
L2_HESSIAN_FLOPS = 45.0


def expansion_words(dim: int, order: int) -> float:
    """Stored floats per node: ``a0``, plus the Jacobian at order >= 1,
    plus the third-derivative tensor at order >= 2."""
    words = dim
    if order >= 1:
        words += dim * dim
    if order >= 2:
        words += dim * dim * dim
    return float(words)


@dataclass
class LocalExpansion:
    """Per-target-node truncated Taylor series of the acceleration."""

    a0: np.ndarray               # (n_nodes, dim) value at node centre
    jac: np.ndarray | None       # (n_nodes, dim, dim); None at order 0
    #: (n_nodes, dim, dim, dim) kernel third derivatives; None below
    #: order 2.  Symmetric in all index pairs.
    hess: np.ndarray | None = None

    @property
    def order(self) -> int:
        if self.hess is not None:
            return 2
        return 0 if self.jac is None else 1

    @classmethod
    def zeros(cls, n_nodes: int, dim: int, order: int = 1) -> "LocalExpansion":
        jac = (np.zeros((n_nodes, dim, dim), dtype=FLOAT)
               if order >= 1 else None)
        hess = (np.zeros((n_nodes, dim, dim, dim), dtype=FLOAT)
                if order >= 2 else None)
        return cls(np.zeros((n_nodes, dim), dtype=FLOAT), jac, hess)


def m2l_accumulate(
    exp: LocalExpansion,
    far_t: np.ndarray,
    far_s: np.ndarray,
    com: np.ndarray,
    mass: np.ndarray,
    center: np.ndarray,
    *,
    G: float = 1.0,
    eps2: float = 0.0,
    quad: np.ndarray | None = None,
) -> int:
    """Accumulate every far pair's field into its target's expansion.

    ``far_t`` indexes target-tree nodes (rows of *center* / the
    expansion), ``far_s`` source-tree nodes (rows of *com* / *mass*).
    Pairs sharing a target are scattered with ``np.add.at``; the caller
    provides them in a deterministic order, so the accumulation —
    and hence the whole dual force — is bitwise reproducible.

    Returns the number of quadrupole terms applied (for accounting).
    """
    if far_t.size == 0:
        return 0
    d = com[far_s] - center[far_t]
    r2 = np.einsum("kj,kj->k", d, d) + eps2
    inv_r3 = r2 ** -1.5
    w = G * mass[far_s] * inv_r3
    a0_terms = w[:, None] * d
    quad_terms = 0
    if quad is not None:
        a0_terms += quadrupole_accel(d, r2, quad[far_s], G)
        quad_terms = int(far_t.shape[0])
    np.add.at(exp.a0, far_t, a0_terms)
    if exp.jac is not None:
        dim = d.shape[1]
        inv_r5 = inv_r3 / r2
        jac_terms = (3.0 * G * mass[far_s] * inv_r5)[:, None, None] \
            * np.einsum("ki,kj->kij", d, d)
        jac_terms -= (G * mass[far_s] * inv_r3)[:, None, None] * np.eye(dim)
        np.add.at(exp.jac, far_t, jac_terms)
        if exp.hess is not None:
            inv_r7 = inv_r5 / r2
            eye = np.eye(dim)
            hess_terms = (15.0 * G * mass[far_s] * inv_r7)[:, None, None, None] \
                * np.einsum("ki,kj,kl->kijl", d, d, d)
            w5 = (3.0 * G * mass[far_s] * inv_r5)
            hess_terms -= w5[:, None, None, None] * (
                np.einsum("ij,kl->kijl", eye, d)
                + np.einsum("il,kj->kijl", eye, d)
                + np.einsum("jl,ki->kijl", eye, d)
            )
            np.add.at(exp.hess, far_t, hess_terms)
    return quad_terms


def l2l_shift(
    exp: LocalExpansion,
    parents: np.ndarray,
    children: np.ndarray,
    center: np.ndarray,
) -> None:
    """Shift parent expansions into *children* (one tree level).

    Exact at the stored order: the child inherits the parent's series
    re-centred at the child centre.  Empty nodes carry zero expansions
    and zero centres, so no masking is needed — their contribution is
    identically zero.
    """
    exp.a0[children] += exp.a0[parents]
    if exp.jac is not None:
        delta = center[children] - center[parents]
        exp.a0[children] += np.einsum(
            "kij,kj->ki", exp.jac[parents], delta)
        exp.jac[children] += exp.jac[parents]
        if exp.hess is not None:
            hp = exp.hess[parents]
            exp.a0[children] += 0.5 * np.einsum(
                "kijl,kj,kl->ki", hp, delta, delta)
            exp.jac[children] += np.einsum("kijl,kl->kij", hp, delta)
            exp.hess[children] += hp


def l2l_sweep(exp: LocalExpansion, layout, center: np.ndarray, ctx=None) -> int:
    """Top-down downsweep over the balanced target tree.

    One parallel round per level (the nodes of a level are independent:
    each child is written exactly once, no atomics), expressed as a
    ``stdpar.for_each`` under ``par_unseq`` when a context is given —
    the same policy/vectorization-safety rules as every other kernel.
    Returns the number of child nodes shifted (for accounting).
    """
    shifted = 0
    for level in range(1, layout.n_levels):
        sl = layout.level_slice(level)
        children = np.arange(sl.start, sl.stop, dtype=np.int64)
        parents = (children - 1) // 2
        shifted += children.shape[0]
        if ctx is not None:
            from repro.stdpar.algorithms import for_each
            from repro.stdpar.kernel import Kernel
            from repro.stdpar.policy import par_unseq

            for_each(
                par_unseq, children,
                Kernel(name="l2l_shift",
                       batch=lambda ch, p=parents: l2l_shift(
                           exp, p, ch, center)),
                ctx,
            )
        else:
            l2l_shift(exp, parents, children, center)
    return shifted


def l2p_evaluate(
    exp: LocalExpansion,
    leaf_of_row: np.ndarray,
    x_sorted: np.ndarray,
    center: np.ndarray,
) -> np.ndarray:
    """Evaluate each body's leaf expansion at the body position."""
    a = exp.a0[leaf_of_row].copy()
    if exp.jac is not None:
        delta = x_sorted - center[leaf_of_row]
        a += np.einsum("kij,kj->ki", exp.jac[leaf_of_row], delta)
        if exp.hess is not None:
            a += 0.5 * np.einsum(
                "kijl,kj,kl->ki", exp.hess[leaf_of_row], delta, delta)
    return a


def m2l_flops(dim: int, order: int) -> float:
    """FP64 per far pair: point kernel + derivative tensors by order."""
    flops = FLOPS_PER_INTERACTION
    if order >= 1:
        flops += M2L_JACOBIAN_FLOPS
    if order >= 2:
        flops += M2L_HESSIAN_FLOPS
    return flops


def l2_flops(order: int) -> float:
    """FP64 of one L2L shift / one L2P evaluation at *order*."""
    base = L2L_FLOPS if order >= 1 else 6.0
    return base + (L2_HESSIAN_FLOPS if order >= 2 else 0.0)
