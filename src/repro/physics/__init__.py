"""N-body physics: body state, gravity, time integration, diagnostics.

Implements Section III of the paper: the gravitational force law
(Equation 1), Störmer-Verlet time integration [12], and the
conservation diagnostics ("the simulations produce consistent final
results across all systems, conserving mass and energy", Section V-A).
"""

from repro.physics.bodies import BodySystem
from repro.physics.gravity import (
    GravityParams,
    pairwise_accelerations,
    point_mass_accel,
    potential_energy,
)
from repro.physics.integrator import VerletIntegrator, kick, drift
from repro.physics.diagnostics import (
    kinetic_energy,
    total_energy,
    momentum,
    angular_momentum,
    center_of_mass,
    EnergyReport,
    energy_report,
)
from repro.physics.accuracy import l2_error, relative_l2_error, max_relative_error

__all__ = [
    "BodySystem",
    "GravityParams",
    "pairwise_accelerations",
    "point_mass_accel",
    "potential_energy",
    "VerletIntegrator",
    "kick",
    "drift",
    "kinetic_energy",
    "total_energy",
    "momentum",
    "angular_momentum",
    "center_of_mass",
    "EnergyReport",
    "energy_report",
    "l2_error",
    "relative_l2_error",
    "max_relative_error",
]
