"""Gravitational interaction kernels (paper Equation 1).

The acceleration on body *i* is

    a_i = G * sum_j  m_j (x_j - x_i) / (|x_j - x_i|^2 + eps^2)^(3/2)

with Plummer softening ``eps`` (eps=0 recovers Equation 1 exactly; the
galaxy workloads use a small softening as is standard for collisionless
collision simulations).  All kernels here are vectorized and tiled so
peak memory stays bounded for large N.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import FLOAT


@dataclass(frozen=True)
class GravityParams:
    """Physical constants of the force law."""

    G: float = 1.0
    softening: float = 0.0

    def __post_init__(self) -> None:
        if self.G <= 0:
            raise ValueError("G must be positive")
        if self.softening < 0:
            raise ValueError("softening must be non-negative")

    @property
    def eps2(self) -> float:
        return self.softening * self.softening


#: FLOPs of one pairwise interaction (3 subs, 3 muls + 2 adds for r².
#: + eps² add, rsqrt, cube+scale ~ 6, 3 FMA accumulate) — the constant
#: used for interactions/second metrics; matches the usual 20-flop
#: convention for N-body kernels plus softening.
FLOPS_PER_INTERACTION = 23.0
#: Of which one divide + one sqrt retire on the special-function unit.
SPECIAL_PER_INTERACTION = 2.0


def pairwise_accelerations(
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    targets: np.ndarray | None = None,
    tile: int = 1024,
) -> np.ndarray:
    """Exact all-pairs accelerations (the reference O(N²) kernel).

    ``targets`` optionally restricts the rows for which accelerations
    are computed (used by accuracy spot checks).  Self-interactions are
    excluded exactly.  Memory is bounded at ``O(tile * N)``.
    """
    x = np.asarray(x, dtype=FLOAT)
    m = np.asarray(m, dtype=FLOAT)
    n = x.shape[0]
    idx = np.arange(n) if targets is None else np.asarray(targets)
    out = np.zeros((len(idx), x.shape[1]), dtype=FLOAT)
    eps2 = params.eps2
    for s in range(0, len(idx), tile):
        rows = idx[s : s + tile]
        d = x[None, :, :] - x[rows][:, None, :]          # (t, N, dim)
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2       # (t, N)
        # exclude self-interaction (r2 == eps2 exactly for j == row)
        r2[np.arange(len(rows)), rows] = np.inf
        with np.errstate(divide="ignore"):
            inv_r3 = np.where(r2 > 0.0, r2 ** -1.5, 0.0)
        out[s : s + tile] = params.G * np.einsum("ij,j,ijk->ik", inv_r3, m, d)
    return out


def point_mass_accel(
    xt: np.ndarray,
    xs: np.ndarray,
    ms: np.ndarray,
    params: GravityParams,
) -> np.ndarray:
    """Acceleration at targets ``xt`` due to matched point sources.

    ``xt`` and ``xs`` are ``(K, dim)`` position arrays paired row-wise
    (one source per target row) and ``ms`` the ``(K,)`` source masses —
    the inner operation of every traversal step, where row *k*'s source
    is the tree node (or body) that target *k* currently accepts.
    Sources with zero mass or zero distance contribute nothing (covers
    empty nodes and self-interaction).
    """
    d = xs - xt
    r2 = np.einsum("ij,ij->i", d, d) + params.eps2
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_r3 = np.where(r2 > 0.0, r2 ** -1.5, 0.0)
    w = params.G * ms * inv_r3
    return w[:, None] * d


def potential_energy(
    x: np.ndarray,
    m: np.ndarray,
    params: GravityParams = GravityParams(),
    *,
    tile: int = 1024,
) -> float:
    """Exact total gravitational potential energy, O(N²) tiled.

    U = -G * sum_{i<j} m_i m_j / sqrt(|x_i - x_j|² + eps²)
    """
    x = np.asarray(x, dtype=FLOAT)
    m = np.asarray(m, dtype=FLOAT)
    n = x.shape[0]
    eps2 = params.eps2
    u = 0.0
    for s in range(0, n, tile):
        rows = slice(s, min(s + tile, n))
        d = x[None, rows, :] - x[:, None, :]             # (N, t, dim)
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        with np.errstate(divide="ignore"):
            inv_r = np.where(r2 > 0.0, r2 ** -0.5, 0.0)
        # zero the diagonal (self terms)
        cols = np.arange(s, min(s + tile, n))
        inv_r[cols, cols - s] = 0.0
        u += float(np.einsum("i,ij,j->", m, inv_r, m[rows]))
    return -0.5 * params.G * u
