"""Accuracy metrics for cross-implementation validation.

Section V-A validates the implementations against Thüring et al.'s SYCL
solver by evolving the JPL small-body population for one day and
checking that "the L2 error norm of the final body positions among all
three implementations is below 1e-6".  These helpers compute that norm
(absolute and relative variants) between body states.
"""

from __future__ import annotations

import numpy as np


def l2_error(a: np.ndarray, b: np.ndarray) -> float:
    """RMS L2 error norm between two (N, dim) position arrays:
    sqrt(mean_i |a_i - b_i|²)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    d = a - b
    return float(np.sqrt(np.mean(np.einsum("ij,ij->i", d, d))))


def relative_l2_error(a: np.ndarray, ref: np.ndarray) -> float:
    """L2 error normalized by the RMS magnitude of the reference."""
    ref = np.asarray(ref, dtype=float)
    scale = float(np.sqrt(np.mean(np.einsum("ij,ij->i", ref, ref))))
    return l2_error(a, ref) / max(scale, np.finfo(float).tiny)


def max_relative_error(a: np.ndarray, ref: np.ndarray) -> float:
    """Worst-case per-body relative position error."""
    a = np.asarray(a, dtype=float)
    ref = np.asarray(ref, dtype=float)
    num = np.sqrt(np.einsum("ij,ij->i", a - ref, a - ref))
    den = np.maximum(np.sqrt(np.einsum("ij,ij->i", ref, ref)), np.finfo(float).tiny)
    return float((num / den).max(initial=0.0))
