"""Conservation diagnostics.

Section V-A states the simulations "produce consistent final results
across all systems, conserving mass and energy"; these diagnostics are
how the test suite and examples check that claim for every algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.bodies import BodySystem
from repro.physics.gravity import GravityParams, potential_energy


def kinetic_energy(system: BodySystem) -> float:
    """T = 1/2 * sum_i m_i |v_i|²."""
    return 0.5 * float(np.einsum("i,ij,ij->", system.m, system.v, system.v))


def total_energy(system: BodySystem, params: GravityParams = GravityParams()) -> float:
    """T + U (U computed exactly, O(N²); intended for N ≲ 3·10⁴)."""
    return kinetic_energy(system) + potential_energy(system.x, system.m, params)


def momentum(system: BodySystem) -> np.ndarray:
    """Total linear momentum, conserved exactly by all-pairs forces and
    to approximation accuracy by the tree algorithms."""
    return np.einsum("i,ij->j", system.m, system.v)


def angular_momentum(system: BodySystem) -> np.ndarray:
    """Total angular momentum about the origin (3-D: vector; 2-D: scalar z)."""
    if system.dim == 3:
        return np.einsum("i,ij->j", system.m, np.cross(system.x, system.v))
    lz = system.m * (system.x[:, 0] * system.v[:, 1] - system.x[:, 1] * system.v[:, 0])
    return np.array([float(lz.sum())])


def center_of_mass(system: BodySystem) -> np.ndarray:
    return np.einsum("i,ij->j", system.m, system.x) / system.total_mass


@dataclass(frozen=True)
class EnergyReport:
    kinetic: float
    potential: float

    @property
    def total(self) -> float:
        return self.kinetic + self.potential

    def drift_from(self, other: "EnergyReport") -> float:
        """Relative total-energy drift |E - E0| / |E0|."""
        e0 = other.total
        return abs(self.total - e0) / max(abs(e0), np.finfo(float).tiny)


def energy_report(system: BodySystem, params: GravityParams = GravityParams()) -> EnergyReport:
    return EnergyReport(
        kinetic=kinetic_energy(system),
        potential=potential_energy(system.x, system.m, params),
    )
