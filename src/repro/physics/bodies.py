"""Body state in structure-of-arrays layout.

The C++ artifact stores masses and positions in separate vectors (see
paper Algorithm 7's ``vector<double> m, vector<vec3<double>> x``); we
mirror that with contiguous FP64 numpy arrays, which is also the
vectorization-friendly layout for the Python kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import FLOAT, validate_masses, validate_positions


@dataclass
class BodySystem:
    """Positions, velocities and masses of ``N`` bodies.

    Arrays are owned (contiguous, FP64) and mutated in place by the
    integrator; use :meth:`copy` to snapshot.
    """

    x: np.ndarray  # (N, dim) positions
    v: np.ndarray  # (N, dim) velocities
    m: np.ndarray  # (N,)    masses

    def __post_init__(self) -> None:
        self.x = validate_positions(self.x)
        n, dim = self.x.shape
        self.v = validate_positions(self.v, dim)
        if self.v.shape != (n, dim):
            raise ValueError(f"velocities shape {self.v.shape} != positions {self.x.shape}")
        self.m = validate_masses(self.m, n)

    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n: int, dim: int = 3) -> "BodySystem":
        return cls(np.zeros((n, dim)), np.zeros((n, dim)), np.zeros(n))

    @classmethod
    def from_arrays(cls, x, v=None, m=None) -> "BodySystem":
        x = validate_positions(x)
        n, dim = x.shape
        v = np.zeros((n, dim)) if v is None else v
        m = np.ones(n) if m is None else m
        return cls(x, v, m)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.x.shape[0]

    @property
    def dim(self) -> int:
        return self.x.shape[1]

    @property
    def total_mass(self) -> float:
        return float(self.m.sum())

    def copy(self) -> "BodySystem":
        return BodySystem(self.x.copy(), self.v.copy(), self.m.copy())

    def permuted(self, perm: np.ndarray) -> "BodySystem":
        """A copy with bodies reordered by *perm* (used after HILBERTSORT)."""
        return BodySystem(self.x[perm], self.v[perm], self.m[perm])

    def apply_permutation(self, perm: np.ndarray) -> None:
        """In-place reorder (the paper applies the sorted permutation to
        the body arrays, see implementation issue 2 in Section V-A)."""
        self.x = np.ascontiguousarray(self.x[perm])
        self.v = np.ascontiguousarray(self.v[perm])
        self.m = np.ascontiguousarray(self.m[perm])

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BodySystem(n={self.n}, dim={self.dim}, M={self.total_mass:.6g})"
