"""Störmer-Verlet time integration (paper Section III, ref [12]).

We implement the velocity-Verlet form (kick-drift-kick), which is the
standard symplectic realization of Störmer-Verlet for second-order ODE
systems and what the UPDATEPOSITION step of Algorithm 2 performs:

    v(t+dt/2) = v(t)      + a(t)      * dt/2      (kick)
    x(t+dt)   = x(t)      + v(t+dt/2) * dt        (drift)
    v(t+dt)   = v(t+dt/2) + a(t+dt)   * dt/2      (kick)

The force recomputation between drift and the second kick is exactly
the per-timestep pipeline (bounding box → tree build → multipoles →
force) whose parallelization the paper studies.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.physics.bodies import BodySystem


def kick(system: BodySystem, accel: np.ndarray, dt: float) -> None:
    """Advance velocities by ``accel * dt`` in place."""
    system.v += accel * dt


def drift(system: BodySystem, dt: float) -> None:
    """Advance positions by ``v * dt`` in place."""
    system.x += system.v * dt


AccelFn = Callable[[BodySystem], np.ndarray]


class VerletIntegrator:
    """Velocity-Verlet stepping of a :class:`BodySystem`.

    The acceleration callback is evaluated once per step (plus once at
    construction), matching Algorithm 2's one force evaluation per time
    step.  The integrator is symplectic and time-reversible; both
    properties are exercised by the test suite.
    """

    def __init__(self, system: BodySystem, accel_fn: AccelFn, dt: float):
        if dt <= 0 or not np.isfinite(dt):
            raise ValueError("dt must be positive and finite")
        self.system = system
        self.accel_fn = accel_fn
        self.dt = float(dt)
        self._accel = accel_fn(system)
        self.steps_taken = 0

    @property
    def accel(self) -> np.ndarray:
        """Acceleration at the current time (read-only view)."""
        return self._accel

    def step(self, n_steps: int = 1) -> None:
        """Advance the system by ``n_steps`` timesteps in place."""
        half = 0.5 * self.dt
        for _ in range(n_steps):
            kick(self.system, self._accel, half)
            drift(self.system, self.dt)
            self._accel = self.accel_fn(self.system)
            kick(self.system, self._accel, half)
            self.steps_taken += 1

    def reverse(self) -> None:
        """Flip the arrow of time (v -> -v); stepping then retraces the
        trajectory, a property used by the reversibility tests."""
        self.system.v *= -1.0
