"""Group-coherent force traversal with cached interaction lists.

The paper's force kernels walk the tree once per body.  Production GPU
tree codes (Bonsai; Tokuue & Ishiyama's many-core code) amortize that
walk across a warp: bodies are partitioned into spatially-coherent
groups, the stackless walk runs once per group against the group's
bounding box, and the resulting *interaction list* is evaluated as a
dense ``group x node`` tile.  This package supplies that engine for
both tree strategies (octree and Hilbert BVH):

* :mod:`repro.traversal.groups` — Hilbert-contiguous body grouping and
  per-group AABBs;
* :mod:`repro.traversal.engine` — the generic list-building walk
  (conservative group MAC), the dense tile evaluator, and the grouped
  counter accounting;
* :mod:`repro.traversal.flat` — the flattened-batch evaluator: lists
  expanded once per epoch into SoA index arrays, evaluated as a few
  large gather/scatter kernels with the symmetric near field deduped
  Newton's-third-law style (the production host path);
* :mod:`repro.traversal.dual` — the dual-tree cell-cell walk: a target
  tree over the groups, a symmetric MAC that retires well-separated
  cell pairs once via M2L into local expansions, and the L2L/L2P
  downsweep that carries them to bodies.

At ``group_size=1`` the group AABB degenerates to the body's position,
the conservative MAC coincides with the per-body criterion, and the
evaluation reproduces the lockstep kernels bit for bit (at monopole
order) — the property the tests pin down.
"""

from repro.traversal.engine import (
    KLASS_EXACT,
    KLASS_INTERNAL,
    KLASS_POINT,
    KLASS_SKIP,
    InteractionLists,
    TreeView,
    SelfPairs,
    account_grouped_force,
    build_interaction_lists,
    build_self_pairs,
    evaluate_interaction_lists,
)
from repro.traversal.flat import (
    FlatLists,
    build_flat_lists,
    evaluate_flat,
)
from repro.traversal.groups import BodyGroups, make_groups

# Imported last: dual pulls in the BVH layout, whose package init needs
# repro.traversal.engine to already be importable.
from repro.traversal.dual import (  # noqa: E402
    DualLists,
    TargetTree,
    account_dual_force,
    build_dual_lists,
    build_target_tree,
    dual_lists_valid,
    evaluate_dual,
)

__all__ = [
    "BodyGroups",
    "DualLists",
    "FlatLists",
    "InteractionLists",
    "SelfPairs",
    "TargetTree",
    "TreeView",
    "KLASS_EXACT",
    "KLASS_INTERNAL",
    "KLASS_POINT",
    "KLASS_SKIP",
    "account_dual_force",
    "account_grouped_force",
    "build_dual_lists",
    "build_flat_lists",
    "build_interaction_lists",
    "build_self_pairs",
    "build_target_tree",
    "dual_lists_valid",
    "evaluate_dual",
    "evaluate_flat",
    "evaluate_interaction_lists",
    "make_groups",
]
