"""Generic group-coherent traversal engine (list build + tile eval).

The engine sees a tree only through a :class:`TreeView`: flat per-node
arrays (centre of mass, mass, squared MAC extent, stackless escape /
open pointers) plus a per-node *class*:

* ``KLASS_INTERNAL`` — test the MAC; accept (emit) or open;
* ``KLASS_POINT``    — leaf whose monopole is the exact interaction
  (single-body leaves in both trees); always emitted;
* ``KLASS_EXACT``    — leaf that must be expanded body by body (octree
  bucket leaves); recorded separately for the caller to expand;
* ``KLASS_SKIP``     — contributes nothing (empty nodes); the subtree
  is skipped without emitting.

**List build** walks the tree once per group with the *conservative*
group MAC: a node is accepted only if ``size^2 < theta^2 * dmin^2``
where ``dmin`` is the distance from the node's centre of mass to the
nearest point of the group's AABB.  Every member body is at least
``dmin`` away, so group acceptance implies per-body acceptance — the
grouped traversal only ever *opens more* nodes than the per-body walk,
keeping the theta-controlled error bound.  At ``group_size=1`` the AABB
is the body itself and ``dmin`` equals the per-body distance bit for
bit, so the walk visits exactly the per-body node set.

The walk is executed as a level-synchronous frontier sweep over all
groups at once (depth-many vectorized rounds rather than
walk-length-many), which is how the build stays fast in numpy.  Since
the accept/open decision at a node depends only on the node and the
group box — never on visit order — the visited set equals the stackless
DFS walk's; each group's emissions are then sorted by the nodes'
precomputed DFS-preorder rank, recovering the exact per-body DFS
emission order the lockstep kernels accumulate in.

**Evaluation** turns each group's list into a dense ``group x node``
tile.  Two tile kernels are provided:

* ``tile`` — forms ``dvec = com - x`` explicitly and reduces the
  contributions sequentially along the (strided) list axis, which makes
  it bit-compatible with the per-body lockstep kernels' accumulation
  order; used at ``group_size=1`` where exact equality is the contract.
* ``gemm`` — rewrites ``sum_k w_k (com_k - x)`` as
  ``w @ com - (sum_k w_k) x`` so the hot reduction is a BLAS matmul;
  self-interactions (a body's own leaf in the list) are explicitly
  zeroed because the expanded form would otherwise difference two huge
  near-equal products.  Self-pair positions are precomputed once per
  list epoch (:func:`build_self_pairs`), not rebuilt every step.
* ``flat`` — :mod:`repro.traversal.flat`: the lists of *all* groups
  are expanded into flat SoA index arrays once per epoch and evaluated
  as a few large gather/scatter kernels with the symmetric near field
  deduped Newton's-third-law style.  This is the production host path
  for real groups (the ``auto`` default).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.counters import Counters
from repro.physics.gravity import FLOPS_PER_INTERACTION, SPECIAL_PER_INTERACTION
from repro.physics.multipole import (
    QUAD_EXTRA_BYTES,
    QUAD_EXTRA_FLOPS,
    quadrupole_accel,
)
from repro.traversal.groups import BodyGroups
from repro.types import FLOAT, INDEX

KLASS_INTERNAL = 0
KLASS_POINT = 1
KLASS_EXACT = 2
KLASS_SKIP = 3


def mac_threshold2(
    dmin2: np.ndarray, theta2: float, mac_margin: float
) -> np.ndarray:
    """Squared acceptance threshold of the (drift-bounded) MAC.

    A node is accepted when ``size^2 < mac_threshold2(...)``, i.e.
    ``size^2 < theta^2 * max(dmin - margin, 0)^2``.  The margin branch
    is the only place the hot loop needs a square root; at
    ``mac_margin == 0`` the threshold is just ``theta^2 * dmin2`` and
    the sqrt is skipped entirely.  Shared by the grouped list build,
    the LET selection and the dual-tree walk so every MAC in the
    codebase evaluates the same floating-point expression.
    """
    if mac_margin <= 0.0:
        return theta2 * dmin2
    dmin_eff = np.maximum(np.sqrt(dmin2) - mac_margin, 0.0)
    return theta2 * dmin_eff * dmin_eff


def aabb_dmin2(
    lo: np.ndarray, hi: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Squared distance from points *c* to their axis-aligned boxes.

    For degenerate boxes (``lo == hi``) this is ``|c - lo|^2`` exactly,
    so the conservative group MAC coincides bit for bit with the
    per-body criterion at ``group_size=1``.
    """
    d = np.maximum(lo - c, 0.0) + np.maximum(c - hi, 0.0)
    return np.einsum("ij,ij->i", d, d)


@dataclass(frozen=True)
class TreeView:
    """The per-node arrays the engine needs, independent of tree type."""

    com: np.ndarray          # (n_nodes, dim) centres of mass
    mass: np.ndarray         # (n_nodes,)
    size2: np.ndarray        # (n_nodes,) squared extent entering the MAC
    first_child: np.ndarray  # (n_nodes,) first child of each internal node
    #: Children per internal node (contiguous from ``first_child``):
    #: 2^dim for the octree, 2 for the BVH.
    branch: int
    klass: np.ndarray        # (n_nodes,) KLASS_* codes
    #: Body id of each KLASS_POINT leaf (-1 elsewhere), in the id space
    #: the evaluator's ``body_ids`` uses; lets the gemm kernel zero
    #: self-interactions.
    point_body: np.ndarray
    #: DFS-preorder rank of every node — orders each group's emissions
    #: the way the stackless per-body walk would emit them.
    dfs_rank: np.ndarray
    quad: np.ndarray | None = None   # (n_nodes, 3, 3) at multipole order 2
    #: Bytes touched per node visit of the list-building walk.
    visit_bytes: float = 50.0


@dataclass
class InteractionLists:
    """Per-group interaction lists, each in DFS visit order (CSR)."""

    offsets: np.ndarray       # (n_groups + 1,) into nodes/approx
    nodes: np.ndarray         # (n_entries,) emitted node ids
    #: True where the entry is an accepted internal node (the "approx"
    #: list); False where it is a direct leaf.
    approx: np.ndarray
    exact_groups: np.ndarray  # (n_exact,) group of each bucket hit
    exact_nodes: np.ndarray   # (n_exact,) bucket leaf node ids
    steps: np.ndarray         # (n_groups,) walk length per group
    theta: float
    #: Opening-radius inflation the lists were built with (the
    #: drift-bounded MAC of repro.maintenance); 0 = the plain MAC.
    mac_margin: float = 0.0

    @property
    def n_groups(self) -> int:
        return self.offsets.shape[0] - 1

    @property
    def n_entries(self) -> int:
        return int(self.nodes.shape[0])

    @property
    def n_approx(self) -> int:
        return int(np.count_nonzero(self.approx))

    def group_entries(self, g: int) -> slice:
        return slice(int(self.offsets[g]), int(self.offsets[g + 1]))

    def approx_nodes(self, g: int) -> np.ndarray:
        """Accepted (monopole/multipole) nodes of group *g*."""
        sl = self.group_entries(g)
        return self.nodes[sl][self.approx[sl]]

    def direct_leaves(self, g: int) -> np.ndarray:
        """Directly-interacting leaf nodes of group *g*."""
        sl = self.group_entries(g)
        return self.nodes[sl][~self.approx[sl]]


def build_interaction_lists(
    view: TreeView, groups: BodyGroups, theta: float,
    *, mac_margin: float = 0.0,
) -> InteractionLists:
    """Walk the tree once per group and emit its interaction lists.

    Level-synchronous frontier sweep: every round tests the MAC for all
    pending (group, node) pairs at once and expands the rejected
    internal nodes' children into the next frontier, so the Python loop
    runs depth-many rounds.  Emissions are sorted per group by DFS
    rank afterwards, which reproduces the stackless walk's order.

    *mac_margin* > 0 tightens acceptance to
    ``size^2 < theta^2 * max(dmin - margin, 0)^2`` — the drift-bounded
    MAC of :mod:`repro.maintenance`: as long as the accumulated body /
    centre-of-mass displacement since the lists were built stays within
    the margin (per node and group, tracked tightly rather than
    worst-case), every accepted node still satisfies the plain per-body
    MAC at the *current* positions, so cached lists remain provable
    supersets.  ``mac_margin=0`` is bit-identical to the plain MAC.
    """
    ng = groups.n_groups
    theta2 = theta * theta
    steps = np.zeros(ng, dtype=np.int64)
    empty_idx = np.empty(0, dtype=INDEX)
    if ng == 0:
        return InteractionLists(
            np.zeros(1, dtype=INDEX), empty_idx, np.empty(0, dtype=bool),
            empty_idx, empty_idx, steps, theta, mac_margin,
        )

    klass = view.klass
    size2 = view.size2
    com = view.com
    first_child = view.first_child
    branch = view.branch
    glo = groups.lo
    ghi = groups.hi

    rows_g: list[np.ndarray] = []
    rows_nd: list[np.ndarray] = []
    rows_ap: list[np.ndarray] = []
    ex_g: list[np.ndarray] = []
    ex_nd: list[np.ndarray] = []

    g = np.arange(ng, dtype=INDEX)
    nd = np.zeros(ng, dtype=INDEX)
    while g.size:
        steps += np.bincount(g, minlength=ng)
        kl = klass[nd]
        internal = kl == KLASS_INTERNAL
        dmin2 = aabb_dmin2(glo[g], ghi[g], com[nd])
        accept = internal & (size2[nd] < mac_threshold2(dmin2, theta2,
                                                        mac_margin))
        emit = accept | (kl == KLASS_POINT)
        if emit.any():
            rows_g.append(g[emit])
            rows_nd.append(nd[emit])
            rows_ap.append(accept[emit])
        exact = kl == KLASS_EXACT
        if exact.any():
            ex_g.append(g[exact])
            ex_nd.append(nd[exact])

        expand = internal & ~accept
        if not expand.any():
            break
        base = first_child[nd[expand]]
        nd = (base[:, None] + np.arange(branch, dtype=INDEX)).ravel()
        g = np.repeat(g[expand], branch)

    if rows_g:
        g_all = np.concatenate(rows_g)
        nd_all = np.concatenate(rows_nd)
        # Unique (group, DFS rank) keys; sorting them recovers each
        # group's stackless-DFS emission order.
        stride = INDEX(view.dfs_rank.shape[0])
        order = np.argsort(g_all * stride + view.dfs_rank[nd_all])
        nodes = nd_all[order]
        approx = np.concatenate(rows_ap)[order]
        counts = np.bincount(g_all, minlength=ng)
    else:
        nodes = empty_idx
        approx = np.empty(0, dtype=bool)
        counts = np.zeros(ng, dtype=np.int64)
    offsets = np.zeros(ng + 1, dtype=INDEX)
    np.cumsum(counts, out=offsets[1:])

    if ex_g:
        eg = np.concatenate(ex_g)
        en = np.concatenate(ex_nd)
        order = np.argsort(eg * INDEX(view.dfs_rank.shape[0])
                           + view.dfs_rank[en])
        exact_groups, exact_nodes = eg[order], en[order]
    else:
        exact_groups = exact_nodes = empty_idx
    return InteractionLists(offsets, nodes, approx,
                            exact_groups, exact_nodes, steps, theta, mac_margin)


@dataclass(frozen=True)
class SelfPairs:
    """Per-group self-interaction positions in the dense gemm tiles.

    ``(rows[p], cols[p])`` for ``p`` in ``offsets[g]:offsets[g+1]`` are
    the (body row within group ``g``, entry column within its list)
    positions whose weight the gemm kernel must zero — a body meeting
    its own point leaf.  Precomputed once per list-build epoch by
    :func:`build_self_pairs`; the set only changes when the lists do.
    """

    offsets: np.ndarray  # (n_groups + 1,)
    rows: np.ndarray     # (n_pairs,) row within the group tile
    cols: np.ndarray     # (n_pairs,) column within the group's entries


def build_self_pairs(
    view: TreeView,
    lists: InteractionLists,
    groups: BodyGroups,
    *,
    body_ids: np.ndarray | None = None,
) -> SelfPairs:
    """Locate every (group row, list column) self-interaction once.

    Vectorized over all entries: map each direct entry's point-body id
    back to its sorted row (via the inverse of ``body_ids``; foreign /
    out-of-range ids never match) and keep those landing inside their
    own group's row range.
    """
    ng = lists.n_groups
    pb = view.point_body[lists.nodes].astype(np.int64)
    if body_ids is None:
        src = pb  # ids are already sorted rows
    else:
        ids = np.asarray(body_ids, dtype=np.int64)
        ok = ids >= 0
        size = int(ids[ok].max(initial=-1)) + 1
        row_of = np.full(max(size, 1), -1, dtype=np.int64)
        row_of[ids[ok]] = np.nonzero(ok)[0]
        src = np.full(pb.shape[0], -1, dtype=np.int64)
        cand = (pb >= 0) & (pb < row_of.shape[0])
        src[cand] = row_of[pb[cand]]
    counts = np.diff(lists.offsets).astype(np.int64)
    entry_group = np.repeat(np.arange(ng, dtype=np.int64), counts)
    go = groups.offsets.astype(np.int64)
    inside = ((src >= go[entry_group]) & (src < go[entry_group + 1])
              & (src >= 0))
    e = np.nonzero(inside)[0]
    g_e = entry_group[e]
    rows = (src[e] - go[g_e]).astype(INDEX)
    cols = (e - lists.offsets.astype(np.int64)[g_e]).astype(INDEX)
    offsets = np.zeros(ng + 1, dtype=INDEX)
    np.cumsum(np.bincount(g_e, minlength=ng), out=offsets[1:])
    return SelfPairs(offsets, rows, cols)


def evaluate_interaction_lists(
    view: TreeView,
    lists: InteractionLists,
    groups: BodyGroups,
    x_sorted: np.ndarray,
    *,
    G: float = 1.0,
    eps2: float = 0.0,
    body_ids: np.ndarray | None = None,
    mode: str = "auto",
    flat=None,
    m_sorted: np.ndarray | None = None,
    self_pairs: SelfPairs | None = None,
) -> tuple[np.ndarray, dict]:
    """Evaluation of the cached lists at current positions.

    Returns accelerations in sorted-row order plus an eval-stats dict
    (``pairs`` evaluated, nonzero ``interactions``, ``quad_terms``,
    plus the flat-mode ``flat_launches`` / ``near_pairs_naive`` /
    ``near_pairs_evaluated``, zero for the tile kernels).
    ``body_ids`` maps sorted rows into ``view.point_body``'s id space
    (identity when omitted); ``mode`` is ``"tile"`` (bit-compatible
    sequential reduction), ``"gemm"`` (BLAS), ``"flat"`` (flattened
    SoA batch kernels with n3l near-field dedup — see
    :mod:`repro.traversal.flat`), or ``"auto"`` (tile only for the
    degenerate one-body groups whose contract is exactness, flat
    otherwise).  *flat* / *self_pairs* are the per-epoch precomputes
    (built on the fly when omitted — callers with a structure cache
    should pass them); *m_sorted* (masses in sorted-row order) enables
    the n3l dedup in flat mode.
    """
    x_sorted = np.asarray(x_sorted, dtype=FLOAT)
    n, dim = x_sorted.shape
    acc = np.zeros((n, dim), dtype=FLOAT)
    if mode == "auto":
        # Flat only pays when its one-time index expansion is amortized
        # across an epoch: pick it when the caller hands in a cached
        # FlatLists, gemm otherwise (tile for degenerate groups).
        if groups.max_group_size <= 1:
            mode = "tile"
        else:
            mode = "flat" if flat is not None else "gemm"
    if mode not in ("tile", "gemm", "flat"):
        raise ValueError(f"unknown eval mode {mode!r}")

    if mode == "flat":
        # Deferred import: flat builds on the engine's data structures.
        from repro.traversal.flat import build_flat_lists, evaluate_flat
        if flat is None:
            flat = build_flat_lists(view, lists, groups,
                                    body_ids=body_ids,
                                    n3l=m_sorted is not None)
        return evaluate_flat(view, flat, x_sorted,
                             G=G, eps2=eps2, m_sorted=m_sorted)

    off = lists.offsets
    go = groups.offsets
    com = view.com
    mass = view.mass
    quad = view.quad
    pairs = 0
    nonzero = 0
    quad_terms = 0
    ng = groups.n_groups
    # Hoisted once: item access on numpy scalars inside the loop is a
    # measurable share of small-group eval time.
    off_l = off.tolist()
    go_l = go.tolist()

    if mode == "gemm" and self_pairs is None:
        self_pairs = build_self_pairs(view, lists, groups,
                                      body_ids=body_ids)

    if mode == "tile":
        # Scratch pools sized for the largest tile, reused across
        # groups; flat (b*k) slices keep every view contiguous.
        bmax = groups.max_group_size
        kmax = int(np.diff(off).max(initial=0))
        cap = bmax * kmax
        dpool = np.empty((cap, dim), dtype=FLOAT)
        opool = np.empty((cap, dim), dtype=FLOAT)
        r2pool = np.empty(cap, dtype=FLOAT)
        cpool = np.empty(cap, dtype=FLOAT)
        wpool = np.empty(cap, dtype=FLOAT)
        mpool = np.empty(cap, dtype=bool)

    for g in range(ng):
        lo_e, hi_e = off_l[g], off_l[g + 1]
        if hi_e == lo_e:
            continue
        nodes = lists.nodes[lo_e:hi_e]
        r0, r1 = go_l[g], go_l[g + 1]
        xg = x_sorted[r0:r1]
        b, k = r1 - r0, hi_e - lo_e
        cn = com[nodes]
        mn = mass[nodes]

        if mode == "tile":
            bk = b * k
            dvec = np.subtract(cn[None, :, :], xg[:, None, :],
                               out=dpool[:bk].reshape(b, k, dim))
            r2 = np.einsum("ij,ij->i", dpool[:bk], dpool[:bk],
                           out=r2pool[:bk]).reshape(b, k)
            r2c = np.add(r2, eps2, out=cpool[:bk].reshape(b, k))
            with np.errstate(divide="ignore", invalid="ignore"):
                w = np.power(r2c, -1.5, out=wpool[:bk].reshape(b, k))
                np.multiply(G * mn, w, out=w)
            np.less_equal(r2c, 0.0, out=mpool[:bk].reshape(b, k))
            np.copyto(w, 0.0, where=mpool[:bk].reshape(b, k))
            contrib = np.multiply(w[:, :, None], dvec,
                                  out=opool[:bk].reshape(b, k, dim))
            if quad is not None:
                ap = lists.approx[lo_e:hi_e]
                kq = int(np.count_nonzero(ap))
                if kq:
                    dq = dvec[:, ap, :].reshape(-1, dim)
                    r2q = r2c[:, ap].reshape(-1)
                    qt = np.broadcast_to(
                        quad[nodes[ap]], (b, kq, dim, dim)
                    ).reshape(-1, dim, dim)
                    contrib[:, ap, :] += quadrupole_accel(
                        dq, r2q, qt, G
                    ).reshape(b, kq, dim)
                    quad_terms += b * kq
            # The reduced axis is strided, so numpy accumulates it
            # sequentially — the same order as the lockstep rounds.
            np.sum(contrib, axis=1, out=acc[r0:r1])
        else:
            x2 = np.einsum("ij,ij->i", xg, xg)
            c2 = np.einsum("ij,ij->i", cn, cn)
            r2 = x2[:, None] + c2[None, :] - 2.0 * (xg @ cn.T)
            np.maximum(r2, 0.0, out=r2)  # cancellation can go negative
            r2c = r2 + eps2
            with np.errstate(divide="ignore", invalid="ignore"):
                w = np.where(r2c > 0.0, G * mn * r2c ** -1.5, 0.0)
            sp0, sp1 = int(self_pairs.offsets[g]), int(
                self_pairs.offsets[g + 1])
            w[self_pairs.rows[sp0:sp1], self_pairs.cols[sp0:sp1]] = 0.0
            acc_g = w @ cn - w.sum(axis=1)[:, None] * xg
            if quad is not None:
                ap = lists.approx[lo_e:hi_e]
                kq = int(np.count_nonzero(ap))
                if kq:
                    can = cn[ap]
                    dq = (can[None, :, :] - xg[:, None, :]).reshape(-1, dim)
                    r2q = np.einsum("ij,ij->i", dq, dq) + eps2
                    qt = np.broadcast_to(
                        quad[nodes[ap]], (b, kq, dim, dim)
                    ).reshape(-1, dim, dim)
                    acc_g += quadrupole_accel(dq, r2q, qt, G).reshape(
                        b, kq, dim
                    ).sum(axis=1)
                    quad_terms += b * kq
            acc[r0:r1] = acc_g

        pairs += b * k
        nonzero += int(np.count_nonzero(w))

    return acc, {"pairs": pairs, "interactions": nonzero,
                 "quad_terms": quad_terms, "flat_launches": 0,
                 "near_pairs_naive": 0, "near_pairs_evaluated": 0}


def account_grouped_force(
    counters: Counters,
    lists: InteractionLists,
    groups: BodyGroups,
    *,
    n_bodies: int,
    dim: int,
    simt_width: int,
    pairs: int,
    quad_terms: int = 0,
    visit_bytes: float = 50.0,
    built: bool = True,
    flops_per_visit: float = 8.0,
    sort_comparisons: float = 0.0,
    launches: float | None = None,
    flat_launches: float = 0.0,
    near_pairs_naive: float = 0.0,
    near_pairs_evaluated: float = 0.0,
) -> None:
    """Charge a grouped force evaluation (list-build vs list-eval split).

    The build walk is pointer chasing (irregular bytes) but runs once
    per *group* and is warp-synchronous by construction — every lane of
    a warp executes the same walk — so its warp-granularity work equals
    its per-thread work (no divergence inflation).  The eval is a dense
    streaming tile.  When the lists come from the cross-timestep cache
    (``built=False``), only the eval side is charged.

    *launches* overrides the kernel-launch charge (default: 2 for
    build+eval, 1 for eval-only).  Callers that batch several list
    evaluations into one device launch pair — the distributed runtime
    evaluates every remote rank's halo tiles back to back — pass 0 for
    the batched-in calls so the fixed launch overhead is charged once.
    """
    build_steps = float(lists.steps.sum()) if built else 0.0
    entries = float(lists.n_entries)
    node_bytes = (dim + 1) * 8.0
    quad_entries = float(lists.n_approx) if quad_terms else 0.0
    counters.add(
        flops=(pairs * FLOPS_PER_INTERACTION + build_steps * flops_per_visit
               + quad_terms * QUAD_EXTRA_FLOPS),
        special_flops=pairs * SPECIAL_PER_INTERACTION,
        bytes_irregular=build_steps * visit_bytes,
        bytes_read=(build_steps * visit_bytes
                    + entries * node_bytes
                    + quad_entries * QUAD_EXTRA_BYTES
                    + n_bodies * dim * 8.0),
        bytes_written=n_bodies * dim * 8.0,
        traversal_steps=build_steps,
        traversal_steps_max=float(lists.steps.max(initial=0)) if built else 0.0,
        # Warp-synchronous: one warp executes one group's walk, all
        # lanes together, so warp-granularity work == per-thread work.
        warp_traversal_steps=build_steps,
        interaction_list_size=entries,
        list_build_steps=build_steps,
        list_eval_interactions=float(pairs),
        # Every build-walk visit tests the MAC once; the emitted entries
        # are body-level work deferred to the tile evaluation, re-paid
        # every step the lists are reused.
        mac_evals=build_steps,
        pairs_deferred=entries,
        loop_iterations=float(groups.n_groups + n_bodies),
        kernel_launches=(2.0 if built else 1.0) if launches is None else launches,
        sort_comparisons=sort_comparisons,
        flat_launches=flat_launches,
        near_pairs_naive=near_pairs_naive,
        near_pairs_evaluated=near_pairs_evaluated,
    )
