"""Dual-tree cell-cell force traversal with a local-expansion downsweep.

The grouped engine (:mod:`repro.traversal.engine`) is one-sided: every
body group re-derives its interaction list against the source tree, so
a well-separated *pair of cells* is re-classified and re-evaluated once
per target group.  The dual walk removes that redundancy.  Target
groups are organized into a balanced binary **target tree** (the same
implicit heap layout as the Hilbert BVH, built over the
Hilbert-contiguous group boxes), and a simultaneous walk over
(target node, source node) pairs classifies each pair:

* **far** — the source passes the conservative MAC against the target
  box *and* the target box is small against the same distance
  (``size_t < theta * cc_mac * dmin``): the pair is evaluated **once**
  via M2L into the target node's local expansion
  (:mod:`repro.physics.local_expansion`) and never touches the bodies
  below either cell again;
* **recurse** — otherwise the larger cell opens: the target splits
  whenever the source already passes its MAC (see below), else
  whichever cell is bigger;
* **near** — pairs reaching a leaf target fall back to the grouped
  engine's semantics verbatim: accepted nodes and point leaves are
  emitted into ordinary per-group interaction lists (evaluated by the
  existing dense tile kernels), bucket leaves are recorded for exact
  expansion.

The split rule "if the source passes its MAC, split the **target**,
never the source" gives two structural guarantees:

1. **Exactness fallback** — with the cell-cell branch disabled
   (``cc_mac = 0``) no pair is ever far and no source is ever split
   above a leaf target, so the walk degenerates into exactly the
   grouped per-group source walk and the emitted lists — hence the
   forces — are bit-identical to ``traversal="grouped"``.
2. **LET superset** — the walk only opens a source node that fails the
   conservative MAC against some target box, which is contained in the
   rank's domain box; failing the easier criterion implies failing the
   domain-level one, so every source node a multi-rank dual walk visits
   is already inside the one-sided LET halo the distributed runtime
   exchanges.  Multi-rank dual traversal therefore works unchanged.

Refit composability: both criteria are built against
``mac_threshold2(dmin2, theta2, mac_margin)`` — the drift-bounded MAC —
so cached :class:`DualLists` remain provable supersets while the
observed drift stays inside the margin; :func:`dual_lists_valid` is the
gate (near lists via the grouped gate, far pairs via a target-subtree
drift sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.layout import BVHLayout, next_pow2
from repro.machine.counters import Counters
from repro.maintenance.drift import lists_valid
from repro.physics.local_expansion import (
    LocalExpansion,
    expansion_words,
    l2_flops,
    l2l_sweep,
    l2p_evaluate,
    m2l_accumulate,
    m2l_flops,
)
from repro.physics.multipole import QUAD_EXTRA_BYTES, QUAD_EXTRA_FLOPS
from repro.traversal.engine import (
    KLASS_EXACT,
    KLASS_INTERNAL,
    KLASS_POINT,
    KLASS_SKIP,
    InteractionLists,
    TreeView,
    aabb_dmin2,
    account_grouped_force,
    evaluate_interaction_lists,
    mac_threshold2,
)
from repro.traversal.groups import BodyGroups
from repro.types import FLOAT, INDEX


@dataclass(frozen=True)
class TargetTree:
    """Balanced implicit binary tree over the Hilbert-contiguous groups.

    Leaf ``first_leaf + g`` is group ``g``'s AABB (padding leaves up to
    the next power of two are empty); internal boxes are unions, built
    bottom-up one level per round.  ``center`` is the box centre (zero
    for empty nodes) — the expansion centre of the downsweep — and
    ``size2`` the squared longest side entering the cell-cell MAC.
    """

    layout: BVHLayout
    lo: np.ndarray       # (n_nodes, dim)
    hi: np.ndarray       # (n_nodes, dim)
    center: np.ndarray   # (n_nodes, dim)
    size2: np.ndarray    # (n_nodes,)
    count: np.ndarray    # (n_nodes,) bodies below
    n_groups: int

    @property
    def first_leaf(self) -> int:
        return self.layout.first_leaf

    def leaf_of(self, g: np.ndarray) -> np.ndarray:
        return self.layout.first_leaf + g


def build_target_tree(groups: BodyGroups) -> TargetTree:
    """Bottom-up union sweep over the group boxes (heap order)."""
    ng = groups.n_groups
    dim = groups.lo.shape[1] if ng else 3
    layout = BVHLayout(next_pow2(ng))
    nn = layout.n_nodes
    fl = layout.first_leaf
    lo = np.full((nn, dim), np.inf, dtype=FLOAT)
    hi = np.full((nn, dim), -np.inf, dtype=FLOAT)
    count = np.zeros(nn, dtype=np.int64)
    if ng:
        lo[fl:fl + ng] = groups.lo
        hi[fl:fl + ng] = groups.hi
        count[fl:fl + ng] = np.diff(groups.offsets)
    for level in range(layout.n_levels - 2, -1, -1):
        sl = layout.level_slice(level)
        cl = layout.level_slice(level + 1)
        k = sl.stop - sl.start
        lo[sl] = lo[cl].reshape(k, 2, dim).min(axis=1)
        hi[sl] = hi[cl].reshape(k, 2, dim).max(axis=1)
        count[sl] = count[cl].reshape(k, 2).sum(axis=1)
    occupied = count > 0
    center = np.zeros((nn, dim), dtype=FLOAT)
    center[occupied] = 0.5 * (lo[occupied] + hi[occupied])
    side = np.zeros(nn, dtype=FLOAT)
    side[occupied] = (hi[occupied] - lo[occupied]).max(axis=1)
    return TargetTree(layout, lo, hi, center, side * side, count, ng)


@dataclass
class DualLists:
    """Classified output of one dual walk (cacheable alongside ilists)."""

    near: InteractionLists    # leaf-target emissions, grouped-engine CSR
    far_t: np.ndarray         # (n_far,) target-tree node per far pair
    far_s: np.ndarray         # (n_far,) source node per far pair
    tt: TargetTree
    theta: float
    cc_mac: float
    mac_margin: float
    #: (target, source) MAC evaluations the walk performed.
    mac_evals: int

    @property
    def n_far(self) -> int:
        return int(self.far_t.shape[0])


def build_dual_lists(
    view: TreeView,
    tt: TargetTree,
    theta: float,
    *,
    cc_mac: float = 1.0,
    mac_margin: float = 0.0,
) -> DualLists:
    """Simultaneous walk over (target node, source node) pairs.

    Level-synchronous like the grouped build: every round classifies
    all pending pairs at once; far pairs retire into the M2L list,
    near-field decisions at leaf targets are emitted in the grouped
    engine's exact semantics, everything else expands into the next
    frontier.  Both MACs share :func:`mac_threshold2`, so the drift
    margin inflates the opening radius of near *and* far acceptance.
    """
    empty_idx = np.empty(0, dtype=INDEX)
    ng = tt.n_groups
    theta2 = theta * theta
    cc2 = cc_mac * cc_mac
    steps = np.zeros(ng, dtype=np.int64)

    def _empty_near() -> InteractionLists:
        return InteractionLists(
            np.zeros(ng + 1, dtype=INDEX), empty_idx,
            np.empty(0, dtype=bool), empty_idx, empty_idx,
            steps, theta, mac_margin,
        )

    if ng == 0 or view.klass.shape[0] == 0 or tt.count[0] == 0:
        return DualLists(_empty_near(), empty_idx, empty_idx, tt,
                         theta, cc_mac, mac_margin, 0)

    klass = view.klass
    ssize2 = view.size2
    com = view.com
    first_child = view.first_child
    branch = view.branch
    fl = tt.first_leaf
    tsize2 = tt.size2
    tcount = tt.count
    tlo, thi = tt.lo, tt.hi
    cc_on = cc_mac > 0.0

    rows_g: list[np.ndarray] = []
    rows_nd: list[np.ndarray] = []
    rows_ap: list[np.ndarray] = []
    ex_g: list[np.ndarray] = []
    ex_nd: list[np.ndarray] = []
    far_t: list[np.ndarray] = []
    far_s: list[np.ndarray] = []
    mac_evals = 0

    T = np.zeros(1, dtype=INDEX)
    S = np.zeros(1, dtype=INDEX)
    while T.size:
        live = (tcount[T] > 0) & (klass[S] != KLASS_SKIP)
        T, S = T[live], S[live]
        if not T.size:
            break
        mac_evals += int(T.size)
        kl = klass[S]
        internal = kl == KLASS_INTERNAL
        dmin2 = aabb_dmin2(tlo[T], thi[T], com[S])
        thr = mac_threshold2(dmin2, theta2, mac_margin)
        src_ok = (internal & (ssize2[S] < thr)) | (kl == KLASS_POINT)
        far = np.zeros(T.shape[0], dtype=bool)
        if cc_on:
            # Cell-cell acceptance: source multipole valid for the whole
            # target box AND target small enough for the truncated
            # Taylor series; dmin2 > 0 keeps the expansion centre
            # strictly outside the source's softening ball.
            far = src_ok & (tsize2[T] < cc2 * thr) & (dmin2 > 0.0)
            if far.any():
                far_t.append(T[far])
                far_s.append(S[far])

        rest = ~far
        t_leaf = rest & (T >= fl)
        # --- leaf targets: the grouped engine's decisions, verbatim ---
        emit = t_leaf & src_ok
        if emit.any():
            rows_g.append((T[emit] - fl).astype(INDEX))
            rows_nd.append(S[emit])
            rows_ap.append(internal[emit])
        exact = t_leaf & (kl == KLASS_EXACT)
        if exact.any():
            ex_g.append((T[exact] - fl).astype(INDEX))
            ex_nd.append(S[exact])
        np.add.at(steps, (T[t_leaf] - fl).astype(np.int64), 1)
        open_src_leaf = t_leaf & internal & ~src_ok
        # --- internal targets ---------------------------------------
        t_int = rest & (T < fl)
        # A source that already passes its MAC (or must be expanded
        # body-by-body) never opens above a leaf target: descend the
        # target instead.  This is what makes cc_mac=0 degenerate into
        # the grouped walk and keeps multi-rank walks inside the LET.
        split_t = t_int & (src_ok | (kl == KLASS_EXACT) | ~internal)
        rest_int = t_int & internal & ~src_ok
        if cc_on:
            bigger_src = ssize2[S] > tsize2[T]
            open_src_int = rest_int & bigger_src
            split_t = split_t | (rest_int & ~bigger_src)
        else:
            open_src_int = np.zeros_like(rest_int)
            split_t = split_t | rest_int

        nxt_T: list[np.ndarray] = []
        nxt_S: list[np.ndarray] = []
        if split_t.any():
            Tt = T[split_t]
            nxt_T.append(np.concatenate([2 * Tt + 1, 2 * Tt + 2]))
            nxt_S.append(np.concatenate([S[split_t], S[split_t]]))
        open_src = open_src_leaf | open_src_int
        if open_src.any():
            base = first_child[S[open_src]]
            nxt_S.append(
                (base[:, None] + np.arange(branch, dtype=INDEX)).ravel())
            nxt_T.append(np.repeat(T[open_src], branch))
        if not nxt_T:
            break
        T = np.concatenate(nxt_T).astype(INDEX)
        S = np.concatenate(nxt_S).astype(INDEX)

    # --- near lists in the grouped engine's CSR + DFS order ----------
    stride = INDEX(view.dfs_rank.shape[0])
    if rows_g:
        g_all = np.concatenate(rows_g)
        nd_all = np.concatenate(rows_nd)
        order = np.argsort(g_all * stride + view.dfs_rank[nd_all])
        nodes = nd_all[order]
        approx = np.concatenate(rows_ap)[order]
        counts = np.bincount(g_all, minlength=ng)
    else:
        nodes = empty_idx
        approx = np.empty(0, dtype=bool)
        counts = np.zeros(ng, dtype=np.int64)
    offsets = np.zeros(ng + 1, dtype=INDEX)
    np.cumsum(counts, out=offsets[1:])
    if ex_g:
        eg = np.concatenate(ex_g)
        en = np.concatenate(ex_nd)
        order = np.argsort(eg * stride + view.dfs_rank[en])
        exact_groups, exact_nodes = eg[order], en[order]
    else:
        exact_groups = exact_nodes = empty_idx
    near = InteractionLists(offsets, nodes, approx, exact_groups,
                            exact_nodes, steps, theta, mac_margin)

    # Deterministic far order (target, then source DFS rank): the M2L
    # scatter accumulates in this order, keeping the force bitwise
    # reproducible run to run.
    if far_t:
        ft = np.concatenate(far_t)
        fs = np.concatenate(far_s)
        order = np.argsort(ft.astype(np.int64) * int(stride)
                           + view.dfs_rank[fs], kind="stable")
        ft, fs = ft[order], fs[order]
    else:
        ft = fs = empty_idx
    return DualLists(near, ft, fs, tt, theta, cc_mac, mac_margin, mac_evals)


def evaluate_dual(
    view: TreeView,
    dual: DualLists,
    groups: BodyGroups,
    x_sorted: np.ndarray,
    *,
    G: float = 1.0,
    eps2: float = 0.0,
    body_ids: np.ndarray | None = None,
    mode: str = "auto",
    expansion_order: int = 1,
    ctx=None,
    flat=None,
    m_sorted: np.ndarray | None = None,
    self_pairs=None,
) -> tuple[np.ndarray, dict]:
    """Near tiles + far M2L -> L2L downsweep -> L2P, at current positions.

    The near side reuses :func:`evaluate_interaction_lists` unchanged
    (*flat* / *m_sorted* / *self_pairs* are forwarded to it — the
    flattened-batch precomputes built against ``dual.near``).  When no
    far pair was accepted (``cc_mac = 0``) the expansion stage is
    skipped entirely — not even zeros are added — so the result is
    bit-identical to the grouped evaluation of the same lists.
    """
    acc, stats = evaluate_interaction_lists(
        view, dual.near, groups, x_sorted,
        G=G, eps2=eps2, body_ids=body_ids, mode=mode,
        flat=flat, m_sorted=m_sorted, self_pairs=self_pairs,
    )
    stats = dict(stats)
    stats.update(m2l_terms=0, l2l_shifts=0, quad_far=0)
    if dual.n_far == 0:
        return acc, stats
    tt = dual.tt
    dim = x_sorted.shape[1]
    exp = LocalExpansion.zeros(tt.layout.n_nodes, dim, expansion_order)
    stats["quad_far"] = m2l_accumulate(
        exp, dual.far_t, dual.far_s, view.com, view.mass, tt.center,
        G=G, eps2=eps2, quad=view.quad,
    )
    stats["m2l_terms"] = dual.n_far
    stats["l2l_shifts"] = l2l_sweep(exp, tt.layout, tt.center, ctx)
    g_of_row = np.repeat(np.arange(groups.n_groups, dtype=INDEX),
                         np.diff(groups.offsets))
    acc += l2p_evaluate(exp, tt.leaf_of(g_of_row), x_sorted, tt.center)
    return acc, stats


def account_dual_force(
    counters: Counters,
    dual: DualLists,
    groups: BodyGroups,
    *,
    n_bodies: int,
    dim: int,
    simt_width: int,
    pairs: int,
    quad_terms: int = 0,
    quad_far: int = 0,
    expansion_order: int = 1,
    visit_bytes: float = 50.0,
    built: bool = True,
    flops_per_visit: float = 8.0,
    sort_comparisons: float = 0.0,
    launches: float | None = None,
    flat_launches: float = 0.0,
    near_pairs_naive: float = 0.0,
    near_pairs_evaluated: float = 0.0,
) -> None:
    """Charge one dual force evaluation.

    The near side is exactly a grouped evaluation of ``dual.near``
    (whose ``steps`` are zero — the walk is charged here instead, once
    per build, as pair-MAC visits).  The far side pays M2L per pair,
    the L2L shift per target node and L2P per body every step; the
    expansion arrays make one irregular round trip per stage.
    """
    account_grouped_force(
        counters, dual.near, groups,
        n_bodies=n_bodies, dim=dim, simt_width=simt_width,
        pairs=pairs, quad_terms=quad_terms, visit_bytes=visit_bytes,
        built=built, flops_per_visit=flops_per_visit,
        sort_comparisons=sort_comparisons, launches=launches,
        flat_launches=flat_launches,
        near_pairs_naive=near_pairs_naive,
        near_pairs_evaluated=near_pairs_evaluated,
    )
    walk = float(dual.mac_evals) if built else 0.0
    nf = float(dual.n_far)
    n_nodes = float(dual.tt.layout.n_nodes)
    exp_bytes = expansion_words(dim, expansion_order) * 8.0
    node_bytes = (dim + 1) * 8.0
    counters.add(
        mac_evals=walk,
        pairs_accepted_cc=nf,
        flops=(walk * flops_per_visit
               + nf * m2l_flops(dim, expansion_order)
               + quad_far * QUAD_EXTRA_FLOPS
               + (n_nodes + n_bodies) * l2_flops(expansion_order)),
        bytes_irregular=(walk * visit_bytes
                         + nf * (node_bytes + exp_bytes)
                         + quad_far * QUAD_EXTRA_BYTES),
        bytes_read=(walk * visit_bytes
                    + nf * (node_bytes + exp_bytes)
                    + quad_far * QUAD_EXTRA_BYTES
                    + 3.0 * n_nodes * exp_bytes      # L2L read+shift
                    + n_bodies * (dim * 8.0 + exp_bytes)),
        bytes_written=(nf * exp_bytes + n_nodes * exp_bytes
                       + n_bodies * dim * 8.0),
        traversal_steps=walk,
        warp_traversal_steps=walk,
        kernel_launches=(2.0 if nf else 0.0) + (1.0 if built else 0.0),
    )


def target_node_drift(tt: TargetTree, grp_drift: np.ndarray) -> np.ndarray:
    """Max group drift below each target-tree node (bottom-up sweep)."""
    layout = tt.layout
    nd = np.zeros(layout.n_nodes, dtype=FLOAT)
    fl = layout.first_leaf
    nd[fl:fl + grp_drift.shape[0]] = grp_drift
    for level in range(layout.n_levels - 2, -1, -1):
        sl = layout.level_slice(level)
        cl = layout.level_slice(level + 1)
        k = sl.stop - sl.start
        nd[sl] = nd[cl].reshape(k, 2).max(axis=1)
    return nd


def dual_lists_valid(
    dual: DualLists,
    grp_drift: np.ndarray,
    node_drift: np.ndarray,
    *,
    size_factor: float,
) -> bool:
    """Drift-bounded gate for cached dual lists (refit composability).

    The near lists use the grouped gate verbatim.  A far pair stays
    valid while the margin absorbs (a) the source's centre-of-mass
    motion and size growth (``size_factor``, as for grouped lists) and
    (b) the target side: bodies drifting under the cached target box
    both shrink ``dmin`` and effectively grow the box by twice the
    drift, which costs ``2 / (theta * cc_mac)`` against the cell-cell
    threshold.
    """
    if not lists_valid(dual.near, grp_drift, node_drift,
                       size_factor=size_factor):
        return False
    if dual.n_far == 0:
        return True
    margin = float(dual.mac_margin)
    tdrift = target_node_drift(dual.tt, grp_drift)
    tc = dual.theta * dual.cc_mac
    t_factor = 1.0 + (2.0 / tc if tc > 0.0 else np.inf)
    slack = (tdrift[dual.far_t] * t_factor
             + node_drift[dual.far_s] * (1.0 + size_factor))
    return bool(np.all(slack <= margin))
