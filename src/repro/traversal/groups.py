"""Hilbert-contiguous body groups for the grouped force traversal.

A group is a contiguous run of curve-sorted bodies (the BVH's leaf
order; the octree sorts bodies along the same Hilbert curve first), so
its members occupy a compact region of space and share most of their
tree path.  Each group carries its axis-aligned bounding box, which the
conservative multipole acceptance criterion tests instead of the
individual body positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import FLOAT, INDEX


@dataclass(frozen=True)
class BodyGroups:
    """A partition of curve-sorted bodies into contiguous groups."""

    #: Body-range offsets: group ``g`` holds sorted rows
    #: ``offsets[g]:offsets[g+1]``.
    offsets: np.ndarray
    #: Group AABBs over the member positions, ``(n_groups, dim)`` each.
    lo: np.ndarray
    hi: np.ndarray

    @property
    def n_groups(self) -> int:
        return self.offsets.shape[0] - 1

    @property
    def n_bodies(self) -> int:
        return int(self.offsets[-1])

    @property
    def max_group_size(self) -> int:
        return int(np.diff(self.offsets).max(initial=0))

    def members(self, g: int) -> slice:
        """Sorted-row range of group *g*."""
        return slice(int(self.offsets[g]), int(self.offsets[g + 1]))


def make_groups(x_sorted: np.ndarray, group_size: int) -> BodyGroups:
    """Partition curve-sorted bodies into groups of *group_size*.

    The last group may be smaller.  ``group_size=1`` yields one group
    per body with a degenerate AABB (``lo == hi == x``), which makes the
    conservative group MAC coincide with the per-body criterion.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    x_sorted = np.asarray(x_sorted, dtype=FLOAT)
    n, dim = x_sorted.shape
    if n == 0:
        return BodyGroups(
            np.zeros(1, dtype=INDEX),
            np.empty((0, dim), dtype=FLOAT),
            np.empty((0, dim), dtype=FLOAT),
        )
    starts = np.arange(0, n, group_size, dtype=INDEX)
    offsets = np.append(starts, INDEX(n))
    lo = np.minimum.reduceat(x_sorted, starts, axis=0)
    hi = np.maximum.reduceat(x_sorted, starts, axis=0)
    return BodyGroups(offsets, lo, hi)
