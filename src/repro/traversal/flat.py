"""Flattened CSR batch evaluation of cached interaction lists.

The per-group tile kernels of :mod:`repro.traversal.engine` pay a
Python-loop iteration plus a handful of small-array temporaries for
every group.  At production group sizes that loop — not the arithmetic
— dominates *host* wall-clock.  This module trades it for a few large
structure-of-arrays kernels:

* **Flattening** — at list-build time each group's ``(offsets, nodes)``
  CSR rows are expanded into flat ``(row, node)`` index pairs (one per
  body x list entry), so a whole evaluation becomes gather / axpy /
  scatter over arrays with millions of entries instead of thousands of
  tiny tiles.  The expansion is *row-major* (all of one body's sources
  are consecutive), so the scatter back into the acceleration array is
  a contiguous segment reduction.  The expansion is pure indexing; it
  is cached alongside the lists in the structure cache and survives
  refits unchanged (only *indices* are cached — masses and centres of
  mass are gathered from the live
  :class:`~repro.traversal.engine.TreeView` every step).

* **Newton's third law** — direct body-body work (point leaves and,
  for the octree, bucket-leaf bodies) appears in ordered form: group
  ``i``'s list names body ``j`` *and* group ``j``'s list names body
  ``i``.  Each ordered pair occurs at most once (a node appears at most
  once per group list; every body lives in exactly one leaf), so after
  canonicalizing by ``(min, max)`` an unordered pair has multiplicity
  one or two.  Pairs seen from both sides are evaluated once and the
  force scatter-accumulated to *both* bodies with opposite sign —
  halving that share of the near-field inverse-square-root work.
  One-sided pairs (the partner was absorbed into an accepted multipole
  on the other side) keep their original orientation.

* **Scatter determinism** — the target-side reduction uses
  ``np.add.reduceat`` over row-sorted segments and the reaction-side
  scatter uses ``np.bincount``; both accumulate in index order
  deterministically (unlike a parallel ``np.add.at``), so flat
  evaluation is bitwise reproducible run to run.  Their summation
  order differs from the tile kernel's per-group order, so flat matches
  tile only to rounding (~1e-15 relative); the tile mode remains the
  bit-exactness reference against the lockstep kernels.

Kernels stream over fixed-size blocks (:data:`BLOCK` pairs) through
preallocated scratch pools sized to stay cache-resident, so the only
per-pair DRAM traffic in steady state is the int32 index streams;
steady-state steps allocate nothing proportional to the pair count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.physics.multipole import quadrupole_accel
from repro.traversal.engine import InteractionLists, TreeView
from repro.traversal.groups import BodyGroups
from repro.types import FLOAT, INDEX

#: Pairs per kernel block.  Chosen so one block's float scratch
#: (~90 bytes/pair) fits in the last-level cache with room to spare:
#: the per-pair temporaries then never round-trip through DRAM and the
#: only streaming traffic is the index arrays themselves.
BLOCK = 1 << 15


def _idx_dtype(bound: int):
    """Narrowest index dtype covering ``[0, bound)`` — int32 halves the
    streamed bytes per pair, which is the dominant DRAM traffic."""
    return np.int32 if bound <= np.iinfo(np.int32).max else np.int64


@dataclass(frozen=True)
class Segments:
    """Run-length view of a sorted target-index array.

    ``starts[i]`` is the pool position where the run of ``rows[i]``
    begins; runs are maximal, so ``rows`` is strictly increasing and
    ``starts[0] == 0``.  :func:`_segment_add` turns a block of per-pair
    contributions into one ``np.add.reduceat`` over these boundaries.
    """

    starts: np.ndarray
    rows: np.ndarray


def _segments(idx_sorted: np.ndarray) -> Segments:
    if idx_sorted.shape[0] == 0:
        z = np.empty(0, dtype=np.int64)
        return Segments(z, z.copy())
    first = np.empty(idx_sorted.shape[0], dtype=bool)
    first[0] = True
    np.not_equal(idx_sorted[1:], idx_sorted[:-1], out=first[1:])
    starts = np.nonzero(first)[0]
    return Segments(starts, idx_sorted[starts].astype(np.int64))


def _segment_add(acc: np.ndarray, contrib: np.ndarray, p0: int,
                 segs: Segments, sign: float = 1.0) -> None:
    """``acc[row] += sign * contrib`` for the block at pool offset *p0*.

    Block boundaries need not align with segment boundaries: a run
    split across blocks contributes partial sums to the same row from
    each block.  Rows within one block are unique, so the final fancy
    add is well-defined (and, like ``reduceat``, index-ordered).
    """
    b = contrib.shape[0]
    j0 = int(np.searchsorted(segs.starts, p0, side="right")) - 1
    j1 = int(np.searchsorted(segs.starts, p0 + b, side="left"))
    bnd = segs.starts[j0:j1] - p0
    if bnd[0] < 0:
        bnd[0] = 0  # fresh slice-difference array; safe to clamp
    out = np.add.reduceat(contrib, bnd, axis=0)
    if sign >= 0.0:
        acc[segs.rows[j0:j1]] += out
    else:
        acc[segs.rows[j0:j1]] -= out


@dataclass(frozen=True)
class DenseBucket:
    """A batch of groups with similar approx-list lengths, padded to a
    common width ``K`` for one 3-D batched evaluation.

    ``node_mat[i, :]`` holds group ``i``'s accepted nodes padded with a
    sentinel node (zero mass, far-away centre) and ``row_mat[i, :]`` its
    member rows padded with a sentinel row, so the whole bucket runs as
    a handful of ``(chunk, B, K)`` dense kernels — the gemm algebra
    without its per-group Python loop.  ``n_real`` counts the unpadded
    (row, node) slots for the interaction counters.
    """

    node_mat: np.ndarray  # (G_b, K) int
    row_mat: np.ndarray   # (G_b, B) int
    n_real: int


@dataclass
class FlatLists:
    """One epoch's interaction lists, flattened to SoA index arrays.

    Three pair pools, all in sorted-row space and row-major (sorted by
    target row, so the target-side scatter is a segment reduction):

    * node sources ``(a_row, a_node)`` — accepted multipoles (and, when
      n3l is off, direct leaves folded in as monopole nodes);
    * two-sided body pairs ``(s_t, s_s)`` with ``s_t < s_s`` — near
      pairs seen from both sides, evaluated once, scattered to both;
    * one-sided body pairs ``(o_t, o_s)`` — near pairs whose mirror was
      approximated away; original orientation, target side only.

    Only index arrays are cached: masses / centres of mass are gathered
    from the live tree view at evaluation time, so a refit that rewrites
    ``view.com`` / ``view.mass`` needs no flat rebuild.
    """

    a_row: np.ndarray
    a_node: np.ndarray
    #: Positions in the ``a_*`` pool carrying quadrupole terms, or
    #: ``None`` when every entry does (the pool is purely approx).
    a_quad: np.ndarray | None
    a_segs: Segments
    s_t: np.ndarray
    s_s: np.ndarray
    s_segs: Segments
    o_t: np.ndarray
    o_s: np.ndarray
    o_segs: Segments
    #: Ordered near-field body pairs before dedup (self pairs excluded);
    #: ``pairs_naive / pairs_evaluated`` is the n3l dedup ratio.
    pairs_naive: int
    #: True when bucket-leaf (KLASS_EXACT) bodies were folded into the
    #: body pools, letting the caller skip its scalar exact loop.
    includes_exact: bool
    #: Dense-batch form of the node-source pool (monopole trees only):
    #: when set, the ``a_*`` arrays are empty and the node sources run
    #: through :class:`DenseBucket` batches instead of the streaming
    #: gather/scatter kernel.
    a_dense: list | None = None
    _scratch: dict = field(default_factory=dict, repr=False)

    @property
    def n_node_pairs(self) -> int:
        if self.a_dense is not None:
            return sum(b.n_real for b in self.a_dense)
        return int(self.a_row.shape[0])

    @property
    def n_two_sided(self) -> int:
        return int(self.s_t.shape[0])

    @property
    def n_one_sided(self) -> int:
        return int(self.o_t.shape[0])

    @property
    def pairs_evaluated(self) -> int:
        """Deduped near-field pair evaluations per step."""
        return self.n_two_sided + self.n_one_sided

    def buf(self, name: str, shape: tuple, dtype=FLOAT) -> np.ndarray:
        """Named scratch buffer, allocated once and reused across steps."""
        b = self._scratch.get(name)
        if b is None or b.shape != tuple(shape) or b.dtype != dtype:
            b = np.empty(shape, dtype=dtype)
            self._scratch[name] = b
        return b


def _row_major_expand(
    sub_nodes: np.ndarray,
    sub_counts: np.ndarray,
    grow: np.ndarray,
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand a per-group entry subset into row-major flat pairs.

    *sub_nodes* holds the subset's entries concatenated in group order,
    *sub_counts* the per-group subset sizes, *grow* the group of each
    sorted row.  Returns ``(row, pos, rc)`` where ``row[i]`` is the
    target row of flat pair ``i`` (sorted ascending), ``pos[i]`` indexes
    into *sub_nodes*, and ``rc`` is the per-row pair count.  The caller
    gathers ``sub_nodes[pos]`` (and any parallel entry array) itself.
    """
    suboff = np.concatenate(
        ([0], np.cumsum(sub_counts, dtype=np.int64)))
    rc = sub_counts[grow]
    row_ptr = np.concatenate(([0], np.cumsum(rc, dtype=np.int64)))
    total = int(row_ptr[-1])
    if total == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), rc
    row = np.repeat(np.arange(n, dtype=np.int64), rc)
    # pos = subset start of the row's group + offset within the row.
    pos = np.arange(total, dtype=np.int64)
    pos += np.repeat(suboff[grow] - row_ptr[:-1], rc)
    return row, pos, rc


def _dense_buckets(
    anodes: np.ndarray,
    ca: np.ndarray,
    groups: BodyGroups,
    n: int,
    nn: int,
) -> list:
    """Pack per-group approx lists into padded :class:`DenseBucket`\\ s.

    Groups are sorted by list length and cut into buckets whenever the
    pad waste against the bucket's widest list would exceed ~25%, so
    the padded slot count stays within a small factor of the real one.
    Sentinels: node ``nn`` (zero mass, centre placed just outside the
    occupied box so its weight is finite but multiplied away) and row
    ``n`` (accumulates into a discarded extra row).
    """
    ndt = _idx_dtype(nn + 1)
    rdt = _idx_dtype(n + 1)
    go = groups.offsets.astype(np.int64)
    gsz = np.diff(go)
    bmax = int(gsz.max()) if gsz.size else 0
    aoff = np.concatenate(([0], np.cumsum(ca, dtype=np.int64)))
    nz = np.nonzero(ca)[0]
    order = nz[np.argsort(ca[nz], kind="stable")][::-1]
    buckets: list = []
    i = 0
    while i < order.size:
        kmax = int(ca[order[i]])
        j = i + 1
        while j < order.size and int(ca[order[j]]) * 4 >= kmax * 3:
            j += 1
        gids = order[i:j]
        ks = ca[gids]
        # CSR rows -> padded matrix: gather with clipped positions,
        # then overwrite the pad tail with the sentinel node.
        src = aoff[gids][:, None] + np.arange(kmax, dtype=np.int64)
        np.minimum(src, (aoff[gids] + ks - 1)[:, None], out=src)
        node_mat = anodes[src].astype(ndt, copy=False)
        node_mat[np.arange(kmax)[None, :] >= ks[:, None]] = nn
        row_mat = (go[gids][:, None]
                   + np.arange(bmax, dtype=np.int64))
        row_mat[row_mat >= go[gids + 1][:, None]] = n
        n_real = int((ks * gsz[gids]).sum())
        buckets.append(DenseBucket(
            np.ascontiguousarray(node_mat),
            np.ascontiguousarray(row_mat.astype(rdt)), n_real))
        i = j
    return buckets


def build_flat_lists(
    view: TreeView,
    lists: InteractionLists,
    groups: BodyGroups,
    *,
    body_ids: np.ndarray | None = None,
    exact_bodies: Callable[[int], np.ndarray] | None = None,
    n3l: bool = True,
) -> FlatLists:
    """Flatten *lists* and canonicalize the near field, once per epoch.

    ``body_ids`` maps sorted rows into ``view.point_body``'s id space
    (identity when omitted).  Ids outside the local sorted range —
    the distributed runtime's foreign-source sentinel is negative —
    disable n3l: every entry then stays a node source, which is the
    correct one-sided semantics for halo tiles.  ``exact_bodies`` is a
    ``node -> body ids`` callback (octree bucket leaves); when given
    under n3l, bucket bodies are folded into the body pools and
    :attr:`FlatLists.includes_exact` is set.
    """
    n = groups.n_bodies
    ng = lists.n_groups
    nn = view.com.shape[0]
    rdt = _idx_dtype(max(n, 1))
    ndt = _idx_dtype(max(nn, 1))
    empty = np.empty(0, dtype=rdt)
    no_segs = _segments(np.empty(0, dtype=np.int64))

    counts = np.diff(lists.offsets).astype(np.int64)
    gsz = np.diff(groups.offsets).astype(np.int64)
    grow = np.repeat(np.arange(ng, dtype=np.int64), gsz)
    off = lists.offsets.astype(np.int64)
    apref = np.concatenate(
        ([0], np.cumsum(lists.approx, dtype=np.int64)))
    ca = apref[off[1:]] - apref[off[:-1]]  # approx entries per group

    ids = None if body_ids is None else np.asarray(body_ids)
    foreign = ids is not None and (ids.size == 0 or bool((ids < 0).any()))
    n3l = n3l and not foreign

    if not n3l:
        # Every entry stays a node source (direct leaves are monopoles).
        row, pos, rc = _row_major_expand(lists.nodes, counts, grow, n)
        a_node = lists.nodes[pos].astype(ndt)
        if int(ca.sum()) == counts.sum():
            a_quad = None
        else:
            a_quad = np.nonzero(lists.approx[pos])[0]
        segs = Segments(
            np.concatenate(([0], np.cumsum(rc, dtype=np.int64)))[
                :-1][rc > 0],
            np.nonzero(rc > 0)[0].astype(np.int64))
        return FlatLists(
            row.astype(rdt), a_node, a_quad, segs,
            empty, empty, no_segs, empty, empty, no_segs,
            pairs_naive=0, includes_exact=False,
        )

    # Sorted row of each point-leaf id (identity unless permuted).
    row_of = None
    if ids is not None:
        row_of = np.empty(n, dtype=np.int64)
        row_of[ids] = np.arange(n, dtype=np.int64)

    approx = lists.approx
    anodes = lists.nodes[approx]
    dnodes = lists.nodes[~approx]

    # ---- approx pool ------------------------------------------------
    # Monopole trees take the dense-batch form: the whole pool becomes
    # a few padded (groups, B, K) kernels sharing each group's node
    # list across its rows, which keeps the per-pair arithmetic in
    # BLAS.  With quadrupoles the per-pair displacement vectors are
    # needed anyway, so the row-major streaming form is used instead.
    a_dense = None
    a_row = empty
    a_node = np.empty(0, dtype=ndt)
    a_segs = no_segs
    if view.quad is None:
        a_dense = _dense_buckets(anodes, ca, groups, n, nn)
    else:
        a_row64, apos, rca = _row_major_expand(anodes, ca, grow, n)
        a_row = a_row64.astype(rdt)
        a_node = anodes[apos].astype(ndt)
        a_starts = np.concatenate(
            ([0], np.cumsum(rca, dtype=np.int64)))[:-1]
        a_segs = Segments(a_starts[rca > 0],
                          np.nonzero(rca > 0)[0].astype(np.int64))
        del a_row64, apos

    # ---- direct pairs (ordered, target-major) -----------------------
    t, dpos, _ = _row_major_expand(dnodes, counts - ca, grow, n)
    s = view.point_body[dnodes[dpos]].astype(np.int64)
    if row_of is not None:
        s = row_of[s]
    del dpos

    if exact_bodies is not None and lists.exact_groups.size:
        go = groups.offsets
        ex_t: list[np.ndarray] = [t]
        ex_s: list[np.ndarray] = [s]
        for g, node in zip(lists.exact_groups, lists.exact_nodes):
            bodies = np.asarray(exact_bodies(int(node)), dtype=np.int64)
            if bodies.size == 0:
                continue
            rows = np.arange(int(go[g]), int(go[g + 1]), dtype=np.int64)
            srows = bodies if row_of is None else row_of[bodies]
            ex_t.append(np.repeat(rows, srows.size))
            ex_s.append(np.tile(srows, rows.size))
        t = np.concatenate(ex_t)
        s = np.concatenate(ex_s)
    includes_exact = exact_bodies is not None

    keep = t != s
    t, s = t[keep], s[keep]
    pairs_naive = int(t.size)

    if t.size:
        # Each ordered pair occurs at most once, so the canonical key
        # (min, max) has multiplicity 1 (one-sided) or 2 (two-sided).
        kdt = _idx_dtype(n * n)  # n is a Python int: n*n is exact
        lo = np.minimum(t, s)
        hi = np.maximum(t, s)
        key = (lo * np.int64(n) + hi).astype(kdt, copy=False)
        order = np.argsort(key, kind="stable")
        k = key[order]
        first = np.empty(k.size, dtype=bool)
        first[0] = True
        np.not_equal(k[1:], k[:-1], out=first[1:])
        dup_next = np.zeros(k.size, dtype=bool)
        np.equal(k[1:], k[:-1], out=dup_next[:-1])
        two = order[first & dup_next]
        one = order[first & ~dup_next]
        # Two-sided pool: keyed order is (lo, hi)-sorted, so s_t = lo
        # is already ascending.  One-sided pairs keep their original
        # orientation; re-sort them by target for the segment scatter.
        s_t, s_s = lo[two], hi[two]
        o_t, o_s = t[one], s[one]
        oorder = np.argsort(o_t.astype(rdt, copy=False), kind="stable")
        o_t, o_s = o_t[oorder], o_s[oorder]
    else:
        s_t = s_s = o_t = o_s = np.empty(0, dtype=np.int64)

    return FlatLists(
        a_row, a_node, None, a_segs,
        s_t.astype(rdt), s_s.astype(rdt), _segments(s_t),
        o_t.astype(rdt), o_s.astype(rdt), _segments(o_t),
        pairs_naive=pairs_naive, includes_exact=includes_exact,
        a_dense=a_dense,
    )


def evaluate_flat(
    view: TreeView,
    flat: FlatLists,
    x_sorted: np.ndarray,
    *,
    G: float = 1.0,
    eps2: float = 0.0,
    m_sorted: np.ndarray | None = None,
) -> tuple[np.ndarray, dict]:
    """Evaluate flattened lists at current positions (sorted order).

    Three batch kernels — node sources, two-sided body pairs, one-sided
    body pairs — each streaming :data:`BLOCK` pairs at a time through
    *flat*'s scratch pools.  ``m_sorted`` (body masses in sorted order)
    is required whenever the body pools are non-empty.  Returns the
    accelerations plus the eval-stats dict of
    :func:`~repro.traversal.engine.evaluate_interaction_lists`, extended
    with ``flat_launches`` / ``near_pairs_naive`` /
    ``near_pairs_evaluated``.
    """
    x_sorted = np.asarray(x_sorted, dtype=FLOAT)
    n, dim = x_sorted.shape
    acc = np.zeros((n, dim), dtype=FLOAT)
    n_two = flat.n_two_sided
    n_one = flat.n_one_sided
    if m_sorted is None and (n_two or n_one):
        raise ValueError(
            "flat lists carry body pairs; evaluate_flat needs m_sorted")

    com, mass, quad = view.com, view.mass, view.quad
    softened = eps2 > 0.0
    launches = 0
    nonzero = 0
    quad_terms = 0

    # G folded into the gathered masses: one multiply per *node/body*,
    # not per pair.
    gm = flat.buf("gm", (mass.shape[0],))
    np.multiply(mass, G, out=gm)
    gms = None
    if m_sorted is not None and (n_two or n_one):
        gms = flat.buf("gms", (n,))
        np.multiply(np.asarray(m_sorted, dtype=FLOAT), G, out=gms)

    d = flat.buf("d", (BLOCK, dim))
    d2 = flat.buf("d2", (BLOCK, dim))
    xb = flat.buf("x", (BLOCK, dim))
    r2 = flat.buf("r2", (BLOCK,))
    w = flat.buf("w", (BLOCK,))
    mb = flat.buf("m", (BLOCK,))
    mb2 = flat.buf("m2", (BLOCK,))
    tmp = flat.buf("tmp", (BLOCK,))
    mask = flat.buf("mask", (BLOCK,), dtype=bool)

    # ---- node sources, dense batches (monopole trees) ---------------
    na = flat.n_node_pairs
    if flat.a_dense:
        nn = com.shape[0]
        com_ext = flat.buf("com_ext", (nn + 1, dim))
        com_ext[:nn] = com
        # Pad-node centre: outside the occupied box so r2 >= 1 for
        # every row, but of the same magnitude as the data — extreme
        # values would push ``pow`` onto its (~30x slower) slow path.
        # The pad's zero mass is what actually cancels its weight.
        lo = x_sorted.min(axis=0)
        hi = x_sorted.max(axis=0)
        com_ext[nn] = hi + (hi - lo) + 1.0
        gme = flat.buf("gm_ext", (nn + 1,))
        gme[:nn] = gm
        gme[nn] = 0.0
        x_ext = flat.buf("x_ext", (n + 1, dim))
        x_ext[:n] = x_sorted
        x_ext[n] = 0.0
        acc_ext = flat.buf("acc_ext", (n + 1, dim))
        acc_ext[:] = 0.0
        for bucket in flat.a_dense:
            launches += 1
            gb, K = bucket.node_mat.shape
            B = bucket.row_mat.shape[1]
            gc = max(1, (1 << 18) // (B * K))  # ~2 MB chunk scratch
            gc = min(gc, gb)
            P = flat.buf(f"dP{B}x{K}", (gc, B, K))
            C = flat.buf(f"dC{K}", (gc, K, dim))
            MN = flat.buf(f"dM{K}", (gc, K))
            c2 = flat.buf(f"dc2{K}", (gc, K))
            X = flat.buf(f"dX{B}", (gc, B, dim))
            F = flat.buf(f"dF{B}", (gc, B, dim))
            x2 = flat.buf(f"dx2{B}", (gc, B))
            msk = None
            if not softened:
                msk = flat.buf(f"dK{B}x{K}", (gc, B, K), dtype=bool)
            for c0 in range(0, gb, gc):
                c1 = min(gb, c0 + gc)
                g = c1 - c0
                nm = bucket.node_mat[c0:c1]
                rm = bucket.row_mat[c0:c1]
                Cg, Pg, Xg, Fg = C[:g], P[:g], X[:g], F[:g]
                np.take(com_ext, nm, axis=0, out=Cg)
                np.take(gme, nm, out=MN[:g])
                np.einsum("gkj,gkj->gk", Cg, Cg, out=c2[:g])
                np.take(x_ext, rm, axis=0, out=Xg)
                np.einsum("gbj,gbj->gb", Xg, Xg, out=x2[:g])
                x2[:g] += eps2
                np.matmul(Xg, Cg.transpose(0, 2, 1), out=Pg)
                Pg *= -2.0
                Pg += x2[:g, :, None]
                Pg += c2[:g, None, :]
                # max(r2, 0) + eps2 == max(r2 + eps2, eps2): clamp the
                # rare negative cancellation like the gemm kernel does.
                np.maximum(Pg, eps2, out=Pg)
                with np.errstate(divide="ignore", invalid="ignore"):
                    if msk is not None:
                        np.less_equal(Pg, 0.0, out=msk[:g])
                    np.power(Pg, -1.5, out=Pg)
                Pg *= MN[:g, None, :]
                if msk is not None:
                    np.copyto(Pg, 0.0, where=msk[:g])
                    nonzero += int(np.count_nonzero(Pg))
                np.matmul(Pg, Cg, out=Fg)
                np.einsum("gbk->gb", Pg, out=x2[:g])  # w row-sums
                Xg *= x2[:g, :, None]
                Fg -= Xg
                acc_ext[rm] += Fg
        if softened:
            nonzero += na
        acc += acc_ext[:n]

    # ---- node sources: acc[row] += G m_node w (com - x) -------------
    n_stream = int(flat.a_row.shape[0])
    if n_stream:
        launches += 1
        qi = flat.a_quad  # None: every entry carries a quadrupole
        for s0 in range(0, n_stream, BLOCK):
            s1 = min(n_stream, s0 + BLOCK)
            b = s1 - s0
            rows = flat.a_row[s0:s1]
            nodes = flat.a_node[s0:s1]
            db, xbb, r2b, wb = d[:b], xb[:b], r2[:b], w[:b]
            np.take(com, nodes, axis=0, out=db)
            np.take(x_sorted, rows, axis=0, out=xbb)
            db -= xbb
            np.einsum("ij,ij->i", db, db, out=r2b)
            r2b += eps2
            np.take(gm, nodes, out=mb[:b])
            with np.errstate(divide="ignore", invalid="ignore"):
                np.power(r2b, -1.5, out=wb)
            wb *= mb[:b]
            if softened:
                nonzero += b
            else:
                np.less_equal(r2b, 0.0, out=mask[:b])
                np.copyto(wb, 0.0, where=mask[:b])
                nonzero += b - int(np.count_nonzero(mask[:b]))
            qa = None
            qsel: slice | np.ndarray = slice(None)
            if quad is not None:
                if qi is None:
                    qa = quadrupole_accel(db, r2b, quad[nodes], G)
                    quad_terms += b
                else:
                    j0, j1 = np.searchsorted(qi, [s0, s1])
                    if j1 > j0:
                        qsel = qi[j0:j1] - s0
                        qa = quadrupole_accel(
                            db[qsel], r2b[qsel], quad[nodes[qsel]], G)
                        quad_terms += int(j1 - j0)
            db *= wb[:, None]
            if qa is not None:
                db[qsel] += qa
            _segment_add(acc, db, s0, flat.a_segs)

    # ---- two-sided pairs: one evaluation, both bodies ---------------
    if n_two:
        launches += 1
        for s0 in range(0, n_two, BLOCK):
            s1 = min(n_two, s0 + BLOCK)
            b = s1 - s0
            ti = flat.s_t[s0:s1]
            si = flat.s_s[s0:s1]
            db, xbb, r2b, wb = d[:b], xb[:b], r2[:b], w[:b]
            np.take(x_sorted, si, axis=0, out=db)
            np.take(x_sorted, ti, axis=0, out=xbb)
            db -= xbb
            np.einsum("ij,ij->i", db, db, out=r2b)
            r2b += eps2
            with np.errstate(divide="ignore", invalid="ignore"):
                np.power(r2b, -1.5, out=wb)  # mass-free kernel
            if softened:
                nonzero += 2 * b
            else:
                np.less_equal(r2b, 0.0, out=mask[:b])
                np.copyto(wb, 0.0, where=mask[:b])
                nonzero += 2 * (b - int(np.count_nonzero(mask[:b])))
            db *= wb[:, None]
            np.take(gms, ti, out=mb[:b])   # G m_t
            np.take(gms, si, out=mb2[:b])  # G m_s
            np.multiply(db, mb2[:b, None], out=d2[:b])
            _segment_add(acc, d2[:b], s0, flat.s_segs)
            np.multiply(db, mb[:b, None], out=d2[:b])
            for j in range(dim):
                np.copyto(tmp[:b], d2[:b, j])
                acc[:, j] -= np.bincount(si, weights=tmp[:b],
                                         minlength=n)

    # ---- one-sided pairs: target side only --------------------------
    if n_one:
        launches += 1
        for s0 in range(0, n_one, BLOCK):
            s1 = min(n_one, s0 + BLOCK)
            b = s1 - s0
            ti = flat.o_t[s0:s1]
            si = flat.o_s[s0:s1]
            db, xbb, r2b, wb = d[:b], xb[:b], r2[:b], w[:b]
            np.take(x_sorted, si, axis=0, out=db)
            np.take(x_sorted, ti, axis=0, out=xbb)
            db -= xbb
            np.einsum("ij,ij->i", db, db, out=r2b)
            r2b += eps2
            np.take(gms, si, out=mb[:b])
            with np.errstate(divide="ignore", invalid="ignore"):
                np.power(r2b, -1.5, out=wb)
            wb *= mb[:b]
            if softened:
                nonzero += b
            else:
                np.less_equal(r2b, 0.0, out=mask[:b])
                np.copyto(wb, 0.0, where=mask[:b])
                nonzero += b - int(np.count_nonzero(mask[:b]))
            db *= wb[:, None]
            _segment_add(acc, db, s0, flat.o_segs)

    return acc, {
        "pairs": na + n_two + n_one,
        "interactions": nonzero,
        "quad_terms": quad_terms,
        "flat_launches": launches,
        "near_pairs_naive": flat.pairs_naive,
        "near_pairs_evaluated": n_two + n_one,
    }
