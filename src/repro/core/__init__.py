"""The simulation engine: paper Algorithm 2 / Algorithm 6 time loops.

A :class:`~repro.core.simulation.Simulation` binds a
:class:`~repro.physics.bodies.BodySystem` to one of the four force
algorithms (All-Pairs, All-Pairs-Col, Concurrent Octree, Hilbert BVH)
and advances it with Störmer-Verlet integration, attributing operation
counts and wall-clock time to the paper's pipeline steps
(CALCULATEBOUNDINGBOX, HILBERTSORT, BUILDTREE, CALCULATEMULTIPOLES,
CALCULATEFORCE, UPDATEPOSITION).
"""

from repro.core.config import SimulationConfig
from repro.core.algorithms import (
    ForceAlgorithm,
    get_algorithm,
    list_algorithms,
    ALGORITHMS,
)
from repro.core.simulation import Simulation, StepReport

__all__ = [
    "SimulationConfig",
    "ForceAlgorithm",
    "get_algorithm",
    "list_algorithms",
    "ALGORITHMS",
    "Simulation",
    "StepReport",
]
