"""Mid-epoch runtime-state capture/restore for checkpoints.

A checkpoint used to hold only ``(x, v, config)`` — enough for a
bit-exact resume when every step rebuilds its tree from scratch,
because the acceleration is then a pure function of the restored state.
It is **not** enough between list-build epochs: under
``tree_reuse_steps > 1`` or ``tree_update="refit"`` the next force
evaluation reads cached structures, interaction lists, drift-budget
counters, and adaptive MAC margins that were derived from *earlier*
positions.  A resume that silently rebuilt them from the restored
positions would change summation order — deterministic, but no longer
the original trajectory.

This module closes that gap.  :func:`capture_runtime_state` extracts
the minimal replayable state; :func:`apply_runtime_state` (invoked by
``Simulation(..., runtime_state=...)`` before the integrator's
construction-time force evaluation) reconstructs the caches by
re-running the *identical* deterministic build code on the captured
positions:

* **plain tree reuse** — the epoch build positions (``x_epoch``) and
  the entry age.  Restore replays one force evaluation at ``x_epoch``
  into a fresh cache, reproducing the structure, the interaction
  lists, and the flat expansions bit for bit, then rewinds the age by
  one so the construction-time evaluation re-ages it to the captured
  value.
* **tree maintenance** (``refit``) — the epoch positions ``x_ref``,
  the previous-step positions (drift sensing), the drift-budget
  scalars and event counts, and per cached list its build snapshot and
  MAC margin.  Restore rebuilds the epoch structure at ``x_ref``,
  refits it to each list's snapshot, and re-runs the list build with
  the captured margin — byte-identical lists, so the validity gate
  resumes exactly where it left off.  (``tree_update="auto"`` restores
  the same state but its cost-learning policy restarts, so the
  rebuild-vs-refit choices — not correctness — may differ.)
* **distributed** (``ranks > 1``, rebuild mode) — the domain
  decomposition (order/offsets/key splits), the rebalance cadence
  phase, and the work-feedback weights.  The runtime's first
  evaluation after restore replays the captured decomposition verbatim
  without advancing the cadence, so split points and re-bin timing
  match the original run.  Maintained distributed mode resumes
  deterministically but re-derives its epoch (documented divergence
  within the accuracy class).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.aabb import compute_bounding_box
from repro.physics.bodies import BodySystem
from repro.stdpar.context import ExecutionContext
from repro.types import FLOAT, INDEX

#: Version tag of the runtime-state payload inside checkpoint headers.
RUNTIME_STATE_VERSION = 1

_REUSE_KEYS = ("octree", "bvh", "octree-2stage")


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
def capture_runtime_state(sim) -> dict | None:
    """Replayable cross-step state of *sim*, or None when stateless."""
    state: dict = {"version": RUNTIME_STATE_VERSION}
    cache = sim._tree_cache
    config = sim.config

    if config.tree_reuse_steps > 1:
        for key in _REUSE_KEYS:
            entry = cache.get(key)
            if entry is not None and "x_epoch" in entry:
                state["reuse"] = {
                    "key": key,
                    "age": int(entry["age"]),
                    "x_epoch": np.asarray(entry["x_epoch"], dtype=FLOAT),
                }
                break

    maint = cache.get("_maintainer")
    if maint is not None and maint._x_ref is not None:
        lists = []
        for key, (cached_lists, snap_x) in maint._list_state.items():
            cached = maint.entry.get(key)
            if cached is None or cached.get("lists") is not cached_lists:
                continue  # dropped after its last snapshot: nothing live
            margin = (float(cached["dual"].mac_margin)
                      if key[0] == "dlists"
                      else float(cached["lists"].mac_margin))
            lists.append({
                "key": list(key),
                "margin": margin,
                "x": np.asarray(snap_x, dtype=FLOAT),
            })
        state["maint"] = {
            "kind": "bvh" if maint._bvh is not None else "octree",
            "x_ref": np.asarray(maint._x_ref, dtype=FLOAT),
            "x_prev": (None if maint._x_prev is None
                       else np.asarray(maint._x_prev, dtype=FLOAT)),
            "step_drift": float(maint._step_drift),
            "budget_abs": float(maint._budget_abs),
            "counts": {k: int(v) for k, v in maint.counts.items()},
            "lists": lists,
        }

    dist = sim.distributed
    if (dist is not None and config.tree_update == "rebuild"
            and dist._decomp is not None):
        d = dist._decomp
        state["dist"] = {
            "calls": int(dist.balancer._calls),
            "mode": d.mode,
            "order": np.asarray(d.order),
            "offsets": np.asarray(d.offsets),
            "key_splits": np.asarray(d.key_splits),
            "weights": (None if dist.balancer.weights is None
                        else np.asarray(dist.balancer.weights, dtype=FLOAT)),
            "prev_rank_of": (None if dist._prev_rank_of is None
                             else np.asarray(dist._prev_rank_of)),
        }

    return state if len(state) > 1 else None


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def apply_runtime_state(sim, state: dict) -> None:
    """Reconstruct *sim*'s caches from a captured state.

    Runs inside ``Simulation.__init__`` after the distributed runtime
    exists and **before** the integrator's construction-time force
    evaluation, which therefore sees exactly the caches the suspended
    simulation had.  Rebuild work is charged to a scratch context — the
    resumed run's own accounting starts clean.
    """
    version = state.get("version")
    if version != RUNTIME_STATE_VERSION:
        raise ValueError(
            f"unsupported runtime-state version {version!r} "
            f"(expected {RUNTIME_STATE_VERSION})"
        )
    scratch = ExecutionContext(
        sim.ctx.device, backend=sim.ctx.backend, toolchain=sim.ctx.toolchain,
    )
    if "reuse" in state:
        _restore_reuse_entry(sim, state["reuse"], scratch)
    if "maint" in state:
        _restore_maintainer(sim, state["maint"], scratch)
    if "dist" in state and sim.distributed is not None:
        _restore_distributed(sim.distributed, state["dist"])


def _restore_reuse_entry(sim, reuse: dict, scratch) -> None:
    """Replay the epoch force evaluation at ``x_epoch`` (bit-exact)."""
    from repro.core.algorithms import get_algorithm

    x_epoch = np.asarray(reuse["x_epoch"], dtype=FLOAT)
    epoch_system = BodySystem(
        x_epoch.copy(), np.zeros_like(x_epoch),
        np.array(sim.system.m, copy=True),
    )
    tmp: dict = {}
    get_algorithm(sim.config.algorithm).accelerations(
        epoch_system, sim.config, scratch, cache=tmp
    )
    entry = tmp.get(reuse["key"])
    if entry is None:  # pragma: no cover - defensive
        return
    # The construction-time evaluation of the resumed simulation is one
    # extra pass the original timeline never ran; rewinding the age by
    # one makes it re-age the entry to the captured value, so every
    # subsequent rebuild falls on the original step.
    entry["age"] = max(int(reuse["age"]) - 1, 0)
    sim._tree_cache[reuse["key"]] = entry


def _restore_maintainer(sim, ms: dict, scratch) -> None:
    from repro.maintenance.maintainer import TreeMaintainer

    config = sim.config
    maint = TreeMaintainer(config, sim.ctx)
    x_ref = np.asarray(ms["x_ref"], dtype=FLOAT)
    dim = x_ref.shape[1]
    m = np.array(sim.system.m, copy=True)

    if ms["kind"] == "bvh":
        from repro.bvh.build import (
            assemble_bvh,
            default_sort_bits,
            hilbert_sort_permutation,
        )

        bits = config.bits if config.bits is not None else default_sort_bits(dim)
        box = compute_bounding_box(x_ref)
        perm = hilbert_sort_permutation(
            x_ref, box, bits=bits, ctx=scratch, curve=config.curve
        )
        maint._bvh = assemble_bvh(x_ref, m, perm, box, ctx=scratch,
                                  order=config.multipole_order)
    else:
        from repro.bvh.build import default_sort_bits

        pool = _build_epoch_pool(sim, x_ref, scratch)
        maint._pool = pool
        keys = maint.keycache.keys(x_ref, pool.box,
                                   bits=default_sort_bits(dim),
                                   curve="hilbert", ctx=scratch)
        maint._order = np.argsort(keys, kind="stable")

    maint._x_ref = x_ref.copy()
    maint._x_prev = (None if ms["x_prev"] is None
                     else np.asarray(ms["x_prev"], dtype=FLOAT).copy())
    maint._step_drift = float(ms["step_drift"])
    maint._budget_abs = float(ms["budget_abs"])
    maint.counts.update({k: int(v) for k, v in ms["counts"].items()})
    maint._update_margin()
    for item in ms["lists"]:
        _warm_cached_lists(sim, maint, item, m, scratch)
    sim._tree_cache["_maintainer"] = maint


def _build_epoch_pool(sim, x_ref: np.ndarray, scratch):
    """The octree epoch structure, via the algorithm's own builder."""
    config = sim.config
    box = compute_bounding_box(x_ref)
    if config.algorithm == "octree-2stage":
        from repro.octree.build_twostage import build_octree_twostage

        return build_octree_twostage(x_ref, bits=config.bits, box=box,
                                     ctx=scratch)
    if scratch.backend == "reference":
        from repro.octree.build_concurrent import build_octree_concurrent

        return build_octree_concurrent(x_ref, bits=config.bits, box=box,
                                       ctx=scratch)
    from repro.octree.build_vectorized import build_octree_vectorized

    return build_octree_vectorized(x_ref, bits=config.bits, box=box,
                                   ctx=scratch)


def _decode_list_key(raw: list) -> tuple:
    if raw[0] == "dlists":
        return ("dlists", float(raw[1]), int(raw[2]), float(raw[3]),
                int(raw[4]))
    return ("ilists", float(raw[1]), int(raw[2]))


def _warm_cached_lists(sim, maint, item: dict, m: np.ndarray, scratch) -> None:
    """Re-run the list build at the captured snapshot and margin.

    The grouped/dual force entry points are invoked verbatim on the
    epoch structure refit to the snapshot positions, so the lists (and
    their flat/self-pair precomputes) come out of the same code path —
    and therefore the same bytes — as the originals.  The evaluation
    result is discarded; the work is charged to the scratch context.
    """
    key = _decode_list_key(item["key"])
    snap_x = np.asarray(item["x"], dtype=FLOAT)
    margin = float(item["margin"])
    config = sim.config
    common = dict(ctx=scratch, simt_width=config.simt_width,
                  cache=maint.entry, eval_mode=config.eval_mode,
                  mac_margin=margin)

    if maint._bvh is not None:
        from repro.bvh.build import refit_bvh
        from repro.bvh.force import (
            bvh_accelerations_dual,
            bvh_accelerations_grouped,
        )

        geom = refit_bvh(maint._bvh, snap_x, ctx=scratch)
        if key[0] == "dlists":
            bvh_accelerations_dual(
                geom, config.gravity, theta=key[1], group_size=key[2],
                cc_mac=key[3], expansion_order=key[4], **common)
        else:
            bvh_accelerations_grouped(
                geom, config.gravity, theta=key[1], group_size=key[2],
                **common)
    else:
        from repro.octree.force import (
            octree_accelerations_dual,
            octree_accelerations_grouped,
        )
        from repro.octree.multipoles import compute_multipoles_vectorized

        # The octree's structure is static across an epoch but the
        # grouped MAC reads centres of mass, which the pipeline
        # refreshes at current positions every step — replay that.
        compute_multipoles_vectorized(maint._pool, snap_x, m, scratch,
                                      order=config.multipole_order)
        if key[0] == "dlists":
            octree_accelerations_dual(
                maint._pool, snap_x, m, config.gravity,
                theta=key[1], group_size=key[2],
                cc_mac=key[3], expansion_order=key[4], **common)
        else:
            octree_accelerations_grouped(
                maint._pool, snap_x, m, config.gravity,
                theta=key[1], group_size=key[2], **common)

    cached = maint.entry.get(key)
    if cached is not None:
        maint._list_state[key] = (cached["lists"], snap_x.copy())


def _restore_distributed(runtime, ds: dict) -> None:
    from repro.distributed.partition import DomainDecomposition

    decomp = DomainDecomposition(
        runtime.n_ranks,
        np.asarray(ds["order"]).astype(INDEX),
        np.asarray(ds["offsets"]).astype(INDEX),
        np.asarray(ds["key_splits"], dtype=np.uint64),
        str(ds["mode"]),
    )
    runtime._decomp = decomp
    runtime._prev_rank_of = (
        None if ds["prev_rank_of"] is None
        else np.asarray(ds["prev_rank_of"]).astype(INDEX)
    )
    runtime.balancer._calls = int(ds["calls"])
    w = ds.get("weights")
    runtime.balancer.weights = (
        None if w is None else np.asarray(w, dtype=FLOAT)
    )
    # The next evaluation (the integrator's construction-time pass,
    # which replays the suspended step's evaluation) must use this
    # decomposition verbatim without advancing the rebalance cadence.
    runtime._resume_replay = True
