"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.physics.gravity import GravityParams

#: Algorithm identifiers: the paper's four evaluated algorithms plus
#: the two-stage comparator (Thüring et al. [22], the solver Section
#: V-A validates against).
ALGORITHM_NAMES = ("all-pairs", "all-pairs-col", "octree", "bvh", "octree-2stage")

#: Tree-maintenance policies (repro.maintenance): rebuild every step
#: (the paper's pipeline), refit the existing tree while the Hilbert
#: order stays valid, or let the cost model pick per step.
TREE_UPDATE_MODES = ("rebuild", "refit", "auto")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that parameterizes one run.

    Defaults mirror the paper's experimental setup (Section V-A):
    double precision throughout, ``theta = 0.5``.
    """

    algorithm: str = "octree"
    #: Barnes-Hut opening angle (distance threshold).  Note the octree
    #: and BVH interpret it differently (end of paper Section IV-B).
    theta: float = 0.5
    #: Time step for Störmer-Verlet integration.
    dt: float = 1e-3
    gravity: GravityParams = field(default_factory=GravityParams)
    #: Maximum tree refinement depth / Hilbert grid bits (None = dtype max).
    bits: int | None = None
    #: Space-filling curve for the BVH sort ('hilbert' per the paper;
    #: 'morton' enables the ordering ablation).
    curve: str = "hilbert"
    #: Multipole expansion order: 1 = monopole (the paper's exposition),
    #: 2 = + traceless quadrupoles ("the algorithms described here
    #: extend to multipoles").  Order 2 is 3-D only.
    multipole_order: int = 1
    #: Rebuild the tree only every k-th timestep, reusing the structure
    #: (octree: leaf assignment; BVH: Hilbert order) in between while
    #: recomputing moments from current positions each step — the
    #: amortization of Iwasawa et al. [30] that the paper's related work
    #: notes "can be applied to any Barnes-Hut implementation".  1 =
    #: rebuild every step (the paper's configuration).
    tree_reuse_steps: int = 1
    #: Tree maintenance across timesteps (:mod:`repro.maintenance`):
    #: ``"rebuild"`` rebuilds from scratch every step (the paper's
    #: pipeline, the default); ``"refit"`` keeps the sort permutation /
    #: leaf assignment and refits geometry + multipoles in place while
    #: key disorder and body drift stay below bounds; ``"auto"``
    #: additionally asks the machine cost model whether the refit or the
    #: rebuild is cheaper this step.  Supersedes ``tree_reuse_steps``
    #: (the two must not be combined).
    tree_update: str = "rebuild"
    #: Maximum body displacement since the last full build, as a
    #: fraction of the root cube side, before a refit is no longer
    #: allowed.  Caps the drift-bounded MAC margin: cached grouped
    #: interaction lists get an adaptive opening-radius inflation sized
    #: to the observed per-step drift, never above this budget, and the
    #: distributed LET plans are built with the full budget so they
    #: survive every refit step of an epoch.
    drift_budget: float = 0.01
    #: Fraction of bodies out of Hilbert order (running-max displaced
    #: measure) above which ``tree_update="refit"`` falls back to a full
    #: rebuild; ``"auto"`` derives its own cap from measured costs.
    refit_disorder_threshold: float = 0.1
    #: Force-traversal strategy for the tree algorithms: ``"lockstep"``
    #: walks the tree once per body (paper Fig. 3); ``"grouped"`` walks
    #: once per Hilbert-contiguous body group with a conservative group
    #: MAC, evaluates the emitted interaction lists as dense tiles, and
    #: reuses the lists alongside the ``tree_reuse_steps`` cache;
    #: ``"dual"`` additionally organizes the groups into a target tree
    #: and retires well-separated cell-cell pairs once via
    #: multipole-to-local transfers plus an L2L/L2P downsweep
    #: (:mod:`repro.traversal.dual`), deferring only the near field to
    #: the grouped tile kernels.
    traversal: str = "lockstep"
    #: Bodies per group for ``traversal="grouped"``/``"dual"``.
    #: ``group_size=1`` reproduces the lockstep walk bit for bit (at
    #: monopole order, grouped traversal).
    group_size: int = 32
    #: Tile kernel of the grouped / dual near field: ``"tile"`` (dense
    #: per-group tiles, bit-compatible with the lockstep kernels),
    #: ``"gemm"`` (per-group BLAS), ``"flat"`` (flattened SoA batch
    #: kernels with Newton's-third-law near-field dedup —
    #: :mod:`repro.traversal.flat`), or ``"auto"`` (default: tile for
    #: one-body groups, whose contract is bit-exactness; flat for
    #: multi-body groups when the structure cache can amortize its
    #: per-epoch index expansion — always the case inside a
    #: :class:`Simulation` — and gemm for uncached one-shot calls).
    eval_mode: str = "auto"
    #: Dual traversal only: target-side opening multiplier of the
    #: symmetric cell-cell MAC.  A pair is retired far-field when the
    #: source passes the conservative MAC *and* the target box satisfies
    #: ``size_t < theta * cc_mac * dmin``; larger values retire more
    #: pairs per M2L at more Taylor-truncation error, ``0`` disables the
    #: cell-cell branch entirely (bit-identical to ``"grouped"``).
    cc_mac: float = 1.5
    #: Dual traversal only: order of the local (Taylor) expansion the
    #: downsweep carries — 0 = cell-centre force only, 1 = + Jacobian,
    #: 2 = + kernel third derivatives (default; keeps the truncation
    #: error inside the grouped envelope at the default ``cc_mac``).
    expansion_order: int = 2
    #: SIMT width used for the divergence statistics of the lockstep
    #: force kernels (matches the warp width of the modeled GPU).
    simt_width: int = 32
    #: Simulated ranks.  ``1`` (default) runs the ordinary single-rank
    #: kernels untouched; ``K > 1`` routes force evaluation through
    #: :mod:`repro.distributed`: Hilbert-range domain decomposition,
    #: per-rank local trees, LET halo exchange over the modeled fabric.
    ranks: int = 1
    #: Split-point policy: ``"static"`` = equal body counts,
    #: ``"weighted"`` = equal counter-fed per-body work (Becciani-style).
    decomposition: str = "static"
    #: Recompute the split points every k-th step (bodies are re-binned
    #: against the cached key ranges in between).
    rebalance_steps: int = 8
    #: Interconnect link class (``machine.catalog`` key) between ranks —
    #: the intra-node class when ``ranks_per_node`` makes the fabric
    #: hierarchical.
    interconnect: str = "nvlink4"
    #: Ranks per node for the hierarchical fabric; ``0`` (default) puts
    #: every rank in one node (uniform fabric over ``interconnect``).
    ranks_per_node: int = 0
    #: Inter-node link class of the hierarchical fabric.
    inter_interconnect: str = "ib-ndr"
    #: All-Pairs-Col only: knowingly replace par by par_unseq on devices
    #: without parallel forward progress, as the paper did on AMD/Intel
    #: GPUs ("this requires introducing undefined behavior").  Our batch
    #: path is value-equivalent, so the result stays correct; only the
    #: modeled semantics change.
    unsafe_relax_policy: bool = False

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHM_NAMES:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHM_NAMES}"
            )
        if self.theta < 0:
            raise ConfigurationError("theta must be non-negative")
        if self.dt <= 0:
            raise ConfigurationError("dt must be positive")
        if self.curve not in ("hilbert", "morton"):
            raise ConfigurationError("curve must be 'hilbert' or 'morton'")
        if self.multipole_order not in (1, 2):
            raise ConfigurationError("multipole_order must be 1 or 2")
        if not isinstance(self.tree_reuse_steps, int) or self.tree_reuse_steps < 1:
            raise ConfigurationError("tree_reuse_steps must be an integer >= 1")
        if self.tree_update not in TREE_UPDATE_MODES:
            raise ConfigurationError(
                f"tree_update must be one of {TREE_UPDATE_MODES}, got {self.tree_update!r}"
            )
        if self.tree_update != "rebuild":
            if self.algorithm not in ("octree", "bvh", "octree-2stage"):
                raise ConfigurationError(
                    f"tree_update={self.tree_update!r} requires a tree algorithm; "
                    f"got {self.algorithm!r}"
                )
            if self.tree_reuse_steps != 1:
                raise ConfigurationError(
                    "tree_update refit/auto supersedes tree_reuse_steps; "
                    "leave tree_reuse_steps at 1"
                )
        if not (isinstance(self.drift_budget, (int, float)) and self.drift_budget > 0):
            raise ConfigurationError("drift_budget must be a positive number")
        if not (isinstance(self.refit_disorder_threshold, (int, float))
                and 0.0 <= self.refit_disorder_threshold <= 1.0):
            raise ConfigurationError(
                "refit_disorder_threshold must be in [0, 1]"
            )
        if self.traversal not in ("lockstep", "grouped", "dual"):
            raise ConfigurationError(
                "traversal must be 'lockstep', 'grouped' or 'dual'"
            )
        if not isinstance(self.group_size, int) or self.group_size < 1:
            raise ConfigurationError("group_size must be an integer >= 1")
        if self.eval_mode not in ("auto", "tile", "gemm", "flat"):
            raise ConfigurationError(
                "eval_mode must be 'auto', 'tile', 'gemm' or 'flat'"
            )
        if not (isinstance(self.cc_mac, (int, float)) and self.cc_mac >= 0):
            raise ConfigurationError("cc_mac must be a non-negative number")
        if self.expansion_order not in (0, 1, 2):
            raise ConfigurationError("expansion_order must be 0, 1 or 2")
        if self.simt_width < 1:
            raise ConfigurationError("simt_width must be >= 1")
        if not isinstance(self.ranks, int) or self.ranks < 1:
            raise ConfigurationError("ranks must be an integer >= 1")
        if self.decomposition not in ("static", "weighted"):
            raise ConfigurationError(
                "decomposition must be 'static' or 'weighted'"
            )
        if not isinstance(self.rebalance_steps, int) or self.rebalance_steps < 1:
            raise ConfigurationError("rebalance_steps must be an integer >= 1")
        if not isinstance(self.ranks_per_node, int) or self.ranks_per_node < 0:
            raise ConfigurationError("ranks_per_node must be an integer >= 0")
        if self.ranks > 1 and self.algorithm not in ("octree", "bvh"):
            raise ConfigurationError(
                "ranks > 1 requires a tree algorithm ('octree' or 'bvh'); "
                f"got {self.algorithm!r}"
            )

    def with_(self, **kw) -> "SimulationConfig":
        """Functional update helper."""
        return replace(self, **kw)
